"""Setup shim: enables legacy editable installs (`pip install -e .
--no-use-pep517`) in environments without the `wheel` package."""

from setuptools import setup

setup()
