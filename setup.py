"""Setup shim: enables legacy editable installs (`pip install -e .
--no-use-pep517`) in environments without the `wheel` package.

Metadata lives in ``pyproject.toml``; the src-layout mapping is repeated
here so the legacy code path resolves the package without PEP 517.
"""

from setuptools import find_packages, setup

setup(
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
