"""CI smoke for the persistent server: real process, real signals.

Drives the actual ``repro-teams serve --unix`` process end to end,
the way the unit suite (in-process loop) cannot:

1. build a snapshot store and start the server on a Unix socket with
   ``--max-pending 2 --workers 1`` (small on purpose: the overload
   path must be reachable);
2. drive ~50 requests: a solve stream, one past-deadline request
   (``deadline_ms: 0`` — deterministically expired at admission), and
   an overload burst (more concurrent requests than worker + queue can
   hold, retried until at least one typed ``overloaded`` rejection is
   observed);
3. save a fresh snapshot and send **SIGHUP mid-stream** — the reload
   must re-resolve LATEST with zero failed in-flight requests and
   byte-identical answers before and after (same network version);
4. check the stats-op counters add up: every request received is
   answered or rejected exactly once, and the per-layer metrics
   (``stats["layers"]`` plus the ``{"op": "metrics"}`` Prometheus
   scrape) are non-zero and consistent with the server counters;
5. SIGTERM and assert a graceful exit with code 0, then assert the
   ``--slow-ms 0`` slow-query log emitted span trees on stderr;
6. restart with ``--replicate`` and run a mutate-then-solve
   convergence pass: a ``{"op": "mutate"}`` burst must report the
   followers caught up (``replica_version == primary_version``) and
   the next solve must carry the advanced ``network_version`` — the
   staleness bug this mode exists to prevent.

Runs with only the package itself installed::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.serving.server_conn import ServingClient

# Skills the tiny-scale synthetic network actually covers, so the
# stream exercises the full solve path (root sweep, kernel queries)
# rather than the no-holders early return.
SOLVE = {"skills": ["streamology", "streamics"], "solver": "greedy", "lam": 0.4}
STREAM_REQUESTS = 40
OVERLOAD_BURST = 8
OVERLOAD_RETRIES = 10


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def canonical(response: dict) -> str:
    response = dict(response)
    response["timing"] = None
    return json.dumps(response, sort_keys=True)


def wait_for_socket(path: Path, proc: subprocess.Popen, timeout: float) -> None:
    deadline = time.monotonic() + timeout
    while not path.exists():
        if proc.poll() is not None:
            fail(f"server exited early with {proc.returncode}")
        if time.monotonic() > deadline:
            proc.kill()
            fail("server never bound its socket")
        time.sleep(0.05)


def overload_burst(sock: str) -> tuple[int, int]:
    """One burst of concurrent requests; returns (overloaded, answered)."""
    clients = [ServingClient.connect_unix(sock) for _ in range(OVERLOAD_BURST)]
    try:
        for client in clients:
            client.send(SOLVE)
        kinds = [client.recv().get("error_kind") for client in clients]
    finally:
        for client in clients:
            client.close()
    overloaded = sum(1 for kind in kinds if kind == "overloaded")
    return overloaded, len(kinds) - overloaded


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    store = tmp / "store"
    sock = tmp / "serve.sock"

    print("== building snapshot store ==", flush=True)
    subprocess.run(
        [
            sys.executable, "-m", "repro.cli",
            "--scale", "tiny",
            "snapshot", "save", "--store", str(store),
        ],
        check=True,
    )

    print("== starting server (--slow-ms 0: every request logs) ==", flush=True)
    slow_log = tmp / "server-stderr.log"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--unix", str(sock),
            "--snapshot", str(store),
            "--max-pending", "2",
            "--workers", "1",
            "--stats-interval", "5",
            "--slow-ms", "0",
        ],
        stderr=slow_log.open("wb"),
    )
    try:
        wait_for_socket(sock, proc, timeout=120)

        with ServingClient.connect_unix(str(sock)) as client:
            baseline = client.round_trip(SOLVE)
            if "found" not in baseline:
                fail(f"malformed solve response: {baseline}")
            expected = canonical(baseline)

            print("== solve stream ==", flush=True)
            for _ in range(STREAM_REQUESTS // 2):
                if canonical(client.round_trip(SOLVE)) != expected:
                    fail("response bytes drifted during the stream")

            print("== past-deadline request ==", flush=True)
            expired = client.round_trip(dict(SOLVE, deadline_ms=0))
            if expired.get("error_kind") != "deadline_exceeded":
                fail(f"deadline_ms=0 answered {expired.get('error_kind')!r}")

            print("== SIGHUP hot reload mid-stream ==", flush=True)
            subprocess.run(
                [
                    sys.executable, "-m", "repro.cli",
                    "--scale", "tiny",
                    "snapshot", "save", "--store", str(store),
                ],
                check=True,
            )  # LATEST now names a fresh (identical-content) snapshot
            proc.send_signal(signal.SIGHUP)
            for _ in range(STREAM_REQUESTS // 2):
                if canonical(client.round_trip(SOLVE)) != expected:
                    fail("response bytes drifted across the reload")
            stats = client.round_trip({"op": "stats"})
            reloads = stats["counters"].get("reloads_ok", 0)
            if reloads < 1:
                fail(f"SIGHUP produced no successful reload: {stats['counters']}")

        print("== overload burst ==", flush=True)
        overloaded = 0
        for attempt in range(OVERLOAD_RETRIES):
            got, answered = overload_burst(str(sock))
            overloaded += got
            if overloaded:
                print(
                    f"   burst {attempt + 1}: {got} overloaded, "
                    f"{answered} answered"
                )
                break
        else:
            fail(
                f"no overloaded rejection in {OVERLOAD_RETRIES} bursts of "
                f"{OVERLOAD_BURST} (queue bound 2, 1 worker)"
            )

        print("== counters add up ==", flush=True)
        with ServingClient.connect_unix(str(sock)) as client:
            stats = client.round_trip({"op": "stats"})
        counters = stats["counters"]
        received = counters.get("requests_received", 0)
        accounted = sum(
            counters.get(name, 0)
            for name in (
                "answered_found",
                "answered_no_team",
                "answered_error",
                "rejected_overloaded",
                "rejected_deadline",
            )
        )
        if received != accounted:
            fail(f"counters do not add up: received={received} != {accounted}")
        if received < STREAM_REQUESTS:
            fail(f"expected >= {STREAM_REQUESTS} requests, saw {received}")
        latency = stats["latency"]["request"]
        print(
            f"   {received} requests accounted for; "
            f"p50={latency['p50_ms']:.1f}ms p99={latency['p99_ms']:.1f}ms"
        )

        print("== per-layer metrics (stats + prometheus scrape) ==", flush=True)
        layers = stats.get("layers", {}).get("counters", {})
        engine_solves = layers.get("engine_solves", 0)
        answered_found = counters.get("answered_found", 0)
        if engine_solves < answered_found:
            fail(
                f"engine_solves={engine_solves} cannot be below "
                f"answered_found={answered_found}"
            )
        oracle_outcomes = sum(
            count for name, count in layers.items()
            if name.startswith("engine_oracle_")
        )
        # Identical repeat solves reuse a memoized finder without an
        # oracle-cache lookup, so outcomes <= solves; but the stream
        # must have resolved the cache at least once, and never more
        # often than it solved.
        if not 1 <= oracle_outcomes <= engine_solves:
            fail(
                f"oracle cache outcomes ({oracle_outcomes}) inconsistent "
                f"with solves ({engine_solves})"
            )
        kernel_queries = sum(
            count for name, count in layers.items()
            if name.startswith("kernel_queries_")
        )
        if kernel_queries <= 0:
            fail(f"no kernel queries counted in layers: {sorted(layers)}")
        with ServingClient.connect_unix(str(sock)) as client:
            stats = client.round_trip({"op": "stats"})
            scraped = client.round_trip({"op": "metrics"})
        if not scraped.get("content_type", "").startswith("text/plain"):
            fail(f"metrics op returned no text exposition: {scraped}")
        text = scraped["text"]
        received_line = (
            f"repro_requests_received "
            f"{stats['counters']['requests_received']}"
        )
        for needle in (received_line, "repro_engine_solves",
                       "# TYPE repro_request_ms summary"):
            if needle not in text:
                fail(f"prometheus scrape is missing {needle!r}")
        print(
            f"   layers: engine_solves={engine_solves} "
            f"kernel_queries={kernel_queries}; scrape consistent"
        )

        print("== graceful shutdown ==", flush=True)
        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("server did not exit within 60s of SIGTERM")
        if code != 0:
            fail(f"server exited {code}, expected 0")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    print("== slow-query log ==", flush=True)
    slow_trees = []
    for line in slow_log.read_text().splitlines():
        if '"slow_ms"' not in line:
            continue  # stats-interval chatter, startup banner, ...
        try:
            entry = json.loads(line[line.index("{"):])
        except (ValueError, json.JSONDecodeError):
            continue
        if "trace" in entry:
            slow_trees.append(entry)
    if not slow_trees:
        fail(f"--slow-ms 0 emitted no slow-query lines into {slow_log}")
    first = slow_trees[0]["trace"]
    if first.get("name") != "request" or not first.get("children"):
        fail(f"slow-query trace is not a request span tree: {first}")
    print(f"   {len(slow_trees)} slow-query span trees logged")

    print("== replicated server: mutate-then-solve convergence ==", flush=True)
    rsock = tmp / "serve-repl.sock"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--unix", str(rsock),
            "--snapshot", str(store),
            "--replicate",
            "--max-lag-ms", "5000",
            "--workers", "1",
            "--stats-interval", "5",
        ],
    )
    try:
        wait_for_socket(rsock, proc, timeout=120)
        with ServingClient.connect_unix(str(rsock)) as client:
            before = client.round_trip(SOLVE)
            version = before.get("network_version")
            if not isinstance(version, int):
                fail(f"replicated solve carries no network_version: {before}")

            mutated = client.round_trip({
                "op": "mutate",
                "ops": [
                    {"op": "add_expert", "id": "smoke_a",
                     "skills": ["graphics"], "h_index": 30},
                    {"op": "add_expert", "id": "smoke_b",
                     "skills": ["sound"], "h_index": 30},
                    {"op": "add_collaboration",
                     "u": "smoke_a", "v": "smoke_b", "weight": 1.0},
                ],
            })
            if not mutated.get("ok") or mutated.get("applied") != 3:
                fail(f"mutate burst failed: {mutated}")
            if mutated["replica_version"] != mutated["primary_version"]:
                fail(f"followers lag the primary after mutate: {mutated}")

            after = client.round_trip(SOLVE)
            if after.get("network_version") != version + 3:
                fail(
                    f"solve still serves version "
                    f"{after.get('network_version')} after 3 mutations "
                    f"(started at {version})"
                )
            print(
                f"   converged: network_version {version} -> "
                f"{after['network_version']}, "
                f"{mutated['snapshot_fallbacks']} snapshot fallbacks"
            )

            stats = client.round_trip({"op": "stats"})
            counters = stats["counters"]
            if counters.get("op_mutate", 0) != (
                counters.get("mutate_ok", 0)
                + counters.get("mutate_failed", 0)
            ):
                fail(f"mutate outcomes do not add up: {counters}")
            if counters.get("mutate_ok", 0) < 1:
                fail(f"mutate burst left mutate_ok at 0: {counters}")
            layers = stats.get("layers", {}).get("counters", {})
            if layers.get("pool_syncs", 0) < 1:
                fail(f"mutate did not count a replication sync: {layers}")
            print(
                f"   mutate counters consistent; "
                f"pool_syncs={layers['pool_syncs']}"
            )

        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("replicated server did not exit within 60s of SIGTERM")
        if code != 0:
            fail(f"replicated server exited {code}, expected 0")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    print("serve smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
