"""CI smoke for the persistent server: real process, real signals.

Drives the actual ``repro-teams serve --unix`` process end to end,
the way the unit suite (in-process loop) cannot:

1. build a snapshot store and start the server on a Unix socket with
   ``--max-pending 2 --workers 1`` (small on purpose: the overload
   path must be reachable);
2. drive ~50 requests: a solve stream, one past-deadline request
   (``deadline_ms: 0`` — deterministically expired at admission), and
   an overload burst (more concurrent requests than worker + queue can
   hold, retried until at least one typed ``overloaded`` rejection is
   observed);
3. save a fresh snapshot and send **SIGHUP mid-stream** — the reload
   must re-resolve LATEST with zero failed in-flight requests and
   byte-identical answers before and after (same network version);
4. check the stats-op counters add up: every request received is
   answered or rejected exactly once;
5. SIGTERM and assert a graceful exit with code 0;
6. restart with ``--replicate`` and run a mutate-then-solve
   convergence pass: a ``{"op": "mutate"}`` burst must report the
   followers caught up (``replica_version == primary_version``) and
   the next solve must carry the advanced ``network_version`` — the
   staleness bug this mode exists to prevent.

Runs with only the package itself installed::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.serving.server_conn import ServingClient

SOLVE = {"skills": ["graphics", "sound"], "solver": "greedy", "lam": 0.4}
STREAM_REQUESTS = 40
OVERLOAD_BURST = 8
OVERLOAD_RETRIES = 10


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def canonical(response: dict) -> str:
    response = dict(response)
    response["timing"] = None
    return json.dumps(response, sort_keys=True)


def wait_for_socket(path: Path, proc: subprocess.Popen, timeout: float) -> None:
    deadline = time.monotonic() + timeout
    while not path.exists():
        if proc.poll() is not None:
            fail(f"server exited early with {proc.returncode}")
        if time.monotonic() > deadline:
            proc.kill()
            fail("server never bound its socket")
        time.sleep(0.05)


def overload_burst(sock: str) -> tuple[int, int]:
    """One burst of concurrent requests; returns (overloaded, answered)."""
    clients = [ServingClient.connect_unix(sock) for _ in range(OVERLOAD_BURST)]
    try:
        for client in clients:
            client.send(SOLVE)
        kinds = [client.recv().get("error_kind") for client in clients]
    finally:
        for client in clients:
            client.close()
    overloaded = sum(1 for kind in kinds if kind == "overloaded")
    return overloaded, len(kinds) - overloaded


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    store = tmp / "store"
    sock = tmp / "serve.sock"

    print("== building snapshot store ==", flush=True)
    subprocess.run(
        [
            sys.executable, "-m", "repro.cli",
            "--scale", "tiny",
            "snapshot", "save", "--store", str(store),
        ],
        check=True,
    )

    print("== starting server ==", flush=True)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--unix", str(sock),
            "--snapshot", str(store),
            "--max-pending", "2",
            "--workers", "1",
            "--stats-interval", "5",
        ],
    )
    try:
        wait_for_socket(sock, proc, timeout=120)

        with ServingClient.connect_unix(str(sock)) as client:
            baseline = client.round_trip(SOLVE)
            if "found" not in baseline:
                fail(f"malformed solve response: {baseline}")
            expected = canonical(baseline)

            print("== solve stream ==", flush=True)
            for _ in range(STREAM_REQUESTS // 2):
                if canonical(client.round_trip(SOLVE)) != expected:
                    fail("response bytes drifted during the stream")

            print("== past-deadline request ==", flush=True)
            expired = client.round_trip(dict(SOLVE, deadline_ms=0))
            if expired.get("error_kind") != "deadline_exceeded":
                fail(f"deadline_ms=0 answered {expired.get('error_kind')!r}")

            print("== SIGHUP hot reload mid-stream ==", flush=True)
            subprocess.run(
                [
                    sys.executable, "-m", "repro.cli",
                    "--scale", "tiny",
                    "snapshot", "save", "--store", str(store),
                ],
                check=True,
            )  # LATEST now names a fresh (identical-content) snapshot
            proc.send_signal(signal.SIGHUP)
            for _ in range(STREAM_REQUESTS // 2):
                if canonical(client.round_trip(SOLVE)) != expected:
                    fail("response bytes drifted across the reload")
            stats = client.round_trip({"op": "stats"})
            reloads = stats["counters"].get("reloads_ok", 0)
            if reloads < 1:
                fail(f"SIGHUP produced no successful reload: {stats['counters']}")

        print("== overload burst ==", flush=True)
        overloaded = 0
        for attempt in range(OVERLOAD_RETRIES):
            got, answered = overload_burst(str(sock))
            overloaded += got
            if overloaded:
                print(
                    f"   burst {attempt + 1}: {got} overloaded, "
                    f"{answered} answered"
                )
                break
        else:
            fail(
                f"no overloaded rejection in {OVERLOAD_RETRIES} bursts of "
                f"{OVERLOAD_BURST} (queue bound 2, 1 worker)"
            )

        print("== counters add up ==", flush=True)
        with ServingClient.connect_unix(str(sock)) as client:
            stats = client.round_trip({"op": "stats"})
        counters = stats["counters"]
        received = counters.get("requests_received", 0)
        accounted = sum(
            counters.get(name, 0)
            for name in (
                "answered_found",
                "answered_no_team",
                "answered_error",
                "rejected_overloaded",
                "rejected_deadline",
            )
        )
        if received != accounted:
            fail(f"counters do not add up: received={received} != {accounted}")
        if received < STREAM_REQUESTS:
            fail(f"expected >= {STREAM_REQUESTS} requests, saw {received}")
        latency = stats["latency"]["request"]
        print(
            f"   {received} requests accounted for; "
            f"p50={latency['p50_ms']:.1f}ms p99={latency['p99_ms']:.1f}ms"
        )

        print("== graceful shutdown ==", flush=True)
        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("server did not exit within 60s of SIGTERM")
        if code != 0:
            fail(f"server exited {code}, expected 0")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    print("== replicated server: mutate-then-solve convergence ==", flush=True)
    rsock = tmp / "serve-repl.sock"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--unix", str(rsock),
            "--snapshot", str(store),
            "--replicate",
            "--max-lag-ms", "5000",
            "--workers", "1",
            "--stats-interval", "5",
        ],
    )
    try:
        wait_for_socket(rsock, proc, timeout=120)
        with ServingClient.connect_unix(str(rsock)) as client:
            before = client.round_trip(SOLVE)
            version = before.get("network_version")
            if not isinstance(version, int):
                fail(f"replicated solve carries no network_version: {before}")

            mutated = client.round_trip({
                "op": "mutate",
                "ops": [
                    {"op": "add_expert", "id": "smoke_a",
                     "skills": ["graphics"], "h_index": 30},
                    {"op": "add_expert", "id": "smoke_b",
                     "skills": ["sound"], "h_index": 30},
                    {"op": "add_collaboration",
                     "u": "smoke_a", "v": "smoke_b", "weight": 1.0},
                ],
            })
            if not mutated.get("ok") or mutated.get("applied") != 3:
                fail(f"mutate burst failed: {mutated}")
            if mutated["replica_version"] != mutated["primary_version"]:
                fail(f"followers lag the primary after mutate: {mutated}")

            after = client.round_trip(SOLVE)
            if after.get("network_version") != version + 3:
                fail(
                    f"solve still serves version "
                    f"{after.get('network_version')} after 3 mutations "
                    f"(started at {version})"
                )
            print(
                f"   converged: network_version {version} -> "
                f"{after['network_version']}, "
                f"{mutated['snapshot_fallbacks']} snapshot fallbacks"
            )

        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("replicated server did not exit within 60s of SIGTERM")
        if code != 0:
            fail(f"replicated server exited {code}, expected 0")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    print("serve smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
