"""Quickstart: find an authority-aware team in a hand-built expert network.

Builds the paper's Figure 1 scenario — two candidate teams for the skills
{social networks, text mining} with identical communication costs but very
different authority — and shows that the plain communication-cost
objective cannot tell them apart while CA-CC and SA-CA-CC can.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Expert, ExpertNetwork, GreedyTeamFinder, TeamEvaluator


def build_network() -> ExpertNetwork:
    """The Figure 1 network: grad-student skill holders, professor connectors."""
    experts = [
        # team (a): strong students connected through a famous professor
        Expert("liu", name="Jialu Liu", skills={"SN"}, h_index=9),
        Expert("han", name="Jiawei Han", h_index=139),
        Expert("ren", name="Xiang Ren", skills={"TM"}, h_index=11),
        # team (b): weaker students connected through a junior professor
        Expert("golshan", name="Behzad Golshan", skills={"SN"}, h_index=5),
        Expert("lappas", name="Theodoros Lappas", h_index=12),
        Expert("kotzias", name="Dimitrios Kotzias", skills={"TM"}, h_index=3),
        # weak bridge so everything is one component
        Expert("bridge", name="Service Account", h_index=1),
    ]
    edges = [
        ("liu", "han", 1.0),
        ("han", "ren", 1.0),
        ("golshan", "lappas", 1.0),
        ("lappas", "kotzias", 1.0),
        ("han", "bridge", 5.0),
        ("bridge", "lappas", 5.0),
    ]
    return ExpertNetwork(experts, edges)


def describe(team, network: ExpertNetwork) -> str:
    rows = []
    for member in sorted(team.members):
        expert = network.expert(member)
        role = (
            "holds " + ", ".join(s for s, c in team.assignments.items() if c == member)
            if member in team.skill_holders
            else "connector"
        )
        rows.append(
            f"    {expert.display_name:<22} h-index {expert.h_index:>5.0f}  {role}"
        )
    return "\n".join(rows)


def main() -> None:
    network = build_network()
    project = ["SN", "TM"]
    evaluator = TeamEvaluator(network, gamma=0.6, lam=0.6)

    print(f"project: {project}\n")
    for objective in ("cc", "ca-cc", "sa-ca-cc"):
        finder = GreedyTeamFinder(
            network, objective=objective, gamma=0.6, lam=0.6, oracle_kind="dijkstra"
        )
        team = finder.find_team(project)
        print(f"[{objective}]  SA-CA-CC score = {evaluator.sa_ca_cc(team):.3f}")
        print(describe(team, network))
        print()

    print(
        "With equal edge weights CC is indifferent between the two chains;\n"
        "the authority-aware objectives route through Jiawei Han (h=139)."
    )


if __name__ == "__main__":
    main()
