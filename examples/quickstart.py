"""Quickstart: serve authority-aware team queries through the engine.

Builds the paper's Figure 1 scenario — two candidate teams for the skills
{social networks, text mining} with identical communication costs but very
different authority — and routes one request per objective through a
:class:`repro.api.TeamFormationEngine`.  The plain communication-cost
objective cannot tell the teams apart; CA-CC and SA-CA-CC can.

The engine is the library's front door: it owns the network, shares one
distance index across all three queries (see ``timing.oracle_builds`` in
the output), and answers typed, JSON-serializable requests.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Expert, ExpertNetwork, TeamFormationEngine, TeamRequest


def build_network() -> ExpertNetwork:
    """The Figure 1 network: grad-student skill holders, professor connectors."""
    experts = [
        # team (a): strong students connected through a famous professor
        Expert("liu", name="Jialu Liu", skills={"SN"}, h_index=9),
        Expert("han", name="Jiawei Han", h_index=139),
        Expert("ren", name="Xiang Ren", skills={"TM"}, h_index=11),
        # team (b): weaker students connected through a junior professor
        Expert("golshan", name="Behzad Golshan", skills={"SN"}, h_index=5),
        Expert("lappas", name="Theodoros Lappas", h_index=12),
        Expert("kotzias", name="Dimitrios Kotzias", skills={"TM"}, h_index=3),
        # weak bridge so everything is one component
        Expert("bridge", name="Service Account", h_index=1),
    ]
    edges = [
        ("liu", "han", 1.0),
        ("han", "ren", 1.0),
        ("golshan", "lappas", 1.0),
        ("lappas", "kotzias", 1.0),
        ("han", "bridge", 5.0),
        ("bridge", "lappas", 5.0),
    ]
    return ExpertNetwork(experts, edges)


def main() -> None:
    engine = TeamFormationEngine(build_network())
    skills = ("SN", "TM")
    print(f"project: {list(skills)}  solvers: {', '.join(engine.list_solvers())}\n")

    requests = [
        TeamRequest(
            skills=skills,
            solver="greedy",
            objective=objective,
            gamma=0.6,
            lam=0.6,
            oracle_kind="dijkstra",
        )
        for objective in ("cc", "ca-cc", "sa-ca-cc")
    ]
    responses = engine.solve_many(requests)
    for request, response in zip(requests, responses):
        members = ", ".join(response.team.members)
        print(
            f"[{request.objective:<8}]  sa-ca-cc={response.scores.sa_ca_cc:.3f}  "
            f"members: {members}"
        )
        for c in response.contributions:
            covered = f" holds {', '.join(c.covered_skills)}" if c.covered_skills else ""
            print(f"    {c.expert_id:<10} {c.role:<12} h-index {c.authority:>5.0f}{covered}")
        print()

    print(
        "With equal edge weights CC is indifferent between the two chains;\n"
        "the authority-aware objectives route through Jiawei Han (h=139).\n"
        "Requests and responses are wire-ready too:"
    )
    print(f"request:  {requests[-1].to_json()}")
    print(f"response: {responses[-1].to_json()[:120]}... "
          f"({len(responses[-1].to_json())} bytes, lossless round-trip)")


if __name__ == "__main__":
    main()
