"""Team maintenance: replacing a member who becomes unavailable.

Discovers a team, then walks the two replacement scenarios the library
supports (motivated by Li et al., WWW 2015 — reference [4] of the
reproduced paper):

1. a **skill holder** leaves — rank outside experts who cover the lost
   skills and rebuild the team around each;
2. a **connector** leaves — re-route the remaining skill holders through
   different intermediaries.

Run:  python examples/team_maintenance.py
"""

from __future__ import annotations

import random

from repro import (
    ReplacementError,
    ReplacementRecommender,
    TeamFormationEngine,
)
from repro.dblp import SyntheticDblpConfig, build_expert_network, synthetic_corpus
from repro.eval import sample_project


def main() -> None:
    corpus = synthetic_corpus(SyntheticDblpConfig(num_groups=14), seed=2)
    network = build_expert_network(corpus)
    project = sample_project(network, 4, random.Random(8))
    print(f"project: {project}\n")

    engine = TeamFormationEngine(network, oracle_kind="pll")
    finder = engine.greedy_finder(objective="sa-ca-cc")
    team = finder.find_team(project)
    evaluator = engine.evaluator(gamma=0.6, lam=0.6)
    print(f"original team (score {evaluator.sa_ca_cc(team):.3f}):")
    for skill, holder in sorted(team.assignments.items()):
        print(f"  {skill:<16} -> {holder}")
    for connector in sorted(team.connectors):
        print(f"  connector        -> {connector}")

    recommender = ReplacementRecommender(network, objective="sa-ca-cc")

    departing_holder = sorted(team.skill_holders)[0]
    print(f"\nscenario 1: skill holder {departing_holder!r} leaves")
    try:
        for rank, proposal in enumerate(
            recommender.recommend(team, departing_holder, k=3), start=1
        ):
            print(
                f"  option {rank}: bring in {proposal.substitute!r} "
                f"(score {proposal.score:.3f}, delta {proposal.delta:+.3f})"
            )
    except ReplacementError as exc:
        print(f"  no replacement possible: {exc}")

    connectors = sorted(team.connectors)
    if connectors:
        departing_connector = connectors[0]
        print(f"\nscenario 2: connector {departing_connector!r} leaves")
        try:
            proposal = recommender.recommend(team, departing_connector)[0]
            print(
                f"  re-routed team (score {proposal.score:.3f}, "
                f"delta {proposal.delta:+.3f}), new members: "
                f"{sorted(proposal.team.members)}"
            )
        except ReplacementError as exc:
            print(f"  no re-routing possible: {exc}")
    else:
        print("\nscenario 2 skipped: the team has no connectors")


if __name__ == "__main__":
    main()
