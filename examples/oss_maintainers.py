"""Open-source maintainer teams — the intro's GitHub-style scenario.

The paper's introduction names GitHub alongside DBLP as an expert
network: contributors hold technology skills, review/co-commit history
defines edges, and "authority" is standing in the ecosystem (stars,
merged PRs — here a single reputation score).  This example builds a
synthetic OSS contributor network directly (no bibliography), asks for a
team to maintain a new service, and contrasts the cheapest-coordination
team with the authority-aware one.

Run:  python examples/oss_maintainers.py
"""

from __future__ import annotations

import random

from repro import Expert, ExpertNetwork, TeamFormationEngine
from repro.core import explain_team
from repro.eval import format_table

TECHNOLOGIES = ("rust", "postgres", "kubernetes", "grpc", "frontend")


def build_contributor_network(seed: int = 4) -> ExpertNetwork:
    """A few org 'guilds', each with a high-reputation maintainer."""
    rng = random.Random(seed)
    experts: list[Expert] = []
    edges: list[tuple[str, str, float]] = []
    guilds = 5
    for g in range(guilds):
        maintainer = f"guild{g}.maintainer"
        # maintainers: high reputation, no specific required skill
        experts.append(Expert(maintainer, h_index=float(rng.randint(25, 60))))
        for c in range(rng.randint(4, 7)):
            contributor = f"guild{g}.dev{c}"
            skills = set(rng.sample(TECHNOLOGIES, rng.randint(1, 2)))
            experts.append(
                Expert(contributor, skills=skills, h_index=float(rng.randint(1, 8)))
            )
            # devs co-commit mostly with their guild maintainer
            edges.append((contributor, maintainer, rng.uniform(0.1, 0.4)))
            if c > 0 and rng.random() < 0.5:
                edges.append(
                    (contributor, f"guild{g}.dev{c - 1}", rng.uniform(0.3, 0.8))
                )
    # maintainers know each other (cross-guild coordination)
    for g in range(guilds - 1):
        edges.append(
            (f"guild{g}.maintainer", f"guild{g + 1}.maintainer", rng.uniform(0.2, 0.5))
        )
    return ExpertNetwork(experts, edges)


def main() -> None:
    network = build_contributor_network()
    project = ["rust", "postgres", "kubernetes", "grpc"]
    engine = TeamFormationEngine(network, oracle_kind="dijkstra")
    evaluator = engine.evaluator(gamma=0.6, lam=0.6)
    print(f"maintaining a new service needs: {project}\n")

    rows = []
    teams = {}
    for objective in ("cc", "sa-ca-cc"):
        finder = engine.greedy_finder(objective=objective)
        team = finder.find_team(project)
        teams[objective] = team
        maintainers = [m for m in team.members if "maintainer" in m]
        rows.append(
            [
                objective,
                len(team.members),
                ", ".join(sorted(maintainers)) or "(none)",
                evaluator.cc(team),
                evaluator.sa_ca_cc(team),
            ]
        )
    print(
        format_table(
            ["objective", "size", "maintainers on team", "CC", "SA-CA-CC"],
            rows,
            precision=2,
        )
    )

    print("\nauthority-aware team, explained:")
    print(explain_team(teams["sa-ca-cc"], network).format())
    print(
        "\nThe SA-CA-CC plan routes coordination through guild maintainers"
        "\n(the OSS analogue of the paper's high-h-index connectors)."
    )


if __name__ == "__main__":
    main()
