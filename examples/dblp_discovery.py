"""Team discovery over a DBLP-style bibliography — the paper's main scenario.

Walks the full Section 4 pipeline:

1. generate a synthetic DBLP corpus (or parse a real ``dblp.xml`` if you
   pass a path on the command line);
2. build the expert network: junior researchers (< 10 papers) become
   skill holders labelled with recurring title terms, co-authors are
   linked by Jaccard-distance edges, h-index is the node authority;
3. sample a project and report the top-5 teams of CC, CA-CC and
   SA-CA-CC side by side, with the Figure 6 statistics.

Run:  python examples/dblp_discovery.py [path/to/dblp.xml]
"""

from __future__ import annotations

import random
import sys

from repro.dblp import (
    SyntheticDblpConfig,
    build_expert_network,
    parse_dblp_xml,
    synthetic_corpus,
)
from repro.eval import format_table, sample_project, team_stats
from repro.eval.experiments import MethodSuite


def load_network():
    if len(sys.argv) > 1:
        print(f"parsing {sys.argv[1]} (records up to 2015, as in the paper)")
        corpus = parse_dblp_xml(sys.argv[1], max_year=2015)
    else:
        print(
            "generating a synthetic DBLP corpus "
            "(pass a dblp.xml path to use real data)"
        )
        corpus = synthetic_corpus(SyntheticDblpConfig(num_groups=20), seed=7)
    network = build_expert_network(corpus)
    print(
        f"expert network: {len(network)} experts, {network.num_edges} edges, "
        f"{network.skill_index.num_skills} skills\n"
    )
    return network


def main() -> None:
    network = load_network()
    project = sample_project(network, 4, random.Random(11))
    print(f"project skills: {project}\n")

    suite = MethodSuite(network, gamma=0.6, lam=0.6, oracle_kind="pll")
    rows = []
    for method in ("cc", "ca-cc", "sa-ca-cc"):
        teams = suite.finder(method).find_top_k(project, k=5)
        for rank, team in enumerate(teams, start=1):
            stats = team_stats(team, network)
            rows.append(
                [
                    method,
                    rank,
                    stats.size,
                    stats.avg_holder_h_index,
                    stats.avg_connector_h_index,
                    stats.avg_num_publications,
                    suite.evaluator().sa_ca_cc(team),
                ]
            )
    print(
        format_table(
            [
                "method",
                "rank",
                "size",
                "holder h",
                "connector h",
                "avg pubs",
                "SA-CA-CC",
            ],
            rows,
            precision=2,
            title="top-5 teams per ranking strategy",
        )
    )

    best = suite.sa_ca_cc().find_team(project)
    print("\nbest SA-CA-CC team in detail:")
    for skill, holder in sorted(best.assignments.items()):
        expert = network.expert(holder)
        print(
            f"  {skill:<16} -> {expert.display_name}  "
            f"(h={expert.h_index:.0f}, pubs={expert.num_publications})"
        )
    for connector in sorted(best.connectors):
        expert = network.expert(connector)
        print(
            f"  connector        -> {expert.display_name}  "
            f"(h={expert.h_index:.0f}, pubs={expert.num_publications})"
        )


if __name__ == "__main__":
    main()
