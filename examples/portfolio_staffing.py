"""Portfolio staffing: several concurrent projects, disjoint teams.

An organization staffing multiple projects cannot assign the same expert
twice.  This example allocates teams to a project portfolio under both
orders supported by :class:`repro.core.MultiProjectStaffing` and shows
the member-level explanation of one team (cost decomposition + critical
members).

Run:  python examples/portfolio_staffing.py
"""

from __future__ import annotations

from repro.core import explain_team
from repro.core.multi_project import MultiProjectStaffing
from repro.dblp import SyntheticDblpConfig, build_expert_network, synthetic_corpus
from repro.eval import format_table, sample_projects


def main() -> None:
    corpus = synthetic_corpus(SyntheticDblpConfig(num_groups=14), seed=6)
    network = build_expert_network(corpus)
    projects = sample_projects(network, 3, 4, seed=21)
    print(f"network: {len(network)} experts | portfolio: {len(projects)} projects\n")

    for order in ("arrival", "cheapest-first"):
        staffing = MultiProjectStaffing(network, order=order)
        result = staffing.staff(projects)
        rows = []
        for assignment in result.assignments:
            rows.append(
                [
                    ", ".join(assignment.project),
                    "yes" if assignment.staffed else "NO",
                    assignment.score,
                    len(assignment.team.members) if assignment.team else None,
                    assignment.failure or "",
                ]
            )
        print(
            format_table(
                ["project", "staffed", "score", "size", "failure"],
                rows,
                precision=3,
                title=(
                    f"order={order}: {result.num_staffed}/{len(projects)} staffed, "
                    f"total score {result.total_score:.3f}"
                ),
            )
        )
        print()

    staffed = next(
        a for a in MultiProjectStaffing(network).staff(projects).assignments
        if a.staffed
    )
    print("explanation of the first staffed team:")
    print(explain_team(staffed.team, network).format())


if __name__ == "__main__":
    main()
