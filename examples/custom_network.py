"""Bring your own expert network: a consulting-firm staffing scenario.

The library is not tied to DBLP — any roster with skills, an authority
signal and pairwise collaboration costs works.  This example staffs a
client project from a consulting firm's employee graph, where authority
is years of delivered projects and edge weights encode how often two
consultants have worked together.

It also demonstrates a practical workflow the paper motivates: comparing
the communication-cost-only team against the authority-aware team before
committing, and inspecting top-k alternatives.

Run:  python examples/custom_network.py
"""

from __future__ import annotations

from repro import Expert, ExpertNetwork, TeamFormationEngine
from repro.eval import format_table

ROSTER = [
    # id, skills, delivered projects (authority), partner?
    ("maya", {"strategy", "pricing"}, 31),
    ("omar", {"pricing"}, 7),
    ("li", {"data-eng"}, 9),
    ("sofia", {"data-eng", "ml"}, 4),
    ("jonas", {"ml"}, 12),
    ("priya", {"ux"}, 6),
    ("amara", {"ux", "strategy"}, 3),
    ("viktor", set(), 40),   # senior partner: pure connector
    ("nadia", set(), 22),    # engagement manager
    ("tom", set(), 2),       # new joiner
]

# (a, b, cost): lower = has worked together often
COLLABORATIONS = [
    ("maya", "viktor", 0.2),
    ("viktor", "jonas", 0.3),
    ("viktor", "nadia", 0.2),
    ("nadia", "li", 0.3),
    ("nadia", "priya", 0.4),
    ("maya", "omar", 0.5),
    ("jonas", "sofia", 0.4),
    ("li", "sofia", 0.6),
    ("priya", "amara", 0.5),
    ("tom", "li", 0.9),
    ("tom", "priya", 0.9),
    ("omar", "tom", 0.8),
]


def main() -> None:
    experts = [
        Expert(name, name=name.title(), skills=skills, h_index=float(delivered))
        for name, skills, delivered in ROSTER
    ]
    network = ExpertNetwork(experts, COLLABORATIONS)
    project = ["strategy", "data-eng", "ml", "ux"]
    engine = TeamFormationEngine(network, oracle_kind="dijkstra")
    evaluator = engine.evaluator(gamma=0.6, lam=0.6)
    print(f"staffing request: {project}\n")

    rows = []
    teams = {}
    for objective in ("cc", "ca-cc", "sa-ca-cc"):
        finder = engine.greedy_finder(objective=objective, gamma=0.6, lam=0.6)
        team = finder.find_team(project)
        teams[objective] = team
        rows.append(
            [
                objective,
                ", ".join(sorted(team.skill_holders)),
                ", ".join(sorted(team.connectors)) or "(none)",
                evaluator.cc(team),
                evaluator.sa_ca_cc(team),
            ]
        )
    print(
        format_table(
            ["objective", "skill holders", "connectors", "CC", "SA-CA-CC"],
            rows,
            precision=2,
        )
    )

    print("\nalternatives (top-3 under SA-CA-CC):")
    finder = engine.greedy_finder(objective="sa-ca-cc")
    for rank, team in enumerate(finder.find_top_k(project, k=3), start=1):
        assigned = ", ".join(
            f"{skill}->{who}" for skill, who in sorted(team.assignments.items())
        )
        print(f"  #{rank}  score={evaluator.sa_ca_cc(team):.2f}  {assigned}")

    print(
        "\nNote how the authority-aware plans route the engagement through"
        "\nsenior staff (viktor/nadia) rather than the cheapest path."
    )


if __name__ == "__main__":
    main()
