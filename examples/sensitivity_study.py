"""Sensitivity of discovered teams to the lambda tradeoff (Figure 5 style).

Sweeps lambda from 0.1 to 0.9 and reports how the best SA-CA-CC team's
composition responds: skill-holder authority should rise as lambda gives
it more weight, while team size stays roughly flat — the paper's
Section 4.4 finding that "the measures change slowly as lambda increases".

Run:  python examples/sensitivity_study.py
"""

from __future__ import annotations

from repro.dblp import SyntheticDblpConfig, build_expert_network, synthetic_corpus
from repro.eval import format_table, min_max_normalize
from repro.eval.experiments import run_figure5
from repro.eval.experiments.figure5 import lambda_stability
from repro.eval.workload import sample_project

import random


def main() -> None:
    corpus = synthetic_corpus(SyntheticDblpConfig(num_groups=14), seed=1)
    network = build_expert_network(corpus)
    print(f"network: {len(network)} experts, {network.num_edges} edges\n")

    lambdas = tuple(round(0.1 * i, 1) for i in range(1, 10))
    result = run_figure5(
        network, lambdas=lambdas, num_random_projects=5, seed=13
    )
    print(result.format())

    # normalized panels, as plotted in the paper
    print("\nnormalized best-team measures (0 = series min, 1 = series max):")
    rows = []
    series = {
        measure: [v for _, v in result.series("best", measure)]
        for measure in (
            "avg_holder_h_index",
            "avg_connector_h_index",
            "size",
            "avg_num_publications",
        )
    }
    normalized = {m: min_max_normalize(vals) for m, vals in series.items()}
    for i, lam in enumerate(lambdas):
        rows.append(
            [
                lam,
                normalized["avg_holder_h_index"][i],
                normalized["avg_connector_h_index"][i],
                normalized["size"][i],
                normalized["avg_num_publications"][i],
            ]
        )
    print(
        format_table(
            ["lambda", "holder h", "connector h", "size", "pubs"],
            rows,
            precision=2,
        )
    )

    project = sample_project(network, 4, random.Random(2))
    stable = lambda_stability(network, project, lam=0.6, delta=0.02)
    print(
        f"\nlambda stability (0.6 -> 0.62): best team unchanged = {stable}"
        "\n(the paper: 'changing lambda by less than 0.05 does not affect the results')"
    )


if __name__ == "__main__":
    main()
