"""Pareto-optimal team discovery — the paper's announced future work.

Instead of committing to one (gamma, lambda) tradeoff, mine the set of
teams that are non-dominated in the three raw objectives (communication
cost, connector authority, skill-holder authority) and let the project
owner choose along the frontier.

Run:  python examples/pareto_frontier.py
"""

from __future__ import annotations

import random

from repro import TeamFormationEngine
from repro.dblp import SyntheticDblpConfig, build_expert_network, synthetic_corpus
from repro.eval import format_table, sample_project


def main() -> None:
    corpus = synthetic_corpus(SyntheticDblpConfig(num_groups=14), seed=3)
    network = build_expert_network(corpus)
    project = sample_project(network, 4, random.Random(5))
    print(f"network: {len(network)} experts | project: {project}\n")

    engine = TeamFormationEngine(network, oracle_kind="dijkstra")
    discovery = engine.pareto_discovery(
        grid=(0.0, 0.25, 0.5, 0.75, 1.0), k_per_cell=3
    )
    frontier = discovery.discover(project)

    rows = []
    for idx, point in enumerate(frontier, start=1):
        holders = sorted(point.team.skill_holders)
        connectors = sorted(point.team.connectors)
        rows.append(
            [
                idx,
                point.cc,
                point.ca,
                point.sa,
                len(holders),
                len(connectors),
            ]
        )
    print(
        format_table(
            ["#", "CC", "CA", "SA", "holders", "connectors"],
            rows,
            title=f"Pareto frontier: {len(frontier)} non-dominated teams",
        )
    )

    print(
        "\nReading the frontier: the first rows communicate cheaply but may"
        "\nlean on low-authority experts; the last rows maximize authority at"
        "\nhigher coordination cost.  Every row is optimal for *some* tradeoff."
    )
    cheapest = frontier[0]
    strongest = min(frontier, key=lambda p: p.sa + p.ca)
    print(f"\ncheapest communication: members {sorted(cheapest.team.members)}")
    print(f"highest authority:      members {sorted(strongest.team.members)}")


if __name__ == "__main__":
    main()
