"""Property-based tests: serialization/XML round-trips and renderer fuzz."""

from __future__ import annotations

import io

from hypothesis import given, settings, strategies as st

from repro.dblp import Corpus, Paper, corpus_to_xml, parse_dblp_xml
from repro.eval import ascii_chart, bootstrap_mean_ci, min_max_normalize
from repro.expertise import (
    Expert,
    ExpertNetwork,
    network_from_dict,
    network_to_dict,
)
from repro.graph import Graph, k_shortest_paths

_id = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=8,
)


@st.composite
def expert_networks(draw):
    n = draw(st.integers(2, 8))
    ids = [f"e{i}" for i in range(n)]
    experts = [
        Expert(
            ids[i],
            name=draw(_id),
            skills=frozenset(draw(st.sets(st.sampled_from("abc"), max_size=2))),
            h_index=draw(st.integers(0, 50)),
            num_publications=draw(st.integers(0, 99)),
            papers=frozenset(draw(st.sets(_id, max_size=3))),
        )
        for i in range(n)
    ]
    edges = []
    for i in range(1, n):
        parent = draw(st.integers(0, i - 1))
        edges.append((ids[i], ids[parent], draw(st.floats(0.01, 1.0))))
    return ExpertNetwork(experts, edges)


@given(expert_networks())
@settings(max_examples=30, deadline=None)
def test_network_json_roundtrip(net):
    clone = network_from_dict(network_to_dict(net))
    assert network_to_dict(clone) == network_to_dict(net)
    assert set(clone.expert_ids()) == set(net.expert_ids())
    for expert_id in net.expert_ids():
        assert clone.expert(expert_id) == net.expert(expert_id)


_title_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
    min_size=1,
    max_size=40,
).filter(lambda t: t.strip())


@st.composite
def corpora(draw):
    corpus = Corpus()
    n = draw(st.integers(1, 6))
    for i in range(n):
        authors = draw(
            st.lists(_id, min_size=1, max_size=3, unique=True)
        )
        corpus.add_paper(
            Paper(
                id=f"key/{i}",
                title=draw(_title_text),
                authors=tuple(authors),
                year=draw(st.integers(1990, 2020)),
                venue=draw(_id),
            )
        )
    return corpus


@given(corpora())
@settings(max_examples=30, deadline=None)
def test_dblp_xml_roundtrip(corpus):
    parsed = parse_dblp_xml(io.StringIO(corpus_to_xml(corpus)))
    assert parsed.num_papers == corpus.num_papers
    for original, rebuilt in zip(corpus.papers, parsed.papers):
        assert rebuilt.authors == original.authors
        assert rebuilt.year == original.year
        # whitespace at title edges is structural XML noise; content match
        assert (
            rebuilt.title == original.title.strip()
            or rebuilt.title == original.title
        )


@given(
    st.dictionaries(
        _id,
        st.lists(
            st.tuples(st.floats(-50, 50), st.floats(-50, 50)),
            min_size=1,
            max_size=8,
        ),
        min_size=1,
        max_size=4,
    )
)
@settings(max_examples=40, deadline=None)
def test_ascii_chart_never_crashes_and_fits(series):
    out = ascii_chart(series, height=8, width=30)
    lines = out.splitlines()
    # canvas rows have bounded width (prefix + 1 + 30)
    assert all(len(line) <= 80 for line in lines[:8])


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_min_max_normalize_bounds(values):
    normalized = min_max_normalize(values)
    assert len(normalized) == len(values)
    assert all(0.0 <= v <= 1.0 for v in normalized)


@given(st.lists(st.floats(-100, 100), min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_bootstrap_ci_brackets_sample_mean(values):
    ci = bootstrap_mean_ci(values, seed=0)
    assert ci.low <= ci.mean + 1e-9
    assert ci.mean <= ci.high + 1e-9


@st.composite
def weighted_graphs_with_pair(draw):
    n = draw(st.integers(2, 10))
    g = Graph()
    g.add_node(0)
    for i in range(1, n):
        g.add_edge(i, draw(st.integers(0, i - 1)), weight=draw(st.floats(0.1, 5.0)))
    extra = draw(st.integers(0, n))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, weight=draw(st.floats(0.1, 5.0)))
    return g, 0, n - 1


@given(weighted_graphs_with_pair(), st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_yen_paths_sorted_simple_distinct(case, k):
    g, s, t = case
    paths = k_shortest_paths(g, s, t, k)
    assert 1 <= len(paths) <= k
    costs = [c for c, _ in paths]
    assert costs == sorted(costs)
    seen = set()
    for cost, path in paths:
        assert path[0] == s and path[-1] == t
        assert len(path) == len(set(path))
        realized = sum(g.weight(u, v) for u, v in zip(path, path[1:]))
        assert abs(realized - cost) < 1e-9
        assert tuple(path) not in seen
        seen.add(tuple(path))
