"""Unit tests for Jaccard similarity and the edge-weight rule."""

import pytest

from repro.expertise import (
    collaboration_weight,
    jaccard_distance,
    jaccard_similarity,
)


def test_similarity_basics():
    assert jaccard_similarity({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)
    assert jaccard_similarity({"a"}, {"a"}) == 1.0
    assert jaccard_similarity({"a"}, {"b"}) == 0.0


def test_similarity_empty_sets():
    assert jaccard_similarity(set(), set()) == 0.0
    assert jaccard_similarity({"a"}, set()) == 0.0


def test_distance_complements_similarity():
    a, b = {"p1", "p2", "p3"}, {"p2", "p3", "p4"}
    assert jaccard_distance(a, b) == pytest.approx(1 - jaccard_similarity(a, b))


def test_distance_bounds():
    assert 0.0 <= jaccard_distance({"a", "b"}, {"b"}) <= 1.0


def test_accepts_any_collection():
    assert jaccard_similarity(["a", "a", "b"], ("b",)) == pytest.approx(0.5)


def test_collaboration_weight_frequent_pairs_cheap():
    close = collaboration_weight({"p1", "p2", "p3"}, {"p1", "p2", "p3", "p4"})
    distant = collaboration_weight({"p1", "p2", "p3"}, {"p3", "p9", "p8"})
    assert close < distant


def test_collaboration_weight_floor():
    # identical paper sets would give 0; the floor keeps it positive
    w = collaboration_weight({"p1"}, {"p1"}, minimum=1e-6)
    assert w == pytest.approx(1e-6)
    with pytest.raises(ValueError):
        collaboration_weight({"a"}, {"b"}, minimum=-0.1)
