"""Unit tests for the Expert record."""

import pytest

from repro.expertise import Expert


def test_basic_construction():
    e = Expert("e1", name="Ada", skills={"ml"}, h_index=5, num_publications=3)
    assert e.id == "e1"
    assert e.display_name == "Ada"
    assert e.has_skill("ml")
    assert not e.has_skill("db")


def test_display_name_falls_back_to_id():
    assert Expert("e2").display_name == "e2"


def test_containers_normalized_to_frozensets():
    e = Expert("e3", skills=["a", "a", "b"], papers=["p1"])
    assert e.skills == frozenset({"a", "b"})
    assert isinstance(e.skills, frozenset)
    assert isinstance(e.papers, frozenset)


def test_covers_any():
    e = Expert("e4", skills={"a", "b"})
    assert e.covers_any({"b", "z"})
    assert not e.covers_any({"z"})
    assert not e.covers_any(set())


def test_validation():
    with pytest.raises(ValueError):
        Expert("")
    with pytest.raises(ValueError):
        Expert("x", h_index=-1)
    with pytest.raises(ValueError):
        Expert("x", num_publications=-2)


def test_frozen_and_hashable():
    e = Expert("e5", skills={"a"})
    with pytest.raises(AttributeError):
        e.id = "other"  # type: ignore[misc]
    assert e == Expert("e5", skills={"a"})
    assert len({e, Expert("e5", skills={"a"})}) == 1
