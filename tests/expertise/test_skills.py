"""Unit tests for the skill index."""

import pytest

from repro.expertise import Expert, SkillCoverageError, SkillIndex


@pytest.fixture()
def index():
    return SkillIndex(
        [
            Expert("e1", skills={"ml", "db"}),
            Expert("e2", skills={"ml"}),
            Expert("e3", skills={"viz"}),
        ]
    )


def test_experts_with(index):
    assert index.experts_with("ml") == {"e1", "e2"}
    assert index.experts_with("viz") == {"e3"}
    assert index.experts_with("ghost") == frozenset()


def test_support(index):
    assert index.support("ml") == 2
    assert index.support("ghost") == 0


def test_num_skills(index):
    assert index.num_skills == 3
    assert set(index.skills()) == {"ml", "db", "viz"}


def test_coverable(index):
    assert index.is_coverable(["ml", "viz"])
    assert not index.is_coverable(["ml", "quantum"])
    index.require_coverable(["ml", "db"])
    with pytest.raises(SkillCoverageError, match="quantum"):
        index.require_coverable(["ml", "quantum"])


def test_rarest_first_order(index):
    assert index.rarest_first(["ml", "db", "viz"]) == ["db", "viz", "ml"]


def test_candidate_pool(index):
    assert index.candidate_pool(["ml", "viz"]) == {"e1", "e2", "e3"}
    assert index.candidate_pool([]) == frozenset()


def test_incremental_add(index):
    index.add(Expert("e4", skills={"quantum"}))
    assert index.support("quantum") == 1
    assert index.is_coverable(["quantum"])
