"""The dynamic mutation API: versioning, journaling, view consistency."""

from __future__ import annotations

import pytest

from repro.expertise import Expert, ExpertNetwork
from repro.graph.adjacency import GraphError


@pytest.fixture()
def net() -> ExpertNetwork:
    return ExpertNetwork(
        [
            Expert("a", skills={"ml"}, h_index=10),
            Expert("b", skills={"db"}, h_index=2),
            Expert("c", skills={"ml", "db"}, h_index=5),
        ],
        edges=[("a", "b", 0.3), ("b", "c", 0.7)],
    )


def test_construction_is_version_zero(net):
    assert net.version == 0
    assert net.mutations_since(0) == ()


def test_every_mutation_bumps_version_once(net):
    net.add_expert(Expert("d", skills={"viz"}))
    net.add_collaboration("d", "a", weight=0.5)
    net.update_skills("d", {"viz", "ml"})
    net.update_h_index("d", 7)
    net.remove_collaboration("d", "a")
    net.remove_expert("d")
    assert net.version == 6
    ops = [m.op for m in net.mutations_since(0)]
    assert ops == [
        "add_expert",
        "add_collaboration",
        "update_skills",
        "update_h_index",
        "remove_collaboration",
        "remove_expert",
    ]
    assert [m.version for m in net.mutations_since(0)] == [1, 2, 3, 4, 5, 6]
    assert len(net.mutations_since(4)) == 2
    net.validate()


def test_from_collaborations_and_subnetwork_reset_history():
    experts = [
        Expert("a", papers={"p1", "p2"}),
        Expert("b", papers={"p2", "p3"}),
    ]
    net = ExpertNetwork.from_collaborations(experts, [("a", "b")])
    assert net.version == 0
    sub = net.subnetwork(["a", "b"])
    assert sub.version == 0


def test_add_expert_rejects_duplicates_and_indexes_skills(net):
    with pytest.raises(ValueError, match="duplicate"):
        net.add_expert(Expert("a"))
    net.add_expert(Expert("d", skills={"viz"}, h_index=3))
    assert "d" in net
    assert net.experts_with_skill("viz") == {"d"}
    assert net.graph.has_node("d")
    net.validate()


def test_remove_expert_drops_edges_profile_and_skills(net):
    edges_before = net.num_edges
    removed = net.remove_expert("b")
    assert removed.id == "b"
    assert "b" not in net
    assert net.num_edges == edges_before - 2
    assert net.experts_with_skill("db") == {"c"}
    with pytest.raises(KeyError):
        net.remove_expert("b")
    net.validate()


def test_remove_last_holder_forgets_the_skill(net):
    net.remove_expert("a")
    net.remove_expert("c")
    assert net.experts_with_skill("ml") == frozenset()
    assert "ml" not in set(net.skill_index.skills())
    net.validate()


def test_update_skills_keeps_index_exact_both_ways(net):
    net.update_skills("a", {"viz"})
    assert net.experts_with_skill("ml") == {"c"}
    assert net.experts_with_skill("viz") == {"a"}
    assert net.skills_of("a") == {"viz"}
    net.validate()


def test_update_h_index_changes_authority(net):
    net.update_h_index("b", 40)
    assert net.authority("b") == 40.0
    with pytest.raises(ValueError):
        net.update_h_index("b", -1)
    with pytest.raises(KeyError):
        net.update_h_index("ghost", 1)


def test_add_collaboration_records_old_weight(net):
    net.add_collaboration("a", "c", weight=0.9)
    net.add_collaboration("a", "c", weight=0.4)
    fresh, rewt = net.mutations_since(0)
    assert fresh.old_weight is None and fresh.weight == 0.9
    assert rewt.old_weight == 0.9 and rewt.weight == 0.4
    with pytest.raises(KeyError):
        net.add_collaboration("a", "ghost")


def test_remove_collaboration_returns_weight_and_validates(net):
    assert net.remove_collaboration("a", "b") == 0.3
    with pytest.raises(GraphError):
        net.remove_collaboration("a", "b")
    with pytest.raises(KeyError):
        net.remove_collaboration("a", "ghost")


def test_journal_truncation_returns_none(net, monkeypatch):
    monkeypatch.setattr(ExpertNetwork, "JOURNAL_CAP", 3)
    for h in range(5):
        net.update_h_index("a", h + 1)
    assert net.version == 5
    assert net.mutations_since(0) is None  # floor passed version 0
    assert net.mutations_since(1) is None
    assert [m.version for m in net.mutations_since(2)] == [3, 4, 5]
    with pytest.raises(ValueError):
        net.mutations_since(99)
