"""Unit tests for ExpertNetwork."""

import pytest

from repro.expertise import Expert, ExpertNetwork
from repro.graph import GraphError


@pytest.fixture()
def simple_network():
    experts = [
        Expert("a", skills={"ml"}, h_index=10, papers={"p1", "p2"}),
        Expert("b", skills={"db"}, h_index=2, papers={"p2", "p3"}),
        Expert("c", h_index=0, papers={"p4"}),
    ]
    return ExpertNetwork(experts, edges=[("a", "b", 0.4), ("b", "c", 0.9)])


def test_lookups(simple_network):
    net = simple_network
    assert net.expert("a").h_index == 10
    assert net.authority("a") == 10.0
    assert net.skills_of("b") == {"db"}
    assert net.experts_with_skill("ml") == {"a"}
    assert net.communication_cost("a", "b") == pytest.approx(0.4)
    assert "a" in net and "ghost" not in net
    assert len(net) == 3


def test_unknown_expert_raises(simple_network):
    with pytest.raises(KeyError):
        simple_network.expert("ghost")
    with pytest.raises(KeyError):
        simple_network.add_collaboration("a", "ghost")


def test_duplicate_id_rejected():
    with pytest.raises(ValueError):
        ExpertNetwork([Expert("x"), Expert("x")])


def test_inverse_authority_uses_floor(simple_network):
    # c has h-index 0; floor (0.5) keeps a' finite
    assert simple_network.inverse_authority("c") == pytest.approx(2.0)
    assert simple_network.inverse_authority("a") == pytest.approx(0.1)


def test_max_statistics(simple_network):
    assert simple_network.max_edge_weight() == pytest.approx(0.9)
    assert simple_network.max_inverse_authority() == pytest.approx(2.0)


def test_from_collaborations_jaccard_weights():
    experts = [
        Expert("a", papers={"p1", "p2"}),
        Expert("b", papers={"p2", "p3"}),
    ]
    net = ExpertNetwork.from_collaborations(experts, [("a", "b")])
    # |{p2}| / |{p1,p2,p3}| = 1/3 similarity -> distance 2/3
    assert net.communication_cost("a", "b") == pytest.approx(2 / 3)


def test_subnetwork_and_largest_component():
    experts = [Expert(c) for c in "abcde"]
    net = ExpertNetwork(experts, edges=[("a", "b"), ("b", "c"), ("d", "e")])
    sub = net.subnetwork(["a", "b"])
    assert len(sub) == 2 and sub.num_edges == 1
    with pytest.raises(KeyError):
        net.subnetwork(["a", "ghost"])
    largest = net.largest_connected_subnetwork()
    assert set(largest.expert_ids()) == {"a", "b", "c"}


def test_largest_component_of_empty_network():
    net = ExpertNetwork([])
    assert len(net.largest_connected_subnetwork()) == 0


def test_validate_passes_on_consistent(simple_network):
    simple_network.validate()


def test_validate_detects_divergence(simple_network):
    # poke a node into the graph behind the network's back
    simple_network.graph.add_node("stray")
    with pytest.raises(GraphError):
        simple_network.validate()


def test_experts_iteration(simple_network):
    assert {e.id for e in simple_network.experts()} == {"a", "b", "c"}
    assert set(simple_network.expert_ids()) == {"a", "b", "c"}
