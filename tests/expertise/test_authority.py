"""Unit tests for authority metrics."""

import pytest

from repro.expertise import h_index, inverse_authority, pagerank
from repro.graph import Graph


class TestHIndex:
    def test_textbook_cases(self):
        assert h_index([10, 8, 5, 4, 3]) == 4
        assert h_index([25, 8, 5, 3, 3]) == 3
        assert h_index([1, 1, 1]) == 1

    def test_empty_and_zero(self):
        assert h_index([]) == 0
        assert h_index([0, 0, 0]) == 0

    def test_order_independent(self):
        assert h_index([3, 10, 4, 8, 5]) == h_index([10, 8, 5, 4, 3])

    def test_all_highly_cited(self):
        assert h_index([100] * 7) == 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            h_index([5, -1])

    def test_h_bounded_by_paper_count(self):
        assert h_index([1000, 1000]) == 2


class TestInverseAuthority:
    def test_reciprocal(self):
        assert inverse_authority(4.0) == pytest.approx(0.25)

    def test_monotone_decreasing(self):
        assert inverse_authority(10) < inverse_authority(5) < inverse_authority(1)

    def test_floor_guards_zero(self):
        assert inverse_authority(0.0, floor=0.5) == pytest.approx(2.0)
        assert inverse_authority(0.1, floor=0.5) == pytest.approx(2.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            inverse_authority(-1.0)
        with pytest.raises(ValueError):
            inverse_authority(1.0, floor=0.0)


class TestPageRank:
    def test_sums_to_one(self):
        g = Graph.from_edges([("a", "b", 1.0), ("b", "c", 2.0), ("a", "c", 1.0)])
        scores = pagerank(g)
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_hub_scores_highest(self):
        g = Graph()
        for leaf in "bcde":
            g.add_edge("hub", leaf, weight=1.0)
        scores = pagerank(g)
        assert scores["hub"] == max(scores.values())

    def test_symmetric_graph_uniform(self):
        g = Graph.from_edges([("a", "b"), ("b", "c"), ("c", "a")])
        scores = pagerank(g)
        assert scores["a"] == pytest.approx(scores["b"])
        assert scores["b"] == pytest.approx(scores["c"])

    def test_dangling_nodes_handled(self):
        g = Graph.from_edges([("a", "b")])
        g.add_node("isolated")
        scores = pagerank(g)
        assert sum(scores.values()) == pytest.approx(1.0)
        assert scores["isolated"] > 0

    def test_empty_graph(self):
        assert pagerank(Graph()) == {}

    def test_invalid_damping(self):
        with pytest.raises(ValueError):
            pagerank(Graph(), damping=1.0)
