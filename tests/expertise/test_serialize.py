"""Unit tests for network JSON serialization."""

import json

import pytest

from repro.expertise import (
    Expert,
    ExpertNetwork,
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)


@pytest.fixture()
def network():
    experts = [
        Expert("a", name="Ada", skills={"ml", "db"}, h_index=7,
               num_publications=12, papers={"p1", "p2"}),
        Expert("b", skills={"viz"}, h_index=0),
        Expert("c", h_index=30),
    ]
    return ExpertNetwork(
        experts,
        edges=[("a", "b", 0.25), ("b", "c", 0.75)],
        authority_floor=0.4,
    )


def test_roundtrip_dict(network):
    clone = network_from_dict(network_to_dict(network))
    assert set(clone.expert_ids()) == set(network.expert_ids())
    assert clone.expert("a") == network.expert("a")
    assert clone.communication_cost("a", "b") == pytest.approx(0.25)
    assert clone.authority_floor == pytest.approx(0.4)
    assert clone.experts_with_skill("ml") == {"a"}


def test_roundtrip_file(network, tmp_path):
    path = tmp_path / "net.json"
    save_network(network, path)
    clone = load_network(path)
    assert network_to_dict(clone) == network_to_dict(network)


def test_dict_is_json_serializable(network):
    payload = json.dumps(network_to_dict(network))
    assert "authority_floor" in payload


def test_deterministic_output(network):
    assert network_to_dict(network) == network_to_dict(network)


def test_unknown_version_rejected(network):
    data = network_to_dict(network)
    data["version"] = 99
    with pytest.raises(ValueError, match="version"):
        network_from_dict(data)


def test_defaults_for_optional_fields():
    data = {
        "version": 1,
        "experts": [{"id": "x"}],
        "edges": [],
    }
    net = network_from_dict(data)
    assert net.expert("x").h_index == 1.0
    assert net.expert("x").skills == frozenset()


def test_schema_v1_payload_still_loads_as_version_zero(network):
    data = network_to_dict(network)
    data["version"] = 1
    for key in ("network_version", "journal", "journal_floor"):
        data.pop(key)
    clone = network_from_dict(data)
    assert clone.version == 0
    assert clone.journal_tail() == ()


def test_mutation_history_round_trips(network):
    network.add_expert(Expert("d", skills={"ml"}, h_index=2))
    network.add_collaboration("d", "a", weight=0.5)
    network.add_collaboration("a", "b", weight=0.1)  # reweight
    network.remove_collaboration("b", "c")
    network.update_h_index("d", 5)
    clone = network_from_dict(network_to_dict(network))
    assert clone.version == network.version == 5
    assert clone.journal_tail() == network.journal_tail()
    assert clone.mutations_since(2) == network.mutations_since(2)
    # and the restored journal keeps extending from where it left off
    clone.update_skills("d", {"viz"})
    assert clone.version == 6


def test_iteration_order_round_trips_exactly(network):
    """Expert and adjacency iteration orders are semantic (solver
    tie-breaks); the round trip must preserve them, not just the sets."""
    network.add_expert(Expert("d", skills={"ml"}))
    network.add_collaboration("d", "b", weight=0.9)
    clone = network_from_dict(network_to_dict(network))
    assert list(clone.expert_ids()) == list(network.expert_ids())
    for node in network.graph.nodes():
        assert list(clone.graph.neighbors(node).items()) == list(
            network.graph.neighbors(node).items()
        )


def test_tampered_journal_rejected(network):
    network.add_collaboration("a", "b", weight=0.5)
    data = network_to_dict(network)
    data["journal"][0]["version"] = 40  # no longer the contiguous tail
    with pytest.raises(ValueError, match="contiguous tail"):
        network_from_dict(data)
    data = network_to_dict(network)
    data["journal"][0]["bogus_field"] = 1
    with pytest.raises(ValueError, match="unknown journal fields"):
        network_from_dict(data)


def test_edges_in_replay_order_rebuilds_adjacency_exactly():
    import random

    from repro.graph.adjacency import Graph

    rng = random.Random(5)
    graph = Graph()
    nodes = [f"n{i}" for i in range(12)]
    for node in nodes:
        graph.add_node(node)
    for _ in range(40):
        u, v = rng.sample(nodes, 2)
        graph.add_edge(u, v, weight=rng.random())
    replayed = Graph()
    for node in graph.nodes():
        replayed.add_node(node)
    for u, v, w in graph.edges_in_replay_order():
        replayed.add_edge(u, v, weight=w)
    assert list(replayed.nodes()) == list(graph.nodes())
    for node in graph.nodes():
        assert list(replayed.neighbors(node).items()) == list(
            graph.neighbors(node).items()
        )
