"""Unit tests for network JSON serialization."""

import json

import pytest

from repro.expertise import (
    Expert,
    ExpertNetwork,
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)


@pytest.fixture()
def network():
    experts = [
        Expert("a", name="Ada", skills={"ml", "db"}, h_index=7,
               num_publications=12, papers={"p1", "p2"}),
        Expert("b", skills={"viz"}, h_index=0),
        Expert("c", h_index=30),
    ]
    return ExpertNetwork(
        experts,
        edges=[("a", "b", 0.25), ("b", "c", 0.75)],
        authority_floor=0.4,
    )


def test_roundtrip_dict(network):
    clone = network_from_dict(network_to_dict(network))
    assert set(clone.expert_ids()) == set(network.expert_ids())
    assert clone.expert("a") == network.expert("a")
    assert clone.communication_cost("a", "b") == pytest.approx(0.25)
    assert clone.authority_floor == pytest.approx(0.4)
    assert clone.experts_with_skill("ml") == {"a"}


def test_roundtrip_file(network, tmp_path):
    path = tmp_path / "net.json"
    save_network(network, path)
    clone = load_network(path)
    assert network_to_dict(clone) == network_to_dict(network)


def test_dict_is_json_serializable(network):
    payload = json.dumps(network_to_dict(network))
    assert "authority_floor" in payload


def test_deterministic_output(network):
    assert network_to_dict(network) == network_to_dict(network)


def test_unknown_version_rejected(network):
    data = network_to_dict(network)
    data["version"] = 99
    with pytest.raises(ValueError, match="version"):
        network_from_dict(data)


def test_defaults_for_optional_fields():
    data = {
        "version": 1,
        "experts": [{"id": "x"}],
        "edges": [],
    }
    net = network_from_dict(data)
    assert net.expert("x").h_index == 1.0
    assert net.expert("x").skills == frozenset()
