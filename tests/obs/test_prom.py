"""Prometheus text exposition over a registry snapshot.

What a scraper actually parses: ``# TYPE`` lines, counter/gauge
samples, and summary quantiles with ``_count`` / ``_sum`` / ``_max``
companions.  The renderer is pure string formatting over the
``MetricsRegistry.snapshot()`` dict, so these tests drive it with both
real registries and hand-built snapshots.
"""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, render_prometheus


def test_empty_snapshot_renders_empty():
    assert render_prometheus(MetricsRegistry().snapshot()) == ""
    assert render_prometheus({}) == ""


def test_counters_and_gauges_render_with_types():
    registry = MetricsRegistry()
    registry.counter("requests_received").inc(5)
    registry.gauge("pending").set(2)
    text = render_prometheus(registry.snapshot())
    assert "# TYPE repro_requests_received counter\n" in text
    assert "repro_requests_received 5\n" in text
    assert "# TYPE repro_pending gauge\n" in text
    assert "repro_pending 2\n" in text
    assert text.endswith("\n")


def test_latency_summary_has_quantiles_count_sum_max():
    registry = MetricsRegistry()
    reservoir = registry.reservoir("request")
    for ms in (1, 2, 3, 4):
        reservoir.observe(ms / 1e3)
    text = render_prometheus(registry.snapshot())
    assert "# TYPE repro_request_ms summary\n" in text
    assert 'repro_request_ms{quantile="0.5"}' in text
    assert 'repro_request_ms{quantile="0.95"}' in text
    assert 'repro_request_ms{quantile="0.99"}' in text
    assert "repro_request_ms_count 4\n" in text
    assert "repro_request_ms_max 4\n" in text
    # _sum reconstructs from mean * count (the snapshot carries means).
    sum_line = next(
        line for line in text.splitlines()
        if line.startswith("repro_request_ms_sum ")
    )
    assert float(sum_line.split()[1]) == pytest.approx(10.0)


def test_metric_names_are_sanitized():
    snapshot = {"counters": {"pool depth/r0": 1, "9lives": 2}}
    text = render_prometheus(snapshot)
    assert "repro_pool_depth_r0 1\n" in text
    assert "repro__9lives 2\n" in text  # leading digit guarded


def test_prefix_is_configurable_and_output_sorted():
    snapshot = {"counters": {"b": 2, "a": 1}}
    text = render_prometheus(snapshot, prefix="teams")
    lines = [l for l in text.splitlines() if not l.startswith("#")]
    assert lines == ["teams_a 1", "teams_b 2"]


def test_float_counter_values_render_as_floats():
    snapshot = {"counters": {"kernel_seconds_numpy": 0.125}}
    text = render_prometheus(snapshot)
    assert "repro_kernel_seconds_numpy 0.125\n" in text
