"""Tracing must never change what a response *is*.

The identity contract this PR pins: span trees ride exclusively in
``TimingInfo.trace``, which ``canonical_json()`` nulls along with the
rest of timing — so a traced solve and an untraced solve of the same
request produce byte-identical canonical JSON, and an untraced
response's wire bytes are unchanged from before tracing existed (no
``"trace"`` key appears unless a tree was attached).
"""

from __future__ import annotations

import json

from repro.api import TeamFormationEngine, TeamRequest
from repro.api.messages import TeamResponse, TimingInfo
from repro.obs import get_tracer

from ..api.conftest import PROJECT, build_figure1_network

GREEDY = TeamRequest(skills=PROJECT, solver="greedy")


def test_untraced_timing_serializes_without_a_trace_key():
    timing = TimingInfo(solve_seconds=0.25, oracle_builds=1)
    assert "trace" not in timing.to_dict()
    # And the round trip tolerates both shapes.
    assert TimingInfo.from_dict(timing.to_dict()).trace is None
    traced = TimingInfo(solve_seconds=0.25, oracle_builds=1, trace={"id": 1})
    assert traced.to_dict()["trace"] == {"id": 1}
    assert TimingInfo.from_dict(traced.to_dict()).trace == {"id": 1}


def test_with_trace_is_a_noop_without_a_tree_or_timing():
    engine = TeamFormationEngine(build_figure1_network())
    response = engine.solve(GREEDY)
    assert response.with_trace(None) is response
    stripped = TeamResponse.from_dict(
        {**response.to_dict(), "timing": None}
    )
    assert stripped.with_trace({"id": 1}) is stripped


def test_enabled_tracer_attaches_a_tree_and_canonical_bytes_match():
    untraced_engine = TeamFormationEngine(build_figure1_network())
    untraced = untraced_engine.solve(GREEDY)
    assert untraced.timing.trace is None

    tracer = get_tracer()
    traced_engine = TeamFormationEngine(build_figure1_network())
    tracer.enable()
    try:
        traced = traced_engine.solve(GREEDY)
    finally:
        tracer.disable()
        tracer.clear()

    tree = traced.timing.trace
    assert tree is not None and tree["name"] == "engine.solve"
    names = {tree["name"]}
    stack = list(tree.get("children", ()))
    while stack:
        node = stack.pop()
        names.add(node["name"])
        stack.extend(node.get("children", ()))
    assert {"engine.solve", "engine.oracle", "pll.query"} <= names

    # The tree rides in timing and nowhere else: canonical form (which
    # nulls timing) is byte-identical traced vs untraced...
    assert traced.canonical_json() == untraced.canonical_json()
    # ...and the wire form differs from untraced *only* inside timing.
    traced_wire = json.loads(traced.to_json())
    untraced_wire = json.loads(untraced.to_json())
    traced_wire["timing"] = untraced_wire["timing"] = None
    assert traced_wire == untraced_wire
