"""The span/trace API: propagation, determinism, and its bounds.

The contracts the instrumentation layers rely on:

* contextvar propagation — a span opened inside another span's ``with``
  block becomes its child, across ``await`` points and (via
  :meth:`Tracer.run`) across thread hops;
* deterministic ids — the root is span 1 and children number in
  creation order, so two traces of the same request shape compare
  structurally equal;
* bounded everything — at most ``MAX_CHILDREN`` recorded children per
  span and ``MAX_TRACES`` retained traces, so tracing can stay on in a
  long-lived server;
* near-zero cost when off — a disabled tracer hands out one shared
  no-op span.
"""

from __future__ import annotations

import threading

from repro.obs.trace import MAX_CHILDREN, MAX_TRACES, Tracer, current_span


def test_disabled_tracer_hands_out_the_shared_noop():
    tracer = Tracer()
    first = tracer.span("engine.solve")
    second = tracer.span("engine.oracle")
    assert first is second  # the shared no-op
    assert not first.is_recording
    with first as span:
        # The no-op never becomes the current span, so instrumented
        # code below it still sees "no trace active".
        assert current_span() is None
        span.set_attribute("ignored", 1)
    assert tracer.recent() == []


def test_nesting_builds_a_tree_with_deterministic_ids():
    tracer = Tracer()
    tracer.enable()
    with tracer.span("request") as root:
        with tracer.span("engine.solve", solver="greedy") as solve:
            with tracer.span("engine.oracle") as oracle:
                assert current_span() is oracle
            with tracer.span("pll.query"):
                pass
        assert current_span() is root
    assert root.is_root and root.is_recording
    assert [c.name for c in root.children] == ["engine.solve"]
    assert [c.name for c in solve.children] == ["engine.oracle", "pll.query"]
    # Root is 1; descendants number in creation order.
    assert root.span_id == 1
    assert solve.span_id == 2
    assert [c.span_id for c in solve.children] == [3, 4]
    tree = root.to_dict()
    assert tree["trace_id"] == root.trace_id
    assert tree["children"][0]["attrs"] == {"solver": "greedy"}


def test_trace_ids_are_sequential_and_spans_retained_in_order():
    tracer = Tracer()
    first = tracer.trace("request")
    second = tracer.trace("request")
    assert (first.trace_id, second.trace_id) == ("t1", "t2")
    with second:
        pass
    with first:
        pass
    assert [s.trace_id for s in tracer.recent()] == ["t2", "t1"]


def test_trace_records_even_when_disabled():
    tracer = Tracer()
    assert not tracer.enabled
    with tracer.trace("request") as root:
        with tracer.span("engine.solve"):
            pass
    # The server's --slow-ms path: explicit traces always record, so
    # the slow-query log works without globally enabling tracing.
    assert [c.name for c in root.children] == ["engine.solve"]
    assert tracer.recent() == [root]


def test_child_cap_drops_excess_and_counts_them():
    tracer = Tracer()
    with tracer.trace("request") as root:
        for i in range(MAX_CHILDREN + 10):
            with tracer.span(f"query-{i}"):
                pass
    assert len(root.children) == MAX_CHILDREN
    assert root.dropped == 10
    assert root.to_dict()["dropped"] == 10


def test_children_of_a_dropped_span_are_dropped_too():
    tracer = Tracer()
    with tracer.trace("request") as root:
        for i in range(MAX_CHILDREN):
            with tracer.span(f"filler-{i}"):
                pass
        with tracer.span("over-cap"):
            # The no-op did not become current, so this nests under the
            # real root — whose cap drops it as well.
            with tracer.span("grandchild"):
                pass
    assert len(root.children) == MAX_CHILDREN
    assert root.dropped == 2
    assert all(not c.children for c in root.children)


def test_trace_buffer_is_bounded():
    tracer = Tracer()
    for i in range(MAX_TRACES + 7):
        with tracer.trace(f"request-{i}"):
            pass
    recent = tracer.recent()
    assert len(recent) == MAX_TRACES
    assert recent[0].name == "request-7"  # oldest overflow evicted
    tracer.clear()
    assert tracer.recent() == []


def test_run_reparents_work_done_in_another_thread():
    tracer = Tracer()
    root = tracer.trace("request").start()

    def solve() -> None:
        # The executor hop: the loop's context did not follow us here,
        # but tracer.run installed `root` as current for this call.
        with tracer.span("engine.solve"):
            pass

    thread = threading.Thread(target=tracer.run, args=(root, solve))
    thread.start()
    thread.join()
    root.finish()
    assert [c.name for c in root.children] == ["engine.solve"]
    # And the worker thread's contextvar was reset on the way out.
    assert current_span() is None


def test_record_attaches_a_premeasured_child():
    tracer = Tracer()
    with tracer.trace("request") as root:
        tracer.record("pll.query", 0.25, kernel="numpy", targets=64)
    child = root.children[0]
    assert child.name == "pll.query"
    assert child.wall_ms == 250.0
    assert child.attributes == {"kernel": "numpy", "targets": 64}
    # Without an active span, record() is a no-op (the kernel hot path
    # outside any trace pays nothing for span bookkeeping).
    tracer.record("pll.query", 0.5)
    assert len(root.children) == 1


def test_span_timings_are_positive_and_finish_is_idempotent():
    tracer = Tracer()
    with tracer.trace("request") as root:
        for _ in range(1000):
            pass
    first = root.wall_ms
    assert first >= 0.0
    root.finish()  # idempotent: does not re-measure or re-retain
    assert root.wall_ms == first
    assert tracer.recent() == [root]
