"""Unit tests for corpus -> expert-network building (Section 4 methodology)."""

import pytest

from repro.dblp import (
    Corpus,
    Paper,
    SyntheticDblpConfig,
    build_expert_network,
    junior_skills,
    synthetic_corpus,
)
from repro.graph import is_connected


def _paper(pid, title, authors, citations=0):
    return Paper(id=pid, title=title, authors=tuple(authors), year=2014, venue="V")


@pytest.fixture()
def handmade_corpus():
    c = Corpus()
    # junior: 3 papers, "graph" occurs in 2 titles -> skill
    c.add_paper(_paper("p1", "Graph Mining Basics", ["junior", "senior"]), citations=2)
    c.add_paper(_paper("p2", "Graph Kernels", ["junior", "senior"]), citations=1)
    c.add_paper(_paper("p3", "Stream Joins", ["junior"]), citations=0)
    # senior: many papers (>= 10) -> no skills
    for i in range(12):
        c.add_paper(
            _paper(f"s{i}", "Deep Graph Networks", ["senior"]), citations=30
        )
    return c


def test_junior_skills_rule():
    titles = ["Graph Mining", "Graph Kernels", "Stream Joins"]
    skills = junior_skills(titles)
    assert "graph" in skills
    assert "mining" not in skills  # occurs once only
    assert junior_skills(titles, min_term_occurrences=1) >= skills


def test_junior_gets_skills_senior_does_not(handmade_corpus):
    net = build_expert_network(handmade_corpus)
    assert "graph" in net.skills_of("junior")
    assert net.skills_of("senior") == frozenset()


def test_h_index_from_citations(handmade_corpus):
    net = build_expert_network(handmade_corpus)
    # junior: citations [2, 1, 0] -> h = 1
    assert net.authority("junior") == 1.0
    assert net.authority("senior") > net.authority("junior")


def test_num_publications(handmade_corpus):
    net = build_expert_network(handmade_corpus)
    assert net.expert("junior").num_publications == 3
    assert net.expert("senior").num_publications == 14


def test_edges_are_jaccard_distances(handmade_corpus):
    net = build_expert_network(handmade_corpus)
    # |shared| = 2 (p1, p2); |union| = 3 + 14 - 2 = 15 -> distance 13/15
    assert net.communication_cost("junior", "senior") == pytest.approx(13 / 15)


def test_junior_cutoff_parameter(handmade_corpus):
    net = build_expert_network(handmade_corpus, junior_max_papers=2)
    # with the stricter cutoff the 3-paper author is no longer junior
    assert net.skills_of("junior") == frozenset()


def test_validation_of_parameters(handmade_corpus):
    with pytest.raises(ValueError):
        build_expert_network(handmade_corpus, junior_max_papers=0)
    with pytest.raises(ValueError):
        build_expert_network(handmade_corpus, min_term_occurrences=0)


def test_largest_component_restriction():
    c = Corpus()
    c.add_paper(_paper("p1", "Graph Mining", ["a", "b"]))
    c.add_paper(_paper("p2", "Graph Mining", ["a", "b"]))
    c.add_paper(_paper("q1", "Logic Proofs", ["x"]))  # isolated author
    full = build_expert_network(c, restrict_to_largest_component=False)
    assert len(full) == 3
    restricted = build_expert_network(c)
    assert len(restricted) == 2


def test_end_to_end_network_is_consistent():
    corpus = synthetic_corpus(SyntheticDblpConfig(num_groups=5), seed=3)
    net = build_expert_network(corpus)
    net.validate()
    assert is_connected(net.graph)
    assert net.skill_index.num_skills > 0
    # all edge weights are Jaccard distances in (0, 1]
    assert all(0.0 < w <= 1.0 for _, _, w in net.graph.edges())
