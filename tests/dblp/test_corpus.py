"""Unit tests for corpus records and derived views."""

import pytest

from repro.dblp import Corpus, Paper, Venue


@pytest.fixture()
def corpus():
    c = Corpus()
    c.add_venue(Venue("KDD", rating=9.0))
    c.add_venue(Venue("WS", rating=2.0))
    c.add_paper(
        Paper(
            id="p1",
            title="Graph Mining",
            authors=("alice", "bob"),
            year=2014,
            venue="KDD",
        ),
        citations=12,
    )
    c.add_paper(
        Paper(
            id="p2",
            title="Stream Mining",
            authors=("alice",),
            year=2015,
            venue="WS",
        ),
        citations=3,
    )
    c.add_paper(
        Paper(
            id="p3",
            title="Deep Graphs",
            authors=("bob", "carol"),
            year=2015,
            venue="KDD",
        ),
    )
    return c


def test_paper_validation():
    with pytest.raises(ValueError):
        Paper(id="", title="t", authors=("a",))
    with pytest.raises(ValueError):
        Paper(id="x", title="t", authors=())


def test_venue_validation():
    with pytest.raises(ValueError):
        Venue("bad", rating=-1.0)


def test_authors_view(corpus):
    assert corpus.authors() == {"alice", "bob", "carol"}


def test_papers_of(corpus):
    by_author = corpus.papers_of()
    assert {p.id for p in by_author["alice"]} == {"p1", "p2"}
    assert {p.id for p in by_author["carol"]} == {"p3"}


def test_citation_profile(corpus):
    papers = corpus.papers_of()["alice"]
    assert sorted(corpus.citation_profile(papers)) == [3, 12]
    # unknown citation defaults to 0
    assert corpus.citation_profile([corpus.papers[2]]) == [0]


def test_coauthor_pairs(corpus):
    assert corpus.coauthor_pairs() == {("alice", "bob"), ("bob", "carol")}


def test_venue_rating_default(corpus):
    assert corpus.venue_rating("KDD") == 9.0
    assert corpus.venue_rating("unknown", default=1.5) == 1.5


def test_num_papers(corpus):
    assert corpus.num_papers == 3
