"""Unit tests for the DBLP XML streaming parser."""

import io
import textwrap

from repro.dblp import iter_records, parse_dblp_xml

SAMPLE = textwrap.dedent(
    """\
    <?xml version="1.0" encoding="UTF-8"?>
    <dblp>
    <article key="journals/tkde/SmithJones15" mdate="2016-01-01">
      <author>Alice Smith</author>
      <author>Bob Jones</author>
      <title>Mining Massive Graph Streams</title>
      <year>2015</year>
      <journal>TKDE</journal>
    </article>
    <inproceedings key="conf/kdd/Wu16">
      <author>Carol Wu</author>
      <title>Deep Ranking for Search</title>
      <year>2016</year>
      <booktitle>KDD</booktitle>
    </inproceedings>
    <proceedings key="conf/kdd/2016">
      <title>Proceedings of KDD 2016</title>
      <year>2016</year>
    </proceedings>
    <phdthesis key="phd/Lee14">
      <author>Dan Lee</author>
      <title>Graph Algorithms</title>
      <year>2014</year>
    </phdthesis>
    </dblp>
    """
)


def test_iter_records_yields_papers_with_keys():
    papers = list(iter_records(io.StringIO(SAMPLE)))
    ids = [p.id for p in papers]
    assert "journals/tkde/SmithJones15" in ids
    assert "conf/kdd/Wu16" in ids


def test_authorless_records_skipped():
    papers = list(iter_records(io.StringIO(SAMPLE)))
    assert all(p.authors for p in papers)
    assert "conf/kdd/2016" not in [p.id for p in papers]


def test_fields_extracted():
    papers = {p.id: p for p in iter_records(io.StringIO(SAMPLE))}
    article = papers["journals/tkde/SmithJones15"]
    assert article.authors == ("Alice Smith", "Bob Jones")
    assert article.year == 2015
    assert article.venue == "TKDE"
    inproc = papers["conf/kdd/Wu16"]
    assert inproc.venue == "KDD"


def test_max_year_cutoff():
    corpus = parse_dblp_xml(io.StringIO(SAMPLE), max_year=2015)
    ids = {p.id for p in corpus.papers}
    assert "conf/kdd/Wu16" not in ids  # 2016 paper dropped
    assert "journals/tkde/SmithJones15" in ids


def test_unknown_entities_tolerated():
    xml = (
        "<dblp><article key='k'><author>J&ouml;rg M&uuml;ller</author>"
        "<title>Queries &amp; Answers</title><year>2010</year>"
        "<journal>X</journal></article></dblp>"
    )
    papers = list(iter_records(io.StringIO(xml)))
    assert len(papers) == 1
    # built-in entity preserved, DTD entity degraded to bare name
    assert papers[0].title == "Queries & Answers"
    assert "rg M" in papers[0].authors[0]


def test_parse_from_file(tmp_path):
    path = tmp_path / "dblp.xml"
    path.write_text(SAMPLE, encoding="utf-8")
    corpus = parse_dblp_xml(path)
    assert corpus.num_papers == 3  # article + inproceedings + phdthesis


def test_record_tag_filter():
    papers = list(
        iter_records(io.StringIO(SAMPLE), record_tags=frozenset({"article"}))
    )
    assert [p.id for p in papers] == ["journals/tkde/SmithJones15"]


def test_nested_title_markup():
    xml = (
        "<dblp><article key='k'><author>A</author>"
        "<title>On <i>Fast</i> Joins</title><year>2012</year>"
        "<journal>J</journal></article></dblp>"
    )
    papers = list(iter_records(io.StringIO(xml)))
    assert papers[0].title == "On Fast Joins"
