"""Test package (enables relative conftest imports)."""
