"""Unit + round-trip tests for the DBLP XML writer."""

import io

import pytest

from repro.dblp import (
    Corpus,
    Paper,
    SyntheticDblpConfig,
    corpus_to_xml,
    parse_dblp_xml,
    synthetic_corpus,
    write_dblp_xml,
)


@pytest.fixture()
def corpus():
    c = Corpus()
    c.add_paper(
        Paper(
            id="journals/x/One15",
            title="Graphs & Streams <fast>",
            authors=("Alice", "Bob"),
            year=2015,
            venue="TKDE",
        )
    )
    c.add_paper(
        Paper(
            id="conf/kdd/Two16",
            title="Deep Ranking",
            authors=("Carol",),
            year=2016,
            venue="KDD",
        )
    )
    return c


def test_escapes_special_characters(corpus):
    xml = corpus_to_xml(corpus)
    assert "&amp;" in xml and "&lt;fast&gt;" in xml
    assert "<dblp>" in xml and "</dblp>" in xml


def test_conference_records_use_booktitle(corpus):
    xml = corpus_to_xml(corpus)
    assert "<booktitle>KDD</booktitle>" in xml
    assert "<journal>TKDE</journal>" in xml


def test_roundtrip_through_parser(corpus):
    parsed = parse_dblp_xml(io.StringIO(corpus_to_xml(corpus)))
    assert parsed.num_papers == corpus.num_papers
    for original, rebuilt in zip(corpus.papers, parsed.papers):
        assert rebuilt.id == original.id
        assert rebuilt.title == original.title
        assert rebuilt.authors == original.authors
        assert rebuilt.year == original.year
        assert rebuilt.venue == original.venue


def test_roundtrip_synthetic_corpus():
    corpus = synthetic_corpus(SyntheticDblpConfig(num_groups=3), seed=4)
    parsed = parse_dblp_xml(io.StringIO(corpus_to_xml(corpus)))
    assert parsed.num_papers == corpus.num_papers
    assert parsed.authors() == corpus.authors()
    assert parsed.coauthor_pairs() == corpus.coauthor_pairs()


def test_write_to_file(corpus, tmp_path):
    path = tmp_path / "dump.xml"
    write_dblp_xml(corpus, path)
    parsed = parse_dblp_xml(path)
    assert parsed.num_papers == 2
