"""Unit tests for the synthetic DBLP corpus generator."""

import pytest

from repro.dblp import SyntheticDblpConfig, synthetic_corpus, topic_vocabulary


@pytest.fixture(scope="module")
def corpus():
    return synthetic_corpus(SyntheticDblpConfig(num_groups=8), seed=5)


def test_reproducible_for_same_seed():
    a = synthetic_corpus(SyntheticDblpConfig(num_groups=4), seed=9)
    b = synthetic_corpus(SyntheticDblpConfig(num_groups=4), seed=9)
    assert [p.id for p in a.papers] == [p.id for p in b.papers]
    assert [p.title for p in a.papers] == [p.title for p in b.papers]


def test_different_seeds_differ():
    a = synthetic_corpus(SyntheticDblpConfig(num_groups=4), seed=1)
    b = synthetic_corpus(SyntheticDblpConfig(num_groups=4), seed=2)
    assert [p.title for p in a.papers] != [p.title for p in b.papers]


def test_every_paper_has_authors_and_venue(corpus):
    for paper in corpus.papers:
        assert paper.authors
        assert paper.venue in corpus.venues
        assert 2001 <= paper.year <= 2015


def test_seniors_publish_more(corpus):
    by_author = corpus.papers_of()
    senior_counts = [
        len(papers) for a, papers in by_author.items() if "senior" in a
    ]
    junior_counts = [
        len(papers) for a, papers in by_author.items() if "junior" in a
    ]
    assert min(senior_counts) >= 10
    assert sum(senior_counts) / len(senior_counts) > sum(junior_counts) / len(
        junior_counts
    )


def test_citations_favor_seniors(corpus):
    by_author = corpus.papers_of()
    def mean_citations(selector):
        vals = [
            corpus.citations.get(p.id, 0)
            for a, papers in by_author.items()
            if selector in a
            for p in papers
        ]
        return sum(vals) / len(vals)
    assert mean_citations("senior") > mean_citations("junior")


def test_venue_ratings_positive_and_skewed(corpus):
    ratings = sorted(v.rating for v in corpus.venues.values())
    assert all(r >= 1.0 for r in ratings)
    assert ratings[-1] > ratings[0]


def test_topic_vocabulary_disjoint_terms():
    topics = topic_vocabulary(12, 5)
    assert len(topics) == 12
    flat = [t for topic in topics for t in topic]
    assert len(flat) == len(set(flat))


def test_config_validation():
    with pytest.raises(ValueError):
        SyntheticDblpConfig(papers_per_junior=(5, 2))
    with pytest.raises(ValueError):
        SyntheticDblpConfig(topics_per_group=99)
    with pytest.raises(ValueError):
        SyntheticDblpConfig(cross_group_prob=1.5)
