"""Unit tests for title tokenization and term extraction."""

from repro.dblp import STOPWORDS, extract_terms, tokenize


def test_tokenize_lowercases_and_splits():
    assert tokenize("Mining Graph-Streams!") == ["mining", "graph", "streams"]


def test_tokenize_keeps_repeats():
    assert tokenize("graph graph") == ["graph", "graph"]


def test_tokenize_drops_digits():
    assert "2015" not in tokenize("VLDB 2015 overview")


def test_extract_terms_removes_stopwords():
    terms = extract_terms("Towards a New Approach to Graph Mining")
    assert "graph" in terms and "mining" in terms
    assert "towards" not in terms and "new" not in terms


def test_extract_terms_min_length():
    assert "ml" not in extract_terms("ml at scale")
    assert "scale" in extract_terms("ml at scale")


def test_extract_terms_distinct():
    terms = extract_terms("graph graph graph")
    assert terms == {"graph"}


def test_stopwords_include_generic_title_words():
    for word in ("using", "novel", "model", "analysis", "the"):
        assert word in STOPWORDS


def test_empty_title():
    assert extract_terms("") == set()
    assert tokenize("") == []
