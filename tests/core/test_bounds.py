"""Unit tests for objective lower bounds."""

import random

import pytest

from repro.core import (
    ExactSolver,
    GreedyTeamFinder,
    ObjectiveBounds,
    optimality_gap,
)
from repro.expertise import Expert, ExpertNetwork, SkillCoverageError

from ..conftest import make_random_network


@pytest.fixture()
def network():
    experts = [
        Expert("h1", skills={"s1"}, h_index=2),
        Expert("h1b", skills={"s1"}, h_index=10),
        Expert("h2", skills={"s2"}, h_index=5),
        Expert("multi", skills={"s1", "s2"}, h_index=1),
        Expert("conn", h_index=20),
    ]
    return ExpertNetwork(
        experts,
        edges=[
            ("h1", "conn", 0.5),
            ("conn", "h2", 0.7),
            ("h1b", "conn", 0.9),
            ("multi", "conn", 0.3),
        ],
    )


def test_sa_bound_per_skill(network):
    bounds = ObjectiveBounds(network, gamma=0.6, lam=0.6)
    # best a' per skill: s1 -> h1b (1/10), s2 -> h2 (1/5), normalized by
    # the network max a' (multi: 1/1)
    expected = (0.1 + 0.2) / 1.0
    assert bounds.sa_bound(["s1", "s2"]) == pytest.approx(expected)


def test_sa_bound_distinct_mode(network):
    bounds = ObjectiveBounds(network, sa_mode="distinct")
    assert bounds.sa_bound(["s1", "s2"]) == pytest.approx(0.2)


def test_cc_bound_zero_when_single_expert_covers(network):
    bounds = ObjectiveBounds(network)
    assert bounds.cc_bound(["s1", "s2"]) == 0.0  # 'multi' covers both


def test_cc_bound_positive_when_split_required():
    experts = [
        Expert("a", skills={"x"}, h_index=1),
        Expert("b", skills={"y"}, h_index=1),
    ]
    net = ExpertNetwork(experts, edges=[("a", "b", 0.4)])
    bounds = ObjectiveBounds(net)
    assert bounds.cc_bound(["x", "y"]) > 0.0


def test_bounds_require_coverability(network):
    bounds = ObjectiveBounds(network)
    with pytest.raises(SkillCoverageError):
        bounds.sa_bound(["quantum"])


def test_bound_below_exact_below_greedy():
    for seed in range(5):
        rng = random.Random(seed)
        net = make_random_network(rng, n=10, p=0.5)
        project = ["a", "b"]
        bounds = ObjectiveBounds(net, gamma=0.6, lam=0.6)
        bound = bounds.sa_ca_cc_bound(project)
        exact = ExactSolver(net, gamma=0.6, lam=0.6).find_team(project)
        greedy = GreedyTeamFinder(
            net, objective="sa-ca-cc", oracle_kind="dijkstra"
        ).find_team(project)
        exact_score = bounds.evaluator.sa_ca_cc(exact)
        greedy_score = bounds.evaluator.sa_ca_cc(greedy)
        assert bound <= exact_score + 1e-9
        assert exact_score <= greedy_score + 1e-9


def test_optimality_gap_nonnegative(network):
    bounds = ObjectiveBounds(network)
    team = GreedyTeamFinder(
        network, objective="sa-ca-cc", oracle_kind="dijkstra"
    ).find_team(["s1", "s2"])
    gap = optimality_gap(bounds, team, ["s1", "s2"])
    assert gap >= 0.0
