"""Unit tests for the RarestFirst baseline."""

import random

import pytest

from repro.core import RarestFirstSolver
from repro.expertise import Expert, ExpertNetwork, SkillCoverageError

from ..conftest import make_random_network


@pytest.fixture()
def network():
    experts = [
        Expert("rare", skills={"unique"}, h_index=2),
        Expert("c1", skills={"common"}, h_index=1),
        Expert("c2", skills={"common"}, h_index=1),
        Expert("mid", h_index=5),
    ]
    return ExpertNetwork(
        experts,
        edges=[
            ("rare", "c1", 0.2),
            ("rare", "mid", 0.5),
            ("mid", "c2", 0.5),
        ],
    )


def test_anchors_on_rarest_skill(network):
    team = RarestFirstSolver(network, oracle_kind="dijkstra").find_team(
        ["unique", "common"]
    )
    assert team.assignments["unique"] == "rare"
    assert team.root == "rare"
    # nearest common holder is c1 at 0.2
    assert team.assignments["common"] == "c1"
    team.validate({"unique", "common"}, network)


def test_anchor_covering_other_skill():
    experts = [
        Expert("multi", skills={"s1", "s2"}, h_index=1),
        Expert("other", skills={"s2"}, h_index=1),
    ]
    net = ExpertNetwork(experts, edges=[("multi", "other", 0.9)])
    team = RarestFirstSolver(net, oracle_kind="dijkstra").find_team(["s1", "s2"])
    assert team.assignments == {"s1": "multi", "s2": "multi"}
    assert team.size == 1


def test_sum_vs_diameter_aggregates():
    rng = random.Random(4)
    net = make_random_network(rng, n=14, p=0.45)
    project = [s for s in ("a", "b") if net.skill_index.is_coverable([s])]
    if len(project) < 2:
        pytest.skip("random network lacks coverage")
    for aggregate in ("diameter", "sum"):
        team = RarestFirstSolver(
            net, aggregate=aggregate, oracle_kind="dijkstra"
        ).find_team(project)
        team.validate(set(project), net)


def test_validation(network):
    with pytest.raises(ValueError):
        RarestFirstSolver(network, aggregate="bogus")
    solver = RarestFirstSolver(network, oracle_kind="dijkstra")
    with pytest.raises(SkillCoverageError):
        solver.find_team(["quantum"])
    with pytest.raises(ValueError):
        solver.find_team([])


def test_unreachable_returns_none():
    experts = [
        Expert("a", skills={"s1"}),
        Expert("b", skills={"s2"}),
    ]
    net = ExpertNetwork(experts)  # no edges at all
    solver = RarestFirstSolver(net, oracle_kind="dijkstra")
    assert solver.find_team(["s1", "s2"]) is None
