"""Unit tests for multi-project portfolio staffing."""

import random

import pytest

from repro.core.multi_project import MultiProjectStaffing

from ..conftest import make_random_network


@pytest.fixture()
def network():
    return make_random_network(random.Random(1), n=20, p=0.35)


def test_teams_are_disjoint(network):
    staffing = MultiProjectStaffing(network)
    result = staffing.staff([["a"], ["b"], ["c"]])
    teams = [a.team for a in result.assignments if a.team is not None]
    assert len(teams) >= 2
    seen: set[str] = set()
    for team in teams:
        assert not (team.members & seen)
        seen |= team.members


def test_assignments_keep_input_order(network):
    staffing = MultiProjectStaffing(network, order="cheapest-first")
    projects = [["a", "b"], ["c"], ["d"]]
    result = staffing.staff(projects)
    assert [list(a.project) for a in result.assignments] == [
        sorted(p) for p in projects
    ]


def test_exhaustion_reported_not_raised(network):
    # demand the same rare skill many times: later projects must fail
    staffing = MultiProjectStaffing(network)
    result = staffing.staff([["a"]] * 10)
    assert result.num_staffed >= 1
    failures = [a for a in result.assignments if not a.staffed]
    assert failures
    assert all(a.failure for a in failures)


def test_uncoverable_project_fails_gracefully(network):
    result = MultiProjectStaffing(network).staff([["quantum"]])
    assert result.num_staffed == 0
    assert result.assignments[0].failure == "required skills exhausted"


def test_total_score_and_committed(network):
    result = MultiProjectStaffing(network).staff([["a"], ["b"]])
    staffed = [a for a in result.assignments if a.staffed]
    assert result.total_score == pytest.approx(sum(a.score for a in staffed))
    committed = result.committed_experts()
    for a in staffed:
        assert a.team.members <= committed


def test_cheapest_first_never_staffs_fewer_on_contended_pool(network):
    projects = [["a", "b", "c"], ["a"], ["b"]]
    arrival = MultiProjectStaffing(network, order="arrival").staff(projects)
    cheapest = MultiProjectStaffing(network, order="cheapest-first").staff(projects)
    assert cheapest.num_staffed >= arrival.num_staffed - 1


def test_each_team_valid_for_its_project(network):
    result = MultiProjectStaffing(network).staff([["a", "b"], ["c", "d"]])
    for assignment in result.assignments:
        if assignment.team is not None:
            assignment.team.validate(set(assignment.project), network)


def test_invalid_order(network):
    with pytest.raises(ValueError):
        MultiProjectStaffing(network, order="bogus")  # type: ignore[arg-type]
