"""Unit tests for the Team object and Definition 1 validation."""

import pytest

from repro.core import Team, TeamValidationError
from repro.expertise import Expert, ExpertNetwork
from repro.graph import Graph


@pytest.fixture()
def network():
    experts = [
        Expert("a", skills={"ml"}, h_index=3),
        Expert("b", h_index=9),
        Expert("c", skills={"db"}, h_index=2),
    ]
    return ExpertNetwork(experts, edges=[("a", "b", 0.5), ("b", "c", 0.5)])


@pytest.fixture()
def team(network):
    tree = Graph.from_edges([("a", "b", 0.5), ("b", "c", 0.5)])
    return Team(tree=tree, assignments={"ml": "a", "db": "c"}, root="b")


def test_membership_views(team):
    assert team.members == {"a", "b", "c"}
    assert team.skill_holders == {"a", "c"}
    assert team.connectors == {"b"}
    assert team.size == 3
    assert team.holder_of("ml") == "a"


def test_same_expert_covering_two_skills():
    tree = Graph()
    tree.add_node("a")
    t = Team(tree=tree, assignments={"ml": "a", "db": "a"})
    assert t.skill_holders == {"a"}
    assert t.connectors == frozenset()


def test_key_dedupes_on_members_and_assignment(team, network):
    other = Team(
        tree=network.graph.subgraph({"a", "b", "c"}),
        assignments={"ml": "a", "db": "c"},
        root="a",
    )
    assert team.key() == other.key()


def test_empty_team_rejected():
    with pytest.raises(TeamValidationError):
        Team(tree=Graph(), assignments={})


def test_validate_passes(team, network):
    team.validate({"ml", "db"}, network)


def test_validate_missing_skill(team, network):
    with pytest.raises(TeamValidationError, match="unassigned"):
        team.validate({"ml", "db", "viz"}, network)


def test_validate_assignee_outside_team(network):
    tree = Graph.from_edges([("a", "b", 0.5)])
    t = Team(tree=tree, assignments={"ml": "a", "db": "c"})
    with pytest.raises(TeamValidationError, match="outside"):
        t.validate({"ml", "db"}, network)


def test_validate_disconnected_tree(network):
    tree = Graph()
    tree.add_node("a")
    tree.add_node("c")
    t = Team(tree=tree, assignments={"ml": "a", "db": "c"})
    with pytest.raises(TeamValidationError, match="connected"):
        t.validate({"ml", "db"}, network)


def test_validate_wrong_holder(network):
    tree = Graph.from_edges([("a", "b", 0.5)])
    t = Team(tree=tree, assignments={"db": "a", "ml": "b"})
    with pytest.raises(TeamValidationError, match="does not hold"):
        t.validate({"db", "ml"}, network)


def test_validate_edge_not_in_network(network):
    tree = Graph.from_edges([("a", "c", 0.5)])  # no such edge in network
    t = Team(tree=tree, assignments={"ml": "a", "db": "c"})
    with pytest.raises(TeamValidationError, match="missing"):
        t.validate({"ml", "db"}, network)


def test_validate_wrong_weight(network):
    tree = Graph.from_edges([("a", "b", 0.7)])  # network says 0.5
    t = Team(tree=tree, assignments={"ml": "a"})
    with pytest.raises(TeamValidationError, match="weight"):
        t.validate({"ml"}, network)
