"""Unit and semantic tests for Algorithm 1 (GreedyTeamFinder)."""

import random

import pytest

from repro.core import GreedyTeamFinder, TeamEvaluator
from repro.expertise import Expert, ExpertNetwork, SkillCoverageError

from ..conftest import make_random_network


@pytest.fixture()
def line_network():
    """holder(s1) - cheap connector - holder(s2), plus expensive shortcut."""
    experts = [
        Expert("x", skills={"s1"}, h_index=1),
        Expert("mid", h_index=20),
        Expert("y", skills={"s2"}, h_index=1),
    ]
    return ExpertNetwork(
        experts,
        edges=[("x", "mid", 0.2), ("mid", "y", 0.2), ("x", "y", 1.0)],
    )


def test_cc_mode_picks_cheapest_structure(line_network):
    finder = GreedyTeamFinder(line_network, objective="cc", oracle_kind="dijkstra")
    team = finder.find_team(["s1", "s2"])
    team.validate({"s1", "s2"}, line_network)
    assert team.members == {"x", "mid", "y"}  # 0.4 via mid beats 1.0 direct


def test_uncoverable_project_raises(line_network):
    finder = GreedyTeamFinder(line_network, objective="cc", oracle_kind="dijkstra")
    with pytest.raises(SkillCoverageError):
        finder.find_team(["s1", "quantum"])


def test_empty_project_rejected(line_network):
    finder = GreedyTeamFinder(line_network, oracle_kind="dijkstra")
    with pytest.raises(ValueError):
        finder.find_team([])
    with pytest.raises(ValueError):
        finder.find_top_k(["s1"], k=0)


def test_unknown_objective(line_network):
    with pytest.raises(ValueError):
        GreedyTeamFinder(line_network, objective="bogus")


def test_unknown_root_candidates(line_network):
    with pytest.raises(KeyError):
        GreedyTeamFinder(
            line_network, oracle_kind="dijkstra", root_candidates=["ghost"]
        )


def test_figure1_cc_cannot_distinguish_but_authority_can(figure1_network):
    """The paper's motivating example: with equal edge weights CC is
    indifferent between team (a) and team (b); CA-CC must pick (a),
    whose connector (Han, h=139) dwarfs (b)'s (Lappas, h=12)."""
    project = ["SN", "TM"]
    evaluator = TeamEvaluator(figure1_network, gamma=0.6, lam=0.6)

    cacc = GreedyTeamFinder(
        figure1_network, objective="ca-cc", gamma=0.6, oracle_kind="dijkstra"
    )
    team = cacc.find_team(project)
    assert "han" in team.members
    assert team.skill_holders == {"liu", "ren"}

    sacacc = GreedyTeamFinder(
        figure1_network, objective="sa-ca-cc", gamma=0.6, lam=0.6,
        oracle_kind="dijkstra",
    )
    team_sa = sacacc.find_team(project)
    assert "han" in team_sa.members

    # CC picks *some* 3-node path; both teams cost 2.0, so we only check
    # the authority-aware score relation between the two candidates.
    team_a = cacc.team_from_root("han", project)
    team_b_finder = GreedyTeamFinder(
        figure1_network, objective="cc", oracle_kind="dijkstra"
    )
    team_b = team_b_finder.team_from_root("lappas", project)
    assert evaluator.cc(team_a) == pytest.approx(evaluator.cc(team_b))
    assert evaluator.sa_ca_cc(team_a) < evaluator.sa_ca_cc(team_b)


def test_root_holding_skill_assigned_at_zero(line_network):
    finder = GreedyTeamFinder(
        line_network, objective="sa-ca-cc", oracle_kind="dijkstra"
    )
    team = finder.team_from_root("x", ["s1", "s2"])
    assert team.assignments["s1"] == "x"
    assert team.root == "x"


def test_team_from_root_unreachable_returns_none():
    experts = [
        Expert("a", skills={"s1"}),
        Expert("b", skills={"s2"}),
        Expert("c"),
    ]
    net = ExpertNetwork(experts, edges=[("a", "c", 1.0)])  # b isolated
    finder = GreedyTeamFinder(net, objective="cc", oracle_kind="dijkstra")
    assert finder.team_from_root("a", ["s1", "s2"]) is None


def test_top_k_distinct_and_sorted():
    rng = random.Random(8)
    net = make_random_network(rng, n=14, p=0.45)
    project = ["a", "b"]
    if not net.skill_index.is_coverable(project):
        pytest.skip("unlucky sample")
    finder = GreedyTeamFinder(net, objective="sa-ca-cc", oracle_kind="dijkstra")
    teams = finder.find_top_k(project, k=4)
    keys = [t.key() for t in teams]
    assert len(keys) == len(set(keys))
    for team in teams:
        team.validate(set(project), net)


def test_top_1_is_prefix_of_top_k():
    rng = random.Random(12)
    net = make_random_network(rng, n=14, p=0.4)
    project = ["a", "c"]
    if not net.skill_index.is_coverable(project):
        pytest.skip("unlucky sample")
    finder = GreedyTeamFinder(net, objective="cc", oracle_kind="dijkstra")
    top1 = finder.find_team(project)
    topk = finder.find_top_k(project, k=3)
    assert topk[0].key() == top1.key()


def test_pll_and_dijkstra_oracles_agree():
    rng = random.Random(21)
    for _ in range(5):
        net = make_random_network(rng, n=16, p=0.35)
        project = [s for s in ("a", "b", "c") if net.skill_index.is_coverable([s])]
        if len(project) < 2:
            continue
        evaluator = TeamEvaluator(net)
        for objective in ("cc", "ca-cc", "sa-ca-cc"):
            via_pll = GreedyTeamFinder(
                net, objective=objective, oracle_kind="pll"
            ).find_team(project)
            via_dij = GreedyTeamFinder(
                net, objective=objective, oracle_kind="dijkstra"
            ).find_team(project)
            # Distances are identical, so the greedy cost of the winning
            # root must be too; ties may pick different (equal) teams.
            assert evaluator.score(via_pll, objective) == pytest.approx(
                evaluator.score(via_dij, objective), abs=1e-9
            )


def test_shared_oracle_across_lambdas():
    rng = random.Random(5)
    net = make_random_network(rng, n=12, p=0.5)
    project = ["a", "b"]
    if not net.skill_index.is_coverable(project):
        pytest.skip("unlucky sample")
    base = GreedyTeamFinder(net, objective="ca-cc", gamma=0.6, oracle_kind="dijkstra")
    shared = GreedyTeamFinder(
        net, objective="sa-ca-cc", gamma=0.6, lam=0.8, oracle=base.oracle
    )
    own = GreedyTeamFinder(
        net, objective="sa-ca-cc", gamma=0.6, lam=0.8, oracle_kind="dijkstra"
    )
    assert shared.find_team(project).key() == own.find_team(project).key()


def test_root_candidates_restrict_search(line_network):
    finder = GreedyTeamFinder(
        line_network,
        objective="cc",
        oracle_kind="dijkstra",
        root_candidates=["y"],
    )
    team = finder.find_team(["s1", "s2"])
    assert team.root == "y"


def test_ca_objective_forces_gamma_one(line_network):
    finder = GreedyTeamFinder(line_network, objective="ca", oracle_kind="dijkstra")
    assert finder.gamma == 1.0
