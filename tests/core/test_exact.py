"""Unit and cross-validation tests for ExactSolver and BruteForceSolver."""

import random

import pytest

from repro.core import (
    BruteForceSolver,
    ExactSolver,
    GreedyTeamFinder,
    IntractableError,
    TeamEvaluator,
)
from repro.expertise import Expert, ExpertNetwork, SkillCoverageError

from ..conftest import make_random_network


@pytest.fixture()
def small_network():
    rng = random.Random(0)
    return make_random_network(rng, n=9, p=0.5)


def _coverable_project(net, want=("a", "b")):
    project = [s for s in want if net.skill_index.is_coverable([s])]
    if len(project) < len(want):
        pytest.skip("random network lacks skill coverage")
    return project


def test_exact_matches_brute_force_many_seeds():
    for seed in range(8):
        rng = random.Random(seed)
        net = make_random_network(rng, n=9, p=0.5)
        project = [s for s in ("a", "b") if net.skill_index.is_coverable([s])]
        if len(project) < 2:
            continue
        evaluator = TeamEvaluator(net, gamma=0.6, lam=0.6)
        exact = ExactSolver(net, gamma=0.6, lam=0.6).find_team(project)
        brute = BruteForceSolver(net, gamma=0.6, lam=0.6).find_team(project)
        assert evaluator.sa_ca_cc(exact) == pytest.approx(
            evaluator.sa_ca_cc(brute), abs=1e-9
        )
        exact.validate(set(project), net)
        brute.validate(set(project), net)


def test_exact_never_worse_than_greedy(small_network):
    project = _coverable_project(small_network)
    evaluator = TeamEvaluator(small_network, gamma=0.6, lam=0.6)
    exact = ExactSolver(small_network, gamma=0.6, lam=0.6).find_team(project)
    greedy = GreedyTeamFinder(
        small_network, objective="sa-ca-cc", oracle_kind="dijkstra"
    ).find_team(project)
    assert evaluator.sa_ca_cc(exact) <= evaluator.sa_ca_cc(greedy) + 1e-9


def test_lambda_override_reuses_cache(small_network):
    project = _coverable_project(small_network)
    solver = ExactSolver(small_network, gamma=0.6, lam=0.6)
    team_06 = solver.find_team(project)
    team_09 = solver.find_team(project, lam=0.9)
    fresh_09 = ExactSolver(small_network, gamma=0.6, lam=0.9).find_team(project)
    evaluator = TeamEvaluator(small_network, gamma=0.6, lam=0.9)
    assert evaluator.sa_ca_cc(team_09) == pytest.approx(
        evaluator.sa_ca_cc(fresh_09), abs=1e-9
    )
    # cache reuse must not corrupt the original-lambda answer
    evaluator_06 = TeamEvaluator(small_network, gamma=0.6, lam=0.6)
    again = solver.find_team(project)
    assert evaluator_06.sa_ca_cc(again) == pytest.approx(
        evaluator_06.sa_ca_cc(team_06), abs=1e-9
    )


def test_invalid_lambda_override(small_network):
    project = _coverable_project(small_network)
    solver = ExactSolver(small_network)
    with pytest.raises(ValueError):
        solver.find_team(project, lam=1.5)


def test_max_assignments_budget():
    experts = [Expert(f"e{i}", skills={"s"}, h_index=1) for i in range(10)]
    experts.append(Expert("hub", h_index=5))
    edges = [(f"e{i}", "hub", 0.5) for i in range(10)]
    net = ExpertNetwork(experts, edges)
    solver = ExactSolver(net, max_assignments=5)
    with pytest.raises(IntractableError, match="max_assignments"):
        solver.find_team(["s"])


def test_time_budget():
    rng = random.Random(3)
    net = make_random_network(rng, n=14, p=0.6)
    project = [s for s in ("a", "b", "c") if net.skill_index.is_coverable([s])]
    if len(project) < 2:
        pytest.skip("random network lacks skill coverage")
    solver = ExactSolver(net, time_budget=0.0)
    with pytest.raises(IntractableError, match="time budget"):
        solver.find_team(project)


def test_uncoverable_project(small_network):
    with pytest.raises(SkillCoverageError):
        ExactSolver(small_network).find_team(["quantum"])
    with pytest.raises(ValueError):
        ExactSolver(small_network).find_team([])


def test_disconnected_holders_skipped():
    experts = [
        Expert("a", skills={"s1"}, h_index=1),
        Expert("b", skills={"s2"}, h_index=1),
        Expert("b2", skills={"s2"}, h_index=1),
        Expert("mid", h_index=2),
    ]
    # b is isolated; the only viable s2 holder is b2
    net = ExpertNetwork(experts, edges=[("a", "mid", 0.5), ("mid", "b2", 0.5)])
    team = ExactSolver(net).find_team(["s1", "s2"])
    assert team.assignments["s2"] == "b2"


def test_top_k_sorted_and_distinct(small_network):
    project = _coverable_project(small_network)
    solver = ExactSolver(small_network, gamma=0.6, lam=0.6)
    teams = solver.find_top_k(project, k=3)
    evaluator = TeamEvaluator(small_network, gamma=0.6, lam=0.6)
    scores = [evaluator.sa_ca_cc(t) for t in teams]
    assert scores == sorted(scores)
    keys = [t.key() for t in teams]
    assert len(keys) == len(set(keys))


def test_brute_force_node_guard():
    rng = random.Random(1)
    net = make_random_network(rng, n=16, p=0.4)
    with pytest.raises(IntractableError):
        BruteForceSolver(net, max_nodes=10)


def test_brute_force_other_objectives(small_network):
    project = _coverable_project(small_network)
    evaluator = TeamEvaluator(small_network, gamma=0.6, lam=0.6)
    cc_opt = BruteForceSolver(small_network, objective="cc").find_team(project)
    sac_opt = BruteForceSolver(small_network, objective="sa-ca-cc").find_team(project)
    assert evaluator.cc(cc_opt) <= evaluator.cc(sac_opt) + 1e-9
