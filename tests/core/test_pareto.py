"""Unit tests for Pareto-frontier team discovery (future-work extension)."""

import random

import pytest

from repro.core import (
    ParetoTeamDiscovery,
    TeamEvaluator,
    dominates,
    pareto_filter,
)

from ..conftest import make_random_network


class TestDominance:
    def test_strict_domination(self):
        assert dominates((1, 1, 1), (2, 2, 2))
        assert dominates((1, 2), (2, 2))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1, 1), (1, 1))

    def test_incomparable(self):
        assert not dominates((1, 3), (2, 2))
        assert not dominates((2, 2), (1, 3))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            dominates((1,), (1, 2))


def test_pareto_filter_keeps_frontier():
    points = [(1, 5), (2, 4), (3, 3), (2, 6), (4, 4)]
    kept = pareto_filter(points, key=lambda p: p)
    assert set(kept) == {(1, 5), (2, 4), (3, 3)}


def test_pareto_filter_all_equal():
    points = [(1, 1), (1, 1)]
    assert pareto_filter(points, key=lambda p: p) == points


def test_discovery_returns_nondominated_valid_teams():
    rng = random.Random(6)
    net = make_random_network(rng, n=14, p=0.45)
    project = [s for s in ("a", "b") if net.skill_index.is_coverable([s])]
    if len(project) < 2:
        pytest.skip("random network lacks coverage")
    discovery = ParetoTeamDiscovery(net, grid=(0.0, 0.5, 1.0), k_per_cell=2)
    frontier = discovery.discover(project)
    assert frontier
    vectors = [p.vector for p in frontier]
    for i, vec in enumerate(vectors):
        assert not any(
            dominates(other, vec) for j, other in enumerate(vectors) if j != i
        )
    for p in frontier:
        p.team.validate(set(project), net)
    # sorted by ascending CC
    ccs = [p.cc for p in frontier]
    assert ccs == sorted(ccs)


def test_frontier_scores_match_evaluator():
    rng = random.Random(9)
    net = make_random_network(rng, n=12, p=0.5)
    project = [s for s in ("a", "c") if net.skill_index.is_coverable([s])]
    if len(project) < 2:
        pytest.skip("random network lacks coverage")
    discovery = ParetoTeamDiscovery(net, grid=(0.0, 1.0), k_per_cell=1)
    frontier = discovery.discover(project)
    evaluator = TeamEvaluator(net, scales=discovery.scales)
    for p in frontier:
        assert p.cc == pytest.approx(evaluator.cc(p.team))
        assert p.ca == pytest.approx(evaluator.ca(p.team))
        assert p.sa == pytest.approx(evaluator.sa(p.team))


def test_parameter_validation():
    rng = random.Random(1)
    net = make_random_network(rng, n=8, p=0.6)
    with pytest.raises(ValueError):
        ParetoTeamDiscovery(net, grid=(0.5, 1.5))
    with pytest.raises(ValueError):
        ParetoTeamDiscovery(net, k_per_cell=0)
