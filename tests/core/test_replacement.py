"""Unit tests for team-member replacement."""

import pytest

from repro.core import (
    GreedyTeamFinder,
    ReplacementError,
    ReplacementRecommender,
    Team,
    TeamEvaluator,
)
from repro.expertise import Expert, ExpertNetwork
from repro.graph import Graph


@pytest.fixture()
def network():
    experts = [
        Expert("h1", skills={"s1"}, h_index=3),
        Expert("h1b", skills={"s1"}, h_index=8),       # substitute for h1
        Expert("h2", skills={"s2"}, h_index=4),
        Expert("conn", h_index=20),
        Expert("conn2", h_index=2),
        Expert("multi", skills={"s1", "s2"}, h_index=6),
    ]
    edges = [
        ("h1", "conn", 0.3),
        ("conn", "h2", 0.3),
        ("h1b", "conn", 0.4),
        ("h1", "conn2", 0.5),
        ("conn2", "h2", 0.5),
        ("multi", "conn", 0.6),
    ]
    return ExpertNetwork(experts, edges)


@pytest.fixture()
def team(network):
    tree = Graph.from_edges([("h1", "conn", 0.3), ("conn", "h2", 0.3)])
    return Team(tree=tree, assignments={"s1": "h1", "s2": "h2"})


@pytest.fixture()
def recommender(network):
    return ReplacementRecommender(network, objective="sa-ca-cc")


def test_holder_replacement_candidates(recommender, team, network):
    proposals = recommender.recommend(team, "h1", k=3)
    assert proposals
    substitutes = {p.substitute for p in proposals}
    # both the dedicated s1 holder and the multi-skill expert qualify
    assert substitutes <= {"h1b", "multi"}
    for p in proposals:
        p.team.validate({"s1", "s2"}, network)
        assert "h1" not in p.team.members
    scores = [p.score for p in proposals]
    assert scores == sorted(scores)


def test_connector_replacement_reroutes(recommender, network):
    tree = Graph.from_edges([("h1", "conn", 0.3), ("conn", "h2", 0.3)])
    team = Team(tree=tree, assignments={"s1": "h1", "s2": "h2"})
    proposals = recommender.recommend(team, "conn")
    assert len(proposals) == 1
    replacement = proposals[0]
    assert replacement.substitute is None
    assert "conn" not in replacement.team.members
    replacement.team.validate({"s1", "s2"}, network)
    # rerouted through the weaker connector, so the objective degrades
    assert replacement.delta >= 0.0


def test_delta_is_relative_to_original(recommender, team, network):
    evaluator = TeamEvaluator(network, gamma=0.6, lam=0.6)
    base = evaluator.sa_ca_cc(team)
    for p in recommender.recommend(team, "h1", k=2):
        assert p.delta == pytest.approx(p.score - base)


def test_not_a_member(recommender, team):
    with pytest.raises(ReplacementError, match="not a member"):
        recommender.recommend(team, "ghost")


def test_no_candidate_for_lost_skills():
    experts = [
        Expert("only", skills={"rare"}, h_index=1),
        Expert("other", skills={"s"}, h_index=1),
    ]
    net = ExpertNetwork(experts, edges=[("only", "other", 0.5)])
    tree = Graph.from_edges([("only", "other", 0.5)])
    team = Team(tree=tree, assignments={"rare": "only", "s": "other"})
    rec = ReplacementRecommender(net)
    with pytest.raises(ReplacementError, match="holds all of"):
        rec.recommend(team, "only")


def test_disconnecting_connector():
    experts = [
        Expert("a", skills={"s1"}, h_index=1),
        Expert("bridge", h_index=5),
        Expert("b", skills={"s2"}, h_index=1),
    ]
    net = ExpertNetwork(experts, edges=[("a", "bridge", 0.5), ("bridge", "b", 0.5)])
    tree = Graph.from_edges([("a", "bridge", 0.5), ("bridge", "b", 0.5)])
    team = Team(tree=tree, assignments={"s1": "a", "s2": "b"})
    rec = ReplacementRecommender(net)
    with pytest.raises(ReplacementError, match="disconnects"):
        rec.recommend(team, "bridge")


def test_invalid_k(recommender, team):
    with pytest.raises(ValueError):
        recommender.recommend(team, "h1", k=0)


def test_end_to_end_with_greedy_team(network):
    finder = GreedyTeamFinder(network, objective="sa-ca-cc", oracle_kind="dijkstra")
    team = finder.find_team(["s1", "s2"])
    rec = ReplacementRecommender(network)
    holder = team.assignments["s1"]
    if holder == team.assignments["s2"]:
        pytest.skip("single-expert team; nothing to replace separately")
    proposals = rec.recommend(team, holder, k=2)
    for p in proposals:
        p.team.validate({"s1", "s2"}, network)
