"""Unit tests for diversity-aware top-k."""

import random

import pytest

from repro.core import GreedyTeamFinder, Team, diverse_top_k, diversify
from repro.graph import Graph

from ..conftest import make_random_network


def _team(members, skill="s"):
    tree = Graph()
    members = list(members)
    tree.add_node(members[0])
    for a, b in zip(members, members[1:]):
        tree.add_edge(a, b, weight=1.0)
    return Team(tree=tree, assignments={skill: members[0]})


def test_first_team_always_kept():
    teams = [_team(["a", "b"]), _team(["a", "b", "c"])]
    assert diversify(teams, 2, max_overlap=0.0)[0] is teams[0]


def test_overlap_threshold_filters_near_duplicates():
    t1 = _team(["a", "b", "c"])
    t2 = _team(["a", "b", "d"])  # overlap 2/4 = 0.5
    t3 = _team(["x", "y"])       # disjoint
    picked = diversify([t1, t2, t3], 3, max_overlap=0.4)
    assert [sorted(t.members) for t in picked] == [
        ["a", "b", "c"],
        ["x", "y"],
    ]


def test_max_overlap_one_is_truncation():
    teams = [_team(["a", "b"]), _team(["a", "b", "c"]), _team(["a", "c"])]
    assert diversify(teams, 2, max_overlap=1.0) == teams[:2]


def test_disjoint_requirement():
    t1 = _team(["a", "b"])
    t2 = _team(["b", "c"])
    t3 = _team(["d", "e"])
    picked = diversify([t1, t2, t3], 3, max_overlap=0.0)
    assert len(picked) == 2
    assert picked[1].members == frozenset({"d", "e"})


def test_validation():
    with pytest.raises(ValueError):
        diversify([], 0)
    with pytest.raises(ValueError):
        diversify([], 1, max_overlap=1.5)


def test_diverse_top_k_end_to_end():
    rng = random.Random(14)
    net = make_random_network(rng, n=16, p=0.4)
    project = ["a", "b"]
    finder = GreedyTeamFinder(net, objective="sa-ca-cc", oracle_kind="dijkstra")
    plain = finder.find_top_k(project, k=4)
    diverse = diverse_top_k(finder, project, k=4, max_overlap=0.3)
    assert diverse
    assert diverse[0].key() == plain[0].key()  # the optimum survives
    # pairwise overlap constraint honored
    from repro.expertise import jaccard_similarity

    for i, a in enumerate(diverse):
        for b in diverse[i + 1 :]:
            assert jaccard_similarity(a.members, b.members) <= 0.3 + 1e-9
    with pytest.raises(ValueError):
        diverse_top_k(finder, project, k=2, pool_factor=0)
