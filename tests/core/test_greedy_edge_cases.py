"""Edge-case tests for Algorithm 1 beyond the main behaviours."""

import pytest

from repro.core import GreedyTeamFinder, TeamEvaluator
from repro.expertise import Expert, ExpertNetwork


@pytest.fixture()
def single_expert_network():
    experts = [Expert("solo", skills={"s1", "s2"}, h_index=5)]
    return ExpertNetwork(experts)


def test_single_expert_covers_everything(single_expert_network):
    finder = GreedyTeamFinder(
        single_expert_network, objective="sa-ca-cc", oracle_kind="dijkstra"
    )
    team = finder.find_team(["s1", "s2"])
    assert team.members == {"solo"}
    assert team.connectors == frozenset()
    assert team.tree.num_edges == 0
    team.validate({"s1", "s2"}, single_expert_network)


def test_duplicate_skills_in_project_deduplicated():
    experts = [
        Expert("a", skills={"x"}, h_index=1),
        Expert("b", skills={"y"}, h_index=1),
    ]
    net = ExpertNetwork(experts, edges=[("a", "b", 0.5)])
    finder = GreedyTeamFinder(net, objective="cc", oracle_kind="dijkstra")
    team = finder.find_team(["x", "y", "x", "y"])
    assert set(team.assignments) == {"x", "y"}


def test_top_k_larger_than_distinct_teams():
    experts = [
        Expert("a", skills={"x"}, h_index=1),
        Expert("b", skills={"y"}, h_index=1),
    ]
    net = ExpertNetwork(experts, edges=[("a", "b", 0.5)])
    finder = GreedyTeamFinder(net, objective="cc", oracle_kind="dijkstra")
    teams = finder.find_top_k(["x", "y"], k=10)
    # only one distinct team exists in this two-node network
    assert len(teams) == 1


def test_zero_authority_experts_handled():
    experts = [
        Expert("a", skills={"x"}, h_index=0),
        Expert("b", skills={"y"}, h_index=0),
        Expert("mid", h_index=0),
    ]
    net = ExpertNetwork(
        experts, edges=[("a", "mid", 0.5), ("mid", "b", 0.5)]
    )
    finder = GreedyTeamFinder(net, objective="sa-ca-cc", oracle_kind="dijkstra")
    team = finder.find_team(["x", "y"])
    assert team is not None
    score = TeamEvaluator(net).sa_ca_cc(team)
    assert score < float("inf")


def test_gamma_zero_sacacc_reduces_toward_cc_plus_sa():
    experts = [
        Expert("a", skills={"x"}, h_index=1),
        Expert("a2", skills={"x"}, h_index=9),
        Expert("b", skills={"y"}, h_index=2),
    ]
    net = ExpertNetwork(
        experts, edges=[("a", "b", 0.5), ("a2", "b", 0.5)]
    )
    finder = GreedyTeamFinder(
        net, objective="sa-ca-cc", gamma=0.0, lam=1.0, oracle_kind="dijkstra"
    )
    team = finder.find_team(["x", "y"])
    # with pure SA weighting the high-authority holder must be chosen
    assert team.assignments["x"] == "a2"


def test_isolated_holder_skipped_for_unreachable_roots():
    experts = [
        Expert("a", skills={"x"}, h_index=1),
        Expert("b", skills={"y"}, h_index=1),
        Expert("island", skills={"y"}, h_index=99),
    ]
    net = ExpertNetwork(experts, edges=[("a", "b", 0.5)])
    finder = GreedyTeamFinder(net, objective="sa-ca-cc", oracle_kind="dijkstra")
    team = finder.find_team(["x", "y"])
    # the attractive island holder is unreachable; b must be used
    assert team.assignments["y"] == "b"


def test_evaluator_property_exposed():
    experts = [Expert("a", skills={"x"}, h_index=1)]
    net = ExpertNetwork(experts)
    finder = GreedyTeamFinder(net, objective="cc", oracle_kind="dijkstra")
    assert finder.evaluator.network is net
    assert finder.search_graph.num_nodes == 1
