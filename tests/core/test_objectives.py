"""Unit tests for Definitions 2-6 (CC, CA, SA, CA-CC, SA-CA-CC)."""

import pytest

from repro.core import ObjectiveScales, Team, TeamEvaluator
from repro.expertise import Expert, ExpertNetwork
from repro.graph import Graph


@pytest.fixture()
def network():
    experts = [
        Expert("h1", skills={"s1"}, h_index=2),
        Expert("h2", skills={"s2"}, h_index=4),
        Expert("conn", h_index=8),
    ]
    return ExpertNetwork(
        experts, edges=[("h1", "conn", 1.0), ("conn", "h2", 3.0)]
    )


@pytest.fixture()
def team(network):
    tree = Graph.from_edges([("h1", "conn", 1.0), ("conn", "h2", 3.0)])
    return Team(tree=tree, assignments={"s1": "h1", "s2": "h2"})


@pytest.fixture()
def raw_evaluator(network):
    """No normalization: scores follow the raw definitions exactly."""
    return TeamEvaluator(
        network, gamma=0.6, lam=0.5, scales=ObjectiveScales(1.0, 1.0)
    )


def test_cc_is_edge_sum(raw_evaluator, team):
    assert raw_evaluator.cc(team) == pytest.approx(4.0)


def test_ca_sums_connector_inverse_authority(raw_evaluator, team):
    assert raw_evaluator.ca(team) == pytest.approx(1 / 8)


def test_sa_sums_holder_inverse_authority(raw_evaluator, team):
    assert raw_evaluator.sa(team) == pytest.approx(1 / 2 + 1 / 4)


def test_ca_cc_combination(raw_evaluator, team):
    expected = 0.6 * (1 / 8) + 0.4 * 4.0
    assert raw_evaluator.ca_cc(team) == pytest.approx(expected)


def test_sa_ca_cc_combination(raw_evaluator, team):
    ca_cc = 0.6 * (1 / 8) + 0.4 * 4.0
    expected = 0.5 * (0.75) + 0.5 * ca_cc
    assert raw_evaluator.sa_ca_cc(team) == pytest.approx(expected)


def test_gamma_extremes(network, team):
    scales = ObjectiveScales(1.0, 1.0)
    pure_ca = TeamEvaluator(network, gamma=1.0, lam=0.0, scales=scales)
    assert pure_ca.ca_cc(team) == pytest.approx(pure_ca.ca(team))
    pure_cc = TeamEvaluator(network, gamma=0.0, lam=0.0, scales=scales)
    assert pure_cc.ca_cc(team) == pytest.approx(pure_cc.cc(team))


def test_lambda_extremes(network, team):
    scales = ObjectiveScales(1.0, 1.0)
    pure_sa = TeamEvaluator(network, gamma=0.3, lam=1.0, scales=scales)
    assert pure_sa.sa_ca_cc(team) == pytest.approx(pure_sa.sa(team))


def test_sa_mode_per_skill_double_charges(network):
    tree = Graph()
    tree.add_node("h1")
    team = Team(tree=tree, assignments={"s1": "h1", "also": "h1"})
    scales = ObjectiveScales(1.0, 1.0)
    per_skill = TeamEvaluator(network, scales=scales, sa_mode="per_skill")
    distinct = TeamEvaluator(network, scales=scales, sa_mode="distinct")
    assert per_skill.sa(team) == pytest.approx(2 * distinct.sa(team))


def test_normalization_rescales(network, team):
    scaled = TeamEvaluator(
        network, gamma=0.6, lam=0.5, scales=ObjectiveScales(2.0, 0.5)
    )
    assert scaled.cc(team) == pytest.approx(2.0)  # 4.0 / 2
    assert scaled.ca(team) == pytest.approx((1 / 8) / 0.5)


def test_scales_from_network(network):
    scales = ObjectiveScales.from_network(network)
    assert scales.edge_scale == pytest.approx(3.0)
    # lowest h-index is 2 -> largest a' = 0.5
    assert scales.authority_scale == pytest.approx(0.5)


def test_score_dispatch(raw_evaluator, team):
    for name in ("cc", "ca", "sa", "ca-cc", "sa-ca-cc"):
        assert raw_evaluator.score(team, name) == pytest.approx(
            getattr(raw_evaluator, name.replace("-", "_"))(team)
        )
    with pytest.raises(ValueError):
        raw_evaluator.score(team, "bogus")


def test_with_params_copies(raw_evaluator):
    other = raw_evaluator.with_params(lam=0.9)
    assert other.lam == 0.9
    assert other.gamma == raw_evaluator.gamma
    assert other.scales == raw_evaluator.scales


def test_parameter_validation(network):
    with pytest.raises(ValueError):
        TeamEvaluator(network, gamma=1.5)
    with pytest.raises(ValueError):
        TeamEvaluator(network, lam=-0.1)
    with pytest.raises(ValueError):
        TeamEvaluator(network, sa_mode="bogus")  # type: ignore[arg-type]
    with pytest.raises(ValueError):
        ObjectiveScales(0.0, 1.0)
