"""Unit tests for the G -> G' transformation (Section 3.2.2)."""

import pytest

from repro.core import (
    ObjectiveScales,
    authority_fold_transform,
    transformed_edge_weight,
)
from repro.expertise import Expert, ExpertNetwork


@pytest.fixture()
def network():
    experts = [
        Expert("u", h_index=2),  # a' = 1/2
        Expert("v", h_index=4),  # a' = 1/4
        Expert("w", h_index=1),  # a' = 1
    ]
    return ExpertNetwork(experts, edges=[("u", "v", 0.8), ("v", "w", 0.2)])


def test_scalar_rule():
    # w' = gamma*(a'_u + a'_v) + 2*(1-gamma)*w
    assert transformed_edge_weight(0.5, 0.25, 0.8, 0.5) == pytest.approx(
        0.5 * 0.75 + 2 * 0.5 * 0.8
    )


def test_transform_without_normalization(network):
    g_prime = authority_fold_transform(
        network, gamma=0.5, scales=ObjectiveScales(1.0, 1.0)
    )
    expected_uv = 0.5 * (0.5 + 0.25) + 2 * 0.5 * 0.8
    assert g_prime.weight("u", "v") == pytest.approx(expected_uv)


def test_gamma_one_ignores_edge_weights(network):
    g_prime = authority_fold_transform(
        network, gamma=1.0, scales=ObjectiveScales(1.0, 1.0)
    )
    assert g_prime.weight("u", "v") == pytest.approx(0.75)
    assert g_prime.weight("v", "w") == pytest.approx(1.25)


def test_gamma_zero_doubles_edge_weights(network):
    g_prime = authority_fold_transform(
        network, gamma=0.0, scales=ObjectiveScales(1.0, 1.0)
    )
    assert g_prime.weight("u", "v") == pytest.approx(1.6)


def test_default_scales_normalize(network):
    # edge scale = 0.8, authority scale = 1.0 (expert w has a' = 1)
    g_prime = authority_fold_transform(network, gamma=0.5)
    expected = 0.5 * (0.5 + 0.25) + 2 * 0.5 * 1.0  # w_uv normalized to 1
    assert g_prime.weight("u", "v") == pytest.approx(expected)


def test_transform_preserves_topology(network):
    g_prime = authority_fold_transform(network, gamma=0.7)
    assert set(g_prime.nodes()) == set(network.graph.nodes())
    assert g_prime.num_edges == network.graph.num_edges
    # original untouched
    assert network.graph.weight("u", "v") == pytest.approx(0.8)


def test_invalid_gamma(network):
    with pytest.raises(ValueError):
        authority_fold_transform(network, gamma=1.2)


def test_path_weight_decomposition(network):
    """Path length in G' = gamma*(endpoints once + interiors twice) +
    2*(1-gamma)*CC — the identity the greedy's correction relies on."""
    gamma = 0.6
    g_prime = authority_fold_transform(
        network, gamma=gamma, scales=ObjectiveScales(1.0, 1.0)
    )
    path_len = g_prime.weight("u", "v") + g_prime.weight("v", "w")
    a = {"u": 0.5, "v": 0.25, "w": 1.0}
    cc = 0.8 + 0.2
    expected = gamma * (a["u"] + a["w"] + 2 * a["v"]) + 2 * (1 - gamma) * cc
    assert path_len == pytest.approx(expected)
