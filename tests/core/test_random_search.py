"""Unit tests for the Random baseline."""

import random

import pytest

from repro.core import RandomSolver, TeamEvaluator
from repro.expertise import SkillCoverageError

from ..conftest import make_random_network


@pytest.fixture()
def network():
    return make_random_network(random.Random(2), n=14, p=0.45)


def _project(net):
    project = [s for s in ("a", "b") if net.skill_index.is_coverable([s])]
    if len(project) < 2:
        pytest.skip("random network lacks coverage")
    return project


def test_returns_valid_team(network):
    project = _project(network)
    team = RandomSolver(network, num_samples=200, seed=1).find_team(project)
    assert team is not None
    team.validate(set(project), network)


def test_seeded_reproducibility(network):
    project = _project(network)
    t1 = RandomSolver(network, num_samples=100, seed=7).find_team(project)
    t2 = RandomSolver(network, num_samples=100, seed=7).find_team(project)
    assert t1.key() == t2.key()


def test_more_samples_never_hurt(network):
    project = _project(network)
    evaluator = TeamEvaluator(network)
    # Same seed: the first 50 samples of the 500-run replicate the 50-run.
    few = RandomSolver(network, num_samples=50, seed=3).find_team(project)
    many = RandomSolver(network, num_samples=500, seed=3).find_team(project)
    assert evaluator.sa_ca_cc(many) <= evaluator.sa_ca_cc(few) + 1e-9


def test_lambda_sweep_shares_samples(network):
    project = _project(network)
    solver = RandomSolver(network, num_samples=150, seed=5)
    by_lam = solver.find_teams_for_lambdas(project, [0.2, 0.8])
    assert set(by_lam) == {0.2, 0.8}
    for lam, team in by_lam.items():
        assert team is not None
        team.validate(set(project), network)
        # per-lambda selection really minimizes that lambda's objective
    eval_02 = TeamEvaluator(network, lam=0.2)
    eval_08 = TeamEvaluator(network, lam=0.8)
    assert eval_02.sa_ca_cc(by_lam[0.2]) <= eval_02.sa_ca_cc(by_lam[0.8]) + 1e-9
    assert eval_08.sa_ca_cc(by_lam[0.8]) <= eval_08.sa_ca_cc(by_lam[0.2]) + 1e-9


def test_validation_errors(network):
    with pytest.raises(ValueError):
        RandomSolver(network, num_samples=0)
    with pytest.raises(ValueError):
        RandomSolver(network, root_pool_size=0)
    with pytest.raises(SkillCoverageError):
        RandomSolver(network, num_samples=10).find_team(["quantum"])
    with pytest.raises(ValueError):
        RandomSolver(network, num_samples=10).find_team([])
