"""Unit + semantic tests for local-search refinement."""

import random

import pytest

from repro.core import (
    ExactSolver,
    GreedyTeamFinder,
    Team,
    TeamEvaluator,
)
from repro.core.refine import LocalSearchRefiner
from repro.expertise import Expert, ExpertNetwork
from repro.graph import Graph

from ..conftest import make_random_network


def test_never_worse_than_input():
    for seed in range(6):
        rng = random.Random(seed)
        net = make_random_network(rng, n=14, p=0.4)
        project = ["a", "b"]
        finder = GreedyTeamFinder(net, objective="sa-ca-cc", oracle_kind="dijkstra")
        team = finder.find_team(project)
        refiner = LocalSearchRefiner(net, objective="sa-ca-cc")
        refined = refiner.refine(team, project)
        refined.validate(set(project), net)
        evaluator = TeamEvaluator(net)
        assert evaluator.sa_ca_cc(refined) <= evaluator.sa_ca_cc(team) + 1e-9


def test_prune_removes_useless_connector():
    experts = [
        Expert("h1", skills={"s1"}, h_index=2),
        Expert("h2", skills={"s2"}, h_index=2),
        Expert("stub", h_index=1),
    ]
    net = ExpertNetwork(
        experts, edges=[("h1", "h2", 0.2), ("h2", "stub", 0.9)]
    )
    # hand-build a team with a pointless dangling connector
    tree = Graph.from_edges([("h1", "h2", 0.2), ("h2", "stub", 0.9)])
    team = Team(tree=tree, assignments={"s1": "h1", "s2": "h2"})
    refined = LocalSearchRefiner(net).refine(team)
    assert "stub" not in refined.members
    evaluator = TeamEvaluator(net)
    assert evaluator.sa_ca_cc(refined) < evaluator.sa_ca_cc(team)


def test_swap_upgrades_holder_authority():
    experts = [
        Expert("weak", skills={"x"}, h_index=1),
        Expert("strong", skills={"x"}, h_index=30),
        Expert("other", skills={"y"}, h_index=5),
    ]
    net = ExpertNetwork(
        experts,
        edges=[("weak", "other", 0.3), ("strong", "other", 0.3)],
    )
    tree = Graph.from_edges([("weak", "other", 0.3)])
    team = Team(tree=tree, assignments={"x": "weak", "y": "other"})
    refiner = LocalSearchRefiner(net, objective="sa-ca-cc", lam=0.9)
    refined = refiner.refine(team)
    assert refined.assignments["x"] == "strong"


def test_idempotent_at_local_optimum():
    rng = random.Random(3)
    net = make_random_network(rng, n=12, p=0.5)
    project = ["a", "c"]
    team = GreedyTeamFinder(
        net, objective="sa-ca-cc", oracle_kind="dijkstra"
    ).find_team(project)
    refiner = LocalSearchRefiner(net)
    once = refiner.refine(team, project)
    twice = refiner.refine(once, project)
    evaluator = TeamEvaluator(net)
    assert evaluator.sa_ca_cc(twice) == pytest.approx(evaluator.sa_ca_cc(once))


def test_closes_gap_toward_exact():
    """Across seeds, refinement must never lose to plain greedy and
    should strictly improve at least one instance."""
    improvements = 0
    for seed in range(8):
        rng = random.Random(seed + 100)
        net = make_random_network(rng, n=12, p=0.35)
        project = ["a", "b"]
        evaluator = TeamEvaluator(net)
        greedy = GreedyTeamFinder(
            net, objective="sa-ca-cc", oracle_kind="dijkstra"
        ).find_team(project)
        refined = LocalSearchRefiner(net).refine(greedy, project)
        exact = ExactSolver(net).find_team(project)
        g, r, e = (
            evaluator.sa_ca_cc(greedy),
            evaluator.sa_ca_cc(refined),
            evaluator.sa_ca_cc(exact),
        )
        assert e <= r + 1e-9 <= g + 2e-9
        if r < g - 1e-9:
            improvements += 1
    assert improvements >= 1


def test_validation():
    rng = random.Random(0)
    net = make_random_network(rng, n=8, p=0.5)
    with pytest.raises(ValueError):
        LocalSearchRefiner(net, max_rounds=0)
