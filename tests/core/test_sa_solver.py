"""Unit tests for the polynomial Problem 4 solver."""

import random

import pytest

from repro.core import TeamEvaluator
from repro.core.sa_solver import SaOptimalSolver
from repro.expertise import Expert, ExpertNetwork, SkillCoverageError

from ..conftest import make_random_network


@pytest.fixture()
def network():
    experts = [
        Expert("weak_x", skills={"x"}, h_index=1),
        Expert("strong_x", skills={"x"}, h_index=20),
        Expert("weak_y", skills={"y"}, h_index=2),
        Expert("strong_y", skills={"y"}, h_index=15),
        Expert("hub", h_index=5),
    ]
    edges = [
        ("weak_x", "hub", 0.2),
        ("strong_x", "hub", 0.9),
        ("weak_y", "hub", 0.2),
        ("strong_y", "hub", 0.9),
    ]
    return ExpertNetwork(experts, edges)


def test_picks_highest_authority_holders(network):
    team = SaOptimalSolver(network).find_team(["x", "y"])
    assert team.assignments == {"x": "strong_x", "y": "strong_y"}
    team.validate({"x", "y"}, network)


def test_sa_is_globally_minimal(network):
    """No team on any assignment can undercut the solver's SA."""
    solver = SaOptimalSolver(network)
    team = solver.find_team(["x", "y"])
    evaluator = TeamEvaluator(network, lam=1.0, scales=solver.evaluator.scales)
    optimal = evaluator.sa(team)
    assert optimal == pytest.approx(solver.optimal_sa(["x", "y"]))
    for x_holder in ("weak_x", "strong_x"):
        for y_holder in ("weak_y", "strong_y"):
            candidate_sa = evaluator.node_cost(x_holder) + evaluator.node_cost(
                y_holder
            )
            assert optimal <= candidate_sa + 1e-12


def test_randomized_sa_never_beaten_by_other_solvers():
    from repro.core import ExactSolver, GreedyTeamFinder

    for seed in range(5):
        rng = random.Random(seed)
        net = make_random_network(rng, n=12, p=0.45)
        project = ["a", "b"]
        solver = SaOptimalSolver(net)
        sa_team = solver.find_team(project)
        if sa_team is None:
            continue
        evaluator = TeamEvaluator(net, lam=1.0, scales=solver.evaluator.scales)
        best_sa = evaluator.sa(sa_team)
        greedy = GreedyTeamFinder(
            net, objective="sa-ca-cc", lam=0.99, oracle_kind="dijkstra"
        ).find_team(project)
        assert best_sa <= evaluator.sa(greedy) + 1e-9
        exact = ExactSolver(net, lam=1.0).find_team(project)
        assert best_sa <= evaluator.sa(exact) + 1e-9


def test_disconnected_optima_return_none():
    experts = [
        Expert("x1", skills={"x"}, h_index=10),
        Expert("y1", skills={"y"}, h_index=10),
    ]
    net = ExpertNetwork(experts)  # no edges
    assert SaOptimalSolver(net).find_team(["x", "y"]) is None


def test_validation(network):
    solver = SaOptimalSolver(network)
    with pytest.raises(ValueError):
        solver.find_team([])
    with pytest.raises(SkillCoverageError):
        solver.find_team(["quantum"])


def test_deterministic_tie_break():
    experts = [
        Expert("a_holder", skills={"s"}, h_index=5),
        Expert("b_holder", skills={"s"}, h_index=5),
    ]
    net = ExpertNetwork(experts, edges=[("a_holder", "b_holder", 0.5)])
    team = SaOptimalSolver(net).find_team(["s"])
    assert team.assignments["s"] == "a_holder"


def test_gamma_lam_accepted_and_visible(network):
    # The evaluator reflects the caller's parameters instead of silently
    # hardcoding gamma=0.6, lam=1.0 ...
    solver = SaOptimalSolver(network, gamma=0.3, lam=0.7)
    assert solver.gamma == solver.evaluator.gamma == 0.3
    assert solver.lam == solver.evaluator.lam == 0.7
    # ... with Problem 4's reading as the defaults ...
    default = SaOptimalSolver(network)
    assert default.gamma == 0.6
    assert default.lam == 1.0
    # ... and the SA-optimal team itself never depends on them.
    project = sorted(network.skill_index.skills())[:2]
    assert solver.find_team(project).key() == default.find_team(project).key()
