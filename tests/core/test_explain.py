"""Unit tests for team explanations."""

import pytest

from repro.core import ObjectiveScales, Team, TeamEvaluator, explain_team
from repro.expertise import Expert, ExpertNetwork
from repro.graph import Graph


@pytest.fixture()
def network():
    experts = [
        Expert("h1", skills={"s1"}, h_index=2),
        Expert("h2", skills={"s2"}, h_index=4),
        Expert("conn", h_index=10),
        Expert("leaf", h_index=1),
    ]
    return ExpertNetwork(
        experts,
        edges=[("h1", "conn", 1.0), ("conn", "h2", 2.0), ("conn", "leaf", 1.0)],
    )


@pytest.fixture()
def team(network):
    tree = Graph.from_edges([("h1", "conn", 1.0), ("conn", "h2", 2.0)])
    return Team(tree=tree, assignments={"s1": "h1", "s2": "h2"})


def test_contributions_sum_to_score(team, network):
    explanation = explain_team(
        team, network, gamma=0.6, lam=0.6, scales=ObjectiveScales(1.0, 1.0)
    )
    total = sum(c.total for c in explanation.contributions)
    assert total == pytest.approx(explanation.score)
    evaluator = TeamEvaluator(
        network, gamma=0.6, lam=0.6, scales=ObjectiveScales(1.0, 1.0)
    )
    assert explanation.score == pytest.approx(evaluator.sa_ca_cc(team))


def test_roles_and_shares(team, network):
    explanation = explain_team(
        team, network, gamma=0.6, lam=0.6, scales=ObjectiveScales(1.0, 1.0)
    )
    by_id = {c.expert_id: c for c in explanation.contributions}
    assert by_id["h1"].role == "skill holder"
    assert by_id["h1"].sa_share > 0 and by_id["h1"].ca_share == 0
    assert by_id["conn"].role == "connector"
    assert by_id["conn"].ca_share > 0 and by_id["conn"].sa_share == 0


def test_connector_is_critical(team, network):
    explanation = explain_team(team, network)
    assert explanation.critical_members() == ["conn"]
    by_id = {c.expert_id: c for c in explanation.contributions}
    assert by_id["conn"].critical
    assert not by_id["h1"].critical


def test_multi_skill_holder_per_skill_mode(network):
    tree = Graph()
    tree.add_node("h1")
    team = Team(tree=tree, assignments={"s1": "h1", "extra": "h1"})
    per_skill = explain_team(
        team, network, lam=1.0, scales=ObjectiveScales(1.0, 1.0)
    )
    distinct = explain_team(
        team, network, lam=1.0, scales=ObjectiveScales(1.0, 1.0),
        sa_mode="distinct",
    )
    c_per = per_skill.contributions[0]
    c_dis = distinct.contributions[0]
    assert c_per.sa_share == pytest.approx(2 * c_dis.sa_share)


def test_heaviest(team, network):
    explanation = explain_team(
        team, network, gamma=0.0, lam=0.0, scales=ObjectiveScales(1.0, 1.0)
    )
    # with pure CC weighting, the connector carries half of both edges
    assert explanation.heaviest().expert_id == "conn"


def test_format_output(team, network):
    text = explain_team(team, network).format()
    assert "SA-CA-CC" in text
    assert "[critical]" in text
    assert "covers s1" in text
