"""Property-based tests (hypothesis) for the team-discovery core.

Random expert networks are generated with guaranteed skill coverage;
the properties assert paper-level semantics: Definition 1 validity of
every solver's output, objective identities (gamma/lambda extremes,
linearity), the exact <= greedy ordering, and monotonicity of the
authority transform.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import (
    BruteForceSolver,
    ExactSolver,
    GreedyTeamFinder,
    ObjectiveScales,
    RandomSolver,
    TeamEvaluator,
    authority_fold_transform,
)
from repro.expertise import Expert, ExpertNetwork

SKILLS = ("a", "b", "c")


@st.composite
def expert_networks(draw, min_experts=4, max_experts=12):
    """Connected expert network; every skill held by >= 2 experts."""
    n = draw(st.integers(min_experts, max_experts))
    h_indices = draw(
        st.lists(st.integers(0, 40), min_size=n, max_size=n)
    )
    owned = [set() for _ in range(n)]
    for k, skill in enumerate(SKILLS):
        owned[(2 * k) % n].add(skill)
        owned[(2 * k + 1) % n].add(skill)
    extra_skill_picks = draw(
        st.lists(st.sampled_from(SKILLS), min_size=n, max_size=n)
    )
    extra_mask = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    for i in range(n):
        if extra_mask[i]:
            owned[i].add(extra_skill_picks[i])
    experts = [
        Expert(
            f"e{i}",
            skills=owned[i],
            h_index=h_indices[i],
            num_publications=draw(st.integers(1, 40)),
        )
        for i in range(n)
    ]
    weights = st.floats(0.05, 1.0, allow_nan=False)
    edges = []
    for i in range(1, n):
        parent = draw(st.integers(0, i - 1))
        edges.append((f"e{i}", f"e{parent}", draw(weights)))
    extra_edges = draw(st.integers(0, n))
    for _ in range(extra_edges):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            edges.append((f"e{u}", f"e{v}", draw(weights)))
    return ExpertNetwork(experts, edges)


@st.composite
def network_and_project(draw):
    net = draw(expert_networks())
    k = draw(st.integers(1, len(SKILLS)))
    project = draw(
        st.lists(st.sampled_from(SKILLS), min_size=k, max_size=k, unique=True)
    )
    return net, project


@given(network_and_project())
@settings(max_examples=30, deadline=None)
def test_greedy_teams_satisfy_definition1(case):
    net, project = case
    for objective in ("cc", "ca-cc", "sa-ca-cc"):
        finder = GreedyTeamFinder(net, objective=objective, oracle_kind="dijkstra")
        for team in finder.find_top_k(project, k=3):
            team.validate(set(project), net)
            assert team.root in team.members


@given(network_and_project())
@settings(max_examples=15, deadline=None)
def test_exact_lower_bounds_greedy_and_random(case):
    net, project = case
    evaluator = TeamEvaluator(net, gamma=0.6, lam=0.6)
    exact = ExactSolver(net, gamma=0.6, lam=0.6).find_team(project)
    exact.validate(set(project), net)
    exact_score = evaluator.sa_ca_cc(exact)
    greedy = GreedyTeamFinder(
        net, objective="sa-ca-cc", oracle_kind="dijkstra"
    ).find_team(project)
    assert exact_score <= evaluator.sa_ca_cc(greedy) + 1e-9
    rnd = RandomSolver(net, num_samples=50, seed=0).find_team(project)
    if rnd is not None:
        assert exact_score <= evaluator.sa_ca_cc(rnd) + 1e-9


@given(network_and_project())
@settings(max_examples=10, deadline=None)
def test_exact_equals_brute_force(case):
    net, project = case
    if len(net) > 9:
        return  # brute force explodes beyond ~2^9 subsets
    evaluator = TeamEvaluator(net, gamma=0.6, lam=0.6)
    exact = ExactSolver(net, gamma=0.6, lam=0.6).find_team(project)
    brute = BruteForceSolver(net, gamma=0.6, lam=0.6).find_team(project)
    assert abs(
        evaluator.sa_ca_cc(exact) - evaluator.sa_ca_cc(brute)
    ) < 1e-9


@given(network_and_project())
@settings(max_examples=30, deadline=None)
def test_objective_identities(case):
    net, project = case
    team = GreedyTeamFinder(net, objective="cc", oracle_kind="dijkstra").find_team(
        project
    )
    scales = ObjectiveScales(1.0, 1.0)
    ev = TeamEvaluator(net, gamma=0.6, lam=0.6, scales=scales)
    # linearity of the combinations
    assert abs(
        ev.ca_cc(team) - (0.6 * ev.ca(team) + 0.4 * ev.cc(team))
    ) < 1e-12
    assert abs(
        ev.sa_ca_cc(team) - (0.6 * ev.sa(team) + 0.4 * ev.ca_cc(team))
    ) < 1e-12
    # extremes
    assert abs(
        TeamEvaluator(net, gamma=1.0, lam=0.0, scales=scales).sa_ca_cc(team)
        - ev.ca(team)
    ) < 1e-12
    assert abs(
        TeamEvaluator(net, gamma=0.3, lam=1.0, scales=scales).sa_ca_cc(team)
        - ev.sa(team)
    ) < 1e-12
    # all objectives non-negative
    for name in ("cc", "ca", "sa", "ca-cc", "sa-ca-cc"):
        assert ev.score(team, name) >= 0.0


@given(expert_networks(), st.floats(0.0, 1.0, allow_nan=False))
@settings(max_examples=30, deadline=None)
def test_transform_weights_nonnegative_and_monotone_in_gamma(net, gamma):
    g_prime = authority_fold_transform(net, gamma)
    for _, _, w in g_prime.edges():
        assert w >= -1e-12
    # gamma=0 doubles normalized edge weights exactly
    g_zero = authority_fold_transform(net, 0.0)
    scales = ObjectiveScales.from_network(net)
    for u, v, w in net.graph.edges():
        assert abs(
            g_zero.weight(u, v) - 2.0 * w / scales.edge_scale
        ) < 1e-9


@given(network_and_project(), st.integers(0, 3))
@settings(max_examples=15, deadline=None)
def test_greedy_determinism(case, salt):
    """Same inputs -> same team, regardless of oracle kind."""
    net, project = case
    a = GreedyTeamFinder(net, objective="sa-ca-cc", oracle_kind="dijkstra")
    b = GreedyTeamFinder(net, objective="sa-ca-cc", oracle_kind="dijkstra")
    assert a.find_team(project).key() == b.find_team(project).key()


@given(network_and_project())
@settings(max_examples=15, deadline=None)
def test_topk_scores_non_decreasing(case):
    net, project = case
    finder = GreedyTeamFinder(net, objective="cc", oracle_kind="dijkstra")
    teams = finder.find_top_k(project, k=4)
    evaluator = finder.evaluator
    # greedy cost ordering implies the *cc* scores trend upward; allow
    # materialization ties but assert the first team is a minimum.
    scores = [evaluator.cc(t) for t in teams]
    assert scores[0] <= min(scores) + 1e-9
