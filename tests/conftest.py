"""Shared fixtures: hand-built and randomized expert networks.

Also registers the hypothesis profiles the suite runs under:

* ``dev`` (default) — few examples, fast inner loop;
* ``ci`` — more examples, what the coverage gate runs with.

Select with ``HYPOTHESIS_PROFILE=ci python -m pytest``.  Tests that pin
their own ``@settings(max_examples=...)`` keep their pinned budget; the
profile governs everything else (notably the dynamic-PLL differential
suite).
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings

from repro.expertise import Expert, ExpertNetwork
from repro.eval.workload import benchmark_network

settings.register_profile("ci", max_examples=200, deadline=None)
settings.register_profile("dev", max_examples=25, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session")
def tiny_network() -> ExpertNetwork:
    """The cached tiny synthetic-DBLP network (shared, treat as read-only)."""
    return benchmark_network("tiny", seed=0)


@pytest.fixture()
def figure1_network() -> ExpertNetwork:
    """A hand-built network reproducing the paper's Figure 1.

    Two candidate teams for skills {SN, TM}, all edges weight 1.0:

    * team (a): Jialu Liu (SN, h=9) — Jiawei Han (connector, h=139) —
      Xiang Ren (TM, h=11)
    * team (b): Behzad Golshan (SN, h=5) — Theodoros Lappas (connector,
      h=12) — Dimitrios Kotzias (TM, h=3)

    With equal communication costs, CC cannot distinguish the teams;
    authority-aware objectives must prefer team (a).
    """
    experts = [
        Expert("liu", name="Jialu Liu", skills={"SN"}, h_index=9),
        Expert("han", name="Jiawei Han", h_index=139),
        Expert("ren", name="Xiang Ren", skills={"TM"}, h_index=11),
        Expert("golshan", name="Behzad Golshan", skills={"SN"}, h_index=5),
        Expert("lappas", name="Theodoros Lappas", h_index=12),
        Expert("kotzias", name="Dimitrios Kotzias", skills={"TM"}, h_index=3),
        # A low-authority bridge keeps the graph connected so that both
        # candidate teams live in one component.
        Expert("bridge", name="Bridge", h_index=1),
    ]
    edges = [
        ("liu", "han", 1.0),
        ("han", "ren", 1.0),
        ("golshan", "lappas", 1.0),
        ("lappas", "kotzias", 1.0),
        ("han", "bridge", 5.0),
        ("bridge", "lappas", 5.0),
    ]
    return ExpertNetwork(experts, edges)


SKILLS = ("a", "b", "c", "d")


def make_random_network(
    rng: random.Random, *, n: int = 10, p: float = 0.4, skills=SKILLS
) -> ExpertNetwork:
    """A random *connected* expert network where every skill is coverable.

    Each skill is dealt to at least two experts (round-robin) so project
    sampling in tests never degenerates; extra skills are sprinkled
    randomly.  A random spanning tree guarantees connectivity, and extra
    edges appear with probability ``p``.
    """
    if n < 2:
        raise ValueError("need at least two experts")
    owned: list[set[str]] = [set() for _ in range(n)]
    # Deal every skill to two distinct experts.
    for k, skill in enumerate(skills):
        first = (2 * k) % n
        second = (2 * k + 1) % n
        owned[first].add(skill)
        owned[second].add(skill)
    for i in range(n):
        if rng.random() < 0.3:
            owned[i].add(rng.choice(skills))
    experts = [
        Expert(
            f"e{i}",
            skills=owned[i],
            h_index=rng.randint(0, 30),
            num_publications=rng.randint(1, 60),
        )
        for i in range(n)
    ]
    edges = [
        (f"e{i}", f"e{rng.randrange(i)}", rng.uniform(0.05, 1.0))
        for i in range(1, n)
    ]
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                edges.append((f"e{i}", f"e{j}", rng.uniform(0.05, 1.0)))
    return ExpertNetwork(experts, edges)


@pytest.fixture()
def random_network_factory():
    return make_random_network
