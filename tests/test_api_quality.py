"""Meta-tests: public API hygiene across the whole package.

These enforce the library-quality bar mechanically: every public module,
class and function is documented; every ``__all__`` name actually
resolves; and the top-level package re-exports are importable.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.rsplit(".", 1)[-1].startswith("_")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists {name!r}"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if obj.__module__ != module_name:
            continue  # re-export; documented at its definition site
        assert obj.__doc__ and obj.__doc__.strip(), f"{module_name}.{name}"
        if inspect.isclass(obj):
            for method_name, method in inspect.getmembers(obj, inspect.isfunction):
                if method_name.startswith("_") or method.__module__ != module_name:
                    continue
                assert (
                    method.__doc__ and method.__doc__.strip()
                ), f"{module_name}.{name}.{method_name}"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name)


def test_version_present():
    assert repro.__version__
