"""End-to-end integration tests: corpus -> network -> discovery -> evaluation.

These tests walk the full pipeline the paper's evaluation walks, on a
small synthetic corpus, and assert the *semantic* outcomes the paper
reports rather than unit behaviour.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ExactSolver,
    GreedyTeamFinder,
    ParetoTeamDiscovery,
    RandomSolver,
    RarestFirstSolver,
    TeamEvaluator,
)
from repro.dblp import SyntheticDblpConfig, build_expert_network, synthetic_corpus
from repro.eval import (
    SimulatedJudgePanel,
    VenuePublicationModel,
    benchmark_corpus,
    benchmark_network,
    sample_projects,
    team_stats,
)
from repro.eval.experiments import MethodSuite


@pytest.fixture(scope="module")
def network():
    return benchmark_network("small", seed=0)


@pytest.fixture(scope="module")
def suite(network):
    return MethodSuite(network, gamma=0.6, lam=0.6, oracle_kind="pll")


@pytest.fixture(scope="module")
def projects(network):
    return sample_projects(network, 4, 8, seed=42)


def test_pipeline_produces_papers_regime():
    """The synthetic corpus reproduces the paper's structural regime:
    junior skill holders with low h-index, senior connectors with high."""
    corpus = synthetic_corpus(SyntheticDblpConfig(num_groups=10), seed=2)
    net = build_expert_network(corpus)
    holders = [e for e in net.experts() if e.skills]
    seniors = [e for e in net.experts() if e.num_publications >= 10]
    assert holders and seniors
    mean_h_holders = sum(e.h_index for e in holders) / len(holders)
    mean_h_seniors = sum(e.h_index for e in seniors) / len(seniors)
    assert mean_h_holders < mean_h_seniors
    assert all(e.num_publications < 10 for e in holders)


def test_every_solver_agrees_on_validity(network, projects):
    project = projects[0]
    solvers = {
        "greedy-cc": GreedyTeamFinder(network, objective="cc", oracle_kind="dijkstra"),
        "greedy-sacacc": GreedyTeamFinder(network, oracle_kind="dijkstra"),
        "random": RandomSolver(network, num_samples=100, seed=0),
        "rarest": RarestFirstSolver(network, oracle_kind="dijkstra"),
    }
    for name, solver in solvers.items():
        team = solver.find_team(project)
        assert team is not None, name
        team.validate(set(project), network)


def test_authority_aware_methods_raise_team_authority(suite, network, projects):
    """The core claim: CA-CC / SA-CA-CC teams carry more authority than CC
    teams, on average over projects."""
    cc_h, sa_h, cc_conn, sa_conn = [], [], [], []
    for project in projects:
        stats_cc = team_stats(suite.cc.find_team(project), network)
        stats_sa = team_stats(suite.sa_ca_cc().find_team(project), network)
        cc_h.append(stats_cc.team_h_index)
        sa_h.append(stats_sa.team_h_index)
        cc_conn.append(stats_cc.avg_connector_h_index)
        sa_conn.append(stats_sa.avg_connector_h_index)
    assert sum(sa_h) / len(sa_h) > sum(cc_h) / len(cc_h)
    assert sum(sa_conn) / len(sa_conn) > sum(cc_conn) / len(cc_conn)


def test_sa_ca_cc_wins_its_own_objective(suite, projects):
    """Figure 3's ordering: SA-CA-CC <= CC and CA-CC on mean SA-CA-CC score."""
    evaluator = suite.evaluator()
    scores = {"cc": 0.0, "ca-cc": 0.0, "sa-ca-cc": 0.0}
    for project in projects:
        for method in scores:
            scores[method] += evaluator.sa_ca_cc(
                suite.finder(method).find_team(project)
            )
    assert scores["sa-ca-cc"] <= scores["ca-cc"] + 1e-9
    assert scores["sa-ca-cc"] <= scores["cc"] + 1e-9


def test_exact_beats_all_on_one_project(network, suite):
    project = sample_projects(network, 3, 4, seed=7, max_support=6)[1]
    evaluator = suite.evaluator()
    exact = ExactSolver(
        network, gamma=0.6, lam=0.6, time_budget=60.0
    ).find_team(project)
    exact_score = evaluator.sa_ca_cc(exact)
    for method in ("cc", "ca-cc", "sa-ca-cc"):
        assert exact_score <= evaluator.sa_ca_cc(
            suite.finder(method).find_team(project)
        ) + 1e-9


def test_judges_prefer_authority_aware_teams(suite, network, projects):
    """Figure 4's direction, aggregated over several projects."""
    panel = SimulatedJudgePanel(network, seed=1)
    cc_precision = sa_precision = 0.0
    for project in projects:
        cc_precision += panel.precision(suite.cc.find_top_k(project, k=5))
        sa_precision += panel.precision(suite.sa_ca_cc().find_top_k(project, k=5))
    assert sa_precision > cc_precision


def test_venue_model_favors_sa_ca_cc_teams(suite, network, projects):
    """Section 4.3's direction: SA-CA-CC teams publish better than CC's."""
    corpus = benchmark_corpus("small", seed=0)
    ratings = [v.rating for v in corpus.venues.values()]
    model = VenuePublicationModel(ratings, seed=5, selectivity=3.0)
    wins = trials = 0
    for project in projects:
        outcome = model.compare(
            suite.sa_ca_cc().find_team(project),
            suite.cc.find_team(project),
            network,
            trials=20,
        )
        wins += outcome.wins + 0.5 * outcome.ties
        trials += outcome.trials
    assert wins / trials > 0.5


def test_pareto_frontier_contains_single_objective_optima(network, projects):
    project = projects[0]
    discovery = ParetoTeamDiscovery(network, grid=(0.0, 0.5, 1.0), k_per_cell=2)
    frontier = discovery.discover(project)
    assert len(frontier) >= 1
    evaluator = TeamEvaluator(network, scales=discovery.scales)
    # the frontier's min-CC point can't be beaten on CC by the CC finder
    cc_team = GreedyTeamFinder(
        network, objective="cc", oracle_kind="dijkstra", scales=discovery.scales
    ).find_team(project)
    best_cc = min(p.cc for p in frontier)
    assert best_cc <= evaluator.cc(cc_team) + 1e-9
