"""Tests for the repro-teams command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_scale():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--scale", "galactic", "figure6"])


def test_figure6_runs(capsys):
    assert main(["--scale", "tiny", "figure6"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "connector" in out


def test_figure4_runs(capsys):
    assert main(["--scale", "tiny", "figure4", "--judges", "3"]) == 0
    out = capsys.readouterr().out
    assert "precision" in out


def test_quality_runs(capsys):
    assert main(["--scale", "tiny", "quality", "--projects", "2"]) == 0
    out = capsys.readouterr().out
    assert "success rate" in out


def test_runtime_runs(capsys):
    assert main(["--scale", "tiny", "runtime", "--projects", "1"]) == 0
    out = capsys.readouterr().out
    assert "runtime" in out


def test_figure3_runs_small(capsys):
    assert (
        main(
            [
                "--scale",
                "tiny",
                "figure3",
                "--projects",
                "1",
                "--skills",
                "3",
                "--random-samples",
                "50",
                "--exact-budget",
                "2.0",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Figure 3" in out


def test_figure5_runs(capsys):
    assert main(["--scale", "tiny", "figure5", "--projects", "2"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out


def test_figure5_chart_flag(capsys):
    assert main(["--scale", "tiny", "figure5", "--projects", "1", "--chart"]) == 0
    out = capsys.readouterr().out
    assert "normalized measures vs lambda" in out


def test_figure3_chart_flag(capsys):
    assert (
        main(
            [
                "--scale", "tiny", "figure3", "--projects", "1",
                "--skills", "3", "--random-samples", "30",
                "--exact-budget", "1.0", "--chart",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "SA-CA-CC score vs lambda" in out


def test_stats_runs(capsys):
    assert main(["--scale", "tiny", "stats"]) == 0
    out = capsys.readouterr().out
    assert "Dataset characterization" in out
    assert "skill holders" in out


def test_pareto_runs(capsys):
    assert (
        main(
            ["--scale", "tiny", "pareto", "--num-skills", "3", "--k-per-cell", "1"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "frontier" in out
    assert "cc=" in out


def test_replace_runs(capsys):
    assert main(["--scale", "tiny", "replace", "--num-skills", "3"]) == 0
    out = capsys.readouterr().out
    assert "leaves" in out
