"""Tests for the repro-teams command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_scale():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--scale", "galactic", "figure6"])


def test_figure6_runs(capsys):
    assert main(["--scale", "tiny", "figure6"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "connector" in out


def test_figure4_runs(capsys):
    assert main(["--scale", "tiny", "figure4", "--judges", "3"]) == 0
    out = capsys.readouterr().out
    assert "precision" in out


def test_quality_runs(capsys):
    assert main(["--scale", "tiny", "quality", "--projects", "2"]) == 0
    out = capsys.readouterr().out
    assert "success rate" in out


def test_runtime_runs(capsys):
    assert main(["--scale", "tiny", "runtime", "--projects", "1"]) == 0
    out = capsys.readouterr().out
    assert "runtime" in out


def test_figure3_runs_small(capsys):
    assert (
        main(
            [
                "--scale",
                "tiny",
                "figure3",
                "--projects",
                "1",
                "--skills",
                "3",
                "--random-samples",
                "50",
                "--exact-budget",
                "2.0",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Figure 3" in out


def test_figure5_runs(capsys):
    assert main(["--scale", "tiny", "figure5", "--projects", "2"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out


def test_figure5_chart_flag(capsys):
    assert main(["--scale", "tiny", "figure5", "--projects", "1", "--chart"]) == 0
    out = capsys.readouterr().out
    assert "normalized measures vs lambda" in out


def test_figure3_chart_flag(capsys):
    assert (
        main(
            [
                "--scale", "tiny", "figure3", "--projects", "1",
                "--skills", "3", "--random-samples", "30",
                "--exact-budget", "1.0", "--chart",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "SA-CA-CC score vs lambda" in out


def test_stats_runs(capsys):
    assert main(["--scale", "tiny", "stats"]) == 0
    out = capsys.readouterr().out
    assert "Dataset characterization" in out
    assert "skill holders" in out


def test_pareto_runs(capsys):
    assert (
        main(
            ["--scale", "tiny", "pareto", "--num-skills", "3", "--k-per-cell", "1"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "frontier" in out
    assert "cc=" in out


def test_replace_runs(capsys):
    assert main(["--scale", "tiny", "replace", "--num-skills", "3"]) == 0
    out = capsys.readouterr().out
    assert "leaves" in out


def test_list_solvers_prints_registry_and_exits(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--list-solvers"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out.split()
    assert "greedy" in out
    assert "exact" in out
    assert "pareto" in out


def test_solve_runs_end_to_end(capsys):
    code = main(
        [
            "--scale", "tiny",
            "solve", "--skills", "graphics", "graphers", "--solver", "greedy",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "solver: greedy" in out
    assert "scores:" in out


def test_solve_json_output_roundtrips(capsys):
    import json

    from repro.api import TeamResponse

    code = main(
        [
            "--scale", "tiny",
            "solve", "--skills", "graphics", "--solver", "sa_optimal", "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    response = TeamResponse.from_dict(payload)
    assert response.found
    assert response.solver == "sa_optimal"


def test_solve_unknown_solver_fails_cleanly(capsys):
    code = main(["--scale", "tiny", "solve", "--skills", "graphics",
                 "--solver", "nonexistent"])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown solver" in err


def test_solve_invalid_parameters_fail_cleanly(capsys):
    code = main(["--scale", "tiny", "solve", "--skills", "graphics",
                 "--objective", "bogus"])
    assert code == 2
    assert "unknown objective" in capsys.readouterr().err
    code = main(["--scale", "tiny", "--gamma", "1.5",
                 "solve", "--skills", "graphics"])
    assert code == 2
    assert "gamma" in capsys.readouterr().err


def test_solve_uncoverable_project_exits_nonzero(capsys):
    code = main(["--scale", "tiny", "solve", "--skills", "underwater-welding"])
    assert code == 1
    out = capsys.readouterr().out
    assert "no team found" in out


def _write_script(tmp_path, lines):
    path = tmp_path / "ops.jsonl"
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return str(path)


def test_mutate_replays_and_serves_post_mutation_state(tmp_path, capsys):
    script = _write_script(
        tmp_path,
        [
            "# add a super-connected newcomer, then solve through them",
            '{"op": "solve", "skills": ["graphics"], "solver": "greedy"}',
            '{"op": "add_expert", "id": "newbie", "skills": ["graphics"],'
            ' "h_index": 50}',
            '{"op": "add_collaboration", "u": "newbie", "v": "g000.junior3",'
            ' "weight": 0.05}',
            '{"op": "apply_updates"}',
            '{"op": "update_skills", "id": "newbie", "skills": ["graphics",'
            ' "graphing"]}',
            '{"op": "update_h_index", "id": "newbie", "h_index": 80}',
            '{"op": "solve", "skills": ["graphics", "graphing"],'
            ' "solver": "greedy"}',
            '{"op": "remove_collaboration", "u": "newbie", "v": "g000.junior3"}',
        ],
    )
    assert main(["--scale", "tiny", "mutate", "--script", script]) == 0
    captured = capsys.readouterr()
    assert captured.out.count("solver: greedy") == 2
    assert "apply_updates: cached=" in captured.out
    assert "replayed 8 ops; network version 5" in captured.err


def test_mutate_unknown_expert_fails_cleanly(tmp_path, capsys):
    script = _write_script(
        tmp_path, ['{"op": "remove_expert", "id": "ghost"}']
    )
    assert main(["--scale", "tiny", "mutate", "--script", script]) == 2
    err = capsys.readouterr().err
    assert "line 1" in err
    assert "ghost" in err


def test_mutate_unknown_edge_and_op_fail_cleanly(tmp_path, capsys):
    script = _write_script(
        tmp_path,
        [
            '{"op": "add_collaboration", "u": "g000.junior3",'
            ' "v": "g004.junior2", "weight": 0.5}',
            '{"op": "remove_collaboration", "u": "g000.junior3",'
            ' "v": "g004.junior2"}',
            '{"op": "remove_collaboration", "u": "g000.junior3",'
            ' "v": "g004.junior2"}',
        ],
    )
    assert main(["--scale", "tiny", "mutate", "--script", script]) == 2
    err = capsys.readouterr().err
    assert "line 3" in err and "not in graph" in err
    script = _write_script(tmp_path, ['{"op": "defenestrate", "id": "x"}'])
    assert main(["--scale", "tiny", "mutate", "--script", script]) == 2
    assert "unknown op" in capsys.readouterr().err


def test_mutate_unknown_solver_in_script_fails_cleanly(tmp_path, capsys):
    script = _write_script(
        tmp_path,
        ['{"op": "solve", "skills": ["graphics"], "solver": "nonexistent"}'],
    )
    assert main(["--scale", "tiny", "mutate", "--script", script]) == 2
    assert "unknown solver" in capsys.readouterr().err


def test_mutate_rejects_malformed_script(tmp_path, capsys):
    script = _write_script(tmp_path, ["{not json"])
    assert main(["--scale", "tiny", "mutate", "--script", script]) == 2
    assert "invalid JSON" in capsys.readouterr().err
    script = _write_script(tmp_path, ['{"skills": ["graphics"]}'])
    assert main(["--scale", "tiny", "mutate", "--script", script]) == 2
    assert '"op" key' in capsys.readouterr().err
    assert main(
        ["--scale", "tiny", "mutate", "--script", str(tmp_path / "missing.jsonl")]
    ) == 2
    assert "mutate:" in capsys.readouterr().err


def test_mutate_remove_expert_then_solve_is_in_band_miss(tmp_path, capsys):
    """Removing the holders a pending request depends on is not a crash."""
    script = _write_script(
        tmp_path,
        [
            '{"op": "add_expert", "id": "solo", "skills": ["uniqueskill"]}',
            '{"op": "solve", "skills": ["uniqueskill"], "solver": "greedy"}',
            '{"op": "remove_expert", "id": "solo"}',
            '{"op": "solve", "skills": ["uniqueskill"], "solver": "greedy"}',
        ],
    )
    assert main(["--scale", "tiny", "mutate", "--script", script]) == 0
    out = capsys.readouterr().out
    assert "no team found" in out


def _strip_timing(text: str) -> str:
    import re

    return re.sub(r"\(\d+\.\d+s, \d+ index builds?\)", "", text)


def test_snapshot_save_info_load_gc(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert main(["--scale", "tiny", "snapshot", "save", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "saved" in out and "2 indexes" in out
    assert main(["snapshot", "info", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "LATEST" in out and "persisted indexes" in out
    assert main(["snapshot", "load", "--store", store]) == 0
    assert "warm indexes" in capsys.readouterr().out
    assert main(["--scale", "tiny", "snapshot", "save", "--store", store]) == 0
    capsys.readouterr()
    assert main(["snapshot", "gc", "--store", store, "--retain", "1"]) == 0
    out = capsys.readouterr().out
    assert "removed snap-000001" in out


def test_snapshot_info_empty_store_fails_cleanly(tmp_path, capsys):
    assert main(["snapshot", "info", "--store", str(tmp_path)]) == 2
    assert "no snapshots" in capsys.readouterr().err


def test_solve_from_snapshot_matches_cold_solve(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert main(["--scale", "tiny", "snapshot", "save", "--store", store]) == 0
    capsys.readouterr()
    assert main(["--scale", "tiny", "solve", "--skills", "graphics"]) == 0
    cold = _strip_timing(capsys.readouterr().out)
    assert (
        main(["solve", "--snapshot", store, "--skills", "graphics"]) == 0
    )
    captured = capsys.readouterr()
    assert _strip_timing(captured.out) == cold
    assert "warm-started" in captured.err
    assert "0 index builds" in captured.out  # the snapshot paid for it


def test_solve_from_corrupt_snapshot_fails_cleanly(tmp_path, capsys):
    store = tmp_path / "store"
    assert main(["--scale", "tiny", "snapshot", "save", "--store", str(store)]) == 0
    capsys.readouterr()
    snap = next(store.glob("*.snap"))
    blob = bytearray(snap.read_bytes())
    blob[-1] ^= 0xFF
    snap.write_bytes(bytes(blob))
    assert main(["solve", "--snapshot", str(store), "--skills", "graphics"]) == 2
    assert "CRC mismatch" in capsys.readouterr().err


def test_mutate_snapshot_round_trip_end_to_end(tmp_path, capsys):
    """Journal-snapshot round trip: mutate a loaded engine, re-save it,
    and serve the mutated state from the new snapshot."""
    store = str(tmp_path / "store")
    assert main(["--scale", "tiny", "snapshot", "save", "--store", store]) == 0
    import re

    script = _write_script(
        tmp_path,
        [
            # A unique id: the benchmark network is cached per process
            # and other CLI tests may already have mutated it.
            '{"op": "add_expert", "id": "snapmut1", "skills": ["graphics"],'
            ' "h_index": 80}',
            '{"op": "add_collaboration", "u": "snapmut1", "v": "g000.junior3",'
            ' "weight": 0.05}',
            '{"op": "solve", "skills": ["graphics"], "solver": "greedy"}',
        ],
    )
    assert main(
        ["mutate", "--snapshot", store, "--script", script,
         "--save-snapshot", store]
    ) == 0
    captured = capsys.readouterr()
    assert "saved mutated engine" in captured.err
    version = re.search(r"replayed .*? network version (\d+)", captured.err).group(1)
    mutated_solve = _strip_timing(
        captured.out.split("solver: greedy", 1)[1]
    )
    # The re-saved snapshot serves the post-mutation state directly.
    assert main(["solve", "--snapshot", store, "--skills", "graphics"]) == 0
    captured = capsys.readouterr()
    assert f"network version {version}" in captured.err
    assert _strip_timing(captured.out.split("solver: greedy", 1)[1]) == mutated_solve


def test_chart_default_is_explicit_for_all_subcommands():
    # Satellite: no more getattr probing — args.chart always exists.
    for argv in (["figure6"], ["figure3"], ["figure5"], ["stats"],
                 ["solve", "--skills", "x"]):
        args = build_parser().parse_args(argv)
        assert args.chart is False


def test_solve_snapshot_empty_store_exits_2_naming_path(tmp_path, capsys):
    store = tmp_path / "empty"
    store.mkdir()
    assert (
        main(["solve", "--snapshot", str(store), "--skills", "graphics"]) == 2
    )
    err = capsys.readouterr().err
    assert str(store) in err
    assert "Traceback" not in err


def test_solve_snapshot_dangling_latest_exits_2_naming_target(
    tmp_path, capsys
):
    store = tmp_path / "dangling"
    store.mkdir()
    (store / "LATEST").write_text("snap-000001-v0.snap\n")
    assert (
        main(["solve", "--snapshot", str(store), "--skills", "graphics"]) == 2
    )
    err = capsys.readouterr().err
    assert "snap-000001-v0.snap" in err, "must name the missing target"
    assert "Traceback" not in err


def test_solve_snapshot_missing_file_exits_2_naming_path(tmp_path, capsys):
    missing = tmp_path / "nope.snap"
    assert (
        main(["solve", "--snapshot", str(missing), "--skills", "graphics"])
        == 2
    )
    err = capsys.readouterr().err
    assert str(missing) in err
    assert "Traceback" not in err


def test_serve_snapshot_dangling_latest_exits_2(
    tmp_path, capsys, monkeypatch
):
    import io

    store = tmp_path / "dangling"
    store.mkdir()
    (store / "LATEST").write_text("snap-000042-v7.snap\n")
    monkeypatch.setattr(
        "sys.stdin", io.StringIO('{"skills": ["graphics"]}\n')
    )
    assert main(["serve", "--snapshot", str(store)]) == 2
    err = capsys.readouterr().err
    assert "snap-000042-v7.snap" in err
    assert "Traceback" not in err


def test_solve_with_shards_matches_unsharded(capsys):
    assert (
        main(
            [
                "--scale",
                "tiny",
                "solve",
                "--skills",
                "graphation",
                "--shards",
                "3",
                "--json",
            ]
        )
        == 0
    )
    sharded = capsys.readouterr().out
    assert (
        main(
            ["--scale", "tiny", "solve", "--skills", "graphation", "--json"]
        )
        == 0
    )
    mono = capsys.readouterr().out
    import json as _json

    a, b = _json.loads(sharded), _json.loads(mono)
    a.pop("timing"), b.pop("timing")
    assert a == b


def test_snapshot_save_with_shards_round_trips(tmp_path, capsys):
    store = str(tmp_path / "sharded-store")
    assert (
        main(
            [
                "--scale",
                "tiny",
                "snapshot",
                "save",
                "--store",
                store,
                "--shards",
                "2",
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert (
        main(["solve", "--snapshot", store, "--skills", "graphation"]) == 0
    )
    captured = capsys.readouterr()
    assert "0 index builds" in captured.out
