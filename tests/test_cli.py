"""Tests for the repro-teams command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_scale():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--scale", "galactic", "figure6"])


def test_figure6_runs(capsys):
    assert main(["--scale", "tiny", "figure6"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "connector" in out


def test_figure4_runs(capsys):
    assert main(["--scale", "tiny", "figure4", "--judges", "3"]) == 0
    out = capsys.readouterr().out
    assert "precision" in out


def test_quality_runs(capsys):
    assert main(["--scale", "tiny", "quality", "--projects", "2"]) == 0
    out = capsys.readouterr().out
    assert "success rate" in out


def test_runtime_runs(capsys):
    assert main(["--scale", "tiny", "runtime", "--projects", "1"]) == 0
    out = capsys.readouterr().out
    assert "runtime" in out


def test_figure3_runs_small(capsys):
    assert (
        main(
            [
                "--scale",
                "tiny",
                "figure3",
                "--projects",
                "1",
                "--skills",
                "3",
                "--random-samples",
                "50",
                "--exact-budget",
                "2.0",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Figure 3" in out


def test_figure5_runs(capsys):
    assert main(["--scale", "tiny", "figure5", "--projects", "2"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out


def test_figure5_chart_flag(capsys):
    assert main(["--scale", "tiny", "figure5", "--projects", "1", "--chart"]) == 0
    out = capsys.readouterr().out
    assert "normalized measures vs lambda" in out


def test_figure3_chart_flag(capsys):
    assert (
        main(
            [
                "--scale", "tiny", "figure3", "--projects", "1",
                "--skills", "3", "--random-samples", "30",
                "--exact-budget", "1.0", "--chart",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "SA-CA-CC score vs lambda" in out


def test_stats_runs(capsys):
    assert main(["--scale", "tiny", "stats"]) == 0
    out = capsys.readouterr().out
    assert "Dataset characterization" in out
    assert "skill holders" in out


def test_pareto_runs(capsys):
    assert (
        main(
            ["--scale", "tiny", "pareto", "--num-skills", "3", "--k-per-cell", "1"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "frontier" in out
    assert "cc=" in out


def test_replace_runs(capsys):
    assert main(["--scale", "tiny", "replace", "--num-skills", "3"]) == 0
    out = capsys.readouterr().out
    assert "leaves" in out


def test_list_solvers_prints_registry_and_exits(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--list-solvers"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out.split()
    assert "greedy" in out
    assert "exact" in out
    assert "pareto" in out


def test_solve_runs_end_to_end(capsys):
    code = main(
        [
            "--scale", "tiny",
            "solve", "--skills", "graphics", "graphers", "--solver", "greedy",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "solver: greedy" in out
    assert "scores:" in out


def test_solve_json_output_roundtrips(capsys):
    import json

    from repro.api import TeamResponse

    code = main(
        [
            "--scale", "tiny",
            "solve", "--skills", "graphics", "--solver", "sa_optimal", "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    response = TeamResponse.from_dict(payload)
    assert response.found
    assert response.solver == "sa_optimal"


def test_solve_unknown_solver_fails_cleanly(capsys):
    code = main(["--scale", "tiny", "solve", "--skills", "graphics",
                 "--solver", "nonexistent"])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown solver" in err


def test_solve_invalid_parameters_fail_cleanly(capsys):
    code = main(["--scale", "tiny", "solve", "--skills", "graphics",
                 "--objective", "bogus"])
    assert code == 2
    assert "unknown objective" in capsys.readouterr().err
    code = main(["--scale", "tiny", "--gamma", "1.5",
                 "solve", "--skills", "graphics"])
    assert code == 2
    assert "gamma" in capsys.readouterr().err


def test_solve_uncoverable_project_exits_nonzero(capsys):
    code = main(["--scale", "tiny", "solve", "--skills", "underwater-welding"])
    assert code == 1
    out = capsys.readouterr().out
    assert "no team found" in out


def test_chart_default_is_explicit_for_all_subcommands():
    # Satellite: no more getattr probing — args.chart always exists.
    for argv in (["figure6"], ["figure3"], ["figure5"], ["stats"],
                 ["solve", "--skills", "x"]):
        args = build_parser().parse_args(argv)
        assert args.chart is False
