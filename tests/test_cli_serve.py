"""The ``serve`` subcommand: batch serving and its clean error paths.

Error-path convention matches ``mutate --script``: usage errors (bad
input, unknown solver, empty batch, missing snapshot) exit 2 with a
one-line message on stderr and no traceback; a served batch exits 0
with one response JSON line per request on stdout.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main

GOOD_LINES = (
    '{"skills": ["graphics", "sound"], "solver": "greedy", "lam": 0.4}\n'
    "# a comment line, skipped\n"
    '{"skills": ["graphics"], "solver": "sa_optimal"}\n'
)


def stripped(text: str) -> list[dict]:
    """Parsed response rows with the (non-deterministic) timing nulled."""
    rows = [json.loads(line) for line in text.strip().splitlines()]
    for row in rows:
        row["timing"] = None
    return rows


def write_input(tmp_path, text: str):
    path = tmp_path / "requests.jsonl"
    path.write_text(text, encoding="utf-8")
    return str(path)


def test_serve_answers_batch_in_order(tmp_path, capsys):
    path = write_input(tmp_path, GOOD_LINES)
    assert main(["--scale", "tiny", "serve", "--input", path]) == 0
    captured = capsys.readouterr()
    lines = captured.out.strip().splitlines()
    assert len(lines) == 2
    first, second = (json.loads(line) for line in lines)
    assert first["request"]["solver"] == "greedy"
    assert second["request"]["solver"] == "sa_optimal"
    assert "served 2 request(s)" in captured.err


def test_serve_reads_stdin(tmp_path, capsys, monkeypatch):
    monkeypatch.setattr("sys.stdin", io.StringIO(GOOD_LINES))
    assert main(["--scale", "tiny", "serve"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 2


def test_serve_parallel_matches_sequential(tmp_path, capsys):
    path = write_input(tmp_path, GOOD_LINES)
    assert main(["--scale", "tiny", "serve", "--input", path]) == 0
    sequential = capsys.readouterr().out
    assert (
        main(["--scale", "tiny", "serve", "--input", path, "--parallel", "2"])
        == 0
    )
    assert stripped(capsys.readouterr().out) == stripped(sequential)


def test_serve_malformed_json_line_exits_2(tmp_path, capsys):
    path = write_input(tmp_path, '{"skills": ["a"]}\n{not json}\n')
    assert main(["--scale", "tiny", "serve", "--input", path]) == 2
    captured = capsys.readouterr()
    assert "serve: line 2: invalid JSON" in captured.err
    assert "Traceback" not in captured.err
    assert captured.out == ""


def test_serve_non_object_line_exits_2(tmp_path, capsys):
    path = write_input(tmp_path, '["skills"]\n')
    assert main(["--scale", "tiny", "serve", "--input", path]) == 2
    assert "line 1" in capsys.readouterr().err


def test_serve_unknown_solver_exits_2(tmp_path, capsys):
    path = write_input(
        tmp_path, '{"skills": ["a"], "solver": "definitely_not_registered"}\n'
    )
    assert main(["--scale", "tiny", "serve", "--input", path]) == 2
    err = capsys.readouterr().err
    assert "serve: line 1: unknown solver 'definitely_not_registered'" in err
    assert "registered solvers:" in err
    assert "Traceback" not in err


def test_serve_invalid_request_exits_2(tmp_path, capsys):
    path = write_input(tmp_path, '{"skills": ["a"], "gamma": 3.0}\n')
    assert main(["--scale", "tiny", "serve", "--input", path]) == 2
    assert "serve: line 1" in capsys.readouterr().err


def test_serve_missing_skills_exits_2(tmp_path, capsys):
    path = write_input(tmp_path, '{"solver": "greedy"}\n')
    assert main(["--scale", "tiny", "serve", "--input", path]) == 2
    assert "missing required field 'skills'" in capsys.readouterr().err


def test_serve_empty_batch_exits_2(tmp_path, capsys):
    path = write_input(tmp_path, "# only comments\n\n")
    assert main(["--scale", "tiny", "serve", "--input", path]) == 2
    assert "empty batch" in capsys.readouterr().err


def test_serve_missing_input_file_exits_2(tmp_path, capsys):
    assert (
        main(
            ["--scale", "tiny", "serve", "--input", str(tmp_path / "nope.jsonl")]
        )
        == 2
    )
    assert "serve:" in capsys.readouterr().err


def test_serve_replicas_without_snapshot_exits_2(tmp_path, capsys):
    path = write_input(tmp_path, GOOD_LINES)
    assert (
        main(["--scale", "tiny", "serve", "--input", path, "--replicas", "2"])
        == 2
    )
    assert "--replicas requires --snapshot" in capsys.readouterr().err


def test_serve_bad_snapshot_exits_2(tmp_path, capsys):
    path = write_input(tmp_path, GOOD_LINES)
    assert (
        main(
            [
                "serve",
                "--input",
                path,
                "--snapshot",
                str(tmp_path / "no-store"),
                "--replicas",
                "2",
            ]
        )
        == 2
    )
    assert "serve:" in capsys.readouterr().err


@pytest.fixture(scope="module")
def tiny_snapshot(tmp_path_factory):
    """A snapshot store of the tiny-scale engine (built once)."""
    store = tmp_path_factory.mktemp("serve-store")
    assert main(["--scale", "tiny", "snapshot", "save", "--store", str(store)]) == 0
    return str(store)


def test_serve_from_snapshot_matches_cold_engine(
    tiny_snapshot, tmp_path, capsys
):
    path = write_input(tmp_path, GOOD_LINES)
    assert main(["--scale", "tiny", "serve", "--input", path]) == 0
    cold = capsys.readouterr().out
    assert (
        main(["serve", "--input", path, "--snapshot", tiny_snapshot]) == 0
    )
    assert stripped(capsys.readouterr().out) == stripped(cold)


def test_serve_replica_pool_end_to_end(tiny_snapshot, tmp_path, capsys):
    path = write_input(tmp_path, GOOD_LINES)
    assert main(["serve", "--input", path, "--snapshot", tiny_snapshot]) == 0
    sequential = capsys.readouterr().out
    assert (
        main(
            [
                "serve",
                "--input",
                path,
                "--snapshot",
                tiny_snapshot,
                "--replicas",
                "2",
            ]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert "replica pool:" in captured.err
    assert stripped(captured.out) == stripped(sequential)


# ----------------------------------------------------------------------
# persistent server mode (--listen / --unix)
# ----------------------------------------------------------------------
def test_server_mode_listen_and_unix_are_mutually_exclusive(capsys):
    assert (
        main(
            [
                "--scale", "tiny", "serve",
                "--listen", "127.0.0.1:0",
                "--unix", "/tmp/x.sock",
            ]
        )
        == 2
    )
    assert "mutually exclusive" in capsys.readouterr().err


def test_server_mode_bad_listen_spec_exits_2(capsys):
    assert main(["--scale", "tiny", "serve", "--listen", "8080"]) == 2
    assert "HOST:PORT" in capsys.readouterr().err
    assert main(["--scale", "tiny", "serve", "--listen", "host:notaport"]) == 2
    assert "invalid port" in capsys.readouterr().err


def test_server_mode_replicas_without_snapshot_exits_2(capsys):
    assert (
        main(
            [
                "--scale", "tiny", "serve",
                "--unix", "/tmp/x.sock",
                "--replicas", "2",
            ]
        )
        == 2
    )
    assert "--replicas requires --snapshot" in capsys.readouterr().err


def test_server_mode_bad_snapshot_exits_2(tmp_path, capsys):
    sock = str(tmp_path / "s.sock")
    assert (
        main(
            [
                "serve",
                "--unix", sock,
                "--snapshot", str(tmp_path / "no-store"),
            ]
        )
        == 2
    )
    assert "serve:" in capsys.readouterr().err


def test_server_mode_end_to_end_over_unix_socket(tiny_snapshot):
    """main() serves over a Unix socket until the shutdown op, exit 0."""
    import tempfile
    import threading
    import time
    from pathlib import Path

    from repro.serving.server_conn import ServingClient

    with tempfile.TemporaryDirectory(prefix="cli-srv-") as tmp:
        sock = str(Path(tmp) / "s.sock")
        result: list[int] = []
        thread = threading.Thread(
            target=lambda: result.append(
                main(
                    [
                        "serve",
                        "--unix", sock,
                        "--snapshot", tiny_snapshot,
                        "--max-pending", "8",
                        "--default-deadline-ms", "30000",
                    ]
                )
            ),
            # Daemon: a failing assertion below must not leave a live
            # server thread pinning the pytest process open forever.
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 60
        while not Path(sock).exists():
            assert time.monotonic() < deadline, "server never bound"
            assert thread.is_alive(), f"server exited early: {result}"
            time.sleep(0.02)
        try:
            with ServingClient.connect_unix(sock) as client:
                response = client.round_trip(
                    {"skills": ["graphics", "sound"], "solver": "greedy"}
                )
                # Same answer bytes as the batch path at this version
                # (tiny scale may or may not cover the project — the
                # contract here is a well-formed echo, not coverage).
                assert response["request"]["solver"] == "greedy"
                assert isinstance(response["found"], bool)
                assert client.round_trip({"op": "ping"})["ok"] is True
                expired = client.round_trip(
                    {"skills": ["graphics"], "deadline_ms": 0}
                )
                assert expired["error_kind"] == "deadline_exceeded"
                stats = client.round_trip({"op": "stats"})
                assert stats["server"]["default_deadline_ms"] == 30000
                assert stats["counters"]["requests_received"] == 2
                assert_shutdown = client.round_trip({"op": "shutdown"})
                assert assert_shutdown["ok"] is True
        finally:
            # Belt and braces: if an assertion fired before the
            # shutdown op, stop the server so join() can succeed.
            if thread.is_alive():
                try:
                    with ServingClient.connect_unix(sock) as closer:
                        closer.round_trip({"op": "shutdown"})
                except OSError:
                    pass
        thread.join(timeout=60)
        assert result == [0]


def test_serve_replicate_requires_a_persistent_server(tmp_path, capsys):
    path = write_input(tmp_path, GOOD_LINES)
    assert (
        main(["--scale", "tiny", "serve", "--input", path, "--replicate"])
        == 2
    )
    assert "--replicate needs a persistent server" in capsys.readouterr().err


def test_serve_replicate_requires_a_snapshot(capsys):
    assert (
        main(
            ["--scale", "tiny", "serve", "--listen", "127.0.0.1:0",
             "--replicate"]
        )
        == 2
    )
    assert "--replicate requires --snapshot" in capsys.readouterr().err


def test_serve_max_lag_requires_replicate(tmp_path, capsys):
    assert (
        main(
            ["serve", "--listen", "127.0.0.1:0", "--snapshot",
             str(tmp_path / "store"), "--max-lag-ms", "50"]
        )
        == 2
    )
    assert "--max-lag-ms only applies with --replicate" in (
        capsys.readouterr().err
    )


# ----------------------------------------------------------------------
# observability flags (PR 9): --slow-ms and `stats --prom`
# ----------------------------------------------------------------------
def test_serve_negative_slow_ms_exits_2(capsys):
    assert (
        main(
            [
                "--scale", "tiny", "serve",
                "--unix", "/tmp/x.sock",
                "--slow-ms", "-1",
            ]
        )
        == 2
    )
    assert "--slow-ms must be non-negative" in capsys.readouterr().err


def test_stats_prom_renders_local_registry(capsys):
    from repro.obs import global_registry

    global_registry().counter("cli_prom_probe").inc(3)
    assert main(["stats", "--prom"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE repro_cli_prom_probe counter" in out
    assert "repro_cli_prom_probe 3" in out


def test_stats_prom_connect_scrapes_a_live_server(tiny_snapshot, capsys):
    """`stats --prom --connect` prints the server's merged exposition."""
    import tempfile
    from pathlib import Path

    from repro.serving.server import BackgroundServer, TeamServer
    from repro.serving.server import store_backend_loader
    from repro.serving.server_conn import ServingClient

    with tempfile.TemporaryDirectory(prefix="cli-prom-") as tmp:
        sock = str(Path(tmp) / "s.sock")
        server = TeamServer(store_backend_loader(tiny_snapshot))
        background = BackgroundServer(server, unix_path=sock)
        background.start()
        try:
            with ServingClient.connect_unix(sock) as client:
                client.round_trip(
                    {"skills": ["graphics", "sound"], "solver": "greedy"}
                )
            assert main(["stats", "--prom", "--connect", sock]) == 0
            out = capsys.readouterr().out
            assert "repro_requests_received 1" in out
            assert "repro_engine_solves" in out
        finally:
            background.stop()


def test_stats_prom_connect_refused_exits_2(tmp_path, capsys):
    missing = str(tmp_path / "nope.sock")
    assert main(["stats", "--prom", "--connect", missing]) == 2
    assert "cannot connect" in capsys.readouterr().err
