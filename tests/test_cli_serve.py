"""The ``serve`` subcommand: batch serving and its clean error paths.

Error-path convention matches ``mutate --script``: usage errors (bad
input, unknown solver, empty batch, missing snapshot) exit 2 with a
one-line message on stderr and no traceback; a served batch exits 0
with one response JSON line per request on stdout.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main

GOOD_LINES = (
    '{"skills": ["graphics", "sound"], "solver": "greedy", "lam": 0.4}\n'
    "# a comment line, skipped\n"
    '{"skills": ["graphics"], "solver": "sa_optimal"}\n'
)


def stripped(text: str) -> list[dict]:
    """Parsed response rows with the (non-deterministic) timing nulled."""
    rows = [json.loads(line) for line in text.strip().splitlines()]
    for row in rows:
        row["timing"] = None
    return rows


def write_input(tmp_path, text: str):
    path = tmp_path / "requests.jsonl"
    path.write_text(text, encoding="utf-8")
    return str(path)


def test_serve_answers_batch_in_order(tmp_path, capsys):
    path = write_input(tmp_path, GOOD_LINES)
    assert main(["--scale", "tiny", "serve", "--input", path]) == 0
    captured = capsys.readouterr()
    lines = captured.out.strip().splitlines()
    assert len(lines) == 2
    first, second = (json.loads(line) for line in lines)
    assert first["request"]["solver"] == "greedy"
    assert second["request"]["solver"] == "sa_optimal"
    assert "served 2 request(s)" in captured.err


def test_serve_reads_stdin(tmp_path, capsys, monkeypatch):
    monkeypatch.setattr("sys.stdin", io.StringIO(GOOD_LINES))
    assert main(["--scale", "tiny", "serve"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 2


def test_serve_parallel_matches_sequential(tmp_path, capsys):
    path = write_input(tmp_path, GOOD_LINES)
    assert main(["--scale", "tiny", "serve", "--input", path]) == 0
    sequential = capsys.readouterr().out
    assert (
        main(["--scale", "tiny", "serve", "--input", path, "--parallel", "2"])
        == 0
    )
    assert stripped(capsys.readouterr().out) == stripped(sequential)


def test_serve_malformed_json_line_exits_2(tmp_path, capsys):
    path = write_input(tmp_path, '{"skills": ["a"]}\n{not json}\n')
    assert main(["--scale", "tiny", "serve", "--input", path]) == 2
    captured = capsys.readouterr()
    assert "serve: line 2: invalid JSON" in captured.err
    assert "Traceback" not in captured.err
    assert captured.out == ""


def test_serve_non_object_line_exits_2(tmp_path, capsys):
    path = write_input(tmp_path, '["skills"]\n')
    assert main(["--scale", "tiny", "serve", "--input", path]) == 2
    assert "line 1" in capsys.readouterr().err


def test_serve_unknown_solver_exits_2(tmp_path, capsys):
    path = write_input(
        tmp_path, '{"skills": ["a"], "solver": "definitely_not_registered"}\n'
    )
    assert main(["--scale", "tiny", "serve", "--input", path]) == 2
    err = capsys.readouterr().err
    assert "serve: line 1: unknown solver 'definitely_not_registered'" in err
    assert "registered solvers:" in err
    assert "Traceback" not in err


def test_serve_invalid_request_exits_2(tmp_path, capsys):
    path = write_input(tmp_path, '{"skills": ["a"], "gamma": 3.0}\n')
    assert main(["--scale", "tiny", "serve", "--input", path]) == 2
    assert "serve: line 1" in capsys.readouterr().err


def test_serve_missing_skills_exits_2(tmp_path, capsys):
    path = write_input(tmp_path, '{"solver": "greedy"}\n')
    assert main(["--scale", "tiny", "serve", "--input", path]) == 2
    assert "missing required field 'skills'" in capsys.readouterr().err


def test_serve_empty_batch_exits_2(tmp_path, capsys):
    path = write_input(tmp_path, "# only comments\n\n")
    assert main(["--scale", "tiny", "serve", "--input", path]) == 2
    assert "empty batch" in capsys.readouterr().err


def test_serve_missing_input_file_exits_2(tmp_path, capsys):
    assert (
        main(
            ["--scale", "tiny", "serve", "--input", str(tmp_path / "nope.jsonl")]
        )
        == 2
    )
    assert "serve:" in capsys.readouterr().err


def test_serve_replicas_without_snapshot_exits_2(tmp_path, capsys):
    path = write_input(tmp_path, GOOD_LINES)
    assert (
        main(["--scale", "tiny", "serve", "--input", path, "--replicas", "2"])
        == 2
    )
    assert "--replicas requires --snapshot" in capsys.readouterr().err


def test_serve_bad_snapshot_exits_2(tmp_path, capsys):
    path = write_input(tmp_path, GOOD_LINES)
    assert (
        main(
            [
                "serve",
                "--input",
                path,
                "--snapshot",
                str(tmp_path / "no-store"),
                "--replicas",
                "2",
            ]
        )
        == 2
    )
    assert "serve:" in capsys.readouterr().err


@pytest.fixture(scope="module")
def tiny_snapshot(tmp_path_factory):
    """A snapshot store of the tiny-scale engine (built once)."""
    store = tmp_path_factory.mktemp("serve-store")
    assert main(["--scale", "tiny", "snapshot", "save", "--store", str(store)]) == 0
    return str(store)


def test_serve_from_snapshot_matches_cold_engine(
    tiny_snapshot, tmp_path, capsys
):
    path = write_input(tmp_path, GOOD_LINES)
    assert main(["--scale", "tiny", "serve", "--input", path]) == 0
    cold = capsys.readouterr().out
    assert (
        main(["serve", "--input", path, "--snapshot", tiny_snapshot]) == 0
    )
    assert stripped(capsys.readouterr().out) == stripped(cold)


def test_serve_replica_pool_end_to_end(tiny_snapshot, tmp_path, capsys):
    path = write_input(tmp_path, GOOD_LINES)
    assert main(["serve", "--input", path, "--snapshot", tiny_snapshot]) == 0
    sequential = capsys.readouterr().out
    assert (
        main(
            [
                "serve",
                "--input",
                path,
                "--snapshot",
                tiny_snapshot,
                "--replicas",
                "2",
            ]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert "replica pool:" in captured.err
    assert stripped(captured.out) == stripped(sequential)
