"""Property-based tests (hypothesis) for the graph substrate.

Strategy: generate random connected weighted graphs, then assert
metamorphic relations between independent implementations — Dijkstra vs
the PLL 2-hop cover vs networkx, Dreyfus-Wagner vs the MST Steiner
approximation — plus classic invariants (triangle inequality, MST edge
counts, union-find partition laws).
"""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.graph import (
    Graph,
    PrunedLandmarkLabeling,
    UnionFind,
    dijkstra,
    dreyfus_wagner,
    is_connected,
    is_tree,
    minimum_spanning_tree,
    mst_steiner_tree,
    reconstruct_path,
)


@st.composite
def connected_graphs(draw, min_nodes=2, max_nodes=14):
    """A connected weighted graph: random tree + random extra edges."""
    n = draw(st.integers(min_nodes, max_nodes))
    g = Graph()
    g.add_node(0)
    weights = st.floats(0.01, 10.0, allow_nan=False, allow_infinity=False)
    for i in range(1, n):
        parent = draw(st.integers(0, i - 1))
        g.add_edge(i, parent, weight=draw(weights))
    extra = draw(st.integers(0, n))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, weight=draw(weights))
    return g


def _to_networkx(g: Graph) -> nx.Graph:
    ng = nx.Graph()
    for node in g.nodes():
        ng.add_node(node)
    for u, v, w in g.edges():
        ng.add_edge(u, v, weight=w)
    return ng


@given(connected_graphs())
@settings(max_examples=40, deadline=None)
def test_dijkstra_matches_networkx(g):
    ng = _to_networkx(g)
    expected, _ = nx.single_source_dijkstra(ng, 0)
    dist, parent = dijkstra(g, 0)
    assert set(dist) == set(expected)
    for node, d in expected.items():
        assert abs(dist[node] - d) < 1e-8
        path = reconstruct_path(parent, node)
        assert path[0] == 0 and path[-1] == node
        realized = sum(g.weight(a, b) for a, b in zip(path, path[1:]))
        assert abs(realized - d) < 1e-8


@given(connected_graphs(), st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_pll_equals_dijkstra_everywhere(g, pick):
    pll = PrunedLandmarkLabeling(g)
    source = pick % g.num_nodes
    dist, _ = dijkstra(g, source)
    for node in g.nodes():
        assert abs(pll.distance(source, node) - dist[node]) < 1e-8
        path = pll.path(source, node)
        assert path[0] == source and path[-1] == node
        realized = sum(g.weight(a, b) for a, b in zip(path, path[1:]))
        assert abs(realized - dist[node]) < 1e-8


@given(connected_graphs())
@settings(max_examples=40, deadline=None)
def test_shortest_paths_satisfy_triangle_inequality(g):
    pll = PrunedLandmarkLabeling(g)
    nodes = list(g.nodes())[:6]
    for a in nodes:
        for b in nodes:
            for c in nodes:
                assert (
                    pll.distance(a, c)
                    <= pll.distance(a, b) + pll.distance(b, c) + 1e-8
                )


@given(connected_graphs())
@settings(max_examples=40, deadline=None)
def test_mst_invariants(g):
    tree = minimum_spanning_tree(g)
    assert tree.num_nodes == g.num_nodes
    assert tree.num_edges == g.num_nodes - 1
    assert is_connected(tree)
    assert tree.total_weight() <= g.total_weight() + 1e-9


@given(connected_graphs(min_nodes=3), st.data())
@settings(max_examples=25, deadline=None)
def test_steiner_sandwich(g, data):
    """Exact Steiner cost between shortest-path lower bound and MST approx."""
    nodes = sorted(g.nodes())
    k = data.draw(st.integers(2, min(4, len(nodes))))
    terminals = data.draw(
        st.lists(st.sampled_from(nodes), min_size=k, max_size=k, unique=True)
    )
    cost, tree = dreyfus_wagner(g, terminals)
    assert is_tree(tree)
    assert all(tree.has_node(t) for t in terminals)
    assert abs(tree.total_weight() - cost) < 1e-8
    approx = mst_steiner_tree(g, terminals)
    assert cost <= approx.total_weight() + 1e-8
    assert approx.total_weight() <= 2.0 * cost + 1e-8
    # lower bound: the largest pairwise shortest-path distance
    pll = PrunedLandmarkLabeling(g)
    worst_pair = max(
        pll.distance(a, b) for a in terminals for b in terminals
    )
    assert cost >= worst_pair - 1e-8


@given(
    st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=40
    )
)
@settings(max_examples=50, deadline=None)
def test_unionfind_matches_networkx_components(pairs):
    uf = UnionFind(range(21))
    ng = nx.Graph()
    ng.add_nodes_from(range(21))
    for a, b in pairs:
        if a != b:
            uf.union(a, b)
            ng.add_edge(a, b)
    components = list(nx.connected_components(ng))
    assert uf.num_sets == len(components)
    for component in components:
        members = sorted(component)
        for other in members[1:]:
            assert uf.connected(members[0], other)
