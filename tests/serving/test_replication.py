"""Delta-snapshot replication: primary log, follower apply, staleness.

The contract under test is the PR-8 bugfix: replicas must never
*silently* serve stale answers.  Either they advance with the primary
(delta frames replayed through the engine's incremental path, full
snapshot transfer past the journal floor — both byte-identical to a
fresh engine at the same version), or — with a staleness budget set —
they answer with a typed ``stale_replica`` rejection.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import TeamFormationEngine, TeamRequest
from repro.expertise import Expert
from repro.graph.pll import pll_build_count
from repro.serving.replication import (
    ReplicaFollower,
    ReplicationLog,
    apply_network_op,
)
from repro.storage import (
    CorruptDeltaError,
    JournalTruncatedError,
    StaleSnapshotError,
)
from repro.storage.delta import FRAME_DELTA, iter_frames

from ..api.conftest import PROJECT, build_figure1_network
from ..conftest import SKILLS, make_random_network

GREEDY = TeamRequest(skills=PROJECT, solver="greedy")
RAREST = TeamRequest(skills=PROJECT, solver="rarest_first")


def canonical(response) -> str:
    return response.canonical_json()


def make_pair(**log_kwargs):
    """A primary engine with a replication log, plus a warm follower."""
    primary = TeamFormationEngine(build_figure1_network())
    primary.solve(GREEDY)  # warm the default index before the transfer
    primary.solve(RAREST)
    log = ReplicationLog(primary, **log_kwargs)
    follower = ReplicaFollower(
        TeamFormationEngine.from_snapshot_bytes(primary.snapshot_bytes())
    )
    return primary, log, follower


# ----------------------------------------------------------------------
# the primary side: enriched capture and delta framing
# ----------------------------------------------------------------------
def test_log_enriches_profile_mutations():
    primary, log, _ = make_pair()
    with primary.mutate() as network:
        network.add_expert(Expert("new", skills={"SN"}, h_index=7))
        network.update_skills("liu", {"SN", "DB"})
        network.update_h_index("ren", 20)
        network.add_collaboration("new", "han", weight=0.5)
    records = list(log._records)
    by_op = {r.mutation.op: r for r in records}
    assert by_op["add_expert"].expert.skills == frozenset({"SN"})
    assert by_op["add_expert"].expert.h_index == 7
    assert by_op["update_skills"].expert.skills == frozenset({"SN", "DB"})
    assert by_op["update_h_index"].h_index == 20
    assert by_op["add_collaboration"].expert is None


def test_delta_since_tip_is_empty_stream():
    primary, log, _ = make_pair()
    assert log.delta_since(primary.network.version) == b""


def test_delta_since_ahead_of_primary_is_a_lineage_error():
    _, log, _ = make_pair()
    with pytest.raises(ValueError, match="different lineage"):
        log.delta_since(log.version + 3)


def test_bounded_log_truncates_with_a_typed_error():
    primary, log, _ = make_pair(capacity=2)
    with primary.mutate() as network:
        for i in range(4):
            network.update_h_index("liu", 10 + i)
    assert log.floor == primary.network.version - 2
    with pytest.raises(JournalTruncatedError) as exc_info:
        log.delta_since(0)
    assert exc_info.value.since_version == 0
    assert exc_info.value.floor == log.floor
    # From the floor onward the delta is still servable.
    assert log.delta_since(log.floor) != b""


def test_lag_ms_prices_staleness():
    primary, log, _ = make_pair()
    tip = primary.network.version
    assert log.lag_ms(tip) == 0.0
    with primary.mutate() as network:
        network.update_h_index("liu", 42)
    assert log.lag_ms(tip) > 0.0
    assert log.lag_ms(primary.network.version) == 0.0


def test_closed_log_stops_capturing():
    primary, log, _ = make_pair()
    log.close()
    log.close()  # idempotent
    with primary.mutate() as network:
        network.update_h_index("liu", 42)
    assert log.version < primary.network.version


def test_incremental_hint_is_conservative():
    primary, log, follower = make_pair()
    with primary.mutate() as network:
        network.update_h_index("liu", 42)  # rebuild under the fold
    ((_, payload),) = iter_frames(log.delta_since(follower.version))
    assert payload["hints"] == {"incremental": False}
    with primary.mutate() as network:
        network.add_collaboration("liu", "golshan", weight=0.4)  # new edge
    payloads = [p for _, p in iter_frames(log.delta_since(log.version - 1))]
    assert payloads[-1]["hints"] == {"incremental": True}


# ----------------------------------------------------------------------
# the follower side: replay semantics
# ----------------------------------------------------------------------
def test_follower_converges_byte_identically():
    primary, log, follower = make_pair()
    with primary.mutate() as network:
        network.add_expert(Expert("new", skills={"TM"}, h_index=8))
        network.add_collaboration("new", "liu", weight=0.2)
        network.update_skills("bridge", {"SN"})
    report = follower.apply(log.delta_since(follower.version))
    assert report["applied"] == 3
    assert report["snapshot_fallbacks"] == 0
    assert follower.version == primary.network.version
    for request in (GREEDY, RAREST):
        assert canonical(follower.engine.solve(request)) == canonical(
            primary.solve(request)
        )


def test_replay_is_idempotent():
    primary, log, follower = make_pair()
    with primary.mutate() as network:
        network.update_h_index("liu", 42)
    data = log.delta_since(follower.version)
    assert follower.apply(data)["applied"] == 1
    again = follower.apply(data)
    assert again["applied"] == 0 and again["skipped"] == 1
    assert follower.version == primary.network.version


def test_gap_in_the_stream_is_a_truncation_error():
    primary, log, follower = make_pair()
    with primary.mutate() as network:
        network.update_h_index("liu", 42)
    missed = log.delta_since(follower.version)  # never applied
    assert missed
    with primary.mutate() as network:
        network.update_h_index("liu", 43)
    late = log.delta_since(primary.network.version - 1)
    with pytest.raises(JournalTruncatedError):
        follower.engine.apply_delta_stream(late)


def test_diverged_follower_journal_mismatch_is_a_lineage_error():
    # A follower whose *state* silently differs (same version number,
    # different liu-han edge weight): the replicated reweight applies,
    # but the follower's own journal records old_weight=2.0 where the
    # primary shipped old_weight=1.0 — caught, never served.
    primary, log, _ = make_pair()
    diverged_network = build_figure1_network()
    diverged_network.add_collaboration("liu", "han", weight=2.0)
    diverged_network.restore_history(version=0, journal=(), journal_floor=0)
    diverged = TeamFormationEngine(diverged_network, scales=primary.scales)
    with primary.mutate() as network:
        network.add_collaboration("liu", "han", weight=0.5)
    with pytest.raises(StaleSnapshotError, match="lineage"):
        diverged.apply_delta_stream(log.delta_since(0))


def test_impossible_replicated_mutation_is_a_lineage_error():
    # Well-formed record, impossible against the follower's state (the
    # expert it touches does not exist there).
    primary, log, _ = make_pair()
    diverged_network = build_figure1_network()
    diverged_network.remove_expert("bridge")
    diverged_network.restore_history(version=0, journal=(), journal_floor=0)
    diverged = TeamFormationEngine(diverged_network, scales=primary.scales)
    with primary.mutate() as network:
        network.update_h_index("bridge", 2)
    with pytest.raises(StaleSnapshotError, match="lineage"):
        diverged.apply_delta_stream(log.delta_since(0))


def test_non_contiguous_records_are_corrupt():
    primary, log, follower = make_pair()
    with primary.mutate() as network:
        network.update_h_index("liu", 42)
        network.update_h_index("liu", 43)
    ((_, payload),) = iter_frames(log.delta_since(follower.version))
    del payload["records"][0]
    with pytest.raises(CorruptDeltaError, match="not contiguous"):
        follower.engine.apply_delta_payload(payload)


def test_snapshot_frame_replaces_the_follower_engine():
    primary, log, follower = make_pair(capacity=1)
    with primary.mutate() as network:
        for i in range(5):
            network.update_h_index("liu", 10 + i)
    with pytest.raises(JournalTruncatedError):
        log.delta_since(follower.version)
    old_engine = follower.engine
    report = follower.apply(log.snapshot_frame())
    assert report["snapshot_fallbacks"] == 1
    assert follower.engine is not old_engine
    assert follower.version == primary.network.version
    assert canonical(follower.engine.solve(GREEDY)) == canonical(
        primary.solve(GREEDY)
    )


def test_engine_refuses_snapshot_frames_in_delta_streams():
    primary, log, follower = make_pair()
    with pytest.raises(ValueError, match="ReplicaFollower"):
        follower.engine.apply_delta_stream(log.snapshot_frame())


# ----------------------------------------------------------------------
# the shared JSON mutation-op vocabulary
# ----------------------------------------------------------------------
def test_apply_network_op_round_trips_every_kind():
    network = build_figure1_network()
    apply_network_op(
        network, {"op": "add_expert", "id": "n", "skills": ["DB"], "h_index": 4}
    )
    apply_network_op(network, {"op": "add_collaboration", "u": "n", "v": "han"})
    apply_network_op(network, {"op": "update_skills", "id": "n", "skills": ["SN"]})
    apply_network_op(network, {"op": "update_h_index", "id": "n", "h_index": 6})
    apply_network_op(network, {"op": "remove_collaboration", "u": "n", "v": "han"})
    apply_network_op(network, {"op": "remove_expert", "id": "n"})
    assert "n" not in network.expert_ids()


def test_apply_network_op_names_the_missing_field():
    network = build_figure1_network()
    with pytest.raises(ValueError, match="requires field 'id'"):
        apply_network_op(network, {"op": "add_expert"})
    with pytest.raises(ValueError, match="unknown op 'frobnicate'"):
        apply_network_op(network, {"op": "frobnicate"})


# ----------------------------------------------------------------------
# differential suite: a follower is indistinguishable from a fresh
# engine at the same version — and the delta path never rebuilds
# ----------------------------------------------------------------------
def apply_decrease_only_mutation(network, rng: random.Random) -> None:
    """One random mutation from the incrementally-applicable family.

    Node adds, new edges, weight *decreases*, and skill updates stream
    into a 2-hop cover without a rebuild; the differential suite sticks
    to them so it can pin ``pll_build_count`` to zero on the delta path.
    """
    ids = list(network.expert_ids())
    op = rng.choice(("add_expert", "add_edge", "decrease", "skills"))
    if op == "add_expert":
        network.add_expert(
            Expert(
                f"x{network.version}_{rng.randrange(1000)}",
                skills={rng.choice(SKILLS)},
                h_index=rng.randint(0, 20),
            )
        )
    elif op == "add_edge":
        u, v = rng.sample(ids, 2)
        if not network.graph.has_edge(u, v):
            network.add_collaboration(u, v, weight=rng.uniform(0.05, 1.0))
        else:
            network.add_collaboration(
                u, v, weight=network.graph.weight(u, v) * rng.uniform(0.3, 0.9)
            )
    elif op == "decrease" and network.num_edges:
        u, v, w = rng.choice(list(network.graph.edges()))
        network.add_collaboration(u, v, weight=w * rng.uniform(0.3, 0.99))
    else:
        network.update_skills(
            rng.choice(ids), {rng.choice(SKILLS), rng.choice(SKILLS)}
        )


@settings(deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    bursts=st.lists(st.integers(1, 4), min_size=1, max_size=4),
    fallback_at=st.integers(0, 5),
)
def test_follower_replay_differential(seed, bursts, fallback_at):
    """Any delta stream → byte-identical answers, zero index rebuilds.

    A randomized mutation storm runs on the primary in bursts; after
    each burst the follower catches up from the log (occasionally via a
    mid-stream full-snapshot transfer followed by more deltas) and must
    answer every solver byte-identically to (a) the live primary and
    (b) a fresh engine built at the same version with the primary's
    scales.  The follower's whole catch-up path is pinned to zero PLL
    builds — the point of *delta* replication.
    """
    rng = random.Random(seed)
    network = make_random_network(rng, n=rng.randint(5, 9))
    primary = TeamFormationEngine(network)
    project = tuple(rng.sample(SKILLS, rng.randint(1, 2)))
    reqs = [
        TeamRequest(skills=project, solver="greedy"),
        TeamRequest(skills=project, solver="rarest_first"),
    ]
    for request in reqs:
        primary.solve(request)  # warm both index bases pre-transfer
    log = ReplicationLog(primary)
    follower = ReplicaFollower(
        TeamFormationEngine.from_snapshot_bytes(primary.snapshot_bytes())
    )
    for burst_index, burst in enumerate(bursts):
        with primary.mutate() as net:
            for _ in range(burst):
                apply_decrease_only_mutation(net, rng)
        if burst_index == fallback_at:
            # Mid-stream fallback: a full transfer, then the deltas
            # that accumulate after it — one concatenated stream.  The
            # primary serves continuously, so its indexes are warm at
            # the tip when the snapshot is cut (which is what keeps the
            # restored follower warm too).
            for request in reqs:
                primary.solve(request)
            stream = log.snapshot_frame()
            with primary.mutate() as net:
                apply_decrease_only_mutation(net, rng)
            stream += log.delta_since(primary.network.version - 1)
        else:
            stream = log.delta_since(follower.version)
        builds_before = pll_build_count()
        follower.apply(stream)
        live = [primary.solve(r) for r in reqs]
        replayed = [follower.engine.solve(r) for r in reqs]
        assert pll_build_count() == builds_before, (
            "the delta path must never rebuild an index"
        )
        assert follower.version == primary.network.version
        for a, b in zip(replayed, live):
            assert canonical(a) == canonical(b)
    # A cold engine at the same version (primary's frozen scales — the
    # follower inherited them through the snapshot) agrees too.
    fresh = TeamFormationEngine(follower.engine.network, scales=primary.scales)
    for request in reqs:
        assert canonical(fresh.solve(request)) == canonical(
            follower.engine.solve(request)
        )


def test_delta_stream_hints_survive_framing():
    primary, log, follower = make_pair()
    with primary.mutate() as network:
        network.add_collaboration("liu", "golshan", weight=0.4)
    frames = list(iter_frames(log.delta_since(follower.version)))
    assert [kind for kind, _ in frames] == [FRAME_DELTA]
    assert frames[0][1]["hints"] == {"incremental": True}
    report = follower.apply(log.delta_since(follower.version))
    assert report["reconciled"] is not None  # eager incremental pass ran


# ----------------------------------------------------------------------
# log compaction (PR-10): snapshot GC raises the delta floor
# ----------------------------------------------------------------------
def test_compact_drops_covered_records_and_raises_floor():
    primary, log, _ = make_pair()
    base = primary.network.version
    with primary.mutate() as network:
        for i in range(4):
            network.update_h_index("liu", 10 + i)
    assert log.floor == base
    floor = log.compact(base + 2)
    assert floor == base + 2 == log.floor
    # History at or below the new floor is gone...
    with pytest.raises(JournalTruncatedError):
        log.delta_since(base)
    with pytest.raises(JournalTruncatedError):
        log.delta_since(base + 1)
    # ...and from the floor onward the delta is still exact.
    assert log.delta_since(base + 2) != b""
    assert log.delta_since(log.version) == b""


def test_compact_never_lowers_the_floor_nor_passes_the_tip():
    primary, log, _ = make_pair()
    with primary.mutate() as network:
        network.update_h_index("liu", 42)
    tip = log.version
    assert log.compact(tip + 100) == tip  # clamped to the tip
    assert log.compact(tip - 5) == tip  # never lowered
    assert log.floor == tip


def test_store_gc_compacts_the_attached_log(tmp_path):
    """GC'ing old snapshots truncates the delta history they anchored.

    A follower pinned at a version older than every retained snapshot
    gets the typed JournalTruncatedError on its next sync and repairs
    itself through the full-snapshot fallback -- the same end state a
    capacity eviction produces.
    """
    from repro.storage import SnapshotStore

    primary, log, follower = make_pair()
    store = SnapshotStore(tmp_path / "store", retain=None)
    pinned_version = follower.version
    for i in range(3):
        with primary.mutate() as network:
            network.update_h_index("liu", 20 + i)
        primary.save_snapshot(store)
    removed = store.gc(retain=1, log=log)
    assert len(removed) == 2
    remaining = store.list()
    assert len(remaining) == 1
    assert log.floor == remaining[0].network_version
    # The pinned follower predates the floor: typed truncation...
    with pytest.raises(JournalTruncatedError):
        log.delta_since(pinned_version)
    # ...and the snapshot-frame fallback fully repairs it.
    report = follower.apply(log.snapshot_frame())
    assert report["snapshot_fallbacks"] == 1
    assert follower.version == primary.network.version
    assert canonical(follower.engine.solve(GREEDY)) == canonical(
        primary.solve(GREEDY)
    )


def test_store_gc_without_log_is_unchanged(tmp_path):
    from repro.storage import SnapshotStore

    primary, log, _ = make_pair()
    store = SnapshotStore(tmp_path / "store", retain=None)
    floor_before = log.floor
    for i in range(2):
        with primary.mutate() as network:
            network.update_h_index("liu", 30 + i)
        primary.save_snapshot(store)
    store.gc(retain=1)
    assert log.floor == floor_before
