"""Unit behavior of the serving layer's readers/writer lock."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serving.locks import ReadWriteLock


def test_readers_share():
    rw = ReadWriteLock()
    held = threading.Event()
    release = threading.Event()

    def reader() -> None:
        with rw.read_locked():
            held.set()
            release.wait(timeout=30)

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    assert held.wait(timeout=30)
    # A second reader enters while the first still holds the lock.
    with rw.read_locked():
        assert rw.active_readers == 2
    release.set()
    thread.join(timeout=30)
    assert rw.active_readers == 0


def test_writer_excludes_readers_and_writers():
    rw = ReadWriteLock()
    order: list[str] = []
    in_write = threading.Event()
    release = threading.Event()

    def writer() -> None:
        with rw.write_locked():
            in_write.set()
            release.wait(timeout=30)
            order.append("writer-done")

    def reader() -> None:
        in_write.wait(timeout=30)
        with rw.read_locked():
            order.append("reader")

    w = threading.Thread(target=writer, daemon=True)
    r = threading.Thread(target=reader, daemon=True)
    w.start()
    assert in_write.wait(timeout=30)
    r.start()
    time.sleep(0.1)  # give the reader a chance to (incorrectly) enter
    assert order == []
    release.set()
    w.join(timeout=30)
    r.join(timeout=30)
    assert order == ["writer-done", "reader"]


def test_reentrant_read_and_write():
    rw = ReadWriteLock()
    with rw.read_locked():
        with rw.read_locked():
            assert rw.active_readers == 1
    assert rw.active_readers == 0
    with rw.write_locked():
        with rw.write_locked():
            assert rw.write_held
        # A writer may also take the read side (it is exclusive anyway).
        with rw.read_locked():
            pass
        assert rw.write_held
    assert not rw.write_held


def test_waiting_writer_blocks_new_readers():
    """Writer preference: a queued writer wins over later readers."""
    rw = ReadWriteLock()
    release_first = threading.Event()
    first_in = threading.Event()
    order: list[str] = []

    def first_reader() -> None:
        with rw.read_locked():
            first_in.set()
            release_first.wait(timeout=30)

    def writer() -> None:
        with rw.write_locked():
            order.append("writer")

    def late_reader() -> None:
        with rw.read_locked():
            order.append("reader")

    r1 = threading.Thread(target=first_reader, daemon=True)
    r1.start()
    assert first_in.wait(timeout=30)
    w = threading.Thread(target=writer, daemon=True)
    w.start()
    time.sleep(0.1)  # let the writer queue up behind the reader
    r2 = threading.Thread(target=late_reader, daemon=True)
    r2.start()
    time.sleep(0.1)
    assert order == []  # both blocked behind the first reader
    release_first.set()
    w.join(timeout=30)
    r2.join(timeout=30)
    r1.join(timeout=30)
    assert order == ["writer", "reader"]


def test_upgrade_attempt_raises():
    rw = ReadWriteLock()
    with rw.read_locked():
        with pytest.raises(RuntimeError):
            rw.acquire_write()


def test_unbalanced_releases_raise():
    rw = ReadWriteLock()
    with pytest.raises(RuntimeError):
        rw.release_read()
    with pytest.raises(RuntimeError):
        rw.release_write()
