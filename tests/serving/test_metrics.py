"""The serving metrics instruments: counters, gauges, reservoirs.

The load-bearing contract is the reservoir's: exact percentiles while
the stream fits in capacity, a uniform sample (seeded, so reproducible)
past it, O(capacity) memory forever, and millisecond-unit summaries —
the numbers the latency gate and the stats op are built on.
"""

from __future__ import annotations

import threading

import pytest

# repro.obs is the canonical import point for the instruments (it
# resolves the repro/graph/metrics.py vs repro/serving/metrics.py name
# shadowing hazard); the definitions still live in serving.metrics.
from repro.obs import (
    Counter,
    Gauge,
    LatencyReservoir,
    MetricsRegistry,
)


# ----------------------------------------------------------------------
# counters and gauges
# ----------------------------------------------------------------------
def test_counter_counts_and_rejects_negative():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert counter.value == 5


def test_gauge_set_and_add():
    gauge = Gauge()
    gauge.set(3)
    gauge.add(-1.5)
    assert gauge.value == 1.5


def test_counter_is_thread_safe():
    counter = Counter()

    def bump():
        for _ in range(1000):
            counter.inc()

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.value == 8000


# ----------------------------------------------------------------------
# the latency reservoir
# ----------------------------------------------------------------------
def test_reservoir_exact_below_capacity():
    reservoir = LatencyReservoir(capacity=100)
    for ms in range(1, 11):  # 1..10 ms
        reservoir.observe(ms / 1e3)
    summary = reservoir.summary()
    assert summary["count"] == 10
    assert summary["p50_ms"] == pytest.approx(6.0)
    assert summary["p99_ms"] == pytest.approx(10.0)
    assert summary["max_ms"] == pytest.approx(10.0)
    assert summary["mean_ms"] == pytest.approx(5.5)


def test_reservoir_quantile_validates_range():
    reservoir = LatencyReservoir(capacity=4)
    with pytest.raises(ValueError):
        reservoir.quantile(1.5)
    assert reservoir.quantile(0.5) == 0.0  # empty -> 0


def test_reservoir_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        LatencyReservoir(capacity=0)


def test_reservoir_sampling_bounds_memory_and_tracks_stream():
    reservoir = LatencyReservoir(capacity=64, seed=1)
    # A long uniform ramp: the sampled median must land near the true
    # median even though only 64 of 10_000 observations survive.
    for i in range(10_000):
        reservoir.observe(i / 1e3)
    assert reservoir.count == 10_000
    assert len(reservoir._sample) == 64
    true_median_s = 5.0  # 5000 / 1e3 seconds
    assert reservoir.quantile(0.5) == pytest.approx(true_median_s, rel=0.35)
    # max is tracked exactly, outside the sample
    assert reservoir.summary()["max_ms"] == pytest.approx(9999.0)


def test_reservoir_is_deterministic_for_a_replayed_stream():
    def run() -> list[float]:
        reservoir = LatencyReservoir(capacity=32, seed=7)
        for i in range(5_000):
            reservoir.observe((i * 37 % 1000) / 1e3)
        return [reservoir.quantile(q) for q in (0.5, 0.95, 0.99)]

    assert run() == run()


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
def test_registry_create_on_first_touch_is_stable():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.reservoir("r") is registry.reservoir("r")


def test_registry_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("b").inc(2)
    registry.counter("a").inc()
    registry.gauge("depth").set(3)
    registry.reservoir("request").observe(0.004)
    snap = registry.snapshot()
    assert list(snap["counters"]) == ["a", "b"]  # sorted
    assert snap["counters"]["b"] == 2
    assert snap["gauges"]["depth"] == 3.0
    assert snap["latency"]["request"]["count"] == 1
    assert snap["latency"]["request"]["p50_ms"] == pytest.approx(4.0)


def test_registry_format_line_mentions_every_instrument():
    registry = MetricsRegistry()
    assert registry.format_line() == "(no metrics yet)"
    registry.counter("served").inc(3)
    registry.reservoir("request").observe(0.010)
    line = registry.format_line()
    assert "served=3" in line
    assert "request[p50=10.0ms" in line


# ----------------------------------------------------------------------
# reservoir edge cases (PR 9): tiny reservoirs, tiny streams
# ----------------------------------------------------------------------
def test_reservoir_empty_summary_is_all_zero():
    reservoir = LatencyReservoir(capacity=8)
    summary = reservoir.summary()
    assert summary == {
        "count": 0,
        "mean_ms": 0.0,
        "max_ms": 0.0,
        "p50_ms": 0.0,
        "p95_ms": 0.0,
        "p99_ms": 0.0,
    }
    for q in (0.0, 0.5, 1.0):
        assert reservoir.quantile(q) == 0.0


def test_reservoir_single_sample_quantiles_all_equal_it():
    reservoir = LatencyReservoir(capacity=8)
    reservoir.observe(0.007)
    for q in (0.0, 0.5, 0.95, 0.99, 1.0):
        assert reservoir.quantile(q) == pytest.approx(0.007)
    summary = reservoir.summary()
    assert summary["count"] == 1
    assert summary["p50_ms"] == summary["p99_ms"] == pytest.approx(7.0)
    assert summary["mean_ms"] == pytest.approx(7.0)


def test_reservoir_capacity_one_stays_bounded_with_exact_extremes():
    reservoir = LatencyReservoir(capacity=1, seed=3)
    for i in range(1, 1001):
        reservoir.observe(i / 1e3)
    # Memory bound holds at the degenerate capacity...
    assert len(reservoir._sample) == 1
    # ...while count and max are tracked exactly, outside the sample.
    assert reservoir.count == 1000
    assert reservoir.summary()["max_ms"] == pytest.approx(1000.0)
    # The one resident sample is a real observation from the stream.
    assert reservoir._sample[0] in [i / 1e3 for i in range(1, 1001)]


def test_reservoir_seeded_eviction_is_deterministic_sample_for_sample():
    def sample() -> list[float]:
        reservoir = LatencyReservoir(capacity=16, seed=42)
        for i in range(3_000):
            reservoir.observe((i * 13 % 500) / 1e3)
        return list(reservoir._sample)

    first, second = sample(), sample()
    # Vitter-R eviction is driven only by the seeded RNG, so a replayed
    # stream reproduces the *identical* resident sample, not merely
    # close quantiles.
    assert first == second
    differently_seeded = LatencyReservoir(capacity=16, seed=43)
    for i in range(3_000):
        differently_seeded.observe((i * 13 % 500) / 1e3)
    assert list(differently_seeded._sample) != first


# ----------------------------------------------------------------------
# the canonical import point
# ----------------------------------------------------------------------
def test_obs_reexports_are_the_serving_definitions():
    import repro.obs
    import repro.serving.metrics as serving_metrics

    # One definition, two import paths: instruments created through
    # either module land in the same classes, so registries interoperate.
    assert repro.obs.Counter is serving_metrics.Counter
    assert repro.obs.Gauge is serving_metrics.Gauge
    assert repro.obs.LatencyReservoir is serving_metrics.LatencyReservoir
    assert repro.obs.MetricsRegistry is serving_metrics.MetricsRegistry
    assert repro.obs.global_registry() is repro.obs.global_registry()
