"""The persistent serving front end, end to end over real sockets.

Covers the tentpole contracts:

* wire responses **byte-identical** (timing aside) to a cold engine at
  the same network version, for the engine, pool, and store backends;
* **admission control** — a full pending queue answers ``overloaded``
  immediately, never buffering without bound or dropping a connection;
* **deadlines** — an expired budget answers ``deadline_exceeded``
  without the request ever occupying a solve worker;
* **stats** — the in-band counters add up: every request received is
  accounted for as answered or rejected once the server quiesces;
* **hot reload** — a client storm across a reload observes only
  version-v or version-v' responses (never a torn mix), a corrupt new
  LATEST leaves the old backend serving, and requests sent after the
  reload op returns answer from the new version;
* a malformed line is answered in-band and the connection survives;
* shutdown is graceful and idempotent.

All server tests run the asyncio loop on a :class:`BackgroundServer`
thread and drive it with the blocking :class:`ServingClient`, exactly
as the benchmark and the CI smoke script do.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.api import TeamFormationEngine, TeamRequest
from repro.api.messages import TeamResponse
from repro.serving.pool import EngineReplicaPool
from repro.serving.server import (
    BackgroundServer,
    PoolBackend,
    TeamServer,
    fixed_engine_loader,
    store_backend_loader,
)
from repro.serving.server_conn import ServingClient

from ..api.conftest import PROJECT, build_figure1_network

GREEDY = TeamRequest(skills=PROJECT, solver="greedy")
SNAPSHOT_GAMMA = 0.6


def canonical(line: str) -> str:
    """A wire response line reduced to its timing-nulled canonical form."""
    return TeamResponse.from_json(line).canonical_json()


@pytest.fixture(scope="module")
def snapshot_store(tmp_path_factory):
    """A store holding one warm snapshot of the figure-1 engine."""
    store = tmp_path_factory.mktemp("server-store")
    engine = TeamFormationEngine(build_figure1_network())
    engine.search_oracle("sa-ca-cc", SNAPSHOT_GAMMA)
    engine.raw_oracle()
    engine.save_snapshot(store)
    return store


class running_server:
    """Context manager: a TeamServer live on a fresh Unix socket.

    Socket paths go in their own short tempdir (sockaddr_un caps the
    path around 100 bytes; pytest tmp paths can exceed it).
    """

    def __init__(self, loader, **kwargs):
        self._tmp = tempfile.TemporaryDirectory(prefix="srv-")
        self.socket_path = str(Path(self._tmp.name) / "s.sock")
        self.server = TeamServer(loader, **kwargs)
        self._background = BackgroundServer(
            self.server, unix_path=self.socket_path
        )

    def client(self, *, timeout: float = 30.0) -> ServingClient:
        return ServingClient.connect_unix(self.socket_path, timeout=timeout)

    def __enter__(self) -> "running_server":
        self._background.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        try:
            self._background.stop()
        finally:
            self._tmp.cleanup()


class BlockingBackend:
    """A backend whose solves block until released (admission tests)."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()

    def solve(self, request: TeamRequest) -> TeamResponse:
        self.started.set()
        assert self.release.wait(timeout=30), "test forgot to release"
        return TeamResponse.for_error(request, "internal", "blocked solve")

    def describe(self) -> dict:
        return {"kind": "blocking"}

    def close(self) -> None:
        self.release.set()


def wait_for(predicate, *, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.01)


def counters(client: ServingClient) -> dict:
    return client.round_trip({"op": "stats"})["counters"]


def assert_accounted(stats: dict) -> None:
    """The smoke invariant: every received request is answered once."""
    c = stats["counters"]
    answered = (
        c.get("answered_found", 0)
        + c.get("answered_no_team", 0)
        + c.get("answered_error", 0)
        + c.get("rejected_overloaded", 0)
        + c.get("rejected_deadline", 0)
    )
    assert c.get("requests_received", 0) == answered
    # PR 9: every mutate op resolved to exactly one outcome counter.
    assert c.get("op_mutate", 0) == (
        c.get("mutate_ok", 0) + c.get("mutate_failed", 0)
    )


# ----------------------------------------------------------------------
# byte identity across backends
# ----------------------------------------------------------------------
def test_engine_backend_responses_byte_identical_to_cold_engine(
    snapshot_store,
):
    cold = TeamFormationEngine.from_snapshot(snapshot_store)
    requests = [
        GREEDY,
        GREEDY.replace(lam=0.2),
        TeamRequest(skills=PROJECT, solver="rarest_first"),
        TeamRequest(skills=("NOPE",), solver="greedy"),  # uncoverable
        TeamRequest(skills=PROJECT, solver="not_a_solver"),  # typed error
    ]
    expected = [cold.solve_isolated(r).canonical_json() for r in requests]
    with running_server(store_backend_loader(snapshot_store)) as srv:
        with srv.client() as client:
            got = [
                canonical(client.round_trip_raw(r.to_dict())) for r in requests
            ]
    assert got == expected


def test_pool_backend_over_degraded_pool_matches_engine(snapshot_store):
    # replicas=1 exercises the PoolBackend plumbing without process
    # spawn cost (the pool serves in-process in degraded mode).
    cold = TeamFormationEngine.from_snapshot(snapshot_store)
    pool = EngineReplicaPool(snapshot_store, replicas=1)
    loader = lambda: PoolBackend(pool)  # noqa: E731
    with running_server(loader) as srv:
        with srv.client() as client:
            stats = client.round_trip({"op": "stats"})
            assert stats["backend"]["kind"] == "pool"
            assert stats["backend"]["replicas"] == 1
            got = canonical(client.round_trip_raw(GREEDY.to_dict()))
    assert got == cold.solve_isolated(GREEDY).canonical_json()


def test_responses_come_back_in_request_order_when_pipelined(snapshot_store):
    lams = (0.2, 0.4, 0.6, 0.8)
    with running_server(store_backend_loader(snapshot_store), workers=2) as srv:
        with srv.client() as client:
            for lam in lams:
                client.send(GREEDY.replace(lam=lam).to_dict())
            got = [json.loads(client.recv_line()) for _ in lams]
    assert [r["request"]["lam"] for r in got] == list(lams)


# ----------------------------------------------------------------------
# protocol resilience
# ----------------------------------------------------------------------
def test_malformed_lines_answered_in_band_and_connection_survives(
    snapshot_store,
):
    with running_server(store_backend_loader(snapshot_store)) as srv:
        with srv.client() as client:
            client.send_line("{not json")
            assert client.recv()["error_kind"] == "invalid_request"
            client.send_line('["a", "list"]')
            assert "JSON object" in client.recv()["error"]
            client.send_line('{"op": "selfdestruct"}')
            assert "known ops" in client.recv()["error"]
            client.send_line('{"skills": []}')  # TeamRequest validation
            assert client.recv()["op"] == "error"
            # ...and the connection still serves after four bad lines.
            response = client.round_trip(GREEDY.to_dict())
            assert response["found"] is True
            stats = client.round_trip({"op": "stats"})
            assert stats["counters"]["invalid_lines"] == 4
            assert_accounted(stats)


def test_ping_and_stats_shape(snapshot_store):
    with running_server(
        store_backend_loader(snapshot_store), max_pending=7
    ) as srv:
        with srv.client() as client:
            assert client.round_trip({"op": "ping"}) == {
                "op": "ping",
                "ok": True,
            }
            stats = client.round_trip({"op": "stats"})
            assert stats["server"]["max_pending"] == 7
            assert stats["backend"]["kind"] == "engine"
            assert stats["gauges"]["connections_active"] == 1
            assert "latency" in stats


# ----------------------------------------------------------------------
# admission control and deadlines
# ----------------------------------------------------------------------
def test_overload_answers_typed_rejection_immediately():
    backend = BlockingBackend()
    with running_server(
        lambda: backend, max_pending=1, workers=1
    ) as srv:
        with srv.client() as c1, srv.client() as c2, srv.client() as c3:
            c1.send(GREEDY.to_dict())  # occupies the only worker
            wait_for(backend.started.is_set)
            c2.send(GREEDY.to_dict())  # fills the pending queue
            wait_for(
                lambda: srv.server.metrics.gauge("pending").value >= 1
            )
            t0 = time.monotonic()
            rejected = c3.round_trip(GREEDY.to_dict())
            elapsed = time.monotonic() - t0
            assert rejected["error_kind"] == "overloaded"
            assert rejected["found"] is False
            assert "retry" in rejected["error"]
            assert elapsed < 5  # immediate, not after the blocked solve
            backend.release.set()
            assert c1.recv()["error_kind"] == "internal"
            assert c2.recv()["error_kind"] == "internal"
        with srv.client() as admin:
            stats = admin.round_trip({"op": "stats"})
            assert stats["counters"]["rejected_overloaded"] == 1
            assert_accounted(stats)


def test_queued_request_past_deadline_never_occupies_a_worker():
    backend = BlockingBackend()
    with running_server(
        lambda: backend, max_pending=8, workers=1
    ) as srv:
        with srv.client() as c1, srv.client() as c2:
            c1.send(GREEDY.to_dict())
            wait_for(backend.started.is_set)
            c2.send(GREEDY.replace(deadline_ms=50).to_dict())
            time.sleep(0.2)  # let the queued budget expire
            backend.started.clear()
            backend.release.set()
            assert c1.recv()["error_kind"] == "internal"
            expired = c2.recv()
            assert expired["error_kind"] == "deadline_exceeded"
            assert "50 ms" in expired["error"]
            # The expired request never reached the backend.
            time.sleep(0.05)
            assert not backend.started.is_set()
        with srv.client() as admin:
            stats = admin.round_trip({"op": "stats"})
            assert stats["counters"]["rejected_deadline"] == 1
            assert_accounted(stats)


def test_deadline_ms_zero_expires_at_admission(snapshot_store):
    with running_server(store_backend_loader(snapshot_store)) as srv:
        with srv.client() as client:
            response = client.round_trip(
                GREEDY.replace(deadline_ms=0).to_dict()
            )
            assert response["error_kind"] == "deadline_exceeded"
            # The echoed request round-trips its deadline.
            assert response["request"]["deadline_ms"] == 0


def test_server_default_deadline_applies_to_bare_requests(snapshot_store):
    with running_server(
        store_backend_loader(snapshot_store), default_deadline_ms=0
    ) as srv:
        with srv.client() as client:
            bare = client.round_trip(GREEDY.to_dict())
            assert bare["error_kind"] == "deadline_exceeded"
            # A per-request deadline overrides the server default.
            own = client.round_trip(GREEDY.replace(deadline_ms=60_000).to_dict())
            assert own["found"] is True


# ----------------------------------------------------------------------
# hot reload
# ----------------------------------------------------------------------
def _mutated_expected(store) -> str:
    """Save a mutated v' snapshot into ``store``; return its expected
    canonical answer for GREEDY (must differ from v's)."""
    engine = TeamFormationEngine.from_snapshot(store)
    with engine.mutate() as network:
        network.remove_expert("liu")  # the only other SN holder
    engine.save_snapshot(store)
    fresh = TeamFormationEngine.from_snapshot(store)
    return fresh.solve_isolated(GREEDY).canonical_json()


def test_reload_swaps_to_new_latest_and_storm_sees_no_torn_mix(tmp_path):
    store = tmp_path / "store"
    engine = TeamFormationEngine(build_figure1_network())
    engine.search_oracle("sa-ca-cc", SNAPSHOT_GAMMA)
    engine.save_snapshot(store)
    expected_v = TeamFormationEngine.from_snapshot(store).solve_isolated(
        GREEDY
    ).canonical_json()

    observed: list[str] = []
    failures: list[BaseException] = []
    stop = threading.Event()

    def storm():
        try:
            with srv.client() as client:
                while not stop.is_set():
                    observed.append(
                        canonical(client.round_trip_raw(GREEDY.to_dict()))
                    )
        except BaseException as exc:  # noqa: BLE001 - recorded for the assert
            failures.append(exc)

    with running_server(store_backend_loader(store), workers=2) as srv:
        threads = [threading.Thread(target=storm) for _ in range(3)]
        for t in threads:
            t.start()
        wait_for(lambda: len(observed) >= 5)
        expected_v2 = _mutated_expected(store)  # LATEST moves to v'
        with srv.client() as admin:
            envelope = admin.round_trip({"op": "reload"})
            assert envelope["ok"] is True
            # A request sent after the reload op returned must answer
            # from the new version — the swap is already published.
            assert (
                canonical(admin.round_trip_raw(GREEDY.to_dict()))
                == expected_v2
            )
        wait_for(lambda: observed and observed[-1] == expected_v2)
        stop.set()
        for t in threads:
            t.join(timeout=30)
        with srv.client() as admin:
            stats = admin.round_trip({"op": "stats"})
            assert stats["counters"]["reloads_ok"] == 1
            assert stats["backend"]["network_version"] > 0
            assert_accounted(stats)

    assert not failures, failures
    assert expected_v2 != expected_v  # the mutation really moved the answer
    allowed = {expected_v, expected_v2}
    assert set(observed) <= allowed  # never a torn mix, never an error
    assert expected_v2 in set(observed)


def test_failed_reload_keeps_old_backend_serving(tmp_path):
    store = tmp_path / "store"
    engine = TeamFormationEngine(build_figure1_network())
    engine.save_snapshot(store)
    expected = TeamFormationEngine.from_snapshot(store).solve_isolated(
        GREEDY
    ).canonical_json()
    with running_server(store_backend_loader(store)) as srv:
        with srv.client() as client:
            assert canonical(client.round_trip_raw(GREEDY.to_dict())) == expected
            # Corrupt the store: LATEST now names a garbage snapshot.
            garbage = store / "snap-000099-v9.snap"
            garbage.write_bytes(b"not a snapshot at all")
            (store / "LATEST").write_text("snap-000099-v9.snap\n")
            envelope = client.round_trip({"op": "reload"})
            assert envelope["ok"] is False
            assert "error" in envelope
            # The old backend keeps serving, byte-identically.
            assert canonical(client.round_trip_raw(GREEDY.to_dict())) == expected
            stats = client.round_trip({"op": "stats"})
            assert stats["counters"]["reloads_failed"] == 1
            # Never incremented -> never created (create-on-first-touch).
            assert stats["counters"].get("reloads_ok", 0) == 0
            assert_accounted(stats)


def test_fixed_engine_loader_reload_reserves_same_backend(snapshot_store):
    engine = TeamFormationEngine.from_snapshot(snapshot_store)
    expected = engine.solve_isolated(GREEDY).canonical_json()
    with running_server(fixed_engine_loader(engine)) as srv:
        with srv.client() as client:
            before = canonical(client.round_trip_raw(GREEDY.to_dict()))
            assert client.round_trip({"op": "reload"})["ok"] is True
            after = canonical(client.round_trip_raw(GREEDY.to_dict()))
    assert before == after == expected


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
def test_shutdown_op_stops_the_server_gracefully(snapshot_store):
    with running_server(store_backend_loader(snapshot_store)) as srv:
        with srv.client() as client:
            assert client.round_trip(GREEDY.to_dict())["found"] is True
            assert client.round_trip({"op": "shutdown"})["ok"] is True
        wait_for(lambda: srv.server.stopping)
        # The exit of the with-block calls stop() again: idempotent.


def test_server_validates_constructor_bounds(snapshot_store):
    loader = store_backend_loader(snapshot_store)
    with pytest.raises(ValueError):
        TeamServer(loader, max_pending=0)
    with pytest.raises(ValueError):
        TeamServer(loader, workers=0)
    with pytest.raises(ValueError):
        TeamServer(loader, default_deadline_ms=-1)


def test_startup_failure_propagates_to_the_caller(tmp_path):
    empty = tmp_path / "empty-store"
    empty.mkdir()
    from repro.storage import SnapshotError

    with pytest.raises(SnapshotError):
        with running_server(store_backend_loader(empty)):
            pass  # pragma: no cover - start() raises


# ----------------------------------------------------------------------
# replicated serving: the mutate op end to end
# ----------------------------------------------------------------------
MUTATION_OPS = [
    {"op": "add_expert", "id": "new", "skills": ["SN"], "h_index": 7},
    {"op": "add_collaboration", "u": "new", "v": "han", "weight": 0.5},
    {"op": "update_skills", "id": "bridge", "skills": ["TM"]},
]


def test_replicated_server_mutates_and_serves_the_new_version(snapshot_store):
    from repro.serving.replication import apply_network_op
    from repro.serving.server import replicated_backend_loader

    # The reference: a plain engine that applies the same ops locally.
    reference = TeamFormationEngine.from_snapshot(snapshot_store)
    loader = replicated_backend_loader(snapshot_store, replicas=1)
    with running_server(loader) as srv, srv.client() as client:
        before = TeamResponse.from_json(client.round_trip_raw(GREEDY.to_dict()))
        assert before.network_version == 0
        assert canonical(before.to_json()) == canonical(
            reference.solve(GREEDY).to_json()
        )
        envelope = client.round_trip({"op": "mutate", "ops": MUTATION_OPS})
        assert envelope["ok"] is True
        assert envelope["applied"] == len(MUTATION_OPS)
        assert envelope["primary_version"] == envelope["replica_version"] == 3
        with reference.mutate() as network:
            for op in MUTATION_OPS:
                apply_network_op(network, op)
        after = TeamResponse.from_json(client.round_trip_raw(GREEDY.to_dict()))
        assert after.network_version == 3
        assert canonical(after.to_json()) == canonical(
            reference.solve(GREEDY).to_json()
        )
        stats = client.round_trip({"op": "stats"})
        assert stats["backend"]["kind"] == "replicated"
        assert stats["backend"]["replica_version"] == 3


def test_replicated_server_failing_op_reports_and_stays_synced(
    snapshot_store,
):
    from repro.serving.server import replicated_backend_loader

    loader = replicated_backend_loader(snapshot_store, replicas=1)
    with running_server(loader) as srv, srv.client() as client:
        envelope = client.round_trip(
            {
                "op": "mutate",
                "ops": [
                    {"op": "update_h_index", "id": "liu", "h_index": 12},
                    {"op": "remove_expert", "id": "nobody"},
                    {"op": "update_h_index", "id": "ren", "h_index": 1},
                ],
            }
        )
        assert envelope["ok"] is False
        assert envelope["applied"] == 1
        assert "nobody" in envelope["error"]
        # The applied prefix still replicated: answers carry version 1.
        response = TeamResponse.from_json(
            client.round_trip_raw(GREEDY.to_dict())
        )
        assert response.network_version == 1
        assert envelope["replica_version"] == envelope["primary_version"] == 1


def test_mutate_op_refused_without_a_replicated_backend(snapshot_store):
    with running_server(store_backend_loader(snapshot_store)) as srv:
        with srv.client() as client:
            envelope = client.round_trip(
                {"op": "mutate", "ops": [{"op": "remove_expert", "id": "x"}]}
            )
            assert envelope["ok"] is False
            assert "--replicate" in envelope["error"]
            # The refusal is in-band; the connection still serves.
            assert client.round_trip(GREEDY.to_dict())["found"]


def test_mutate_op_validates_the_ops_payload(snapshot_store):
    from repro.serving.server import replicated_backend_loader

    loader = replicated_backend_loader(snapshot_store, replicas=1)
    with running_server(loader) as srv, srv.client() as client:
        for bad in ({"op": "mutate"}, {"op": "mutate", "ops": "x"},
                    {"op": "mutate", "ops": [17]}):
            envelope = client.round_trip(bad)
            assert envelope["ok"] is False
            assert '"ops" list' in envelope["error"]
        assert client.round_trip({"op": "ping"}) == {"op": "ping", "ok": True}


# ----------------------------------------------------------------------
# observability (PR 9): metrics op, mutate counters, slow log, tracing
# ----------------------------------------------------------------------
def test_metrics_op_returns_prometheus_text(snapshot_store):
    with running_server(store_backend_loader(snapshot_store)) as srv:
        with srv.client() as client:
            assert client.round_trip(GREEDY.to_dict())["found"]
            envelope = client.round_trip({"op": "metrics"})
            assert envelope["op"] == "metrics"
            assert envelope["content_type"].startswith("text/plain")
            text = envelope["text"]
            assert "# TYPE repro_requests_received counter" in text
            assert "repro_requests_received 1" in text
            # The per-layer registry is merged into the same exposition.
            assert "repro_engine_solves" in text


def test_mutate_outcomes_are_counted(snapshot_store):
    from repro.serving.server import replicated_backend_loader

    loader = replicated_backend_loader(snapshot_store, replicas=1)
    with running_server(loader) as srv, srv.client() as client:
        ok = client.round_trip({"op": "mutate", "ops": MUTATION_OPS})
        assert ok["ok"] is True
        failing = client.round_trip(
            {"op": "mutate", "ops": [{"op": "remove_expert", "id": "ghost"}]}
        )
        assert failing["ok"] is False
        invalid = client.round_trip({"op": "mutate", "ops": "nonsense"})
        assert invalid["ok"] is False

        c = counters(client)
        assert c["op_mutate"] == 3
        assert c["mutate_ok"] == 1
        assert c["mutate_failed"] == 2
        assert c["mutate_ops_applied"] == len(MUTATION_OPS)
        assert c["replication_syncs"] >= 1
        assert_accounted(client.round_trip({"op": "stats"}))


def test_slow_query_log_emits_the_span_tree(snapshot_store, caplog):
    import logging

    with caplog.at_level(logging.WARNING, logger="repro.obs.slow"):
        with running_server(
            store_backend_loader(snapshot_store), slow_ms=0.0
        ) as srv:
            with srv.client() as client:
                assert client.round_trip(GREEDY.to_dict())["found"]
                wait_for(
                    lambda: any(
                        r.name == "repro.obs.slow" for r in caplog.records
                    )
                )
                assert counters(client).get("slow_queries", 0) >= 1
    record = next(r for r in caplog.records if r.name == "repro.obs.slow")
    payload = json.loads(record.getMessage())
    assert payload["threshold_ms"] == 0.0
    assert payload["slow_ms"] >= 0.0
    tree = payload["trace"]
    assert tree["name"] == "request"
    names = set()

    def walk(node):
        names.add(node["name"])
        for child in node.get("children", ()):
            walk(child)

    walk(tree)
    assert {"request", "queue_wait", "engine.solve"} <= names


def test_traced_request_carries_span_tree_and_stays_canonical(
    snapshot_store,
):
    loader = lambda: PoolBackend(  # noqa: E731 - tiny test-only loader
        EngineReplicaPool(snapshot_store, replicas=1)
    )
    reference = TeamFormationEngine.from_snapshot(snapshot_store)
    expected = canonical(reference.solve(GREEDY).to_json())
    with running_server(loader, trace_requests=True) as srv:
        with srv.client() as client:
            raw = client.round_trip_raw(GREEDY.to_dict())
            response = json.loads(raw)
            tree = response["timing"]["trace"]
            names = set()

            def walk(node):
                names.add(node["name"])
                for child in node.get("children", ()):
                    walk(child)

            walk(tree)
            # Acceptance: the tree covers admission -> pool -> engine
            # cache -> kernel query in one connected trace.
            assert {
                "request",
                "queue_wait",
                "pool.solve_many",
                "engine.solve",
                "engine.oracle",
                "pll.query",
            } <= names
            assert tree["span_id" if "span_id" in tree else "id"] == 1
            assert tree["attrs"]["outcome"] == "found"
            # Identity: the trace rides in timing only, which canonical
            # form nulls -- traced bytes reduce to the untraced answer.
            assert canonical(raw) == expected
