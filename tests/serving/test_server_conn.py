"""The NDJSON wire protocol: line parsing and the in-band error shape.

The parsing contract mirrors the batch loop's (same field names, same
validation), but failure handling differs by design: batch parsing
aborts with a usage error, while the wire parser raises a typed
:class:`WireProtocolError` the connection handler answers in-band —
a long-lived server survives bad input.
"""

from __future__ import annotations

import json

import pytest

from repro.api.messages import TeamRequest
from repro.serving.server_conn import (
    ADMIN_OPS,
    WireProtocolError,
    error_line,
    parse_line,
)


def test_parse_line_solve_request():
    kind, request = parse_line(
        '{"skills": ["SN", "TM"], "solver": "greedy", "deadline_ms": 250}'
    )
    assert kind == "solve"
    assert isinstance(request, TeamRequest)
    assert request.skills == ("SN", "TM")
    assert request.deadline_ms == 250


def test_parse_line_admin_ops():
    # The full payload object comes through, not just the op name —
    # ops like mutate carry arguments next to their "op" key.
    for op in ADMIN_OPS:
        assert parse_line(json.dumps({"op": op})) == ("op", {"op": op})
    kind, data = parse_line('{"op": "mutate", "ops": [{"op": "add_expert"}]}')
    assert kind == "op"
    assert data == {"op": "mutate", "ops": [{"op": "add_expert"}]}


def test_parse_line_unknown_op_lists_known_ones():
    with pytest.raises(WireProtocolError, match="known ops"):
        parse_line('{"op": "selfdestruct"}')


def test_parse_line_malformed_json():
    with pytest.raises(WireProtocolError, match="invalid JSON"):
        parse_line("{not json")


def test_parse_line_non_object():
    with pytest.raises(WireProtocolError, match="JSON object"):
        parse_line('["skills"]')


def test_parse_line_missing_required_field():
    with pytest.raises(WireProtocolError, match="skills"):
        parse_line('{"solver": "greedy"}')


def test_parse_line_invalid_request_value():
    with pytest.raises(WireProtocolError, match="deadline_ms"):
        parse_line('{"skills": ["SN"], "deadline_ms": -3}')


def test_parse_line_keeps_unknown_solver():
    # Unknown solvers pass the wire layer: the engine's isolation layer
    # answers them with the same typed response bytes the batch path
    # produces, so rejecting here would fork the protocol.
    kind, request = parse_line('{"skills": ["SN"], "solver": "nope"}')
    assert kind == "solve"
    assert request.solver == "nope"


def test_error_line_shape_is_sorted_json():
    line = error_line("boom")
    assert line == json.dumps(
        {"op": "error", "error": "boom", "error_kind": "invalid_request"},
        sort_keys=True,
    )
    assert json.loads(line)["error_kind"] == "invalid_request"
