"""The replica pool: placement planning and end-to-end identity.

The pool's contract: N worker processes each warm-start from one
snapshot (zero builds at load), responses come back in request order
and byte-identical (timing aside) to a sequential engine serving the
same snapshot, warm request groups spread across replicas, and cold
groups build their index at most once pool-wide.
"""

from __future__ import annotations

import pytest

from repro.api import TeamFormationEngine, TeamRequest
from repro.serving.batch import (
    plan_jobs,
    request_home_shard,
    request_index_key,
)
from repro.serving.pool import EngineReplicaPool
from repro.storage import SnapshotError

from ..api.conftest import PROJECT, build_figure1_network

GREEDY = TeamRequest(skills=PROJECT, solver="greedy")
SNAPSHOT_GAMMA = 0.6


def canonical(response) -> str:
    return response.canonical_json()


@pytest.fixture(scope="module")
def snapshot_store(tmp_path_factory):
    """A store holding one warm snapshot of the figure-1 engine."""
    store = tmp_path_factory.mktemp("pool-store")
    engine = TeamFormationEngine(build_figure1_network())
    engine.search_oracle("sa-ca-cc", SNAPSHOT_GAMMA)
    engine.raw_oracle()
    engine.save_snapshot(store)
    return store


# ----------------------------------------------------------------------
# placement planning
# ----------------------------------------------------------------------
def test_request_index_key_mirrors_engine_keying():
    assert request_index_key(GREEDY) == ("pll", "fold", 0.6)
    assert request_index_key(GREEDY.replace(objective="ca")) == (
        "pll",
        "fold",
        1.0,
    )
    assert request_index_key(GREEDY.replace(objective="cc")) == ("pll", "cc")
    assert request_index_key(GREEDY.replace(solver="rarest_first")) == (
        "pll",
        "raw",
    )
    assert request_index_key(GREEDY.replace(solver="pareto")) == (
        "pll",
        "pareto",
    )
    for solver in ("sa_optimal", "exact", "brute_force", "random"):
        assert request_index_key(GREEDY.replace(solver=solver)) is None
    assert request_index_key(GREEDY.replace(oracle_kind="dijkstra")) == (
        "dijkstra",
        "fold",
        0.6,
    )


def test_plan_jobs_splits_warm_and_pins_cold():
    warm = {("pll", "fold", 0.6)}
    requests = [GREEDY.replace(lam=lam) for lam in (0.1, 0.2, 0.3, 0.4)] + [
        GREEDY.replace(gamma=0.9, lam=lam) for lam in (0.1, 0.2, 0.3)
    ]
    jobs = plan_jobs(requests, replicas=4, warm_bases=warm)
    # Every request placed exactly once.
    placed = sorted(index for _, job in jobs for index in job)
    assert placed == list(range(len(requests)))
    cold = [(pin, job) for pin, job in jobs if set(job) & {4, 5, 6}]
    assert cold == [
        (("pll", "fold", 0.9), [4, 5, 6])
    ], "cold gamma group must stay whole and carry its pin key"
    warm_jobs = [job for pin, job in jobs if pin is None]
    assert len(warm_jobs) == 4, "warm group spreads across all replicas"


def test_plan_jobs_no_index_requests_always_spread():
    requests = [
        GREEDY.replace(solver="sa_optimal", lam=lam)
        for lam in (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)
    ]
    jobs = plan_jobs(requests, replicas=3, warm_bases=())
    assert len(jobs) == 3
    assert all(pin is None for pin, _ in jobs)
    assert sorted(i for _, job in jobs for i in job) == list(range(6))


def test_plan_jobs_single_replica_is_one_job_per_group():
    requests = [GREEDY, GREEDY.replace(solver="rarest_first")]
    jobs = plan_jobs(requests, replicas=1, warm_bases=())
    assert sorted(i for _, job in jobs for i in job) == [0, 1]
    with pytest.raises(ValueError):
        plan_jobs(requests, replicas=0, warm_bases=())


# ----------------------------------------------------------------------
# shard-residency placement (PR-10)
# ----------------------------------------------------------------------
RESIDENCY = {"SN": 0, "TM": 0, "DB": 1}


def test_request_home_shard_majority_and_ties():
    assert request_home_shard(GREEDY, RESIDENCY) == 0  # SN+TM both vote 0
    assert request_home_shard(
        TeamRequest(skills=("DB",), solver="greedy"), RESIDENCY
    ) == 1
    # Tie between shard 0 (SN) and shard 1 (DB): lowest shard id wins.
    assert request_home_shard(
        TeamRequest(skills=("SN", "DB"), solver="greedy"), RESIDENCY
    ) == 0
    # No known skill: no affinity.
    assert request_home_shard(
        TeamRequest(skills=("ML",), solver="greedy"), RESIDENCY
    ) is None


def test_plan_jobs_pins_warm_groups_by_shard_residency():
    warm = {("pll", "fold", 0.6)}
    requests = [
        GREEDY.replace(lam=0.1),  # shard 0
        TeamRequest(skills=("DB",), solver="greedy"),  # shard 1
        GREEDY.replace(lam=0.2),  # shard 0
        TeamRequest(skills=("ML",), solver="greedy"),  # no affinity
    ]
    jobs = plan_jobs(requests, 3, warm, RESIDENCY)
    assert sorted(i for _, job in jobs for i in job) == [0, 1, 2, 3]
    by_pin = {pin: job for pin, job in jobs}
    assert by_pin[("shard", 0)] == [0, 2]
    assert by_pin[("shard", 1)] == [1]
    assert by_pin[None] == [3]


def test_plan_jobs_residency_ignores_no_index_groups():
    requests = [
        GREEDY.replace(solver="sa_optimal", lam=lam) for lam in (0.1, 0.2)
    ]
    jobs = plan_jobs(requests, 2, (), RESIDENCY)
    assert all(pin is None for pin, _ in jobs), (
        "no-index solvers never touch labels; balance beats affinity"
    )


def test_plan_jobs_residency_keeps_cold_groups_pinned_by_base():
    requests = [GREEDY.replace(gamma=0.9)]  # cold: not in warm_bases
    jobs = plan_jobs(requests, 2, (), RESIDENCY)
    assert jobs == [((("pll", "fold", 0.9)), [0])]


def test_plan_jobs_residency_noop_on_single_replica():
    requests = [GREEDY, GREEDY.replace(lam=0.9)]
    warm = {("pll", "fold", 0.6)}
    assert plan_jobs(requests, 1, warm, RESIDENCY) == plan_jobs(
        requests, 1, warm
    )


def test_plan_jobs_without_residency_unchanged():
    warm = {("pll", "fold", 0.6)}
    requests = [GREEDY.replace(lam=lam) for lam in (0.1, 0.2, 0.3, 0.4)]
    assert plan_jobs(requests, 2, warm) == plan_jobs(
        requests, 2, warm, None
    )


def test_sharded_snapshot_pool_answers_identical(tmp_path):
    """A pool over a sharded snapshot == the sharded engine == monolithic."""
    engine = TeamFormationEngine(build_figure1_network(), shards=2)
    engine.search_oracle("sa-ca-cc", SNAPSHOT_GAMMA)
    engine.raw_oracle()
    store = tmp_path / "sharded-store"
    engine.save_snapshot(store)
    requests = [
        GREEDY.replace(lam=lam) for lam in (0.2, 0.4, 0.6)
    ] + [GREEDY.replace(solver="rarest_first")]
    expected = [canonical(r) for r in engine.solve_many(requests)]
    mono = TeamFormationEngine(build_figure1_network())
    assert [
        canonical(r) for r in mono.solve_many(requests)
    ] == expected, "sharded engine must match monolithic before pooling"
    with EngineReplicaPool(store, replicas=2) as pool:
        assert pool._shard_residency is not None
        got = [canonical(r) for r in pool.solve_many(requests)]
    assert got == expected


# ----------------------------------------------------------------------
# end to end
# ----------------------------------------------------------------------
def batch() -> list[TeamRequest]:
    return [
        # Warm fold group (snapshot carries gamma=0.6): splits.
        *[GREEDY.replace(lam=lam) for lam in (0.2, 0.4, 0.6, 0.8)],
        # Warm raw group.
        TeamRequest(skills=("DB",), solver="rarest_first"),
        # No-index solver.
        GREEDY.replace(solver="sa_optimal", lam=0.5),
        # Cold fold group (gamma not in the snapshot): pinned.
        *[GREEDY.replace(gamma=0.25, lam=lam) for lam in (0.3, 0.7)],
        # Poisoned request: isolation must answer it in-band.
        GREEDY.replace(solver="no_such_solver"),
    ]


def test_pool_matches_sequential_engine(snapshot_store):
    requests = batch()
    sequential = TeamFormationEngine.from_snapshot(snapshot_store).solve_many(
        requests
    )
    with EngineReplicaPool(snapshot_store, replicas=2) as pool:
        pooled = pool.solve_many(requests)
    assert [canonical(r) for r in pooled] == [
        canonical(r) for r in sequential
    ]
    assert pooled[-1].error_kind == "unknown_solver"
    assert all(
        pooled[i].request == requests[i] for i in range(len(requests))
    ), "responses must come back in request order"


def test_pool_warm_requests_never_build(snapshot_store):
    """Zero builds per worker: warm-group responses report 0 builds."""
    warm_only = [GREEDY.replace(lam=lam) for lam in (0.2, 0.4, 0.6, 0.8)] + [
        TeamRequest(skills=("DB",), solver="rarest_first")
    ]
    with EngineReplicaPool(snapshot_store, replicas=2) as pool:
        responses = pool.solve_many(warm_only)
    assert all(r.timing is not None for r in responses)
    assert sum(r.timing.oracle_builds for r in responses) == 0


def test_pool_cold_group_builds_once_pool_wide(snapshot_store):
    """A cold gamma group pays exactly one build across the whole pool."""
    cold = [GREEDY.replace(gamma=0.33, lam=lam) for lam in (0.2, 0.5, 0.8)]
    with EngineReplicaPool(snapshot_store, replicas=2) as pool:
        responses = pool.solve_many(cold)
    assert sum(r.timing.oracle_builds for r in responses) == 1


def test_pool_cold_group_sticks_to_one_replica_across_batches(snapshot_store):
    """Pinning is sticky for the pool's lifetime, not per batch.

    Without worker affinity a second batch could land the same cold
    group on a replica that never built its index and pay a second
    build; sticky routing makes the follow-up batch report zero.
    """
    cold = [GREEDY.replace(gamma=0.41, lam=lam) for lam in (0.2, 0.5, 0.8)]
    with EngineReplicaPool(snapshot_store, replicas=2) as pool:
        first = pool.solve_many(cold)
        second = pool.solve_many(cold)
        third = pool.solve_many(list(reversed(cold)))
    assert sum(r.timing.oracle_builds for r in first) == 1
    assert sum(r.timing.oracle_builds for r in second) == 0
    assert sum(r.timing.oracle_builds for r in third) == 0


def test_pool_degrades_to_local_replica(snapshot_store):
    pool = EngineReplicaPool(snapshot_store, replicas=1)
    try:
        responses = pool.solve_many([GREEDY])
        assert responses[0].found
        assert pool.replicas == 1
    finally:
        pool.close()
    with pytest.raises(RuntimeError):
        pool.solve_many([GREEDY])


def test_pool_empty_batch_and_validation(snapshot_store, tmp_path):
    with EngineReplicaPool(snapshot_store, replicas=1) as pool:
        assert pool.solve_many([]) == []
    with pytest.raises(ValueError):
        EngineReplicaPool(snapshot_store, replicas=0)
    with pytest.raises(SnapshotError):
        EngineReplicaPool(tmp_path / "missing.snap", replicas=1)


def test_pool_worker_init_failure_raises_instead_of_hanging(
    snapshot_store, monkeypatch
):
    """A failing worker warm start surfaces as an error, not a hang.

    A worker process pool that silently respawns a crashing initializer
    would hang the first batch forever; the pool instead records the
    failure worker-side, probes every replica eagerly, and raises at
    construction.  Forked workers inherit the parent's monkeypatched
    ``from_snapshot``, simulating a snapshot that vanished between
    parent validation and worker start.
    """
    import multiprocessing

    if multiprocessing.get_start_method() != "fork":
        pytest.skip("failure injection relies on fork inheritance")

    def boom(cls, source, **kwargs):
        raise OSError("snapshot file vanished before the worker started")

    monkeypatch.setattr(
        TeamFormationEngine, "from_snapshot", classmethod(boom)
    )
    with pytest.raises(RuntimeError, match="replica warm start failed"):
        EngineReplicaPool(snapshot_store, replicas=2)


def test_pool_rejects_corrupt_snapshot_in_parent(snapshot_store, tmp_path):
    """Corruption fails fast with a typed error, not a worker crash."""
    from repro.storage import CorruptSnapshotError, resolve_snapshot_path

    source = resolve_snapshot_path(snapshot_store)
    data = bytearray(source.read_bytes())
    data[-3] ^= 0xFF  # flip a payload byte
    broken = tmp_path / "broken.snap"
    broken.write_bytes(bytes(data))
    with pytest.raises(CorruptSnapshotError):
        EngineReplicaPool(broken, replicas=2)


# ----------------------------------------------------------------------
# batch routing must not serialize callers (PR-8 bugfix)
# ----------------------------------------------------------------------
class _StubWorker:
    """A fake worker executor: records submissions, resolves on demand."""

    def __init__(self):
        import threading

        self.submissions = []
        self.submitted = threading.Event()

    def submit(self, fn, payload):
        from concurrent.futures import Future

        future = Future()
        self.submissions.append((payload, future))
        self.submitted.set()
        return future

    def shutdown(self, wait=False, cancel_futures=False):
        pass


def test_solve_many_does_not_hold_route_lock_across_submit(snapshot_store):
    """Routing takes the lock; submitting and awaiting must not.

    Regression pin: if ``solve_many`` held ``_route_lock`` while
    awaiting worker results, a second concurrent batch could not even
    *route* until the first completed — single-request batches through
    the server would serialize.  With stub workers whose futures only
    resolve when the test says so, the second thread must reach its
    submit while the first is still blocked awaiting its result.
    """
    import threading

    engine = TeamFormationEngine.from_snapshot(snapshot_store)
    pool = EngineReplicaPool(snapshot_store, replicas=1)
    stubs = [_StubWorker(), _StubWorker()]
    pool._workers = stubs  # degrade-mode pool, stub process executors
    pool._local = None
    requests = [GREEDY, GREEDY.replace(lam=0.3)]
    results: list = [None, None]

    def run(slot: int) -> None:
        results[slot] = pool.solve_many([requests[slot]])

    threads = [
        threading.Thread(target=run, args=(slot,)) for slot in (0, 1)
    ]
    threads[0].start()
    assert stubs[0].submitted.wait(5), "first batch never reached submit"
    threads[1].start()
    # The proof: the second batch routes AND submits while the first
    # batch's future is still unresolved.
    assert stubs[1].submitted.wait(5), (
        "second batch blocked on _route_lock while the first awaited "
        "its worker result"
    )
    for stub in stubs:
        for payload, future in stub.submissions:
            future.set_result(
                [
                    (
                        index,
                        engine.solve_isolated(
                            TeamRequest.from_json(text)
                        ).to_json(),
                    )
                    for index, text in payload
                ]
            )
    for thread in threads:
        thread.join(timeout=5)
        assert not thread.is_alive()
    for slot in (0, 1):
        assert canonical(results[slot][0]) == canonical(
            engine.solve_isolated(requests[slot])
        )


# ----------------------------------------------------------------------
# replication: syncing the pool against a live primary
# ----------------------------------------------------------------------
RAREST = TeamRequest(skills=("DB",), solver="rarest_first")


def primary_with_log(snapshot_store, **log_kwargs):
    from repro.serving.replication import ReplicationLog

    primary = TeamFormationEngine.from_snapshot(snapshot_store)
    return primary, ReplicationLog(primary, **log_kwargs)


def test_pool_sync_advances_and_stamps_versions(snapshot_store):
    primary, log = primary_with_log(snapshot_store)
    with EngineReplicaPool(snapshot_store, replicas=1) as pool:
        pool.attach_primary(log)
        before = pool.solve_many([GREEDY])[0]
        assert before.network_version == 0
        with primary.mutate() as network:
            network.update_h_index("liu", 30)
            network.add_collaboration("liu", "golshan", weight=0.4)
        assert pool.sync() == primary.network.version
        after = pool.solve_many([GREEDY])[0]
        assert after.network_version == primary.network.version
        assert canonical(after) == canonical(primary.solve(GREEDY))
        assert pool.snapshot_fallbacks == 0
        # Syncing at the tip is a no-op.
        assert pool.sync() == pool.replica_version


def test_pool_sync_worker_mode_converges_all_replicas(snapshot_store):
    primary, log = primary_with_log(snapshot_store)
    with EngineReplicaPool(snapshot_store, replicas=2) as pool:
        pool.attach_primary(log)
        with primary.mutate() as network:
            network.update_skills("bridge", {"SN", "DB"})
            network.add_collaboration("ren", "kotzias", weight=0.7)
        version = pool.sync()
        assert version == primary.network.version
        # Enough requests that both replicas answer some of the batch.
        requests = [GREEDY.replace(lam=lam) for lam in (0.2, 0.4, 0.6, 0.8)]
        live = [primary.solve(r) for r in requests]
        pooled = pool.solve_many(requests)
        assert [canonical(r) for r in pooled] == [canonical(r) for r in live]
        assert all(r.network_version == version for r in pooled)


def test_pool_falls_back_past_the_journal_floor(snapshot_store):
    """Satellite pin: a shrunken journal bound under a live follower.

    The primary's log only retains 2 records; after 5 mutations the
    pool's catch-up delta is gone.  That must surface as one counted
    full-snapshot fallback that still converges — never a silent
    'rebuild from scratch' or a stale answer.
    """
    primary, log = primary_with_log(snapshot_store, capacity=2)
    with EngineReplicaPool(snapshot_store, replicas=1) as pool:
        pool.attach_primary(log)
        with primary.mutate() as network:
            for i in range(5):
                network.update_h_index("liu", 10 + i)
        assert pool.snapshot_fallbacks == 0
        version = pool.sync()
        assert version == primary.network.version
        assert pool.snapshot_fallbacks == 1
        assert canonical(pool.solve_many([GREEDY])[0]) == canonical(
            primary.solve(GREEDY)
        )


def test_pool_bounded_staleness_rejects_with_a_typed_error(snapshot_store):
    primary, log = primary_with_log(snapshot_store)
    with EngineReplicaPool(snapshot_store, replicas=1) as pool:
        pool.attach_primary(log, max_lag_ms=0.0)
        current = pool.solve_many([GREEDY])[0]
        assert current.error_kind is None  # in budget: answered
        with primary.mutate() as network:
            network.update_h_index("liu", 30)
        rejected = pool.solve_many([GREEDY, RAREST])
        assert [r.error_kind for r in rejected] == ["stale_replica"] * 2
        assert all(not r.found for r in rejected)
        assert all(
            r.network_version == pool.replica_version for r in rejected
        )
        pool.sync()
        healed = pool.solve_many([GREEDY])[0]
        assert healed.error_kind is None
        assert canonical(healed) == canonical(primary.solve(GREEDY))


def test_pool_replication_validation(snapshot_store):
    primary, log = primary_with_log(snapshot_store)
    with EngineReplicaPool(snapshot_store, replicas=1) as pool:
        with pytest.raises(RuntimeError, match="no replication log"):
            pool.sync()
        with pytest.raises(ValueError, match="non-negative"):
            pool.attach_primary(log, max_lag_ms=-1.0)
        pool.attach_primary(log)
        # Unreplicated pools never stamp; replicated ones always do —
        # which is why attaching is opt-in.
        assert pool.solve_many([GREEDY])[0].network_version == 0
