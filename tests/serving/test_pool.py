"""The replica pool: placement planning and end-to-end identity.

The pool's contract: N worker processes each warm-start from one
snapshot (zero builds at load), responses come back in request order
and byte-identical (timing aside) to a sequential engine serving the
same snapshot, warm request groups spread across replicas, and cold
groups build their index at most once pool-wide.
"""

from __future__ import annotations

import pytest

from repro.api import TeamFormationEngine, TeamRequest
from repro.serving.batch import plan_jobs, request_index_key
from repro.serving.pool import EngineReplicaPool
from repro.storage import SnapshotError

from ..api.conftest import PROJECT, build_figure1_network

GREEDY = TeamRequest(skills=PROJECT, solver="greedy")
SNAPSHOT_GAMMA = 0.6


def canonical(response) -> str:
    return response.canonical_json()


@pytest.fixture(scope="module")
def snapshot_store(tmp_path_factory):
    """A store holding one warm snapshot of the figure-1 engine."""
    store = tmp_path_factory.mktemp("pool-store")
    engine = TeamFormationEngine(build_figure1_network())
    engine.search_oracle("sa-ca-cc", SNAPSHOT_GAMMA)
    engine.raw_oracle()
    engine.save_snapshot(store)
    return store


# ----------------------------------------------------------------------
# placement planning
# ----------------------------------------------------------------------
def test_request_index_key_mirrors_engine_keying():
    assert request_index_key(GREEDY) == ("pll", "fold", 0.6)
    assert request_index_key(GREEDY.replace(objective="ca")) == (
        "pll",
        "fold",
        1.0,
    )
    assert request_index_key(GREEDY.replace(objective="cc")) == ("pll", "cc")
    assert request_index_key(GREEDY.replace(solver="rarest_first")) == (
        "pll",
        "raw",
    )
    assert request_index_key(GREEDY.replace(solver="pareto")) == (
        "pll",
        "pareto",
    )
    for solver in ("sa_optimal", "exact", "brute_force", "random"):
        assert request_index_key(GREEDY.replace(solver=solver)) is None
    assert request_index_key(GREEDY.replace(oracle_kind="dijkstra")) == (
        "dijkstra",
        "fold",
        0.6,
    )


def test_plan_jobs_splits_warm_and_pins_cold():
    warm = {("pll", "fold", 0.6)}
    requests = [GREEDY.replace(lam=lam) for lam in (0.1, 0.2, 0.3, 0.4)] + [
        GREEDY.replace(gamma=0.9, lam=lam) for lam in (0.1, 0.2, 0.3)
    ]
    jobs = plan_jobs(requests, replicas=4, warm_bases=warm)
    # Every request placed exactly once.
    placed = sorted(index for _, job in jobs for index in job)
    assert placed == list(range(len(requests)))
    cold = [(pin, job) for pin, job in jobs if set(job) & {4, 5, 6}]
    assert cold == [
        (("pll", "fold", 0.9), [4, 5, 6])
    ], "cold gamma group must stay whole and carry its pin key"
    warm_jobs = [job for pin, job in jobs if pin is None]
    assert len(warm_jobs) == 4, "warm group spreads across all replicas"


def test_plan_jobs_no_index_requests_always_spread():
    requests = [
        GREEDY.replace(solver="sa_optimal", lam=lam)
        for lam in (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)
    ]
    jobs = plan_jobs(requests, replicas=3, warm_bases=())
    assert len(jobs) == 3
    assert all(pin is None for pin, _ in jobs)
    assert sorted(i for _, job in jobs for i in job) == list(range(6))


def test_plan_jobs_single_replica_is_one_job_per_group():
    requests = [GREEDY, GREEDY.replace(solver="rarest_first")]
    jobs = plan_jobs(requests, replicas=1, warm_bases=())
    assert sorted(i for _, job in jobs for i in job) == [0, 1]
    with pytest.raises(ValueError):
        plan_jobs(requests, replicas=0, warm_bases=())


# ----------------------------------------------------------------------
# end to end
# ----------------------------------------------------------------------
def batch() -> list[TeamRequest]:
    return [
        # Warm fold group (snapshot carries gamma=0.6): splits.
        *[GREEDY.replace(lam=lam) for lam in (0.2, 0.4, 0.6, 0.8)],
        # Warm raw group.
        TeamRequest(skills=("DB",), solver="rarest_first"),
        # No-index solver.
        GREEDY.replace(solver="sa_optimal", lam=0.5),
        # Cold fold group (gamma not in the snapshot): pinned.
        *[GREEDY.replace(gamma=0.25, lam=lam) for lam in (0.3, 0.7)],
        # Poisoned request: isolation must answer it in-band.
        GREEDY.replace(solver="no_such_solver"),
    ]


def test_pool_matches_sequential_engine(snapshot_store):
    requests = batch()
    sequential = TeamFormationEngine.from_snapshot(snapshot_store).solve_many(
        requests
    )
    with EngineReplicaPool(snapshot_store, replicas=2) as pool:
        pooled = pool.solve_many(requests)
    assert [canonical(r) for r in pooled] == [
        canonical(r) for r in sequential
    ]
    assert pooled[-1].error_kind == "unknown_solver"
    assert all(
        pooled[i].request == requests[i] for i in range(len(requests))
    ), "responses must come back in request order"


def test_pool_warm_requests_never_build(snapshot_store):
    """Zero builds per worker: warm-group responses report 0 builds."""
    warm_only = [GREEDY.replace(lam=lam) for lam in (0.2, 0.4, 0.6, 0.8)] + [
        TeamRequest(skills=("DB",), solver="rarest_first")
    ]
    with EngineReplicaPool(snapshot_store, replicas=2) as pool:
        responses = pool.solve_many(warm_only)
    assert all(r.timing is not None for r in responses)
    assert sum(r.timing.oracle_builds for r in responses) == 0


def test_pool_cold_group_builds_once_pool_wide(snapshot_store):
    """A cold gamma group pays exactly one build across the whole pool."""
    cold = [GREEDY.replace(gamma=0.33, lam=lam) for lam in (0.2, 0.5, 0.8)]
    with EngineReplicaPool(snapshot_store, replicas=2) as pool:
        responses = pool.solve_many(cold)
    assert sum(r.timing.oracle_builds for r in responses) == 1


def test_pool_cold_group_sticks_to_one_replica_across_batches(snapshot_store):
    """Pinning is sticky for the pool's lifetime, not per batch.

    Without worker affinity a second batch could land the same cold
    group on a replica that never built its index and pay a second
    build; sticky routing makes the follow-up batch report zero.
    """
    cold = [GREEDY.replace(gamma=0.41, lam=lam) for lam in (0.2, 0.5, 0.8)]
    with EngineReplicaPool(snapshot_store, replicas=2) as pool:
        first = pool.solve_many(cold)
        second = pool.solve_many(cold)
        third = pool.solve_many(list(reversed(cold)))
    assert sum(r.timing.oracle_builds for r in first) == 1
    assert sum(r.timing.oracle_builds for r in second) == 0
    assert sum(r.timing.oracle_builds for r in third) == 0


def test_pool_degrades_to_local_replica(snapshot_store):
    pool = EngineReplicaPool(snapshot_store, replicas=1)
    try:
        responses = pool.solve_many([GREEDY])
        assert responses[0].found
        assert pool.replicas == 1
    finally:
        pool.close()
    with pytest.raises(RuntimeError):
        pool.solve_many([GREEDY])


def test_pool_empty_batch_and_validation(snapshot_store, tmp_path):
    with EngineReplicaPool(snapshot_store, replicas=1) as pool:
        assert pool.solve_many([]) == []
    with pytest.raises(ValueError):
        EngineReplicaPool(snapshot_store, replicas=0)
    with pytest.raises(SnapshotError):
        EngineReplicaPool(tmp_path / "missing.snap", replicas=1)


def test_pool_worker_init_failure_raises_instead_of_hanging(
    snapshot_store, monkeypatch
):
    """A failing worker warm start surfaces as an error, not a hang.

    A worker process pool that silently respawns a crashing initializer
    would hang the first batch forever; the pool instead records the
    failure worker-side, probes every replica eagerly, and raises at
    construction.  Forked workers inherit the parent's monkeypatched
    ``from_snapshot``, simulating a snapshot that vanished between
    parent validation and worker start.
    """
    import multiprocessing

    if multiprocessing.get_start_method() != "fork":
        pytest.skip("failure injection relies on fork inheritance")

    def boom(cls, source, **kwargs):
        raise OSError("snapshot file vanished before the worker started")

    monkeypatch.setattr(
        TeamFormationEngine, "from_snapshot", classmethod(boom)
    )
    with pytest.raises(RuntimeError, match="replica warm start failed"):
        EngineReplicaPool(snapshot_store, replicas=2)


def test_pool_rejects_corrupt_snapshot_in_parent(snapshot_store, tmp_path):
    """Corruption fails fast with a typed error, not a worker crash."""
    from repro.storage import CorruptSnapshotError, resolve_snapshot_path

    source = resolve_snapshot_path(snapshot_store)
    data = bytearray(source.read_bytes())
    data[-3] ^= 0xFF  # flip a payload byte
    broken = tmp_path / "broken.snap"
    broken.write_bytes(bytes(data))
    with pytest.raises(CorruptSnapshotError):
        EngineReplicaPool(broken, replicas=2)
