"""The replication delta codec: framing, verification, typed errors.

Every byte-level failure mode must surface as a typed error *before*
any payload is interpreted — the same contract the snapshot container
enforces — and the errors themselves must survive a pickle round trip,
because replica-pool workers raise them across a process boundary.
"""

from __future__ import annotations

import pickle
import struct
import zlib

import pytest

from repro.storage import (
    CorruptDeltaError,
    CorruptSnapshotError,
    FormatVersionError,
    JournalTruncatedError,
    SnapshotError,
    StaleSnapshotError,
)
from repro.storage.delta import (
    DELTA_FORMAT_VERSION,
    DELTA_MAGIC,
    FRAME_DELTA,
    FRAME_SNAPSHOT,
    encode_delta_frame,
    encode_snapshot_frame,
    iter_frames,
)

PAYLOAD = {
    "from_version": 3,
    "to_version": 5,
    "records": [{"mutation": {"version": 4, "op": "add_expert"}}],
    "hints": {"incremental": True},
}

_HEADER = struct.Struct("<8sHHII")


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------
def test_delta_frame_round_trips():
    frames = list(iter_frames(encode_delta_frame(PAYLOAD)))
    assert frames == [(FRAME_DELTA, PAYLOAD)]


def test_snapshot_frame_round_trips_raw_bytes():
    container = b"\x00\x01arbitrary container bytes\xff"
    frames = list(iter_frames(encode_snapshot_frame(container)))
    assert frames == [(FRAME_SNAPSHOT, container)]


def test_mixed_stream_preserves_frame_order():
    stream = (
        encode_snapshot_frame(b"snap")
        + encode_delta_frame(PAYLOAD)
        + encode_delta_frame({**PAYLOAD, "from_version": 5, "to_version": 6})
    )
    kinds = [kind for kind, _ in iter_frames(stream)]
    assert kinds == [FRAME_SNAPSHOT, FRAME_DELTA, FRAME_DELTA]


def test_empty_stream_yields_nothing():
    assert list(iter_frames(b"")) == []


# ----------------------------------------------------------------------
# corruption: every damaged byte range has a typed, located error
# ----------------------------------------------------------------------
def test_truncated_header_is_corrupt():
    with pytest.raises(CorruptDeltaError, match="truncated header"):
        list(iter_frames(encode_delta_frame(PAYLOAD)[: _HEADER.size - 1]))


def test_truncated_payload_is_corrupt():
    with pytest.raises(CorruptDeltaError, match="truncated payload"):
        list(iter_frames(encode_delta_frame(PAYLOAD)[:-1]))


def test_bad_magic_is_corrupt():
    data = bytearray(encode_delta_frame(PAYLOAD))
    data[:8] = b"NOTDELTA"
    with pytest.raises(CorruptDeltaError, match="bad magic"):
        list(iter_frames(bytes(data)))


def test_payload_bit_flip_fails_crc():
    data = bytearray(encode_delta_frame(PAYLOAD))
    data[-3] ^= 0x40
    with pytest.raises(CorruptDeltaError, match="CRC mismatch"):
        list(iter_frames(bytes(data)))


def test_unknown_frame_kind_is_corrupt():
    payload = b"x"
    header = _HEADER.pack(
        DELTA_MAGIC, DELTA_FORMAT_VERSION, 9, 1, zlib.crc32(payload)
    )
    with pytest.raises(CorruptDeltaError, match="unknown frame kind 9"):
        list(iter_frames(header + payload))


def test_second_frame_errors_after_first_yields():
    stream = encode_delta_frame(PAYLOAD) + b"garbage-that-is-no-header!"
    frames = iter_frames(stream)
    assert next(frames)[0] == FRAME_DELTA
    with pytest.raises(CorruptDeltaError, match="frame 1"):
        next(frames)


@pytest.mark.parametrize(
    "payload",
    [
        {"to_version": 5, "records": []},  # missing from_version
        {"from_version": 1, "to_version": 2, "records": "no"},
        {"from_version": 2.5, "to_version": 5, "records": []},
        ["not", "an", "object"],
    ],
)
def test_malformed_delta_payload_structure(payload):
    with pytest.raises(CorruptDeltaError, match="malformed delta payload"):
        list(iter_frames(encode_delta_frame(payload)))


def test_backwards_version_range_is_corrupt():
    bad = {**PAYLOAD, "from_version": 5, "to_version": 5}
    with pytest.raises(CorruptDeltaError, match="backwards version range"):
        list(iter_frames(encode_delta_frame(bad)))


def test_undecodable_json_payload_is_corrupt():
    payload = b"\xff\xfenot json"
    header = _HEADER.pack(
        DELTA_MAGIC,
        DELTA_FORMAT_VERSION,
        FRAME_DELTA,
        len(payload),
        zlib.crc32(payload),
    )
    with pytest.raises(CorruptDeltaError, match="undecodable delta payload"):
        list(iter_frames(header + payload))


def test_newer_format_version_is_typed_not_corrupt():
    data = bytearray(encode_delta_frame(PAYLOAD))
    struct.pack_into("<H", data, 8, DELTA_FORMAT_VERSION + 1)
    with pytest.raises(FormatVersionError) as exc_info:
        list(iter_frames(bytes(data)))
    assert exc_info.value.found == DELTA_FORMAT_VERSION + 1
    assert exc_info.value.supported == DELTA_FORMAT_VERSION


# ----------------------------------------------------------------------
# error taxonomy and cross-process transport
# ----------------------------------------------------------------------
def test_delta_errors_slot_into_the_snapshot_hierarchy():
    assert issubclass(CorruptDeltaError, CorruptSnapshotError)
    assert issubclass(JournalTruncatedError, StaleSnapshotError)
    assert issubclass(CorruptDeltaError, SnapshotError)
    assert issubclass(JournalTruncatedError, SnapshotError)


def test_journal_truncated_error_pickles_with_attributes():
    # Replica-pool workers raise this across a process boundary; the
    # default exception reduce replays args=(message,), which would
    # crash the two-argument constructor on unpickle.
    error = JournalTruncatedError(7, 12)
    clone = pickle.loads(pickle.dumps(error))
    assert isinstance(clone, JournalTruncatedError)
    assert (clone.since_version, clone.floor) == (7, 12)
    assert str(clone) == str(error)


def test_format_version_error_pickles_with_attributes():
    error = FormatVersionError(9, 1)
    clone = pickle.loads(pickle.dumps(error))
    assert (clone.found, clone.supported) == (9, 1)
    assert str(clone) == str(error)
