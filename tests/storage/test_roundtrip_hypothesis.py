"""Property-based round trips: ``load(save(x))`` is indistinguishable.

For generated networks carrying generated *mutation histories*, a
snapshot-restored engine must (1) hold bit-identical 2-hop-cover labels
and (2) answer solve requests byte-identically to the live engine — both
for a standalone restore and for a snapshot attached to a live network
that has mutated further since the save (journal-tail replay).

Runs under the suite-wide hypothesis profiles (``dev`` locally, ``ci``
in the coverage job — see ``tests/conftest.py``).
"""

from __future__ import annotations

import json
import random
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import TeamFormationEngine, TeamRequest
from repro.expertise import Expert
from repro.graph.pll import PrunedLandmarkLabeling
from tests.conftest import SKILLS, make_random_network

SOLVERS = ("greedy", "rarest_first", "sa_optimal", "random")


def canonical_json(response) -> str:
    payload = response.to_dict()
    payload["timing"] = None  # wall clock: the one nondeterministic field
    return json.dumps(payload, sort_keys=True)


def apply_random_mutations(network, rng: random.Random, count: int) -> None:
    """A burst of valid random mutations covering every op kind."""
    for _ in range(count):
        ids = list(network.expert_ids())
        op = rng.choice(
            ("add_expert", "add_edge", "reweight", "skills", "h_index", "remove_edge")
        )
        if op == "add_expert":
            network.add_expert(
                Expert(
                    f"x{network.version}_{rng.randrange(1000)}",
                    skills={rng.choice(SKILLS)},
                    h_index=rng.randint(0, 20),
                )
            )
        elif op == "add_edge" and len(ids) >= 2:
            u, v = rng.sample(ids, 2)
            network.add_collaboration(u, v, weight=rng.uniform(0.05, 1.0))
        elif op == "reweight" and network.num_edges:
            u, v, w = rng.choice(list(network.graph.edges()))
            network.add_collaboration(u, v, weight=w * rng.uniform(0.3, 1.5))
        elif op == "skills":
            who = rng.choice(ids)
            network.update_skills(
                who, {rng.choice(SKILLS), rng.choice(SKILLS)}
            )
        elif op == "h_index":
            network.update_h_index(rng.choice(ids), rng.randint(0, 30))
        elif op == "remove_edge" and network.num_edges > 1:
            u, v, _ = rng.choice(list(network.graph.edges()))
            network.remove_collaboration(u, v)


def requests(rng: random.Random) -> list[TeamRequest]:
    project = tuple(rng.sample(SKILLS, rng.randint(1, 3)))
    return [
        TeamRequest(skills=project, solver=s, seed=7, num_samples=25)
        for s in SOLVERS
    ]


@settings(deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    pre_mutations=st.integers(0, 6),
    post_mutations=st.integers(1, 5),
)
def test_load_save_identity_with_mutation_history(
    seed, pre_mutations, post_mutations
):
    rng = random.Random(seed)
    network = make_random_network(rng, n=rng.randint(6, 12))
    engine = TeamFormationEngine(network)
    # A mutation history *before* the save: the journal tail is frozen
    # into the snapshot and must round-trip.
    apply_random_mutations(network, rng, pre_mutations)
    reqs = requests(rng)
    live = [engine.solve(r) for r in reqs]
    engine.raw_oracle()

    with tempfile.TemporaryDirectory() as root:
        path = engine.save_snapshot(f"{root}/one.snap")

        # Standalone restore: bit-identical labels, identical answers.
        warm = TeamFormationEngine.from_snapshot(path)
        assert warm.network.version == network.version
        assert warm.network.journal_tail() == network.journal_tail()
        assert warm.cached_oracle_keys == engine.cached_oracle_keys
        for cache_live, cache_warm in (
            (engine._search_cache, warm._search_cache),
            (engine._raw_oracles, warm._raw_oracles),
        ):
            for key, (_g, oracle) in cache_live.items():
                if isinstance(oracle, PrunedLandmarkLabeling):
                    assert (
                        cache_warm[key][1].export_labels()
                        == oracle.export_labels()
                    ), key
        for request, expected in zip(reqs, live):
            assert canonical_json(warm.solve(request)) == canonical_json(
                expected
            ), request.solver

        # Live-journal reconcile: mutate the live network further, then
        # attach the (now-old) snapshot to it; answers must match the
        # engine that never left memory.
        apply_random_mutations(network, rng, post_mutations)
        attached = TeamFormationEngine.from_snapshot(path, network=network)
        for request in requests(rng):
            assert canonical_json(attached.solve(request)) == canonical_json(
                engine.solve(request)
            ), request.solver
