"""SnapshotStore behavior: naming, LATEST pointer, retention, GC."""

from __future__ import annotations

import pytest

from repro.storage import SnapshotError, SnapshotStore


def save(store, version=0, payload=b"x"):
    return store.save(
        {"kind": "engine-snapshot", "network_version": version},
        {"blob": payload},
    )


def test_save_names_and_latest(tmp_path):
    store = SnapshotStore(tmp_path / "st")
    first = save(store, version=3)
    assert first.name == "snap-000001-v3.snap"
    second = save(store, version=5)
    assert second.name == "snap-000002-v5.snap"
    assert store.latest_path() == second
    meta, sections = store.load_latest()
    assert meta["network_version"] == 5
    assert sections == {"blob": b"x"}


def test_list_reports_sequence_and_latest(tmp_path):
    store = SnapshotStore(tmp_path)
    save(store, version=1)
    save(store, version=2)
    infos = store.list()
    assert [i.sequence for i in infos] == [1, 2]
    assert [i.is_latest for i in infos] == [False, True]
    assert all(i.size_bytes > 0 for i in infos)
    assert "LATEST" in infos[-1].format()


def test_empty_store(tmp_path):
    store = SnapshotStore(tmp_path / "missing")
    assert store.list() == []
    with pytest.raises(SnapshotError, match="no snapshots"):
        store.latest_path()


def test_retention_on_save(tmp_path):
    store = SnapshotStore(tmp_path, retain=2)
    for version in range(5):
        save(store, version=version)
    names = [i.name for i in store.list()]
    assert names == ["snap-000004-v3.snap", "snap-000005-v4.snap"]
    assert store.latest_path().name == "snap-000005-v4.snap"


def test_explicit_gc(tmp_path):
    store = SnapshotStore(tmp_path, retain=None)  # no automatic GC
    for version in range(4):
        save(store, version=version)
    assert len(store.list()) == 4
    removed = store.gc(retain=1)
    assert removed == [
        "snap-000001-v0.snap",
        "snap-000002-v1.snap",
        "snap-000003-v2.snap",
    ]
    assert [i.name for i in store.list()] == ["snap-000004-v3.snap"]


def test_gc_never_removes_latest_target(tmp_path):
    store = SnapshotStore(tmp_path, retain=None)
    keep = save(store)
    # Hand-add a higher-sequence file without moving LATEST (simulates a
    # crash after the snapshot write but before the pointer update).
    (tmp_path / "snap-000009-v9.snap").write_bytes(b"not yet pointed at")
    removed = store.gc(retain=1)
    assert keep.name not in removed
    assert keep.exists()


def test_latest_pointer_falls_back_to_highest_sequence(tmp_path):
    store = SnapshotStore(tmp_path)
    save(store, version=1)
    newest = save(store, version=2)
    (tmp_path / "LATEST").unlink()
    assert store.latest_path() == newest


def test_sequence_resumes_after_gc(tmp_path):
    store = SnapshotStore(tmp_path, retain=1)
    save(store)
    save(store)
    third = save(store)
    assert third.name.startswith("snap-000003")


def test_meta_reads_without_sections(tmp_path):
    store = SnapshotStore(tmp_path)
    save(store, version=8)
    assert store.meta()["network_version"] == 8


def test_invalid_retain_rejected(tmp_path):
    with pytest.raises(ValueError):
        SnapshotStore(tmp_path, retain=0)
    with pytest.raises(ValueError):
        SnapshotStore(tmp_path, retain=None).gc(retain=0)


def test_foreign_files_ignored(tmp_path):
    store = SnapshotStore(tmp_path)
    save(store)
    (tmp_path / "README.txt").write_text("not a snapshot")
    (tmp_path / "snap-bogus.snap").write_bytes(b"bad name")
    assert len(store.list()) == 1
