"""The flat (zero-copy) label codec path against the legacy one.

PR-6 serves queries from flat columns
(:class:`repro.graph.pll_kernel.FlatLabelStore`), so snapshots now
travel ``export_flat_labels`` → :func:`encode_flat_labels` →
:func:`decode_labels_flat` → ``from_flat_labels`` with no per-entry
Python work.  The contracts pinned here:

* **byte identity** — ``encode_flat_labels`` produces the exact bytes
  ``encode_labels`` produced from the per-node-list export, so the
  on-disk format is unchanged and old snapshots stay loadable;
* **round-trip identity** — decode → adopt restores an index that paid
  zero PLL builds and answers bit-identically;
* **corruption rejection** — truncation and insane-but-CRC-valid
  columns (bad counts, out-of-range hub/parent ranks) raise
  :class:`CorruptSnapshotError` from both decoders.
"""

from __future__ import annotations

import struct
from array import array

import pytest

from repro.graph.adjacency import Graph, GraphError
from repro.graph.pll import PrunedLandmarkLabeling, pll_build_count
from repro.storage import (
    CorruptSnapshotError,
    decode_labels,
    decode_labels_flat,
    encode_flat_labels,
    encode_labels,
)
from repro.storage.codec import _LABEL_HEAD


def sample_index(*, mutate: bool = False) -> PrunedLandmarkLabeling:
    graph = Graph.from_edges(
        [("a", "b", 0.25), ("b", "c", 1.5), ("c", "d", 0.75), ("b", "d", 3.0)]
    )
    graph.add_node("island")
    pll = PrunedLandmarkLabeling(graph)
    if mutate:
        pll.add_node("late")
        pll.insert_edge("late", "island", 0.5)
        pll.insert_edge("a", "d", 2.0)
    return pll


@pytest.mark.parametrize("mutate", [False, True])
def test_flat_encoder_is_byte_identical_to_legacy(mutate):
    pll = sample_index(mutate=mutate)
    assert encode_flat_labels(pll.export_flat_labels()) == encode_labels(
        pll.export_labels()
    )


def test_flat_and_legacy_decoders_agree():
    pll = sample_index(mutate=True)
    blob = encode_flat_labels(pll.export_flat_labels())
    legacy = decode_labels(blob)
    flat = decode_labels_flat(blob)
    assert flat["order"] == legacy["order"]
    assert flat["incremental_updates"] == legacy["incremental_updates"]
    assert flat["counts"] == [len(ranks) for ranks in legacy["ranks"]]
    start = 0
    for ranks, dists, parents in zip(
        legacy["ranks"], legacy["dists"], legacy["parents"]
    ):
        stop = start + len(ranks)
        assert flat["ranks"][start:stop].tolist() == ranks
        assert flat["dists"][start:stop].tolist() == dists
        assert flat["parents"][start:stop].tolist() == parents
        start = stop
    assert start == len(flat["ranks"])


def test_decode_round_trip_is_zero_build_and_bit_identical():
    pll = sample_index(mutate=True)
    graph = pll._graph
    nodes = list(graph.nodes())
    expected = {source: pll.distances_from(source, nodes) for source in nodes}
    blob = encode_flat_labels(pll.export_flat_labels())

    builds = pll_build_count()
    restored = PrunedLandmarkLabeling.from_flat_labels(graph, decode_labels_flat(blob))
    assert pll_build_count() == builds
    assert restored.export_labels() == pll.export_labels()
    for source in nodes:
        assert restored.distances_from(source, nodes) == expected[source]
    # And the restored index re-encodes to the identical bytes.
    assert encode_flat_labels(restored.export_flat_labels()) == blob


# ----------------------------------------------------------------------
# corruption rejection (shared by both decoders)
# ----------------------------------------------------------------------
@pytest.fixture()
def blob() -> bytes:
    return encode_flat_labels(sample_index().export_flat_labels())


@pytest.mark.parametrize("decoder", [decode_labels, decode_labels_flat])
def test_truncated_blob_rejected(blob, decoder):
    for cut in (1, _LABEL_HEAD.size + 2, len(blob) // 2, len(blob) - 1):
        with pytest.raises(CorruptSnapshotError, match="truncat|shorter"):
            decoder(blob[:cut])


@pytest.mark.parametrize("decoder", [decode_labels, decode_labels_flat])
def test_counts_disagreeing_with_header_rejected(blob, decoder):
    n_nodes, order_len = _LABEL_HEAD.unpack_from(blob)
    counts_at = _LABEL_HEAD.size + order_len + struct.calcsize("<IQ")
    first_count = array("I")
    first_count.frombytes(blob[counts_at : counts_at + 4])
    bumped = array("I", [first_count[0] + 1]).tobytes()
    corrupt = blob[:counts_at] + bumped + blob[counts_at + 4 :]
    with pytest.raises(CorruptSnapshotError, match="counts"):
        decoder(corrupt)


def _encode_with_column(pll, column: str, index: int, value: int) -> bytes:
    state = pll.export_flat_labels()
    patched = state[column][:]  # arrays: slicing copies
    patched[index] = value
    state[column] = patched
    return encode_flat_labels(state)


@pytest.mark.parametrize("decoder", [decode_labels, decode_labels_flat])
def test_out_of_range_hub_rank_rejected(decoder):
    pll = sample_index()
    corrupt = _encode_with_column(pll, "ranks", 0, len(pll._order))
    with pytest.raises(CorruptSnapshotError, match="hub rank out of range"):
        decoder(corrupt)


@pytest.mark.parametrize("decoder", [decode_labels, decode_labels_flat])
def test_out_of_range_parent_rank_rejected(decoder):
    pll = sample_index()
    for bad in (-2, len(pll._order)):
        corrupt = _encode_with_column(pll, "parents", 0, bad)
        with pytest.raises(CorruptSnapshotError, match="parent rank out of range"):
            decoder(corrupt)


@pytest.mark.parametrize("decoder", [decode_labels, decode_labels_flat])
def test_undecodable_landmark_order_rejected(blob, decoder):
    start = _LABEL_HEAD.size
    corrupt = blob[:start] + b"\xff" + blob[start + 1 :]
    with pytest.raises(CorruptSnapshotError, match="landmark order"):
        decoder(corrupt)


def test_from_flat_labels_rejects_count_row_mismatch():
    pll = sample_index()
    graph = pll._graph
    state = pll.export_flat_labels()
    state["counts"] = state["counts"][:-1]
    with pytest.raises(GraphError):
        PrunedLandmarkLabeling.from_flat_labels(graph, state)
