"""Container-level tests: round-trip fidelity and every corruption path.

The acceptance bar for the persistence subsystem is that *no* damaged or
foreign file is ever interpreted: truncations, bit flips, wrong magic
and future format versions must all surface as the typed errors — and
only an intact file yields bytes back.
"""

from __future__ import annotations

import struct

import pytest

from repro.storage import (
    SNAPSHOT_FORMAT_VERSION,
    SNAPSHOT_MAGIC,
    CorruptSnapshotError,
    FormatVersionError,
    read_container,
    read_meta,
    write_container,
)

SECTIONS = {
    "network": b'{"experts": []}',
    "labels/0": bytes(range(256)) * 4,
    "empty": b"",
}
META = {"kind": "engine-snapshot", "network_version": 7}


@pytest.fixture()
def snapshot_path(tmp_path):
    path = tmp_path / "one.snap"
    write_container(path, META, SECTIONS)
    return path


def test_round_trip(snapshot_path):
    meta, sections = read_container(snapshot_path)
    assert meta == META
    assert sections == SECTIONS


def test_read_meta_is_cheap_and_verified(snapshot_path):
    assert read_meta(snapshot_path) == META


def test_empty_sections_round_trip(tmp_path):
    path = write_container(tmp_path / "empty.snap", {"kind": "x"}, {})
    meta, sections = read_container(path)
    assert meta == {"kind": "x"}
    assert sections == {}


def test_missing_file_is_corrupt_error(tmp_path):
    with pytest.raises(CorruptSnapshotError, match="unreadable"):
        read_container(tmp_path / "nope.snap")


def test_wrong_magic_rejected(snapshot_path):
    blob = snapshot_path.read_bytes()
    snapshot_path.write_bytes(b"GARBAGE!" + blob[8:])
    with pytest.raises(CorruptSnapshotError, match="bad magic"):
        read_container(snapshot_path)
    with pytest.raises(CorruptSnapshotError, match="bad magic"):
        read_meta(snapshot_path)


def test_truncated_header_rejected(snapshot_path):
    snapshot_path.write_bytes(snapshot_path.read_bytes()[:10])
    with pytest.raises(CorruptSnapshotError, match="truncated header"):
        read_container(snapshot_path)


def test_truncated_manifest_rejected(snapshot_path):
    snapshot_path.write_bytes(snapshot_path.read_bytes()[:24])
    with pytest.raises(CorruptSnapshotError, match="truncated manifest"):
        read_container(snapshot_path)


def test_truncated_section_rejected(snapshot_path):
    # Drop the tail of the last section: its CRC never gets a chance —
    # the length check fires first and names the section.
    snapshot_path.write_bytes(snapshot_path.read_bytes()[:-16])
    with pytest.raises(CorruptSnapshotError, match="truncated"):
        read_container(snapshot_path)


def test_flipped_payload_byte_rejected(snapshot_path):
    blob = bytearray(snapshot_path.read_bytes())
    blob[-1] ^= 0xFF  # inside the last section's payload
    snapshot_path.write_bytes(bytes(blob))
    with pytest.raises(CorruptSnapshotError, match="CRC mismatch"):
        read_container(snapshot_path)


def test_flipped_manifest_byte_rejected(snapshot_path):
    blob = bytearray(snapshot_path.read_bytes())
    blob[20] ^= 0xFF  # first manifest byte
    snapshot_path.write_bytes(bytes(blob))
    with pytest.raises(CorruptSnapshotError, match="manifest CRC"):
        read_container(snapshot_path)


def test_flipped_crc_field_rejected(snapshot_path):
    blob = bytearray(snapshot_path.read_bytes())
    blob[16] ^= 0x01  # low byte of the stored manifest CRC
    snapshot_path.write_bytes(bytes(blob))
    with pytest.raises(CorruptSnapshotError, match="manifest CRC"):
        read_container(snapshot_path)


def test_future_format_version_rejected(snapshot_path):
    blob = bytearray(snapshot_path.read_bytes())
    struct.pack_into("<H", blob, 8, SNAPSHOT_FORMAT_VERSION + 1)
    snapshot_path.write_bytes(bytes(blob))
    with pytest.raises(FormatVersionError) as excinfo:
        read_container(snapshot_path)
    assert excinfo.value.found == SNAPSHOT_FORMAT_VERSION + 1
    assert excinfo.value.supported == SNAPSHOT_FORMAT_VERSION
    with pytest.raises(FormatVersionError):
        read_meta(snapshot_path)


def test_magic_constant_is_stable():
    # The magic is a wire contract; changing it orphans every snapshot.
    assert SNAPSHOT_MAGIC == b"RPROSNAP"


def test_atomic_write_leaves_no_temp_files(tmp_path):
    write_container(tmp_path / "a.snap", META, SECTIONS)
    leftovers = [p.name for p in tmp_path.iterdir() if p.name != "a.snap"]
    assert leftovers == []
