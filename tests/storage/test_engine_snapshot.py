"""Warm-start acceptance tests: snapshot == never-persisted engine.

The contract under test is the PR's acceptance criterion: an engine
restored via ``from_snapshot()`` (including journal-tail replay against
a newer live network) returns *byte-identical* ``TeamResponse`` JSON to
the engine that never touched disk, for every registered solver — and it
does so without paying for a single index build.
"""

from __future__ import annotations

import json

import pytest

from repro.api import DEFAULT_REGISTRY, TeamFormationEngine, TeamRequest
from repro.expertise import Expert
from repro.graph.pll import PrunedLandmarkLabeling, pll_build_count
from repro.storage import (
    CorruptSnapshotError,
    SnapshotStore,
    StaleSnapshotError,
)
from tests.api.conftest import PROJECT, build_figure1_network


def canonical_json(response):
    """Response JSON with wall-clock timing zeroed (the only
    legitimately nondeterministic field)."""
    payload = response.to_dict()
    payload["timing"] = None
    return json.dumps(payload, sort_keys=True)


def request_for(solver: str) -> TeamRequest:
    # seed/num_samples pin the stochastic solver; others ignore them.
    return TeamRequest(skills=PROJECT, solver=solver, seed=11, num_samples=40)


@pytest.fixture()
def engine() -> TeamFormationEngine:
    return TeamFormationEngine(build_figure1_network())


def test_round_trip_identity_all_registered_solvers(engine, tmp_path):
    solvers = DEFAULT_REGISTRY.names()
    assert len(solvers) == 7  # the acceptance bar covers every adapter
    live = {s: engine.solve(request_for(s)) for s in solvers}
    engine.raw_oracle()
    engine.save_snapshot(tmp_path / "store")

    builds_before = pll_build_count()
    warm = TeamFormationEngine.from_snapshot(tmp_path / "store")
    for solver in solvers:
        assert canonical_json(warm.solve(request_for(solver))) == canonical_json(
            live[solver]
        ), solver
    assert pll_build_count() == builds_before  # zero builds end to end


def test_restored_labels_are_bit_identical(engine, tmp_path):
    engine.solve(request_for("greedy"))
    engine.raw_oracle()
    engine.save_snapshot(tmp_path / "store")
    warm = TeamFormationEngine.from_snapshot(tmp_path / "store")
    assert warm.cached_oracle_keys == engine.cached_oracle_keys
    for cache_live, cache_warm in (
        (engine._search_cache, warm._search_cache),
        (engine._raw_oracles, warm._raw_oracles),
    ):
        for key, (_graph, live_oracle) in cache_live.items():
            warm_oracle = cache_warm[key][1]
            assert isinstance(warm_oracle, PrunedLandmarkLabeling)
            assert warm_oracle.export_labels() == live_oracle.export_labels()


def test_network_history_round_trips(engine, tmp_path):
    network = engine.network
    network.add_expert(Expert("new", skills={"TM"}, h_index=4))
    network.add_collaboration("new", "han", weight=0.5)
    engine.solve(request_for("greedy"))  # reconcile + warm at version 2
    engine.save_snapshot(tmp_path / "store")
    warm = TeamFormationEngine.from_snapshot(tmp_path / "store")
    assert warm.network.version == network.version
    assert warm.network.journal_floor == network.journal_floor
    assert warm.network.journal_tail() == network.journal_tail()
    # Post-restore mutations replay through the same incremental path.
    for net in (network, warm.network):
        net.add_collaboration("new", "liu", weight=0.1)
    assert canonical_json(warm.solve(request_for("greedy"))) == canonical_json(
        engine.solve(request_for("greedy"))
    )


def test_snapshot_attaches_to_newer_live_network(engine, tmp_path):
    engine.solve(request_for("greedy"))
    engine.raw_oracle()
    engine.save_snapshot(tmp_path / "store")  # frozen at version 0
    network = engine.network
    network.add_expert(Expert("new", skills={"SN"}, h_index=50))
    network.add_collaboration("new", "han", weight=0.05)
    network.update_h_index("kotzias", 9.0)

    warm = TeamFormationEngine.from_snapshot(tmp_path / "store", network=network)
    assert warm.network is network
    for solver in ("greedy", "rarest_first", "sa_optimal"):
        assert canonical_json(warm.solve(request_for(solver))) == canonical_json(
            engine.solve(request_for(solver))
        ), solver


def test_snapshot_ahead_of_live_network_is_stale(engine, tmp_path):
    engine.network.add_expert(Expert("new", skills={"SN"}))
    engine.save_snapshot(tmp_path / "store")  # frozen at version 1
    other = build_figure1_network()  # version 0: never saw the mutation
    with pytest.raises(StaleSnapshotError, match="ahead of the live network"):
        TeamFormationEngine.from_snapshot(tmp_path / "store", network=other)


def test_snapshot_older_than_journal_floor_is_stale(engine, tmp_path):
    engine.save_snapshot(tmp_path / "store")  # frozen at version 0
    network = engine.network
    network.JOURNAL_CAP = 2  # instance override; shrink history brutally
    network.add_collaboration("liu", "golshan", weight=0.9)
    network.add_collaboration("liu", "kotzias", weight=0.9)
    network.add_collaboration("ren", "golshan", weight=0.9)
    assert network.mutations_since(0) is None  # floor moved past v0
    with pytest.raises(StaleSnapshotError, match="journal floor"):
        TeamFormationEngine.from_snapshot(tmp_path / "store", network=network)


def test_divergent_lineage_at_same_version_is_stale(engine, tmp_path):
    """Version numbers alone cannot tell lineages apart; the journal
    overlap can — a same-version network with a *different* mutation
    history must be refused, never silently served wrong distances."""
    engine.network.add_collaboration("liu", "golshan", weight=0.01)  # v1
    engine.save_snapshot(tmp_path / "store")
    other = build_figure1_network()
    other.add_collaboration("ren", "kotzias", weight=0.01)  # also v1
    with pytest.raises(StaleSnapshotError, match="different lineage"):
        TeamFormationEngine.from_snapshot(tmp_path / "store", network=other)
    # The true continuation of the saved lineage still attaches fine.
    same = build_figure1_network()
    same.add_collaboration("liu", "golshan", weight=0.01)
    same.add_collaboration("ren", "kotzias", weight=0.01)  # moved on to v2
    warm = TeamFormationEngine.from_snapshot(tmp_path / "store", network=same)
    assert warm.network is same


def test_out_of_range_label_ranks_are_corrupt_not_indexerror(engine, tmp_path):
    """A structurally broken label section with valid CRCs (a buggy
    writer) must surface as CorruptSnapshotError, not IndexError."""
    import struct

    from repro.storage import read_container, write_container

    engine.solve(request_for("greedy"))
    path = engine.save_snapshot(tmp_path / "one.snap")
    meta, sections = read_container(path)
    name = next(n for n in sections if n.startswith("labels/"))
    blob = bytearray(sections[name])
    blob[-4:] = struct.pack("<i", 999_999)  # last parent rank: way out
    sections[name] = bytes(blob)
    write_container(path, meta, sections)  # CRCs recomputed: "valid" file
    with pytest.raises(CorruptSnapshotError, match="parent rank out of range"):
        TeamFormationEngine.from_snapshot(path)


def test_corrupt_snapshot_never_yields_an_engine(engine, tmp_path):
    engine.solve(request_for("greedy"))
    path = engine.save_snapshot(tmp_path / "one.snap")
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises(CorruptSnapshotError):
        TeamFormationEngine.from_snapshot(path)


def test_save_accepts_store_object_file_and_directory(engine, tmp_path):
    store = SnapshotStore(tmp_path / "a")
    assert engine.save_snapshot(store).parent == tmp_path / "a"
    assert engine.save_snapshot(tmp_path / "b").parent == tmp_path / "b"
    single = engine.save_snapshot(tmp_path / "c" / "one.snap")
    assert single == tmp_path / "c" / "one.snap"
    for source in (store, tmp_path / "b", single):
        warm = TeamFormationEngine.from_snapshot(source)
        assert len(warm.network) == len(engine.network)


def test_dijkstra_entries_are_skipped_not_persisted(tmp_path):
    engine = TeamFormationEngine(build_figure1_network(), oracle_kind="dijkstra")
    request = request_for("greedy").replace(oracle_kind="dijkstra")
    engine.solve(request)
    assert engine.cached_oracle_keys  # a dijkstra entry exists live...
    engine.save_snapshot(tmp_path / "store")
    warm = TeamFormationEngine.from_snapshot(tmp_path / "store")
    assert warm.oracle_kind == "dijkstra"
    assert warm.cached_oracle_keys == ()  # ...but holds nothing persistable
    assert canonical_json(warm.solve(request)) == canonical_json(
        engine.solve(request)
    )


def test_stale_cache_entries_are_not_persisted(engine, tmp_path):
    engine.solve(request_for("greedy"))
    engine.network.update_h_index("han", 140.0)  # entries now stale at v1
    engine.save_snapshot(tmp_path / "store")
    warm = TeamFormationEngine.from_snapshot(tmp_path / "store")
    assert warm.cached_oracle_keys == ()
    assert warm.network.version == 1
