"""Unit tests for the disjoint-set forest."""

from repro.graph import UnionFind


def test_initial_singletons():
    uf = UnionFind(["a", "b", "c"])
    assert uf.num_sets == 3
    assert not uf.connected("a", "b")


def test_union_merges_and_reports():
    uf = UnionFind()
    assert uf.union("a", "b") is True
    assert uf.union("a", "b") is False
    assert uf.connected("a", "b")
    assert uf.num_sets == 1


def test_transitive_connectivity():
    uf = UnionFind()
    uf.union(1, 2)
    uf.union(2, 3)
    uf.union(4, 5)
    assert uf.connected(1, 3)
    assert not uf.connected(3, 4)
    assert uf.num_sets == 2


def test_lazy_element_registration():
    uf = UnionFind()
    assert uf.find("new") == "new"
    assert len(uf) == 1
    assert uf.num_sets == 1


def test_add_idempotent():
    uf = UnionFind()
    uf.add("x")
    uf.add("x")
    assert len(uf) == 1


def test_path_compression_preserves_roots():
    uf = UnionFind()
    for i in range(9):
        uf.union(i, i + 1)
    root = uf.find(0)
    assert all(uf.find(i) == root for i in range(10))
    assert uf.num_sets == 1


def test_many_unions_count():
    uf = UnionFind(range(100))
    for i in range(0, 100, 2):
        uf.union(i, i + 1)
    assert uf.num_sets == 50
