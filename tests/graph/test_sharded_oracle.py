"""Differential tests: the sharded oracle vs the monolithic PLL index.

The hard contract (ISSUE PR-10): for every ``(u, v)`` the sharded
oracle's distance is the *same float* the monolithic index returns, and
its paths are valid shortest paths.  Weights are dyadic (exactly
representable sums) wherever bit-identity is asserted, so float
associativity cannot blur the comparison.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.graph import Graph, GraphError
from repro.graph.partition import plan_shards
from repro.graph.pll import PrunedLandmarkLabeling, pll_build_count
from repro.graph.sharded_oracle import ShardedPLLOracle


def dyadic_random_graph(
    rng: random.Random, *, n: int = 30, p: float = 0.1
) -> Graph:
    """A random graph whose weights are multiples of 1/64 (exact sums)."""
    g = Graph()
    for i in range(n):
        g.add_node(f"v{i}")
    for i in range(1, n):
        j = rng.randrange(i)
        g.add_edge(f"v{i}", f"v{j}", weight=rng.randint(1, 64) / 64.0)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(f"v{i}", f"v{j}", weight=rng.randint(1, 64) / 64.0)
    return g


def path_length(g: Graph, path: list) -> float:
    return sum(g.weight(a, b) for a, b in zip(path, path[1:]))


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("k", [1, 2, 4, 7])
def test_distances_bit_identical_to_monolithic(seed, k):
    rng = random.Random(seed)
    g = dyadic_random_graph(rng, n=28, p=0.08)
    if seed % 2:  # half the cases: add a disconnected island + isolate
        g.add_edge("isl0", "isl1", weight=0.5)
        g.add_node("alone")
    mono = PrunedLandmarkLabeling(g)
    sharded = ShardedPLLOracle(g, shards=k)
    nodes = list(g.nodes())
    for u in nodes:
        expected = mono.distances_from(u, nodes)
        got = sharded.distances_from(u, nodes)
        assert got == expected  # == is exact: inf == inf, bit-equal floats
        for v in nodes[:6]:
            assert sharded.distance(u, v) == mono.distance(u, v)


@pytest.mark.parametrize("k", [2, 4])
def test_paths_are_valid_shortest_paths(k):
    rng = random.Random(9)
    g = dyadic_random_graph(rng, n=24, p=0.1)
    mono = PrunedLandmarkLabeling(g)
    sharded = ShardedPLLOracle(g, shards=k)
    nodes = list(g.nodes())
    for u in nodes[::3]:
        for v in nodes[::4]:
            d = mono.distance(u, v)
            if math.isinf(d):
                with pytest.raises(GraphError):
                    sharded.path(u, v)
                continue
            path = sharded.path(u, v)
            assert path[0] == u and path[-1] == v
            assert path_length(g, path) == pytest.approx(d, abs=1e-12)


def test_distances_many_matches_monolithic():
    rng = random.Random(5)
    g = dyadic_random_graph(rng, n=20, p=0.12)
    mono = PrunedLandmarkLabeling(g)
    sharded = ShardedPLLOracle(g, shards=3)
    nodes = list(g.nodes())
    sources, targets = nodes[:7], nodes[7:]
    assert sharded.distances_many(sources, targets) == mono.distances_many(
        sources, targets
    )


def test_unknown_nodes_raise():
    g = Graph.from_edges([("a", "b")])
    sharded = ShardedPLLOracle(g, shards=2)
    with pytest.raises(GraphError):
        sharded.distance("a", "ghost")
    with pytest.raises(GraphError):
        sharded.distances_from("ghost", ["a"])
    with pytest.raises(GraphError):
        sharded.path("ghost", "a")


def test_self_distance_is_zero_and_disconnected_is_inf():
    g = Graph.from_edges([("a", "b", 0.5)])
    g.add_node("island")
    sharded = ShardedPLLOracle(g, shards=2)
    assert sharded.distance("a", "a") == 0.0
    assert sharded.distance("island", "island") == 0.0
    assert math.isinf(sharded.distance("a", "island"))


def test_mutation_is_refused():
    g = Graph.from_edges([("a", "b")])
    sharded = ShardedPLLOracle(g, shards=2)
    assert sharded.supports_incremental is False
    with pytest.raises(GraphError):
        sharded.insert_edge("a", "b", 0.1)
    with pytest.raises(GraphError):
        sharded.add_node("c")


def test_plan_must_cover_the_graph():
    g = Graph.from_edges([("a", "b"), ("b", "c")])
    partial = plan_shards(Graph.from_edges([("a", "b")]), 2)
    with pytest.raises(GraphError):
        ShardedPLLOracle(g, partial)


def test_introspection_shapes():
    rng = random.Random(2)
    g = dyadic_random_graph(rng, n=18, p=0.1)
    sharded = ShardedPLLOracle(g, shards=3)
    assert sharded.num_shards == 3
    total = 0
    for i in range(3):
        pll = sharded.shard_index(i)
        assert isinstance(pll, PrunedLandmarkLabeling)
        assert sharded.label_bytes(i) == pll.total_label_entries * 16
        total += pll.total_label_entries
    assert sharded.total_label_entries == total
    assert sharded.label_bytes() == total * 16


# ----------------------------------------------------------------------
# persistence: export_state / from_state
# ----------------------------------------------------------------------
def test_state_round_trip_zero_builds():
    rng = random.Random(3)
    g = dyadic_random_graph(rng, n=26, p=0.1)
    sharded = ShardedPLLOracle(g, shards=4)
    shard_labels, boundary = sharded.export_state()
    before = pll_build_count()
    restored = ShardedPLLOracle.from_state(
        g, sharded.plan, shard_labels, boundary
    )
    assert pll_build_count() == before  # zero PLL constructions
    nodes = list(g.nodes())
    for u in nodes[::2]:
        assert restored.distances_from(u, nodes) == sharded.distances_from(
            u, nodes
        )


def test_from_state_rejects_mismatched_shapes():
    g = Graph.from_edges([("a", "b"), ("c", "d")])
    sharded = ShardedPLLOracle(g, shards=2)
    shard_labels, boundary = sharded.export_state()
    with pytest.raises(GraphError):
        ShardedPLLOracle.from_state(g, sharded.plan, shard_labels[:1], boundary)
    bad = dict(boundary, boundary=["a", "ghost-extra"])
    with pytest.raises(GraphError):
        ShardedPLLOracle.from_state(g, sharded.plan, shard_labels, bad)
