"""Unit tests for traversal/connectivity helpers."""

import pytest

from repro.graph import (
    Graph,
    GraphError,
    bfs_order,
    connected_components,
    is_connected,
    is_tree,
    largest_component,
    prune_leaves,
)


@pytest.fixture()
def two_components():
    g = Graph.from_edges([("a", "b"), ("b", "c"), ("x", "y")])
    g.add_node("lonely")
    return g


def test_bfs_order_starts_at_source():
    g = Graph.from_edges([("a", "b"), ("b", "c")])
    order = list(bfs_order(g, "a"))
    assert order[0] == "a"
    assert set(order) == {"a", "b", "c"}


def test_bfs_missing_source(two_components):
    with pytest.raises(GraphError):
        list(bfs_order(two_components, "ghost"))


def test_connected_components_sorted_by_size(two_components):
    comps = connected_components(two_components)
    assert [len(c) for c in comps] == [3, 2, 1]
    assert comps[0] == {"a", "b", "c"}


def test_is_connected_full_and_subset(two_components):
    assert not is_connected(two_components)
    assert is_connected(two_components, nodes=["a", "b"])
    assert not is_connected(two_components, nodes=["a", "x"])
    assert is_connected(Graph())  # vacuously


def test_largest_component(two_components):
    largest = largest_component(two_components)
    assert set(largest.nodes()) == {"a", "b", "c"}
    assert largest_component(Graph()).num_nodes == 0


def test_is_tree():
    assert is_tree(Graph.from_edges([("a", "b"), ("b", "c")]))
    assert not is_tree(Graph.from_edges([("a", "b"), ("b", "c"), ("a", "c")]))
    assert not is_tree(Graph())  # empty graph is not a tree
    single = Graph()
    single.add_node("a")
    assert is_tree(single)


def test_prune_leaves_removes_useless_chain():
    #  required: a, c ; chain c-d-e dangles
    g = Graph.from_edges([("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")])
    pruned = prune_leaves(g, required=["a", "c"])
    assert set(pruned.nodes()) == {"a", "b", "c"}
    # input untouched
    assert g.has_node("e")


def test_prune_leaves_keeps_required_leaf():
    g = Graph.from_edges([("a", "b")])
    pruned = prune_leaves(g, required=["a", "b"])
    assert set(pruned.nodes()) == {"a", "b"}


def test_prune_leaves_missing_required():
    g = Graph.from_edges([("a", "b")])
    with pytest.raises(GraphError):
        prune_leaves(g, required=["ghost"])
