"""Unit tests for traversal/connectivity helpers."""

import json
import os
import subprocess
import sys

import pytest

from repro.graph import (
    Graph,
    GraphError,
    bfs_order,
    connected_components,
    is_connected,
    is_tree,
    largest_component,
    prune_leaves,
)


@pytest.fixture()
def two_components():
    g = Graph.from_edges([("a", "b"), ("b", "c"), ("x", "y")])
    g.add_node("lonely")
    return g


def test_bfs_order_starts_at_source():
    g = Graph.from_edges([("a", "b"), ("b", "c")])
    order = list(bfs_order(g, "a"))
    assert order[0] == "a"
    assert set(order) == {"a", "b", "c"}


def test_bfs_missing_source(two_components):
    with pytest.raises(GraphError):
        list(bfs_order(two_components, "ghost"))


def test_connected_components_sorted_by_size(two_components):
    comps = connected_components(two_components)
    assert [len(c) for c in comps] == [3, 2, 1]
    assert comps[0] == {"a", "b", "c"}


def test_components_of_all_singletons():
    g = Graph()
    for name in ("s1", "s2", "s3"):
        g.add_node(name)
    comps = connected_components(g)
    assert [len(c) for c in comps] == [1, 1, 1]
    assert {frozenset(c) for c in comps} == {
        frozenset({"s1"}),
        frozenset({"s2"}),
        frozenset({"s3"}),
    }


def test_equal_size_components_keep_insertion_order():
    """Ties in the size sort resolve to graph insertion order.

    The shard partitioner walks this list to seed its regions; a
    hash-order tie-break would make shard plans differ between
    processes.
    """
    g = Graph()
    for c in ("zz", "aa", "mm"):  # deliberately not sorted
        g.add_edge(f"{c}0", f"{c}1")
    comps = connected_components(g)
    # All three are size 2; discovery order must follow insertion order.
    assert [min(c) for c in comps] == ["zz0", "aa0", "mm0"]


_SUBPROCESS_COMPONENTS = """
import json
from repro.graph import Graph, connected_components

g = Graph()
for c in ("zz", "aa", "mm", "qq"):
    g.add_edge(c + "0", c + "1")
g.add_node("lonely")
comps = connected_components(g)
print(json.dumps([sorted(map(repr, c)) for c in comps]))
"""


@pytest.mark.parametrize("hashseed", ["0", "7", "31337"])
def test_component_order_is_cross_process_deterministic(hashseed):
    env = dict(os.environ, PYTHONHASHSEED=hashseed)
    out = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_COMPONENTS],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    assert json.loads(out.stdout) == [
        ["'zz0'", "'zz1'"],
        ["'aa0'", "'aa1'"],
        ["'mm0'", "'mm1'"],
        ["'qq0'", "'qq1'"],
        ["'lonely'"],
    ]


def test_is_connected_full_and_subset(two_components):
    assert not is_connected(two_components)
    assert is_connected(two_components, nodes=["a", "b"])
    assert not is_connected(two_components, nodes=["a", "x"])
    assert is_connected(Graph())  # vacuously


def test_largest_component(two_components):
    largest = largest_component(two_components)
    assert set(largest.nodes()) == {"a", "b", "c"}
    assert largest_component(Graph()).num_nodes == 0


def test_is_tree():
    assert is_tree(Graph.from_edges([("a", "b"), ("b", "c")]))
    assert not is_tree(Graph.from_edges([("a", "b"), ("b", "c"), ("a", "c")]))
    assert not is_tree(Graph())  # empty graph is not a tree
    single = Graph()
    single.add_node("a")
    assert is_tree(single)


def test_prune_leaves_removes_useless_chain():
    #  required: a, c ; chain c-d-e dangles
    g = Graph.from_edges([("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")])
    pruned = prune_leaves(g, required=["a", "c"])
    assert set(pruned.nodes()) == {"a", "b", "c"}
    # input untouched
    assert g.has_node("e")


def test_prune_leaves_keeps_required_leaf():
    g = Graph.from_edges([("a", "b")])
    pruned = prune_leaves(g, required=["a", "b"])
    assert set(pruned.nodes()) == {"a", "b"}


def test_prune_leaves_missing_required():
    g = Graph.from_edges([("a", "b")])
    with pytest.raises(GraphError):
        prune_leaves(g, required=["ghost"])
