"""Unit + randomized tests for MST, Steiner approximation and Dreyfus-Wagner."""

import itertools
import random

import networkx as nx
import pytest

from repro.graph import (
    Graph,
    GraphError,
    MAX_DW_TERMINALS,
    assign_random_weights,
    dreyfus_wagner,
    erdos_renyi,
    is_connected,
    is_tree,
    largest_component,
    minimum_spanning_tree,
    mst_steiner_tree,
)


@pytest.fixture()
def grid_graph():
    """A 3x3 grid with unit weights."""
    g = Graph()
    for r in range(3):
        for c in range(3):
            if c < 2:
                g.add_edge((r, c), (r, c + 1), weight=1.0)
            if r < 2:
                g.add_edge((r, c), (r + 1, c), weight=1.0)
    return g


def test_mst_weight_matches_networkx():
    rng = random.Random(9)
    g = largest_component(
        assign_random_weights(erdos_renyi(25, 0.25, seed=rng), seed=rng)
    )
    ng = nx.Graph()
    for u, v, w in g.edges():
        ng.add_edge(u, v, weight=w)
    ours = minimum_spanning_tree(g).total_weight()
    theirs = sum(
        d["weight"] for _, _, d in nx.minimum_spanning_tree(ng).edges(data=True)
    )
    assert ours == pytest.approx(theirs)


def test_mst_of_disconnected_graph_is_forest():
    g = Graph.from_edges([("a", "b", 1.0), ("c", "d", 1.0)])
    forest = minimum_spanning_tree(g)
    assert forest.num_edges == 2
    assert not is_connected(forest)


def test_dw_single_terminal():
    g = Graph.from_edges([("a", "b", 1.0)])
    cost, tree = dreyfus_wagner(g, ["a"])
    assert cost == 0.0
    assert list(tree.nodes()) == ["a"]


def test_dw_two_terminals_is_shortest_path(grid_graph):
    cost, tree = dreyfus_wagner(grid_graph, [(0, 0), (2, 2)])
    assert cost == pytest.approx(4.0)
    assert is_tree(tree)


def test_dw_grid_three_corners(grid_graph):
    cost, tree = dreyfus_wagner(grid_graph, [(0, 0), (0, 2), (2, 0)])
    # Optimal Steiner tree: both arms share the (0,0) corner: cost 4.
    assert cost == pytest.approx(4.0)
    assert is_tree(tree)


def test_dw_rejects_too_many_terminals(grid_graph):
    terminals = list(grid_graph.nodes())[: MAX_DW_TERMINALS + 1]
    if len(terminals) <= MAX_DW_TERMINALS:
        pytest.skip("graph too small for the guard")
    with pytest.raises(GraphError):
        dreyfus_wagner(grid_graph, terminals)


def test_dw_disconnected_terminals():
    g = Graph.from_edges([("a", "b", 1.0), ("x", "y", 1.0)])
    with pytest.raises(GraphError):
        dreyfus_wagner(g, ["a", "x"])


def test_dw_missing_terminal():
    g = Graph.from_edges([("a", "b", 1.0)])
    with pytest.raises(GraphError):
        dreyfus_wagner(g, ["a", "ghost"])
    with pytest.raises(GraphError):
        dreyfus_wagner(g, [])


def test_mst_steiner_contains_terminals_and_prunes(grid_graph):
    terminals = [(0, 0), (0, 2), (2, 1)]
    tree = mst_steiner_tree(grid_graph, terminals)
    assert is_tree(tree)
    for t in terminals:
        assert tree.has_node(t)
    # every leaf is a terminal after pruning
    for node in tree.nodes():
        if tree.degree(node) == 1:
            assert node in terminals


def test_mst_steiner_single_terminal(grid_graph):
    tree = mst_steiner_tree(grid_graph, [(1, 1)])
    assert list(tree.nodes()) == [(1, 1)]
    assert tree.num_edges == 0


def test_mst_steiner_disconnected_terminals():
    g = Graph.from_edges([("a", "b", 1.0), ("x", "y", 1.0)])
    with pytest.raises(GraphError):
        mst_steiner_tree(g, ["a", "x"])


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_dw_optimal_vs_subset_enumeration(seed):
    """DW must match brute-force over connected covering subsets."""
    rng = random.Random(seed)
    g = largest_component(
        assign_random_weights(erdos_renyi(9, 0.4, seed=rng), seed=rng)
    )
    nodes = sorted(g.nodes())
    if len(nodes) < 4:
        pytest.skip("degenerate component")
    terminals = rng.sample(nodes, 3)
    best = float("inf")
    extras = [n for n in nodes if n not in terminals]
    for r in range(len(extras) + 1):
        for combo in itertools.combinations(extras, r):
            subset = set(terminals) | set(combo)
            sub = g.subgraph(subset)
            if not is_connected(sub):
                continue
            tree = minimum_spanning_tree(sub)
            if tree.num_edges == len(subset) - 1:
                best = min(best, tree.total_weight())
    cost, tree = dreyfus_wagner(g, terminals)
    assert cost == pytest.approx(best)
    assert is_tree(tree)
    assert tree.total_weight() == pytest.approx(cost)


@pytest.mark.parametrize("seed", [10, 11])
def test_node_weighted_dw_vs_enumeration(seed):
    rng = random.Random(seed)
    g = largest_component(
        assign_random_weights(erdos_renyi(8, 0.45, seed=rng), seed=rng)
    )
    nodes = sorted(g.nodes())
    if len(nodes) < 4:
        pytest.skip("degenerate component")
    terminals = rng.sample(nodes, 3)
    costs = {n: rng.uniform(0.0, 2.0) for n in nodes}

    def node_cost(n):
        return costs[n]

    best = float("inf")
    extras = [n for n in nodes if n not in terminals]
    for r in range(len(extras) + 1):
        for combo in itertools.combinations(extras, r):
            subset = set(terminals) | set(combo)
            sub = g.subgraph(subset)
            if not is_connected(sub):
                continue
            tree = minimum_spanning_tree(sub)
            if tree.num_edges != len(subset) - 1:
                continue
            best = min(
                best, tree.total_weight() + sum(costs[x] for x in combo)
            )
    cost, tree = dreyfus_wagner(g, terminals, node_cost=node_cost)
    assert cost == pytest.approx(best)
    realized = tree.total_weight() + sum(
        costs[x] for x in tree.nodes() if x not in terminals
    )
    assert realized == pytest.approx(cost)


def test_approximation_never_beats_exact():
    rng = random.Random(4)
    g = largest_component(
        assign_random_weights(erdos_renyi(20, 0.25, seed=rng), seed=rng)
    )
    nodes = sorted(g.nodes())
    terminals = rng.sample(nodes, min(4, len(nodes)))
    exact_cost, _ = dreyfus_wagner(g, terminals)
    approx = mst_steiner_tree(g, terminals)
    assert exact_cost <= approx.total_weight() + 1e-9
    # And the classic guarantee: within 2x of optimal.
    assert approx.total_weight() <= 2.0 * exact_cost + 1e-9
