"""Unit and differential tests for the flat-array label store.

:class:`repro.graph.pll_kernel.FlatLabelStore` is the PR-6 query-side
representation: CSR-style columns in the snapshot codec's exact layout,
plus three distance kernels (merge join, stdlib dense-scatter batch,
optional numpy ``minimum.reduceat``).  The contract pinned here is
**bit-identity**: every kernel minimizes the identical set of IEEE-754
hub sums, so their answers must be exactly equal — not merely close —
on every store, including degenerate ones (empty rows, empty trailing
rows, all-empty stores) that exercise the ``reduceat`` edge cases.
"""

from __future__ import annotations

from array import array

import pytest
from hypothesis import given, strategies as st

from repro.graph.adjacency import Graph
from repro.graph.pll import PrunedLandmarkLabeling, default_landmark_order
from repro.graph.pll_kernel import (
    DIST_TYPECODE,
    PARENT_TYPECODE,
    RANK_TYPECODE,
    FlatLabelStore,
    numpy_available,
)

_INF = float("inf")

#: Quarter-integer distances: closed under addition, so kernel answers
#: can be compared with ``==`` and "bit-identical" is well defined.
DIST_VALUES = [0.25 * k for k in range(0, 17)]


def make_store(rows: list[list[tuple[int, float]]]) -> FlatLabelStore:
    """Build a store from per-row ``[(hub_rank, dist), ...]`` lists."""
    counts = [len(row) for row in rows]
    ranks = array(RANK_TYPECODE, [rank for row in rows for rank, _ in row])
    dists = array(DIST_TYPECODE, [dist for row in rows for _, dist in row])
    parents = array(PARENT_TYPECODE, [-1] * len(ranks))
    return FlatLabelStore.from_columns(counts, ranks, dists, parents)


def reference_min(row_a: list[tuple[int, float]], row_b: list[tuple[int, float]]):
    """Brute-force dict-based hub join — the dict-era kernel's answer."""
    hubs_a = dict(row_a)
    best = _INF
    for rank, dist in row_b:
        if rank in hubs_a:
            best = min(best, hubs_a[rank] + dist)
    return best


def assert_kernels_identical(store: FlatLabelStore, rows) -> None:
    """All kernels == brute force, bitwise, for every (source, target)."""
    n = store.num_rows
    all_rows = list(range(n))
    for src in all_rows:
        batch = store.batch_row_mins(src, all_rows)
        vector = store.row_mins_numpy(src).tolist() if numpy_available() else None
        for dst in all_rows:
            expected = reference_min(rows[src], rows[dst])
            assert store.merge_join_rows(src, dst) == expected
            assert batch[dst] == expected
            if vector is not None:
                assert vector[dst] == expected


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def test_from_columns_builds_prefix_sum_offsets():
    rows = [[(0, 0.0)], [(0, 1.0), (1, 0.0)], []]
    store = make_store(rows)
    assert store.num_rows == 3
    assert store.total_entries == 3
    assert store.row_bounds(0) == (0, 1)
    assert store.row_bounds(1) == (1, 3)
    assert store.row_bounds(2) == (3, 3)
    assert store.row_counts() == [1, 2, 0]
    assert store.row_lists(1) == ([0, 1], [1.0, 0.0], [-1, -1])


def test_from_columns_rejects_count_column_mismatch():
    with pytest.raises(ValueError, match="columns disagree"):
        FlatLabelStore.from_columns(
            [2],
            array(RANK_TYPECODE, [0]),
            array(DIST_TYPECODE, [0.0]),
            array(PARENT_TYPECODE, [-1]),
        )


def test_from_rows_encodes_parents_as_ranks():
    order = ["b", "a"]
    rank_of = {"b": 0, "a": 1}
    store = FlatLabelStore.from_rows(
        order,
        rank_of,
        {"b": [0], "a": [0, 1]},
        {"b": [0.0], "a": [1.0, 0.0]},
        {"b": [None], "a": ["b", None]},
    )
    assert store.row_lists(0) == ([0], [0.0], [-1])
    assert store.row_lists(1) == ([0, 1], [1.0, 0.0], [0, -1])


def test_copy_is_independent():
    store = make_store([[(0, 0.0)], [(0, 2.5), (1, 0.0)]])
    dup = store.copy()
    dup.dists[0] = 9.0
    assert store.dists[0] == 0.0
    assert dup.row_lists(0) == ([0], [9.0], [-1])


# ----------------------------------------------------------------------
# kernel identity, including the reduceat edge cases
# ----------------------------------------------------------------------
def test_kernels_agree_on_simple_store():
    rows = [
        [(0, 0.0)],
        [(0, 1.0), (1, 0.0)],
        [(0, 2.0), (1, 1.0), (2, 0.0)],
        [(0, 0.5), (3, 0.0)],
    ]
    assert_kernels_identical(make_store(rows), rows)


def test_kernels_agree_with_empty_middle_and_trailing_rows():
    # Row 1 is empty (reduceat would report a bogus value without the
    # mask) and row 3 is an empty *trailing* row whose start index equals
    # ``total`` — only valid thanks to the sentinel slot.  A clipping
    # implementation instead of the sentinel silently truncates row 2's
    # segment; this store is the regression pin for exactly that bug.
    rows = [[(0, 0.0)], [], [(0, 1.25), (2, 0.0)], []]
    store = make_store(rows)
    assert_kernels_identical(store, rows)
    assert store.batch_row_mins(1, [0, 1, 2, 3]) == [_INF] * 4


def test_kernels_agree_on_all_empty_store():
    rows = [[], [], []]
    store = make_store(rows)
    assert store.total_entries == 0
    assert_kernels_identical(store, rows)


def test_best_hub_rank_picks_minimizing_hub():
    rows = [[(0, 3.0), (1, 0.5)], [(0, 1.0), (1, 0.75)]]
    store = make_store(rows)
    # Via hub 0: 4.0; via hub 1: 1.25 — hub 1 wins.
    assert store.best_hub_rank(0, 1) == 1
    # Self-join of row 0: hub 0 gives 6.0, hub 1 gives 1.0.
    assert store.best_hub_rank(0, 0) == 1
    disconnected = make_store([[(0, 0.0)], [(1, 0.0)]])
    assert disconnected.best_hub_rank(0, 1) == -1


@given(data=st.data())
def test_kernels_agree_on_random_stores(data):
    """Random sparse stores: all kernels bit-identical to brute force."""
    num_rows = data.draw(st.integers(min_value=1, max_value=7), label="rows")
    rows = []
    for i in range(num_rows):
        hubs = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=num_rows - 1),
                unique=True,
                max_size=num_rows,
            ),
            label=f"hubs{i}",
        )
        rows.append(
            [(rank, data.draw(st.sampled_from(DIST_VALUES))) for rank in sorted(hubs)]
        )
    assert_kernels_identical(make_store(rows), rows)


# ----------------------------------------------------------------------
# the store a real index freezes
# ----------------------------------------------------------------------
def test_frozen_index_store_matches_label_semantics():
    graph = Graph.from_edges(
        [("a", "b", 1.0), ("b", "c", 0.5), ("c", "d", 2.0), ("a", "d", 4.0)]
    )
    pll = PrunedLandmarkLabeling(graph)
    nodes = list(graph.nodes())
    pll.distances_from(nodes[0], nodes)  # force the freeze
    store = pll._flat
    assert store is not None
    assert store.num_rows == len(nodes)
    assert store.row_counts() == [
        len(pll.label_of(node)) for node in pll._order
    ]
    for i, node in enumerate(pll._order):
        ranks, dists, _ = store.row_lists(i)
        assert ranks == sorted(ranks)
        assert [(pll._order[r], d) for r, d in zip(ranks, dists)] == pll.label_of(
            node
        )


# ----------------------------------------------------------------------
# landmark ordering strategies
# ----------------------------------------------------------------------
def _star_plus_tail() -> Graph:
    # "hub" has max degree; "mid" has the highest betweenness bridge
    # position on the tail.
    return Graph.from_edges(
        [
            ("hub", "s1", 1.0),
            ("hub", "s2", 1.0),
            ("hub", "s3", 1.0),
            ("hub", "mid", 1.0),
            ("mid", "t1", 1.0),
            ("t1", "t2", 1.0),
        ]
    )


def test_default_landmark_order_degree_sorts_by_degree():
    graph = _star_plus_tail()
    order = default_landmark_order(graph, "degree")
    assert order[0] == "hub"
    degrees = [graph.degree(node) for node in order]
    assert degrees == sorted(degrees, reverse=True)


def test_default_landmark_order_centrality_ranks_bridges():
    graph = _star_plus_tail()
    order = default_landmark_order(graph, "centrality")
    assert set(order) == set(graph.nodes())
    # The star hub carries the most shortest paths here; the tail bridge
    # outranks every leaf.
    assert order[0] == "hub"
    assert order.index("mid") < order.index("s1")


def test_default_landmark_order_rejects_unknown_strategy():
    with pytest.raises(ValueError, match="order strategy"):
        default_landmark_order(Graph(), "pagerank")


def test_pll_rejects_unknown_kernel_and_strategy():
    graph = Graph.from_edges([("a", "b", 1.0)])
    with pytest.raises(ValueError, match="unknown kernel"):
        PrunedLandmarkLabeling(graph, kernel="simd")
    with pytest.raises(ValueError, match="order strategy"):
        PrunedLandmarkLabeling(graph, order_strategy="pagerank")


@pytest.mark.parametrize("kernel", ["flat", "flat-py", "dict"])
def test_all_kernels_answer_identical_distances(kernel):
    graph = Graph.from_edges(
        [("a", "b", 0.25), ("b", "c", 1.5), ("c", "d", 0.75), ("b", "d", 3.0)]
    )
    graph.add_node("lonely")
    reference = PrunedLandmarkLabeling(graph, kernel="dict")
    pll = PrunedLandmarkLabeling(graph, kernel=kernel)
    nodes = list(graph.nodes())
    for source in nodes:
        assert pll.distances_from(source, nodes) == reference.distances_from(
            source, nodes
        )
        for target in nodes:
            assert pll.distance(source, target) == reference.distance(source, target)


def test_centrality_ordered_index_is_exact():
    graph = _star_plus_tail()
    pll = PrunedLandmarkLabeling(graph, order_strategy="centrality")
    reference = PrunedLandmarkLabeling(graph)
    nodes = list(graph.nodes())
    for source in nodes:
        assert pll.distances_from(source, nodes) == reference.distances_from(
            source, nodes
        )
