"""Unit + randomized tests for Yen's k shortest paths (vs networkx)."""

import itertools
import random

import networkx as nx
import pytest

from repro.graph import (
    Graph,
    GraphError,
    assign_random_weights,
    erdos_renyi,
    k_shortest_paths,
    largest_component,
)


@pytest.fixture()
def diamond():
    return Graph.from_edges(
        [
            ("s", "a", 1.0),
            ("a", "t", 1.0),
            ("s", "b", 1.5),
            ("b", "t", 1.5),
            ("s", "t", 5.0),
        ]
    )


def test_paths_sorted_and_loopless(diamond):
    paths = k_shortest_paths(diamond, "s", "t", 3)
    costs = [c for c, _ in paths]
    assert costs == sorted(costs)
    assert costs == pytest.approx([2.0, 3.0, 5.0])
    for _, path in paths:
        assert path[0] == "s" and path[-1] == "t"
        assert len(path) == len(set(path))  # loopless


def test_fewer_paths_than_requested(diamond):
    paths = k_shortest_paths(diamond, "s", "t", 50)
    assert len(paths) == 3  # only 3 simple paths exist


def test_k_one_is_dijkstra(diamond):
    [(cost, path)] = k_shortest_paths(diamond, "s", "t", 1)
    assert cost == pytest.approx(2.0)
    assert path == ["s", "a", "t"]


def test_no_path_raises():
    g = Graph.from_edges([("a", "b", 1.0)])
    g.add_node("z")
    with pytest.raises(GraphError):
        k_shortest_paths(g, "a", "z", 2)
    with pytest.raises(ValueError):
        k_shortest_paths(g, "a", "b", 0)


def test_paths_distinct(diamond):
    paths = [tuple(p) for _, p in k_shortest_paths(diamond, "s", "t", 3)]
    assert len(paths) == len(set(paths))


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_matches_networkx_simple_paths(seed):
    rng = random.Random(seed)
    g = largest_component(
        assign_random_weights(erdos_renyi(12, 0.35, seed=rng), seed=rng)
    )
    nodes = sorted(g.nodes())
    if len(nodes) < 3:
        pytest.skip("degenerate component")
    source, target = nodes[0], nodes[-1]
    ng = nx.Graph()
    for u, v, w in g.edges():
        ng.add_edge(u, v, weight=w)
    expected = [
        sum(ng[u][v]["weight"] for u, v in zip(p, p[1:]))
        for p in itertools.islice(
            nx.shortest_simple_paths(ng, source, target, weight="weight"), 4
        )
    ]
    ours = [c for c, _ in k_shortest_paths(g, source, target, 4)]
    assert ours == pytest.approx(expected)
