"""Unit tests for the random graph generators."""

import random

import pytest

from repro.graph import (
    GraphError,
    assign_random_weights,
    barabasi_albert,
    erdos_renyi,
    gnm_random_graph,
    is_connected,
    is_tree,
    planted_partition,
    random_tree,
    watts_strogatz,
)


def test_erdos_renyi_extremes():
    empty = erdos_renyi(10, 0.0, seed=1)
    assert empty.num_nodes == 10 and empty.num_edges == 0
    full = erdos_renyi(6, 1.0, seed=1)
    assert full.num_edges == 15


def test_erdos_renyi_seeded_reproducible():
    a = erdos_renyi(20, 0.3, seed=42)
    b = erdos_renyi(20, 0.3, seed=42)
    assert sorted((u, v) for u, v, _ in a.edges()) == sorted(
        (u, v) for u, v, _ in b.edges()
    )


def test_erdos_renyi_invalid_probability():
    with pytest.raises(GraphError):
        erdos_renyi(5, 1.5)


def test_gnm_exact_edge_count():
    g = gnm_random_graph(12, 20, seed=3)
    assert g.num_nodes == 12 and g.num_edges == 20


def test_gnm_too_many_edges():
    with pytest.raises(GraphError):
        gnm_random_graph(4, 10)


def test_barabasi_albert_connected_and_sized():
    g = barabasi_albert(50, 2, seed=7)
    assert g.num_nodes == 50
    assert is_connected(g)
    # hubs exist: max degree well above the attachment parameter
    assert max(g.degree(n) for n in g.nodes()) > 4


def test_barabasi_albert_invalid_m():
    with pytest.raises(GraphError):
        barabasi_albert(5, 0)
    with pytest.raises(GraphError):
        barabasi_albert(5, 5)


def test_watts_strogatz_degree_regular_at_beta_zero():
    g = watts_strogatz(12, 4, 0.0, seed=1)
    assert all(g.degree(n) == 4 for n in g.nodes())


def test_watts_strogatz_validation():
    with pytest.raises(GraphError):
        watts_strogatz(10, 3, 0.1)  # odd k
    with pytest.raises(GraphError):
        watts_strogatz(4, 4, 0.1)  # k >= n
    with pytest.raises(GraphError):
        watts_strogatz(10, 4, 1.5)  # bad beta


def test_planted_partition_community_attribute():
    g = planted_partition([5, 5], 0.9, 0.05, seed=2)
    assert g.num_nodes == 10
    communities = {g.node_data(n)["community"] for n in g.nodes()}
    assert communities == {0, 1}


def test_planted_partition_density_contrast():
    rng = random.Random(0)
    g = planted_partition([20, 20], 0.5, 0.02, seed=rng)
    inside = outside = 0
    for u, v, _ in g.edges():
        if g.node_data(u)["community"] == g.node_data(v)["community"]:
            inside += 1
        else:
            outside += 1
    assert inside > outside


def test_random_tree_is_tree():
    g = random_tree(40, seed=5)
    assert is_tree(g)
    with pytest.raises(GraphError):
        random_tree(0)


def test_assign_random_weights_range_and_copy():
    g = erdos_renyi(15, 0.4, seed=1)
    w = assign_random_weights(g, low=0.2, high=0.9, seed=2)
    assert all(0.2 <= weight <= 0.9 for _, _, weight in w.edges())
    # original untouched (all unit weights)
    assert all(weight == 1.0 for _, _, weight in g.edges())
    with pytest.raises(GraphError):
        assign_random_weights(g, low=-1.0, high=0.5)
