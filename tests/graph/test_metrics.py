"""Unit tests for structural graph statistics (vs networkx where possible)."""

import networkx as nx
import pytest

from repro.graph import (
    Graph,
    GraphError,
    approximate_average_distance,
    average_clustering,
    average_degree,
    degree_histogram,
    density,
    erdos_renyi,
    local_clustering,
)


@pytest.fixture()
def triangle_plus_tail():
    return Graph.from_edges([("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])


def test_density(triangle_plus_tail):
    # 4 nodes, 4 edges -> 2*4 / (4*3)
    assert density(triangle_plus_tail) == pytest.approx(2 / 3)
    assert density(Graph()) == 0.0


def test_average_degree(triangle_plus_tail):
    assert average_degree(triangle_plus_tail) == pytest.approx(2.0)
    assert average_degree(Graph()) == 0.0


def test_degree_histogram(triangle_plus_tail):
    assert degree_histogram(triangle_plus_tail) == {1: 1, 2: 2, 3: 1}


def test_local_clustering(triangle_plus_tail):
    assert local_clustering(triangle_plus_tail, "a") == 1.0
    # c's neighbors a, b, d: only (a, b) linked -> 1/3
    assert local_clustering(triangle_plus_tail, "c") == pytest.approx(1 / 3)
    assert local_clustering(triangle_plus_tail, "d") == 0.0


def test_clustering_matches_networkx():
    g = erdos_renyi(25, 0.3, seed=6)
    ng = nx.Graph()
    ng.add_nodes_from(g.nodes())
    for u, v, _ in g.edges():
        ng.add_edge(u, v)
    assert average_clustering(g) == pytest.approx(nx.average_clustering(ng))


def test_approximate_average_distance_exact_on_small():
    g = Graph.from_edges([("a", "b", 1.0), ("b", "c", 2.0)])
    # pairs: (a,b)=1, (a,c)=3, (b,c)=2, each counted both directions
    assert approximate_average_distance(g) == pytest.approx(2.0)


def test_approximate_average_distance_empty():
    with pytest.raises(GraphError):
        approximate_average_distance(Graph())


def test_approximate_average_distance_isolated_node():
    g = Graph.from_edges([("a", "b", 1.0)])
    g.add_node("z")
    # unreachable pairs excluded
    assert approximate_average_distance(g) == pytest.approx(1.0)
