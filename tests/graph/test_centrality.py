"""Unit tests for Brandes betweenness centrality (vs networkx)."""

import random

import networkx as nx
import pytest

from repro.graph import (
    Graph,
    assign_random_weights,
    betweenness_centrality,
    erdos_renyi,
    largest_component,
)


def test_path_graph_middle_dominates():
    g = Graph.from_edges([("a", "m", 1.0), ("m", "b", 1.0)])
    bc = betweenness_centrality(g)
    assert bc["m"] == pytest.approx(1.0)
    assert bc["a"] == 0.0 and bc["b"] == 0.0


def test_star_center():
    g = Graph()
    for leaf in "bcde":
        g.add_edge("hub", leaf, weight=1.0)
    bc = betweenness_centrality(g)
    assert bc["hub"] == pytest.approx(1.0)
    assert all(bc[leaf] == 0.0 for leaf in "bcde")


def test_cycle_symmetric():
    g = Graph.from_edges([("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")])
    bc = betweenness_centrality(g)
    values = set(round(v, 9) for v in bc.values())
    assert len(values) == 1


def test_shortest_path_multiplicity_split():
    # two equal-length routes between s and t: credit split between mids
    g = Graph.from_edges(
        [("s", "m1", 1.0), ("m1", "t", 1.0), ("s", "m2", 1.0), ("m2", "t", 1.0)]
    )
    bc = betweenness_centrality(g, normalized=False)
    assert bc["m1"] == pytest.approx(bc["m2"])
    assert bc["m1"] == pytest.approx(0.5)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_matches_networkx_weighted(seed):
    rng = random.Random(seed)
    g = largest_component(
        assign_random_weights(erdos_renyi(18, 0.25, seed=rng), seed=rng)
    )
    if g.num_nodes < 4:
        pytest.skip("degenerate component")
    ng = nx.Graph()
    for u, v, w in g.edges():
        ng.add_edge(u, v, weight=w)
    expected = nx.betweenness_centrality(ng, weight="weight", normalized=True)
    ours = betweenness_centrality(g, normalized=True)
    for node in g.nodes():
        assert ours[node] == pytest.approx(expected[node], abs=1e-6)


def test_unnormalized_small_graph():
    g = Graph.from_edges([("a", "b")])
    bc = betweenness_centrality(g)  # n <= 2: falls back to /2 counting
    assert bc == {"a": 0.0, "b": 0.0}
