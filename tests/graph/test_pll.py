"""Unit + randomized tests for the pruned-landmark-labeling oracle."""

import random

import networkx as nx
import pytest

from repro.graph import (
    Graph,
    GraphError,
    PrunedLandmarkLabeling,
    assign_random_weights,
    erdos_renyi,
    largest_component,
)


@pytest.fixture()
def small_graph():
    return Graph.from_edges(
        [
            ("a", "b", 1.0),
            ("b", "c", 2.0),
            ("a", "c", 4.0),
            ("c", "d", 1.0),
            ("b", "d", 5.0),
        ]
    )


def test_distance_matches_dijkstra(small_graph):
    pll = PrunedLandmarkLabeling(small_graph)
    assert pll.distance("a", "d") == pytest.approx(4.0)
    assert pll.distance("a", "c") == pytest.approx(3.0)
    assert pll.distance("b", "b") == 0.0


def test_path_endpoints_and_weight(small_graph):
    pll = PrunedLandmarkLabeling(small_graph)
    path = pll.path("a", "d")
    assert path[0] == "a" and path[-1] == "d"
    weight = sum(
        small_graph.weight(u, v) for u, v in zip(path, path[1:])
    )
    assert weight == pytest.approx(pll.distance("a", "d"))


def test_trivial_path_same_node(small_graph):
    pll = PrunedLandmarkLabeling(small_graph)
    assert pll.path("a", "a") == ["a"]


def test_disconnected_pair_is_inf():
    g = Graph.from_edges([("a", "b", 1.0)])
    g.add_node("z")
    pll = PrunedLandmarkLabeling(g)
    assert pll.distance("a", "z") == float("inf")
    with pytest.raises(GraphError):
        pll.path("a", "z")


def test_unknown_node_raises(small_graph):
    pll = PrunedLandmarkLabeling(small_graph)
    with pytest.raises(GraphError):
        pll.distance("a", "ghost")
    with pytest.raises(GraphError):
        pll.distance("ghost", "ghost")


def test_custom_order_must_be_permutation(small_graph):
    with pytest.raises(GraphError):
        PrunedLandmarkLabeling(small_graph, order=["a", "b"])


def test_label_size_bounded_by_n():
    g = largest_component(erdos_renyi(30, 0.2, seed=5))
    pll = PrunedLandmarkLabeling(g)
    assert 1.0 <= pll.average_label_size <= g.num_nodes
    assert pll.total_label_entries >= g.num_nodes  # every node knows itself


def test_label_of_contains_self_landmark(small_graph):
    pll = PrunedLandmarkLabeling(small_graph)
    # The highest-ranked node labels itself at distance 0.
    top = max(small_graph.nodes(), key=lambda n: small_graph.degree(n))
    assert (top, 0.0) in pll.label_of(top)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_randomized_against_networkx(seed):
    rng = random.Random(seed)
    g = largest_component(
        assign_random_weights(erdos_renyi(35, 0.12, seed=rng), seed=rng)
    )
    if g.num_nodes < 2:
        pytest.skip("degenerate component")
    ng = nx.Graph()
    for u, v, w in g.edges():
        ng.add_edge(u, v, weight=w)
    pll = PrunedLandmarkLabeling(g)
    nodes = sorted(g.nodes())
    for _ in range(40):
        a, b = rng.choice(nodes), rng.choice(nodes)
        expected = nx.shortest_path_length(ng, a, b, weight="weight")
        assert pll.distance(a, b) == pytest.approx(expected)
        path = pll.path(a, b)
        assert path[0] == a and path[-1] == b
        weight = sum(g.weight(u, v) for u, v in zip(path, path[1:]))
        assert weight == pytest.approx(expected)
