"""Unit tests for the DistanceOracle protocol implementations."""

import pytest

from repro.graph import (
    DijkstraOracle,
    DistanceOracle,
    Graph,
    GraphError,
    PrunedLandmarkLabeling,
    build_oracle,
)


@pytest.fixture()
def graph():
    return Graph.from_edges(
        [("a", "b", 1.0), ("b", "c", 2.0), ("a", "c", 5.0), ("c", "d", 1.0)]
    )


def test_build_oracle_kinds(graph):
    assert isinstance(build_oracle(graph, "pll"), PrunedLandmarkLabeling)
    assert isinstance(build_oracle(graph, "dijkstra"), DijkstraOracle)
    with pytest.raises(ValueError):
        build_oracle(graph, "warp-drive")


def test_both_satisfy_protocol(graph):
    for kind in ("pll", "dijkstra"):
        oracle = build_oracle(graph, kind)
        assert isinstance(oracle, DistanceOracle)


def test_dijkstra_oracle_distance_and_path(graph):
    oracle = DijkstraOracle(graph)
    assert oracle.distance("a", "d") == pytest.approx(4.0)
    path = oracle.path("a", "d")
    assert path == ["a", "b", "c", "d"]


def test_dijkstra_oracle_unreachable(graph):
    graph.add_node("island")
    oracle = DijkstraOracle(graph)
    assert oracle.distance("a", "island") == float("inf")
    with pytest.raises(GraphError):
        oracle.path("a", "island")


def test_dijkstra_oracle_unknown_node(graph):
    oracle = DijkstraOracle(graph)
    with pytest.raises(GraphError):
        oracle.distance("a", "ghost")


def test_cache_eviction_keeps_answers_correct(graph):
    oracle = DijkstraOracle(graph, max_cached_sources=1)
    d1 = oracle.distance("a", "d")
    d2 = oracle.distance("d", "a")  # evicts 'a'
    d3 = oracle.distance("a", "d")  # recomputes
    assert d1 == d3 == d2 == pytest.approx(4.0)
    with pytest.raises(ValueError):
        DijkstraOracle(graph, max_cached_sources=0)


def test_oracles_agree_everywhere(graph):
    pll = build_oracle(graph, "pll")
    dij = build_oracle(graph, "dijkstra")
    nodes = sorted(graph.nodes())
    for a in nodes:
        for b in nodes:
            assert pll.distance(a, b) == pytest.approx(dij.distance(a, b))
