"""Unit + randomized tests for bidirectional Dijkstra."""

import random

import pytest

from repro.graph import (
    Graph,
    GraphError,
    assign_random_weights,
    bidirectional_dijkstra,
    erdos_renyi,
    largest_component,
    shortest_path,
)


def test_simple_path():
    g = Graph.from_edges([("a", "b", 1.0), ("b", "c", 2.0)])
    assert bidirectional_dijkstra(g, "a", "c") == (3.0, ["a", "b", "c"])


def test_same_node():
    g = Graph.from_edges([("a", "b", 1.0)])
    assert bidirectional_dijkstra(g, "a", "a") == (0.0, ["a"])


def test_prefers_cheap_detour():
    g = Graph.from_edges(
        [("s", "t", 10.0), ("s", "m", 1.0), ("m", "t", 1.0)]
    )
    cost, path = bidirectional_dijkstra(g, "s", "t")
    assert cost == pytest.approx(2.0)
    assert path == ["s", "m", "t"]


def test_missing_node():
    g = Graph.from_edges([("a", "b", 1.0)])
    with pytest.raises(GraphError):
        bidirectional_dijkstra(g, "a", "ghost")


def test_disconnected():
    g = Graph.from_edges([("a", "b", 1.0)])
    g.add_node("z")
    with pytest.raises(GraphError):
        bidirectional_dijkstra(g, "a", "z")


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_matches_unidirectional(seed):
    rng = random.Random(seed)
    g = largest_component(
        assign_random_weights(erdos_renyi(40, 0.1, seed=rng), seed=rng)
    )
    nodes = sorted(g.nodes())
    if len(nodes) < 2:
        pytest.skip("degenerate component")
    for _ in range(15):
        a, b = rng.choice(nodes), rng.choice(nodes)
        expected_cost, _ = shortest_path(g, a, b)
        cost, path = bidirectional_dijkstra(g, a, b)
        assert cost == pytest.approx(expected_cost)
        assert path[0] == a and path[-1] == b
        realized = sum(g.weight(u, v) for u, v in zip(path, path[1:]))
        assert realized == pytest.approx(cost)
        assert len(path) == len(set(path))  # simple path
