"""Unit tests for Dijkstra and the node-cost variant."""

import pytest

from repro.graph import (
    Graph,
    GraphError,
    dijkstra,
    dijkstra_with_node_costs,
    reconstruct_path,
    shortest_path,
    shortest_path_length,
)


@pytest.fixture()
def path_graph():
    return Graph.from_edges([("a", "b", 1.0), ("b", "c", 2.0), ("c", "d", 3.0)])


@pytest.fixture()
def diamond():
    #   a --1-- b --1-- d     direct a-d costs 5, via b,c costs 2 each side
    return Graph.from_edges(
        [
            ("a", "b", 1.0),
            ("b", "d", 1.0),
            ("a", "c", 1.5),
            ("c", "d", 1.0),
            ("a", "d", 5.0),
        ]
    )


def test_distances_on_path(path_graph):
    dist, parent = dijkstra(path_graph, "a")
    assert dist == {"a": 0.0, "b": 1.0, "c": 3.0, "d": 6.0}
    assert reconstruct_path(parent, "d") == ["a", "b", "c", "d"]


def test_shortest_path_prefers_cheap_detour(diamond):
    d, path = shortest_path(diamond, "a", "d")
    assert d == pytest.approx(2.0)
    assert path == ["a", "b", "d"]


def test_unreachable_target():
    g = Graph.from_edges([("a", "b", 1.0)])
    g.add_node("z")
    assert shortest_path_length(g, "a", "z") == float("inf")
    with pytest.raises(GraphError):
        shortest_path(g, "a", "z")


def test_missing_source_raises():
    g = Graph.from_edges([("a", "b", 1.0)])
    with pytest.raises(GraphError):
        dijkstra(g, "ghost")


def test_targets_early_exit(path_graph):
    dist, _ = dijkstra(path_graph, "a", targets=["b"])
    assert "b" in dist
    # 'd' lies beyond the last requested target and must not be settled.
    assert "d" not in dist


def test_cutoff_limits_settled(path_graph):
    dist, _ = dijkstra(path_graph, "a", cutoff=3.0)
    assert set(dist) == {"a", "b", "c"}


def test_source_distance_zero(path_graph):
    dist, parent = dijkstra(path_graph, "b")
    assert dist["b"] == 0.0
    assert parent["b"] is None
    assert reconstruct_path(parent, "b") == ["b"]


def test_node_costs_charged_on_entry():
    g = Graph.from_edges([("s", "m", 1.0), ("m", "t", 1.0), ("s", "t", 3.0)])
    cost = {"s": 100.0, "m": 10.0, "t": 0.0}
    dist, parent = dijkstra_with_node_costs(g, "s", cost.get)
    # via m: 1 + 10 + 1 + 0 = 12; direct: 3 + 0 = 3 -> direct wins
    assert dist["t"] == pytest.approx(3.0)
    assert reconstruct_path(parent, "t") == ["s", "t"]
    # source cost not charged by default
    assert dist["s"] == 0.0


def test_node_costs_charge_source_flag():
    g = Graph.from_edges([("s", "t", 1.0)])
    dist, _ = dijkstra_with_node_costs(
        g, "s", {"s": 7.0, "t": 2.0}.get, charge_source=True
    )
    assert dist["s"] == 7.0
    assert dist["t"] == 10.0


def test_negative_node_cost_rejected():
    g = Graph.from_edges([("s", "t", 1.0)])
    with pytest.raises(GraphError):
        dijkstra_with_node_costs(g, "s", {"s": 0.0, "t": -1.0}.get)


def test_reconstruct_path_unreachable_raises():
    g = Graph.from_edges([("a", "b", 1.0)])
    _, parent = dijkstra(g, "a")
    with pytest.raises(GraphError):
        reconstruct_path(parent, "zzz")
