"""Unit tests for the Graph storage substrate."""

import pytest

from repro.graph import Graph, GraphError


def test_add_edge_creates_nodes():
    g = Graph()
    g.add_edge("a", "b", weight=2.0)
    assert g.has_node("a") and g.has_node("b")
    assert g.num_nodes == 2
    assert g.num_edges == 1


def test_edge_weight_is_symmetric():
    g = Graph()
    g.add_edge("a", "b", weight=2.5)
    assert g.weight("a", "b") == 2.5
    assert g.weight("b", "a") == 2.5


def test_add_edge_overwrites_weight_without_duplicating():
    g = Graph()
    g.add_edge(1, 2, weight=1.0)
    g.add_edge(1, 2, weight=3.0)
    assert g.num_edges == 1
    assert g.weight(1, 2) == 3.0


def test_self_loop_rejected():
    g = Graph()
    with pytest.raises(GraphError):
        g.add_edge("x", "x")


def test_negative_weight_rejected():
    g = Graph()
    with pytest.raises(GraphError):
        g.add_edge("a", "b", weight=-0.1)


def test_node_data_merges():
    g = Graph()
    g.add_node("a", color="red")
    g.add_node("a", size=3)
    assert g.node_data("a") == {"color": "red", "size": 3}


def test_missing_node_raises():
    g = Graph()
    with pytest.raises(GraphError):
        g.neighbors("ghost")
    with pytest.raises(GraphError):
        g.node_data("ghost")
    with pytest.raises(GraphError):
        g.weight("a", "b")


def test_remove_edge_and_node():
    g = Graph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
    g.remove_edge("a", "b")
    assert not g.has_edge("a", "b")
    assert g.num_edges == 2
    g.remove_node("c")
    assert not g.has_node("c")
    assert g.num_edges == 0
    with pytest.raises(GraphError):
        g.remove_edge("a", "b")
    with pytest.raises(GraphError):
        g.remove_node("ghost")


def test_edges_iterates_each_once():
    g = Graph.from_edges([("a", "b", 1.0), ("b", "c", 2.0), ("a", "c", 3.0)])
    edges = list(g.edges())
    assert len(edges) == 3
    assert {frozenset((u, v)) for u, v, _ in edges} == {
        frozenset("ab"),
        frozenset("bc"),
        frozenset("ac"),
    }
    assert g.total_weight() == pytest.approx(6.0)


def test_subgraph_induced():
    g = Graph.from_edges([("a", "b", 1.0), ("b", "c", 2.0), ("a", "c", 3.0)])
    g.add_node("a", role="x")
    sub = g.subgraph(["a", "b"])
    assert sub.num_nodes == 2
    assert sub.num_edges == 1
    assert sub.weight("a", "b") == 1.0
    assert sub.node_data("a") == {"role": "x"}
    with pytest.raises(GraphError):
        g.subgraph(["a", "ghost"])


def test_copy_is_independent():
    g = Graph.from_edges([("a", "b", 1.0)])
    h = g.copy()
    h.add_edge("a", "c")
    assert not g.has_node("c")


def test_reweighted_applies_rule_and_keeps_data():
    g = Graph.from_edges([("a", "b", 2.0)])
    g.add_node("a", tag=1)
    h = g.reweighted(lambda u, v, w: w * 10)
    assert h.weight("a", "b") == 20.0
    assert g.weight("a", "b") == 2.0
    assert h.node_data("a") == {"tag": 1}


def test_degree_and_contains_and_len():
    g = Graph.from_edges([("a", "b"), ("a", "c")])
    assert g.degree("a") == 2
    assert "a" in g
    assert "z" not in g
    assert len(g) == 3


def test_from_edges_mixed_arity():
    g = Graph.from_edges([("a", "b"), ("b", "c", 0.5)])
    assert g.weight("a", "b") == 1.0
    assert g.weight("b", "c") == 0.5
