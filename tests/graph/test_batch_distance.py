"""Batch distance API, per-root cache, and the parallel PLL build.

Three equivalences are pinned down here:

* ``distances_from`` / ``distances_many`` agree with point ``distance()``
  and with plain Dijkstra ground truth, on both oracle kinds;
* a parallel build (``workers=2``) produces *identical* labels to the
  sequential build — the batch schedule is worker-independent, so this is
  an exact, entry-for-entry comparison, not an approximate one;
* the greedy solver returns identical teams through the batched and the
  point-query paths.
"""

import random

import pytest

from repro.core.greedy import GreedyTeamFinder
from repro.graph import (
    DijkstraOracle,
    DistanceOracle,
    Graph,
    GraphError,
    PrunedLandmarkLabeling,
    build_oracle,
    dijkstra,
    get_default_index_workers,
    mst_steiner_tree,
    set_default_index_workers,
)

from ..conftest import make_random_network


def _random_graph(seed: int, n: int = 40) -> Graph:
    return make_random_network(random.Random(seed), n=n, p=0.15).graph


# ----------------------------------------------------------------------
# batch API correctness
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["pll", "dijkstra"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_distances_many_agrees_with_point_and_dijkstra(kind, seed):
    g = _random_graph(seed)
    g.add_node("island")  # exercise the inf path
    oracle = build_oracle(g, kind)
    nodes = sorted(g.nodes(), key=repr)
    sources, targets = nodes[::3], nodes[::2]
    many = oracle.distances_many(sources, targets)
    assert set(many) == {(s, t) for s in sources for t in targets}
    for s in sources:
        truth, _ = dijkstra(g, s)
        batch = oracle.distances_from(s, targets)
        for t in targets:
            expected = truth.get(t, float("inf"))
            assert many[(s, t)] == batch[t]
            assert batch[t] == pytest.approx(expected)
            assert oracle.distance(s, t) == pytest.approx(expected)


@pytest.mark.parametrize("kind", ["pll", "dijkstra"])
def test_distances_from_unknown_node_raises(kind):
    g = Graph.from_edges([("a", "b", 1.0)])
    oracle = build_oracle(g, kind)
    with pytest.raises(GraphError):
        oracle.distances_from("ghost", ["a"])
    with pytest.raises(GraphError):
        oracle.distances_from("a", ["ghost"])


def test_pll_source_cache_is_bounded_and_correct():
    g = _random_graph(3)
    pll = PrunedLandmarkLabeling(g)
    pll.MAX_CACHED_SOURCES  # class-level bound exists
    nodes = sorted(g.nodes(), key=repr)
    first = pll.distances_from(nodes[0], nodes)
    again = pll.distances_from(nodes[0], nodes)  # served from cache
    assert first == again
    # Evictions must never change answers.
    small_cache = PrunedLandmarkLabeling(g)
    small_cache.MAX_CACHED_SOURCES = 2
    for s in nodes[:6]:
        batch = small_cache.distances_from(s, nodes)
        for t in nodes[:10]:
            assert batch[t] == pll.distance(s, t)
    assert len(small_cache._source_cache) <= 2


def test_protocol_includes_batch_api():
    g = Graph.from_edges([("a", "b", 1.0)])
    for kind in ("pll", "dijkstra"):
        assert isinstance(build_oracle(g, kind), DistanceOracle)


# ----------------------------------------------------------------------
# parallel build
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1])
def test_parallel_build_identical_labels(seed):
    g = _random_graph(seed, n=60)
    sequential = PrunedLandmarkLabeling(g, workers=1)
    parallel = PrunedLandmarkLabeling(g, workers=2)
    assert sequential.labels() == parallel.labels()
    # export_labels carries the parent pointers (rank-encoded), so this
    # pins full label equality regardless of the active representation.
    assert sequential.export_labels() == parallel.export_labels()
    assert sequential.total_label_entries == parallel.total_label_entries


def test_parallel_build_exact_distances_and_paths():
    g = _random_graph(4, n=60)
    parallel = PrunedLandmarkLabeling(g, workers=2)
    classic = PrunedLandmarkLabeling(g, batch_size=1)
    rng = random.Random(7)
    nodes = sorted(g.nodes(), key=repr)
    for _ in range(60):
        a, b = rng.choice(nodes), rng.choice(nodes)
        truth, _ = dijkstra(g, a, targets=[b])
        expected = truth.get(b, float("inf"))
        assert parallel.distance(a, b) == pytest.approx(expected)
        assert classic.distance(a, b) == pytest.approx(expected)
        if a != b and expected < float("inf"):
            path = parallel.path(a, b)
            assert path[0] == a and path[-1] == b
            weight = sum(g.weight(u, v) for u, v in zip(path, path[1:]))
            assert weight == pytest.approx(expected)


def test_batched_schedule_grows_labels_only_marginally():
    g = _random_graph(5, n=80)
    classic = PrunedLandmarkLabeling(g, batch_size=1)
    batched = PrunedLandmarkLabeling(g)
    assert batched.total_label_entries >= classic.total_label_entries
    assert batched.total_label_entries <= 1.25 * classic.total_label_entries


def test_invalid_build_parameters():
    g = Graph.from_edges([("a", "b", 1.0)])
    with pytest.raises(ValueError):
        PrunedLandmarkLabeling(g, workers=0)
    with pytest.raises(ValueError):
        PrunedLandmarkLabeling(g, batch_size=0)


def test_default_index_workers_roundtrip():
    assert get_default_index_workers() == 1
    try:
        set_default_index_workers(2)
        assert get_default_index_workers() == 2
        g = _random_graph(6, n=60)
        oracle = build_oracle(g, "pll")
        assert oracle.workers == 2
        assert oracle.labels() == PrunedLandmarkLabeling(g, workers=1).labels()
    finally:
        set_default_index_workers(1)
    with pytest.raises(ValueError):
        set_default_index_workers(0)


# ----------------------------------------------------------------------
# batched consumers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("objective", ["cc", "sa-ca-cc"])
def test_greedy_batched_equals_point_queries(objective):
    network = make_random_network(random.Random(11), n=24, p=0.3)
    project = ["a", "b", "c"]
    batched = GreedyTeamFinder(network, objective=objective)
    point = GreedyTeamFinder(network, objective=objective, batch_queries=False)
    assert batched._batch_queries and not point._batch_queries
    teams_b = batched.find_top_k(project, k=3)
    teams_p = point.find_top_k(project, k=3)
    assert [t.key() for t in teams_b] == [t.key() for t in teams_p]
    for tb, tp in zip(teams_b, teams_p):
        assert tb.assignments == tp.assignments
        assert tb.root == tp.root
        assert sorted(tb.tree.edges()) == sorted(tp.tree.edges())


def test_greedy_parallel_index_equals_sequential():
    network = make_random_network(random.Random(12), n=40, p=0.2)
    project = ["a", "b", "c", "d"]
    sequential = GreedyTeamFinder(network, index_workers=1)
    parallel = GreedyTeamFinder(network, index_workers=2)
    teams_s = sequential.find_top_k(project, k=3)
    teams_q = parallel.find_top_k(project, k=3)
    assert [t.key() for t in teams_s] == [t.key() for t in teams_q]


def test_steiner_oracle_closure_matches_plain():
    g = _random_graph(13, n=40)
    terminals = sorted(g.nodes(), key=repr)[:5]
    plain = mst_steiner_tree(g, terminals)
    via_oracle = mst_steiner_tree(g, terminals, oracle=DijkstraOracle(g))
    assert sorted(plain.edges()) == sorted(via_oracle.edges())
