"""Unit tests for the deterministic shard partitioner."""

from __future__ import annotations

import random
import subprocess
import sys

import pytest

from repro.graph import Graph, GraphError, assign_random_weights, erdos_renyi
from repro.graph.partition import PartitionError, ShardPlan, plan_shards


def chain_of_triangles(blocks: int) -> Graph:
    """``blocks`` triangles glued in a chain at shared cut vertices."""
    g = Graph()
    for b in range(blocks):
        a, mid, c = f"n{2 * b}", f"m{b}", f"n{2 * b + 2}"
        g.add_edge(a, mid, weight=1.0)
        g.add_edge(mid, c, weight=1.0)
        g.add_edge(a, c, weight=1.0)
    return g


# ----------------------------------------------------------------------
# plan validity
# ----------------------------------------------------------------------
def test_rejects_nonpositive_k():
    with pytest.raises(PartitionError):
        plan_shards(Graph(), 0)


def test_empty_graph_yields_empty_shards():
    plan = plan_shards(Graph(), 3)
    assert plan.num_shards == 3
    assert plan.shards == ((), (), ())
    assert plan.boundary == ()
    assert plan.num_nodes == 0


def test_k1_is_the_whole_graph_with_no_boundary():
    g = chain_of_triangles(4)
    plan = plan_shards(g, 1)
    assert plan.num_shards == 1
    assert set(plan.shards[0]) == set(g.nodes())
    assert plan.boundary == ()
    # Shard ordering follows graph insertion order.
    assert list(plan.shards[0]) == list(g.nodes())


def test_covers_every_node_exactly_once_off_boundary():
    g = chain_of_triangles(6)
    plan = plan_shards(g, 3)
    seen: dict[str, int] = {}
    for shard in plan.shards:
        for node in shard:
            seen[node] = seen.get(node, 0) + 1
    assert set(seen) == set(g.nodes())
    for node, count in seen.items():
        if node in plan.boundary:
            assert count >= 1
        else:
            assert count == 1, f"non-boundary node {node} in {count} shards"


def test_boundary_nodes_are_articulation_points():
    from repro.graph import articulation_points

    g = chain_of_triangles(6)
    plan = plan_shards(g, 3)
    assert plan.boundary  # an oversized chain must be cut somewhere
    assert set(plan.boundary) <= articulation_points(g)


def test_oversized_component_is_split_when_cuttable():
    g = chain_of_triangles(8)  # 17 nodes, one component
    plan = plan_shards(g, 4)
    sizes = [len(s) for s in plan.shards]
    assert max(sizes) < g.num_nodes
    assert sum(1 for s in sizes if s) >= 2


def test_biconnected_region_stays_whole():
    g = Graph()
    for i in range(6):  # a 6-cycle: biconnected, no articulation point
        g.add_edge(f"c{i}", f"c{(i + 1) % 6}", weight=1.0)
    plan = plan_shards(g, 3)
    assert plan.boundary == ()
    nonempty = [s for s in plan.shards if s]
    assert len(nonempty) == 1
    assert set(nonempty[0]) == set(g.nodes())


def test_components_bin_pack_balanced():
    g = Graph()
    for c in range(6):  # six 3-node paths, no cutting needed for k=3
        g.add_edge(f"{c}a", f"{c}b", weight=1.0)
        g.add_edge(f"{c}b", f"{c}c", weight=1.0)
    plan = plan_shards(g, 3)
    assert [len(s) for s in plan.shards] == [6, 6, 6]
    assert plan.boundary == ()


def test_k_beyond_regions_leaves_trailing_shards_empty():
    g = Graph.from_edges([("a", "b")])
    plan = plan_shards(g, 5)
    assert len(plan.shards[0]) == 2
    assert all(not s for s in plan.shards[1:])


def test_single_node_components_spread():
    g = Graph()
    for i in range(4):
        g.add_node(f"iso{i}")
    plan = plan_shards(g, 2)
    assert [len(s) for s in plan.shards] == [2, 2]
    assert plan.boundary == ()


# ----------------------------------------------------------------------
# ShardPlan accessors
# ----------------------------------------------------------------------
def test_membership_and_home_shard():
    g = chain_of_triangles(6)
    plan = plan_shards(g, 3)
    for node in g.nodes():
        owners = plan.shards_of(node)
        assert owners == tuple(sorted(owners))
        assert plan.home_shard(node) == owners[0]
        assert plan.has_node(node)
    assert not plan.has_node("ghost")
    with pytest.raises(GraphError):
        plan.shards_of("ghost")
    with pytest.raises(GraphError):
        plan.home_shard("ghost")


def test_plan_hash_distinguishes_plans():
    g = chain_of_triangles(6)
    assert plan_shards(g, 2).plan_hash != plan_shards(g, 3).plan_hash
    assert plan_shards(g, 2).plan_hash == plan_shards(g, 2).plan_hash


def test_shard_plan_accepts_explicit_layout():
    plan = ShardPlan([("a", "b"), ("b", "c")], ("b",))
    assert plan.shards_of("b") == (0, 1)
    assert plan.home_shard("b") == 0
    assert plan.num_nodes == 3


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_same_graph_same_plan_within_process():
    rng = random.Random(11)
    g = assign_random_weights(erdos_renyi(40, 0.08, seed=rng), seed=rng)
    a = plan_shards(g, 4)
    b = plan_shards(g, 4)
    assert a.shards == b.shards
    assert a.boundary == b.boundary
    assert a.plan_hash == b.plan_hash


_SUBPROCESS_PLAN = """
import json, random, sys
from repro.graph import assign_random_weights, erdos_renyi
from repro.graph.partition import plan_shards

rng = random.Random(11)
g = assign_random_weights(erdos_renyi(40, 0.08, seed=rng), seed=rng)
plan = plan_shards(g, 4)
print(json.dumps({
    "hash": plan.plan_hash,
    "shards": [[repr(n) for n in s] for s in plan.shards],
    "boundary": [repr(n) for n in plan.boundary],
}))
"""


@pytest.mark.parametrize("hashseed", ["0", "1", "424242"])
def test_plan_is_cross_process_deterministic(hashseed):
    """Identical plans (and hashes) regardless of ``PYTHONHASHSEED``.

    The snapshot codec persists only per-shard labels plus the boundary
    summary and *recomputes* the plan at load time, so any hash-seed
    dependence in component discovery, articulation scanning, or
    bin-packing would corrupt every cross-process restore.
    """
    import json
    import os

    env = dict(os.environ, PYTHONHASHSEED=hashseed)
    out = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_PLAN],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    doc = json.loads(out.stdout)
    rng = random.Random(11)
    g = assign_random_weights(erdos_renyi(40, 0.08, seed=rng), seed=rng)
    local = plan_shards(g, 4)
    assert doc["hash"] == local.plan_hash
    assert doc["shards"] == [[repr(n) for n in s] for s in local.shards]
    assert doc["boundary"] == [repr(n) for n in local.boundary]
