"""Unit + randomized tests for articulation points and bridges."""

import random

import networkx as nx
import pytest

from repro.graph import (
    Graph,
    articulation_points,
    assign_random_weights,
    bridges,
    erdos_renyi,
)


def test_path_graph_interior_points():
    g = Graph.from_edges([("a", "b"), ("b", "c"), ("c", "d")])
    assert articulation_points(g) == {"b", "c"}
    assert bridges(g) == {("a", "b"), ("b", "c"), ("c", "d")}


def test_cycle_has_none():
    g = Graph.from_edges([("a", "b"), ("b", "c"), ("c", "a")])
    assert articulation_points(g) == set()
    assert bridges(g) == set()


def test_two_triangles_sharing_a_node():
    g = Graph.from_edges(
        [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d"), ("d", "e"), ("e", "c")]
    )
    assert articulation_points(g) == {"c"}
    assert bridges(g) == set()


def test_star_center_is_articulation():
    g = Graph()
    for leaf in "bcde":
        g.add_edge("hub", leaf)
    assert articulation_points(g) == {"hub"}
    assert len(bridges(g)) == 4


def test_disconnected_components_handled():
    g = Graph.from_edges([("a", "b"), ("b", "c"), ("x", "y")])
    g.add_node("lonely")
    assert articulation_points(g) == {"b"}
    assert ("x", "y") in bridges(g)


def test_empty_and_singleton():
    assert articulation_points(Graph()) == set()
    single = Graph()
    single.add_node("a")
    assert articulation_points(single) == set()
    assert bridges(single) == set()


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_matches_networkx(seed):
    rng = random.Random(seed)
    g = assign_random_weights(erdos_renyi(25, 0.12, seed=rng), seed=rng)
    ng = nx.Graph()
    ng.add_nodes_from(g.nodes())
    for u, v, _ in g.edges():
        ng.add_edge(u, v)
    assert articulation_points(g) == set(nx.articulation_points(ng))
    expected_bridges = {
        (u, v) if repr(u) <= repr(v) else (v, u) for u, v in nx.bridges(ng)
    }
    assert bridges(g) == expected_bridges


def test_deep_path_no_recursion_error():
    g = Graph.from_edges([(i, i + 1) for i in range(5000)])
    points = articulation_points(g)
    assert len(points) == 4999  # all interior nodes
