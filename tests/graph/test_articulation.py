"""Unit + randomized tests for articulation points and bridges."""

import random

import networkx as nx
import pytest

from repro.graph import (
    Graph,
    articulation_points,
    assign_random_weights,
    bridges,
    erdos_renyi,
)


def test_path_graph_interior_points():
    g = Graph.from_edges([("a", "b"), ("b", "c"), ("c", "d")])
    assert articulation_points(g) == {"b", "c"}
    assert bridges(g) == {("a", "b"), ("b", "c"), ("c", "d")}


def test_cycle_has_none():
    g = Graph.from_edges([("a", "b"), ("b", "c"), ("c", "a")])
    assert articulation_points(g) == set()
    assert bridges(g) == set()


def test_two_triangles_sharing_a_node():
    g = Graph.from_edges(
        [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d"), ("d", "e"), ("e", "c")]
    )
    assert articulation_points(g) == {"c"}
    assert bridges(g) == set()


def test_star_center_is_articulation():
    g = Graph()
    for leaf in "bcde":
        g.add_edge("hub", leaf)
    assert articulation_points(g) == {"hub"}
    assert len(bridges(g)) == 4


def test_disconnected_components_handled():
    g = Graph.from_edges([("a", "b"), ("b", "c"), ("x", "y")])
    g.add_node("lonely")
    assert articulation_points(g) == {"b"}
    assert ("x", "y") in bridges(g)


def test_empty_and_singleton():
    assert articulation_points(Graph()) == set()
    single = Graph()
    single.add_node("a")
    assert articulation_points(single) == set()
    assert bridges(single) == set()


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_matches_networkx(seed):
    rng = random.Random(seed)
    g = assign_random_weights(erdos_renyi(25, 0.12, seed=rng), seed=rng)
    ng = nx.Graph()
    ng.add_nodes_from(g.nodes())
    for u, v, _ in g.edges():
        ng.add_edge(u, v)
    assert articulation_points(g) == set(nx.articulation_points(ng))
    expected_bridges = {
        (u, v) if repr(u) <= repr(v) else (v, u) for u, v in nx.bridges(ng)
    }
    assert bridges(g) == expected_bridges


def test_deep_path_no_recursion_error():
    g = Graph.from_edges([(i, i + 1) for i in range(5000)])
    points = articulation_points(g)
    assert len(points) == 4999  # all interior nodes


def test_bridge_heavy_chain_of_blocks():
    """Triangle blocks joined by bridges: every joint and bridge found."""
    g = Graph()
    for b in range(5):
        a, mid, c = f"b{b}a", f"b{b}m", f"b{b}c"
        g.add_edge(a, mid)
        g.add_edge(mid, c)
        g.add_edge(a, c)
    for b in range(4):  # bridges between consecutive triangles
        g.add_edge(f"b{b}c", f"b{b + 1}a")
    expected_bridges = {
        tuple(sorted((f"b{b}c", f"b{b + 1}a"))) for b in range(4)
    }
    assert bridges(g) == expected_bridges
    # Every bridge endpoint of degree > 1 is an articulation point.
    expected_points = {f"b{b}c" for b in range(4)} | {
        f"b{b + 1}a" for b in range(4)
    }
    assert articulation_points(g) == expected_points


def test_single_node_components_are_inert():
    g = Graph.from_edges([("a", "b"), ("b", "c")])
    for i in range(3):
        g.add_node(f"iso{i}")
    assert articulation_points(g) == {"b"}
    assert bridges(g) == {("a", "b"), ("b", "c")}


_SUBPROCESS_POINTS = """
import json
from repro.graph import Graph, articulation_points, bridges

g = Graph()
for b in range(4):
    g.add_edge("b%da" % b, "b%dm" % b)
    g.add_edge("b%dm" % b, "b%dc" % b)
    g.add_edge("b%da" % b, "b%dc" % b)
for b in range(3):
    g.add_edge("b%dc" % b, "b%da" % (b + 1))
points = articulation_points(g)
# Canonical cross-process view: iterate the *graph* in insertion order
# and keep members -- exactly how the shard partitioner scans candidates.
ordered = [repr(n) for n in g.nodes() if n in points]
print(json.dumps({
    "ordered": ordered,
    "bridges": sorted(map(repr, bridges(g))),
}))
"""


@pytest.mark.parametrize("hashseed", ["0", "5", "99991"])
def test_candidate_scan_is_cross_process_deterministic(hashseed):
    """Insertion-order scans over the point set never depend on hashing.

    ``articulation_points`` returns a set (hash-ordered, seed
    dependent); deterministic consumers — the shard partitioner's
    best-cut scan — must iterate the graph and membership-test.  Pin
    that pattern's output across hash seeds so a refactor to direct set
    iteration fails loudly.
    """
    import json
    import os
    import subprocess
    import sys

    env = dict(os.environ, PYTHONHASHSEED=hashseed)
    out = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_POINTS],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    doc = json.loads(out.stdout)
    assert doc["ordered"] == [
        "'b0c'",
        "'b1a'",
        "'b1c'",
        "'b2a'",
        "'b2c'",
        "'b3a'",
    ]
    assert doc["bridges"] == sorted(
        repr(tuple(sorted((f"b{b}c", f"b{b + 1}a")))) for b in range(3)
    )
