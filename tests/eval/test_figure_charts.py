"""Tests for the ASCII chart methods on figure results."""

import pytest

from repro.eval.experiments import run_figure3, run_figure5


@pytest.fixture(scope="module")
def figure3(tiny_network):
    return run_figure3(
        tiny_network,
        num_skills_list=(3,),
        lambdas=(0.3, 0.7),
        projects_per_size=2,
        random_samples=50,
        exact_max_skills=0,
        oracle_kind="dijkstra",
        seed=2,
    )


@pytest.fixture(scope="module")
def figure5(tiny_network):
    return run_figure5(
        tiny_network,
        lambdas=(0.2, 0.5, 0.8),
        num_random_projects=2,
        oracle_kind="dijkstra",
    )


def test_figure3_chart_renders(figure3):
    chart = figure3.chart(3)
    assert "Figure 3" in chart
    assert "sa-ca-cc" in chart
    # exact was skipped -> its series must not appear
    assert "exact" not in chart


def test_figure3_chart_unknown_panel(figure3):
    with pytest.raises(KeyError):
        figure3.chart(99)


def test_figure5_chart_renders(figure5):
    chart = figure5.chart("best")
    assert "Figure 5" in chart
    assert "avg_holder_h_index" in chart
    # normalized axis ends at 1
    assert "1" in chart.splitlines()[1]
