"""Unit tests for the dataset-characterization runner."""

import pytest

from repro.eval.experiments import run_dataset_stats
from repro.expertise import Expert, ExpertNetwork


@pytest.fixture()
def network():
    experts = [
        Expert("junior1", skills={"a"}, h_index=2, num_publications=4),
        Expert("junior2", skills={"b"}, h_index=3, num_publications=5),
        Expert("senior", h_index=25, num_publications=60),
    ]
    return ExpertNetwork(
        experts,
        edges=[("junior1", "senior", 0.4), ("senior", "junior2", 0.6)],
    )


def test_counts(network):
    stats = run_dataset_stats(network)
    assert stats.num_experts == 3
    assert stats.num_edges == 2
    assert stats.num_skills == 2
    assert stats.num_skill_holders == 2


def test_role_authority_split(network):
    stats = run_dataset_stats(network)
    assert stats.mean_h_index_holders == pytest.approx(2.5)
    assert stats.mean_h_index_others == pytest.approx(25.0)
    assert stats.max_h_index == 25.0


def test_structure(network):
    stats = run_dataset_stats(network)
    assert stats.density == pytest.approx(2 / 3)
    assert stats.average_degree == pytest.approx(4 / 3)
    assert stats.mean_edge_weight == pytest.approx(0.5)
    assert stats.approx_average_distance > 0


def test_format_renders(network):
    text = run_dataset_stats(network).format()
    assert "Dataset characterization" in text
    assert "skill holders" in text


def test_on_benchmark_network(tiny_network):
    stats = run_dataset_stats(tiny_network)
    # the paper's regime: holders markedly less authoritative
    assert stats.mean_h_index_holders < stats.mean_h_index_others
    assert 0 < stats.density < 1
    assert stats.average_clustering > 0.05  # co-authorship is clustered
