"""Unit tests for team statistics."""

import pytest

from repro.core import Team
from repro.eval import average_stats, safe_mean, team_stats
from repro.expertise import Expert, ExpertNetwork
from repro.graph import Graph


@pytest.fixture()
def network():
    experts = [
        Expert("h1", skills={"s1"}, h_index=2, num_publications=5),
        Expert("h2", skills={"s2"}, h_index=4, num_publications=7),
        Expert("conn", h_index=30, num_publications=100),
    ]
    return ExpertNetwork(
        experts, edges=[("h1", "conn", 0.5), ("conn", "h2", 0.3)]
    )


@pytest.fixture()
def team(network):
    tree = Graph.from_edges([("h1", "conn", 0.5), ("conn", "h2", 0.3)])
    return Team(tree=tree, assignments={"s1": "h1", "s2": "h2"})


def test_safe_mean():
    assert safe_mean([1.0, 3.0]) == 2.0
    assert safe_mean([]) == 0.0
    assert safe_mean(iter([5.0])) == 5.0


def test_team_stats_values(team, network):
    stats = team_stats(team, network)
    assert stats.size == 3
    assert stats.num_connectors == 1
    assert stats.avg_holder_h_index == pytest.approx(3.0)
    assert stats.avg_connector_h_index == pytest.approx(30.0)
    assert stats.team_h_index == pytest.approx(12.0)
    assert stats.avg_num_publications == pytest.approx((5 + 7 + 100) / 3)
    assert stats.communication_cost == pytest.approx(0.8)


def test_team_without_connectors(network):
    tree = Graph.from_edges([("h1", "conn", 0.5)])
    team = Team(tree=tree, assignments={"s1": "h1", "x": "conn"})
    # both members hold a skill -> no connectors -> connector mean is 0
    stats = team_stats(team, network)
    assert stats.num_connectors == 0
    assert stats.avg_connector_h_index == 0.0


def test_as_row_roundtrip(team, network):
    stats = team_stats(team, network)
    row = stats.as_row()
    assert row[0] == stats.size
    assert row[-1] == stats.communication_cost


def test_average_stats(team, network):
    stats = team_stats(team, network)
    doubled = average_stats([stats, stats])
    assert doubled.avg_holder_h_index == stats.avg_holder_h_index
    assert doubled.size == stats.size
    with pytest.raises(ValueError):
        average_stats([])
