"""Unit tests for the simulated judge panel."""

import pytest

from repro.core import Team
from repro.eval import JudgeConfig, SimulatedJudgePanel
from repro.expertise import Expert, ExpertNetwork
from repro.graph import Graph


@pytest.fixture()
def network():
    experts = [
        Expert("strong1", skills={"s"}, h_index=40),
        Expert("strong2", h_index=35),
        Expert("weak1", skills={"s"}, h_index=1),
        Expert("weak2", h_index=1),
    ]
    return ExpertNetwork(
        experts,
        edges=[("strong1", "strong2", 0.1), ("weak1", "weak2", 0.9)],
    )


def _team(network, a, b, skill_holder):
    tree = Graph.from_edges([(a, b, network.communication_cost(a, b))])
    return Team(tree=tree, assignments={"s": skill_holder})


def test_latent_quality_prefers_authority_and_cohesion(network):
    panel = SimulatedJudgePanel(network, seed=1)
    strong = _team(network, "strong1", "strong2", "strong1")
    weak = _team(network, "weak1", "weak2", "weak1")
    assert panel.latent_quality(strong) > panel.latent_quality(weak)
    assert 0.0 <= panel.latent_quality(weak) <= 1.0


def test_scores_bounded_and_sized(network):
    panel = SimulatedJudgePanel(network, num_judges=6, seed=2)
    scores = panel.judge_scores(_team(network, "strong1", "strong2", "strong1"))
    assert len(scores) == 6
    assert all(0.0 <= s <= 1.0 for s in scores)


def test_scoring_reproducible_and_order_independent(network):
    strong = _team(network, "strong1", "strong2", "strong1")
    weak = _team(network, "weak1", "weak2", "weak1")
    panel1 = SimulatedJudgePanel(network, seed=5)
    panel2 = SimulatedJudgePanel(network, seed=5)
    first = panel1.judge_scores(strong)
    # score another team in between: must not perturb the stream
    panel2.judge_scores(weak)
    second = panel2.judge_scores(strong)
    assert first == second


def test_different_seeds_differ(network):
    team = _team(network, "strong1", "strong2", "strong1")
    a = SimulatedJudgePanel(network, seed=1).judge_scores(team)
    b = SimulatedJudgePanel(network, seed=2).judge_scores(team)
    assert a != b


def test_precision_reflects_quality(network):
    panel = SimulatedJudgePanel(network, seed=3)
    strong = _team(network, "strong1", "strong2", "strong1")
    weak = _team(network, "weak1", "weak2", "weak1")
    assert panel.precision([strong]) > panel.precision([weak])
    with pytest.raises(ValueError):
        panel.precision([])


def test_config_validation(network):
    with pytest.raises(ValueError):
        JudgeConfig(authority_weight=-1.0)
    with pytest.raises(ValueError):
        JudgeConfig(authority_weight=0.0, cohesion_weight=0.0)
    with pytest.raises(ValueError):
        JudgeConfig(authority_reference=0.0)
    with pytest.raises(ValueError):
        SimulatedJudgePanel(network, num_judges=0)
