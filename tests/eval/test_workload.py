"""Unit tests for workload generation."""

import random

import pytest

from repro.eval import (
    SCALE_CONFIGS,
    benchmark_corpus,
    benchmark_network,
    sample_project,
    sample_projects,
)


def test_benchmark_network_cached():
    a = benchmark_network("tiny", seed=0)
    b = benchmark_network("tiny", seed=0)
    assert a is b


def test_benchmark_corpus_matches_network():
    corpus = benchmark_corpus("tiny", seed=0)
    network = benchmark_network("tiny", seed=0)
    assert set(network.expert_ids()) <= corpus.authors()


def test_unknown_scale():
    with pytest.raises(ValueError):
        benchmark_corpus("galactic")


def test_scales_are_increasing():
    assert (
        SCALE_CONFIGS["tiny"].num_groups
        < SCALE_CONFIGS["small"].num_groups
        < SCALE_CONFIGS["medium"].num_groups
        < SCALE_CONFIGS["large"].num_groups
    )


def test_sample_project_respects_support_band(tiny_network):
    rng = random.Random(0)
    project = sample_project(tiny_network, 3, rng, min_support=2, max_support=6)
    assert len(project) == 3
    assert len(set(project)) == 3
    index = tiny_network.skill_index
    for skill in project:
        assert 2 <= index.support(skill) <= 6


def test_sample_project_infeasible_band(tiny_network):
    rng = random.Random(0)
    with pytest.raises(ValueError):
        sample_project(tiny_network, 3, rng, min_support=10_000)
    with pytest.raises(ValueError):
        sample_project(tiny_network, 0, rng)


def test_sample_projects_seeded(tiny_network):
    a = sample_projects(tiny_network, 4, 5, seed=3)
    b = sample_projects(tiny_network, 4, 5, seed=3)
    c = sample_projects(tiny_network, 4, 5, seed=4)
    assert a == b
    assert a != c
    assert len(a) == 5
    assert all(len(p) == 4 for p in a)


def test_sampled_projects_coverable(tiny_network):
    for project in sample_projects(tiny_network, 4, 10, seed=1):
        assert tiny_network.skill_index.is_coverable(project)
