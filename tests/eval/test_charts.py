"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.eval import ascii_chart


def test_single_series_endpoints_plotted():
    out = ascii_chart({"line": [(0.0, 0.0), (1.0, 1.0)]}, height=5, width=20)
    lines = out.splitlines()
    # top row holds the max point, bottom data row the min point
    assert "o" in lines[0]
    assert "o" in lines[4]


def test_multiple_series_get_distinct_markers():
    out = ascii_chart(
        {"a": [(0, 1.0)], "b": [(0, 2.0)]}, height=4, width=16
    )
    assert "o a" in out and "x b" in out


def test_title_and_axis_labels():
    out = ascii_chart(
        {"s": [(0.2, 3.0), (0.8, 9.0)]}, height=4, width=16, title="Figure X"
    )
    assert out.splitlines()[0] == "Figure X"
    assert "0.2" in out and "0.8" in out
    assert "3" in out and "9" in out


def test_constant_series_centered():
    out = ascii_chart({"flat": [(0, 5.0), (1, 5.0)]}, height=5, width=20)
    lines = out.splitlines()
    middle = lines[2]
    assert "o" in middle


def test_validation():
    with pytest.raises(ValueError):
        ascii_chart({})
    with pytest.raises(ValueError):
        ascii_chart({"empty": []})
    with pytest.raises(ValueError):
        ascii_chart({"s": [(0, 0)]}, height=1, width=100)
    with pytest.raises(ValueError):
        ascii_chart({"s": [(0, 0)]}, height=10, width=2)


def test_real_figure3_series_shape():
    series = {
        "cc": [(0.2, 1.98), (0.4, 1.75), (0.6, 1.52), (0.8, 1.29)],
        "sa-ca-cc": [(0.2, 1.85), (0.4, 1.69), (0.6, 1.45), (0.8, 1.20)],
    }
    out = ascii_chart(series, height=10, width=40, title="Figure 3 (4 skills)")
    assert out.count("\n") >= 11
    assert "sa-ca-cc" in out
