"""Unit tests for bootstrap statistics."""

import random

import pytest

from repro.eval import BootstrapCI, bootstrap_mean_ci, paired_bootstrap_pvalue


def test_ci_brackets_mean():
    values = [1.0, 2.0, 3.0, 4.0, 5.0]
    ci = bootstrap_mean_ci(values, seed=1)
    assert ci.low <= ci.mean <= ci.high
    assert ci.mean == pytest.approx(3.0)
    assert ci.contains(3.0)


def test_ci_narrows_with_sample_size():
    rng = random.Random(0)
    small = [rng.gauss(10, 2) for _ in range(10)]
    large = [rng.gauss(10, 2) for _ in range(200)]
    assert (
        bootstrap_mean_ci(large, seed=2).halfwidth
        < bootstrap_mean_ci(small, seed=2).halfwidth
    )


def test_ci_single_observation_degenerate():
    ci = bootstrap_mean_ci([7.5], seed=3)
    assert ci.low == ci.high == ci.mean == 7.5


def test_ci_deterministic_for_seed():
    values = [1.0, 5.0, 2.0, 8.0]
    assert bootstrap_mean_ci(values, seed=4) == bootstrap_mean_ci(values, seed=4)


def test_ci_validation():
    with pytest.raises(ValueError):
        bootstrap_mean_ci([])
    with pytest.raises(ValueError):
        bootstrap_mean_ci([1.0], confidence=1.0)
    with pytest.raises(ValueError):
        bootstrap_mean_ci([1.0], num_resamples=0)


def test_paired_pvalue_detects_clear_winner():
    a = [1.0, 1.1, 0.9, 1.0, 1.2]          # clearly smaller
    b = [2.0, 2.1, 1.9, 2.2, 2.0]
    assert paired_bootstrap_pvalue(a, b, seed=5) < 0.01
    # reversed direction: no support for "b beats a"... p near 1
    assert paired_bootstrap_pvalue(b, a, seed=5) > 0.99


def test_paired_pvalue_ties_are_uncertain():
    rng = random.Random(7)
    a = [rng.gauss(0, 1) for _ in range(30)]
    b = [x + rng.gauss(0, 0.01) for x in a]
    p = paired_bootstrap_pvalue(a, b, seed=8)
    assert 0.05 < p < 0.95


def test_paired_pvalue_validation():
    with pytest.raises(ValueError):
        paired_bootstrap_pvalue([1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        paired_bootstrap_pvalue([], [])


def test_bootstrapci_is_frozen():
    ci = BootstrapCI(1.0, 0.5, 1.5, 0.95)
    with pytest.raises(AttributeError):
        ci.mean = 2.0  # type: ignore[misc]
