"""Unit tests for the venue publication model."""

import pytest

from repro.core import Team
from repro.eval import VenuePublicationModel
from repro.expertise import Expert, ExpertNetwork
from repro.graph import Graph


@pytest.fixture()
def network():
    experts = [
        Expert("star", skills={"s"}, h_index=50),
        Expert("star2", h_index=45),
        Expert("novice", skills={"s"}, h_index=0),
        Expert("novice2", h_index=1),
    ]
    return ExpertNetwork(
        experts,
        edges=[("star", "star2", 0.2), ("novice", "novice2", 0.2)],
    )


def _team(network, a, b, holder):
    tree = Graph.from_edges([(a, b, network.communication_cost(a, b))])
    return Team(tree=tree, assignments={"s": holder})


RATINGS = [1.0, 2.0, 5.0, 9.0]


def test_authority_factor_ordering(network):
    model = VenuePublicationModel(RATINGS, seed=0)
    strong = _team(network, "star", "star2", "star")
    weak = _team(network, "novice", "novice2", "novice")
    assert model.authority_factor(strong, network) > model.authority_factor(
        weak, network
    )


def test_publish_returns_known_ratings(network):
    model = VenuePublicationModel(RATINGS, seed=1)
    team = _team(network, "star", "star2", "star")
    out = model.publish(team, network, num_papers=10)
    assert len(out) == 10
    assert all(r in RATINGS for r in out)


def test_strong_team_publishes_better_on_average(network):
    model = VenuePublicationModel(RATINGS, seed=2, selectivity=3.0)
    strong = _team(network, "star", "star2", "star")
    weak = _team(network, "novice", "novice2", "novice")
    strong_mean = sum(model.publish(strong, network, num_papers=200)) / 200
    weak_mean = sum(model.publish(weak, network, num_papers=200)) / 200
    assert strong_mean > weak_mean


def test_compare_outcome_accounting(network):
    model = VenuePublicationModel(RATINGS, seed=3, selectivity=3.0)
    strong = _team(network, "star", "star2", "star")
    weak = _team(network, "novice", "novice2", "novice")
    outcome = model.compare(strong, weak, network, trials=30)
    assert outcome.trials == 30
    assert outcome.wins + outcome.losses + outcome.ties == 30
    assert outcome.win_rate > 0.5


def test_zero_selectivity_is_fair_coin(network):
    model = VenuePublicationModel(RATINGS, seed=4, selectivity=0.0)
    strong = _team(network, "star", "star2", "star")
    weak = _team(network, "novice", "novice2", "novice")
    outcome = model.compare(strong, weak, network, trials=400)
    assert 0.35 < outcome.win_rate < 0.65


def test_validation(network):
    with pytest.raises(ValueError):
        VenuePublicationModel([])
    with pytest.raises(ValueError):
        VenuePublicationModel([-1.0])
    with pytest.raises(ValueError):
        VenuePublicationModel(RATINGS, selectivity=-1.0)
    model = VenuePublicationModel(RATINGS)
    team = _team(network, "star", "star2", "star")
    with pytest.raises(ValueError):
        model.publish(team, network, num_papers=0)


def test_empty_outcome_win_rate():
    from repro.eval import ComparisonOutcome

    assert ComparisonOutcome(0, 0, 0).win_rate == 0.0
