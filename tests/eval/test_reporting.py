"""Unit tests for the text table renderer."""

import pytest

from repro.eval import format_table, format_value


def test_format_value_types():
    assert format_value(None) == "-"
    assert format_value(1.23456, precision=2) == "1.23"
    assert format_value(7) == "7"
    assert format_value("x") == "x"
    assert format_value(True) == "True"


def test_format_table_alignment():
    out = format_table(["name", "score"], [["a", 1.5], ["bb", 22.25]])
    lines = out.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    assert "22.250" in lines[3]


def test_format_table_title():
    out = format_table(["h"], [[1]], title="My Table")
    assert out.splitlines()[0] == "My Table"


def test_format_table_none_cells():
    out = format_table(["a", "b"], [[None, 2.0]])
    assert "-" in out.splitlines()[-1]


def test_format_table_row_width_mismatch():
    with pytest.raises(ValueError):
        format_table(["a"], [[1, 2]])
