"""Unit tests for series normalization."""

import pytest

from repro.eval import min_max_normalize, relative_change


def test_min_max_basic():
    assert min_max_normalize([2.0, 4.0, 6.0]) == [0.0, 0.5, 1.0]


def test_min_max_constant_series():
    assert min_max_normalize([3.0, 3.0]) == [0.0, 0.0]


def test_min_max_empty():
    assert min_max_normalize([]) == []


def test_min_max_preserves_order():
    values = [5.0, 1.0, 3.0]
    normalized = min_max_normalize(values)
    assert normalized == [1.0, 0.0, 0.5]


def test_relative_change():
    assert relative_change([2.0, 3.0]) == [0.0, 0.5]
    assert relative_change([]) == []
    assert relative_change([1.0]) == [0.0]


def test_relative_change_zero_base():
    out = relative_change([0.0, 0.0, 5.0])
    assert out[0] == 0.0
    assert out[1] == 0.0
    assert out[2] == float("inf")


def test_relative_change_negative_values():
    out = relative_change([-2.0, -1.0])
    assert out[1] == pytest.approx(0.5)
