"""Smoke + shape tests for the per-figure experiment runners (tiny scale)."""

import pytest

from repro.eval import benchmark_corpus
from repro.eval.experiments import (
    GREEDY_METHODS,
    MethodSuite,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_quality,
    run_runtime,
)
from repro.eval.experiments.figure5 import lambda_stability
from repro.eval.workload import sample_project

import random


@pytest.fixture(scope="module")
def network(request):
    from repro.eval import benchmark_network

    return benchmark_network("tiny", seed=0)


class TestMethodSuite:
    def test_finders_cached(self, network):
        suite = MethodSuite(network, oracle_kind="dijkstra")
        assert suite.cc is suite.cc
        assert suite.sa_ca_cc(0.5) is suite.sa_ca_cc(0.5)
        assert suite.sa_ca_cc(0.5) is not suite.sa_ca_cc(0.7)

    def test_lambda_finders_share_oracle(self, network):
        suite = MethodSuite(network, oracle_kind="dijkstra")
        assert suite.sa_ca_cc(0.3).oracle is suite.ca_cc.oracle

    def test_dispatch(self, network):
        suite = MethodSuite(network, oracle_kind="dijkstra")
        for method in GREEDY_METHODS:
            assert suite.finder(method) is not None
        with pytest.raises(ValueError):
            suite.finder("bogus")


class TestFigure3:
    def test_small_run_shape(self, network):
        result = run_figure3(
            network,
            num_skills_list=(3,),
            lambdas=(0.4, 0.8),
            projects_per_size=2,
            random_samples=100,
            exact_max_skills=0,
            oracle_kind="dijkstra",
            seed=1,
        )
        # all five methods have a cell at each lambda
        for lam in (0.4, 0.8):
            for method in ("cc", "ca-cc", "sa-ca-cc", "random"):
                cell = result.cell(3, lam, method)
                assert cell.mean_score is not None
                assert cell.num_projects == 2
            assert result.cell(3, lam, "exact").mean_score is None
        series = result.series(3, "cc")
        assert [lam for lam, _ in series] == [0.4, 0.8]
        assert "Figure 3" in result.format()
        with pytest.raises(KeyError):
            result.cell(99, 0.4, "cc")

    def test_exact_bound_when_enabled(self, network):
        result = run_figure3(
            network,
            num_skills_list=(2,),
            lambdas=(0.6,),
            projects_per_size=1,
            random_samples=50,
            exact_max_skills=2,
            exact_time_budget=10.0,
            max_support=6,
            oracle_kind="dijkstra",
            seed=2,
        )
        exact = result.cell(2, 0.6, "exact").mean_score
        sacacc = result.cell(2, 0.6, "sa-ca-cc").mean_score
        assert exact is not None
        assert exact <= sacacc + 1e-9


class TestFigure4:
    def test_precision_rows(self, network):
        result = run_figure4(
            network, num_skills_list=(3, 4), oracle_kind="dijkstra"
        )
        for t in (3, 4):
            for method in GREEDY_METHODS:
                assert 0.0 <= result.precision(t, method) <= 1.0
        assert "precision" in result.format()
        with pytest.raises(KeyError):
            result.precision(99, "cc")


class TestFigure5:
    def test_rows_and_series(self, network):
        result = run_figure5(
            network,
            lambdas=(0.2, 0.8),
            num_random_projects=2,
            oracle_kind="dijkstra",
        )
        for mode in ("top5", "best"):
            series = result.series(mode, "avg_holder_h_index")
            assert len(series) == 2
        normalized = result.series("best", "size", normalized=True)
        assert all(0.0 <= v <= 1.0 for _, v in normalized)
        with pytest.raises(ValueError):
            result.series("best", "bogus")
        assert "Figure 5" in result.format()

    def test_lambda_stability(self, network):
        project = sample_project(network, 3, random.Random(3))
        assert isinstance(
            lambda_stability(network, project, lam=0.6, delta=0.04), bool
        )
        with pytest.raises(ValueError):
            lambda_stability(network, project, delta=0.2)


class TestFigure6:
    def test_reports(self, network):
        result = run_figure6(network, oracle_kind="dijkstra")
        assert {r.method for r in result.reports} == set(GREEDY_METHODS)
        report = result.report("cc")
        assert report.members
        holders = [m for m in report.members if not m.is_connector]
        assert holders
        covered = {s for m in report.members for s in m.assigned_skills}
        assert covered == set(result.project)
        assert "Figure 6" in result.format()
        with pytest.raises(KeyError):
            result.report("bogus")

    def test_explicit_project(self, network):
        project = sample_project(network, 3, random.Random(9))
        result = run_figure6(network, project, oracle_kind="dijkstra")
        assert result.project == project


class TestQuality:
    def test_success_rate_bounds(self, network):
        corpus = benchmark_corpus("tiny", seed=0)
        ratings = [v.rating for v in corpus.venues.values()]
        result = run_quality(
            network,
            ratings,
            num_projects=2,
            trials_per_pair=10,
            oracle_kind="dijkstra",
        )
        assert 0.0 <= result.success_rate <= 1.0
        assert result.comparisons
        assert "success rate" in result.format()

    def test_empty_result_rate(self):
        from repro.eval.experiments.quality import QualityResult

        assert QualityResult(gamma=0.6, lam=0.6).success_rate == 0.0


class TestRuntime:
    def test_rows_present(self, network):
        result = run_runtime(
            network,
            num_skills_list=(3,),
            projects_per_size=2,
            oracle_kind="dijkstra",
        )
        for method in GREEDY_METHODS:
            assert result.mean_ms(method, 3) >= 0.0
        assert result.index_build_ms >= 0.0
        assert "runtime" in result.format()
        with pytest.raises(KeyError):
            result.mean_ms("cc", 99)
