"""Tests for the judge-model sensitivity experiment (substitution audit)."""

import pytest

from repro.eval.experiments import run_judge_sensitivity


@pytest.fixture(scope="module")
def result(tiny_network):
    return run_judge_sensitivity(
        tiny_network,
        weights=(0.0, 0.5, 1.0),
        num_skills=3,
        num_projects=2,
        oracle_kind="dijkstra",
    )


def test_all_cells_present(result):
    for weight in (0.0, 0.5, 1.0):
        for method in ("cc", "ca-cc", "sa-ca-cc"):
            assert 0.0 <= result.precision(weight, method) <= 1.0
    with pytest.raises(KeyError):
        result.precision(0.42, "cc")


def test_margin_grows_with_authority_weight(result):
    """Authority-aware advantage at full-authority judges must exceed the
    advantage at authority-indifferent judges."""
    assert result.margin(1.0) > result.margin(0.0)


def test_authority_judges_prefer_authority_methods(result):
    assert result.margin(1.0) > 0.0


def test_format(result):
    text = result.format()
    assert "sensitivity" in text
    assert "w=1.0" in text
