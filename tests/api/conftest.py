"""Fixtures for the API-layer tests: a small, fully tractable network.

Seven experts (the paper's Figure 1 scenario plus a third skill) keep
every registered solver — including brute force's member-set enumeration
and Exact's assignment product — fast enough to run on every request.
"""

from __future__ import annotations

import pytest

from repro.expertise import Expert, ExpertNetwork

PROJECT = ("SN", "TM")
PROJECT3 = ("DB", "SN", "TM")


def build_figure1_network() -> ExpertNetwork:
    """A fresh figure-1 network (shared by the static and dynamic suites;
    the dynamic tests mutate their copy, so they build their own)."""
    experts = [
        Expert("liu", skills={"SN"}, h_index=9),
        Expert("han", h_index=139),
        Expert("ren", skills={"TM"}, h_index=11),
        Expert("golshan", skills={"SN", "DB"}, h_index=5),
        Expert("lappas", h_index=12),
        Expert("kotzias", skills={"TM", "DB"}, h_index=3),
        Expert("bridge", h_index=1),
    ]
    edges = [
        ("liu", "han", 1.0),
        ("han", "ren", 1.0),
        ("golshan", "lappas", 1.0),
        ("lappas", "kotzias", 1.0),
        ("han", "bridge", 5.0),
        ("bridge", "lappas", 5.0),
        ("liu", "ren", 3.0),
    ]
    return ExpertNetwork(experts, edges)


@pytest.fixture(scope="session")
def figure1_network() -> ExpertNetwork:
    return build_figure1_network()
