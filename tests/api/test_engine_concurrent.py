"""Concurrency regressions for the engine: single-flight builds, batch
isolation, and the mutation/solve reader-writer discipline.

These tests pin the PR-5 thread-safety contract:

* a cold engine hammered from many threads pays for **exactly one** PLL
  build per cache key (the pre-fix engine raced the misses and built
  once per thread);
* one bad request in a ``solve_many`` batch yields one typed error
  response instead of discarding every already-computed answer;
* a solve racing :meth:`TeamFormationEngine.mutate` always answers
  exactly as a fresh single-threaded engine would at *some* network
  version inside the solve's observation window — never a hybrid of two
  versions, never a distance from a half-reconciled index.
"""

from __future__ import annotations

import random
import sys
import threading

import pytest

from repro.api import TeamFormationEngine, TeamRequest, UnknownSolverError
from repro.expertise import Expert, ExpertNetwork
from repro.graph.pll import pll_build_count

from .conftest import PROJECT, build_figure1_network

GREEDY = TeamRequest(skills=PROJECT, solver="greedy")


def build_race_network(num: int = 120) -> ExpertNetwork:
    """A network whose PLL build is slow enough to race on one core.

    The figure-1 build finishes inside a single scheduler timeslice, so
    an unsynchronized cold-cache race would only reproduce by luck; a
    120-expert ring with random chords takes long enough to index that
    every other hammer thread reliably reaches the (missing) cache
    entry mid-build.  Construction is deterministic (seeded).
    """
    rng = random.Random(11)
    experts = [
        Expert(f"e{i:03d}", skills={f"s{i % 6}"}, h_index=1 + (i % 17))
        for i in range(num)
    ]
    edges = [
        (f"e{i:03d}", f"e{(i + 1) % num:03d}", 1.0 + (i % 5) * 0.25)
        for i in range(num)
    ]
    for _ in range(num * 3):
        u, v = rng.sample(range(num), 2)
        edges.append((f"e{u:03d}", f"e{v:03d}", 0.5 + rng.random() * 4))
    return ExpertNetwork(experts, edges)


RACE_GREEDY = TeamRequest(skills=("s0", "s3"), solver="greedy")


def canonical(response) -> str:
    """Response JSON with the (non-deterministic) timing nulled."""
    return response.canonical_json()


@pytest.fixture(autouse=True)
def aggressive_thread_switching():
    """Shrink the GIL switch interval so races actually interleave.

    The figure-1 network's PLL build fits inside one default (5 ms) GIL
    slice, which would let the pre-fix engine pass the single-flight
    hammer by scheduling luck; at 10 µs the build spans many switches
    and the unsynchronized engine reliably double-builds.
    """
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


def hammer(threads: int, work) -> list:
    """Run ``work(i)`` on ``threads`` threads after a common barrier."""
    barrier = threading.Barrier(threads)
    results: list = [None] * threads
    errors: list = []

    def runner(i: int) -> None:
        barrier.wait()
        try:
            results[i] = work(i)
        except BaseException as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    pool = [
        threading.Thread(target=runner, args=(i,), daemon=True)
        for i in range(threads)
    ]
    for t in pool:
        t.start()
    for t in pool:
        t.join(timeout=60)
    assert not errors, errors
    assert not any(t.is_alive() for t in pool), "hammer threads deadlocked"
    return results


# ----------------------------------------------------------------------
# single-flight index builds
# ----------------------------------------------------------------------
def test_cold_cache_hammer_builds_exactly_once():
    """≥8 threads racing one cold cache key cause exactly one PLL build."""
    engine = TeamFormationEngine(build_race_network())
    before = pll_build_count()
    responses = hammer(10, lambda i: engine.solve(RACE_GREEDY))
    assert pll_build_count() - before == 1
    expected = canonical(responses[0])
    assert all(canonical(r) == expected for r in responses)
    assert all(r.found for r in responses)


def test_cold_cache_hammer_one_build_per_distinct_key():
    """Distinct gammas are distinct keys: one build each, built racily."""
    engine = TeamFormationEngine(build_race_network())
    gammas = (0.3, 0.7)
    before = pll_build_count()
    hammer(8, lambda i: engine.solve(RACE_GREEDY.replace(gamma=gammas[i % 2])))
    assert pll_build_count() - before == len(gammas)


def test_parallel_solve_many_matches_sequential():
    """Threaded ``solve_many`` answers byte-identically (timing aside)."""
    requests = [
        GREEDY.replace(lam=lam, gamma=gamma)
        for lam in (0.2, 0.4, 0.6, 0.8)
        for gamma in (0.3, 0.6)
    ] + [TeamRequest(skills=("DB",), solver="rarest_first")]
    sequential = TeamFormationEngine(build_figure1_network()).solve_many(requests)
    threaded = TeamFormationEngine(build_figure1_network()).solve_many(
        requests, parallel=4
    )
    assert [canonical(r) for r in threaded] == [
        canonical(r) for r in sequential
    ]


# ----------------------------------------------------------------------
# batch isolation (the solve_many mid-batch abort bugfix)
# ----------------------------------------------------------------------
def test_solve_many_isolates_bad_requests_mid_batch():
    """Requests after a poisoned one still get answered."""
    engine = TeamFormationEngine(build_figure1_network())
    batch = [
        GREEDY,
        GREEDY.replace(solver="no_such_solver"),
        GREEDY.replace(lam=0.4),
    ]
    responses = engine.solve_many(batch)
    assert len(responses) == 3
    assert responses[0].found and responses[2].found
    bad = responses[1]
    assert not bad.found
    assert bad.error_kind == "unknown_solver"
    assert "no_such_solver" in (bad.error or "")
    assert bad.request == batch[1]
    # The good answers are exactly what a clean batch produces.
    clean = engine.solve_many([batch[0], batch[2]])
    assert canonical(responses[0]) == canonical(clean[0])
    assert canonical(responses[2]) == canonical(clean[1])


def test_solve_many_on_error_raise_restores_raise_through():
    engine = TeamFormationEngine(build_figure1_network())
    with pytest.raises(UnknownSolverError):
        engine.solve_many(
            [GREEDY, GREEDY.replace(solver="no_such_solver")],
            on_error="raise",
        )
    with pytest.raises(ValueError):
        engine.solve_many([GREEDY], on_error="sometimes")
    with pytest.raises(ValueError):
        engine.solve_many([GREEDY], parallel=0)


def test_single_solve_still_raises_through():
    engine = TeamFormationEngine(build_figure1_network())
    with pytest.raises(UnknownSolverError):
        engine.solve(GREEDY.replace(solver="no_such_solver"))


def test_isolated_uncoverable_skill_is_typed_in_band():
    engine = TeamFormationEngine(build_figure1_network())
    responses = engine.solve_many(
        [GREEDY.replace(skills=("no-such-skill",)), GREEDY]
    )
    assert not responses[0].found
    assert responses[0].error_kind == "uncoverable"
    assert responses[1].found


# ----------------------------------------------------------------------
# mutation/solve race (differential vs per-version fresh engines)
# ----------------------------------------------------------------------
# add_collaboration-only mutations keep the node set fixed, so every
# observable difference between versions flows through edge weights —
# i.e. through the distance index the race is about.
MUTATIONS = (
    ("liu", "golshan", 2.0),
    ("ren", "kotzias", 2.0),
    ("han", "lappas", 1.5),
    ("liu", "ren", 1.0),  # decrease (was 3.0): incremental clone path
    ("bridge", "golshan", 1.0),
    ("han", "ren", 0.5),  # decrease (was 1.0)
)
RACE_REQUESTS = (
    GREEDY,
    TeamRequest(skills=("SN", "DB"), solver="rarest_first"),
)


def reference_answers() -> dict[int, dict[TeamRequest, str]]:
    """Canonical answers from fresh single-threaded engines per version."""
    refs: dict[int, dict[TeamRequest, str]] = {}
    for upto in range(len(MUTATIONS) + 1):
        engine = TeamFormationEngine(build_figure1_network())
        with engine.mutate() as network:
            for u, v, w in MUTATIONS[:upto]:
                network.add_collaboration(u, v, weight=w)
        assert engine.network.version == upto
        refs[upto] = {
            request: canonical(engine.solve(request))
            for request in RACE_REQUESTS
        }
    return refs


def test_mutate_solve_race_is_version_consistent():
    """Racy solves match a fresh engine at some version in their window."""
    refs = reference_answers()
    engine = TeamFormationEngine(build_figure1_network())
    observations: list[tuple[TeamRequest, int, str, int]] = []
    observations_lock = threading.Lock()
    start = threading.Barrier(5)
    done = threading.Event()

    def mutator() -> None:
        start.wait()
        for u, v, w in MUTATIONS:
            with engine.mutate() as network:
                network.add_collaboration(u, v, weight=w)
        done.set()

    def solver(worker: int) -> None:
        start.wait()
        request = RACE_REQUESTS[worker % len(RACE_REQUESTS)]
        while True:
            finished = done.is_set()
            v_pre = engine.network.version
            answer = canonical(engine.solve(request))
            v_post = engine.network.version
            with observations_lock:
                observations.append((request, v_pre, answer, v_post))
            if finished:
                return

    threads = [threading.Thread(target=mutator, daemon=True)] + [
        threading.Thread(target=solver, args=(i,), daemon=True)
        for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not any(t.is_alive() for t in threads), "race test deadlocked"

    assert engine.network.version == len(MUTATIONS)
    # Every racy answer must equal the reference at some version inside
    # its observation window — a torn index would match none of them.
    assert observations
    post_final = 0
    for request, v_pre, answer, v_post in observations:
        window = {
            refs[v][request] for v in range(v_pre, v_post + 1)
        }
        assert answer in window, (
            f"racy answer matches no version in [{v_pre}, {v_post}]"
        )
        if v_pre == len(MUTATIONS):
            post_final += 1
    # The loop structure guarantees at least one fully-post-mutation
    # solve per worker (the iteration entered after done was set).
    assert post_final >= 4


def test_apply_updates_and_refresh_scales_race_solves():
    """Writer methods interleave with a solve storm without tearing."""
    engine = TeamFormationEngine(build_figure1_network())
    baseline = canonical(engine.solve(GREEDY))
    stop = threading.Event()

    def writer() -> None:
        for _ in range(5):
            engine.apply_updates()
            engine.refresh_scales()
        stop.set()

    def reader(_: int) -> list[str]:
        answers = []
        while not stop.is_set():
            answers.append(canonical(engine.solve(GREEDY)))
        return answers

    writer_thread = threading.Thread(target=writer, daemon=True)
    writer_thread.start()
    results = hammer(4, reader)
    writer_thread.join(timeout=60)
    assert not writer_thread.is_alive()
    # The network never changed, so refreshed scales are identical and
    # every answer must equal the baseline bit for bit.
    for answers in results:
        assert all(answer == baseline for answer in answers)


def test_mutate_is_exclusive_against_solves():
    """No solve result can be produced while mutate() holds the lock."""
    engine = TeamFormationEngine(build_figure1_network())
    engine.solve(GREEDY)  # warm the cache
    inside = threading.Event()
    release = threading.Event()
    solved = threading.Event()

    def blocked_solver() -> None:
        inside.wait(timeout=30)
        engine.solve(GREEDY)
        solved.set()

    thread = threading.Thread(target=blocked_solver, daemon=True)
    thread.start()
    with engine.mutate() as network:
        inside.set()
        network.add_collaboration("liu", "kotzias", weight=2.0)
        # Give the solver a chance to (incorrectly) slip through.
        assert not solved.wait(timeout=0.3)
        release.set()
    thread.join(timeout=60)
    assert solved.is_set()
