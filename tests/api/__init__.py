"""Tests for the repro.api serving layer."""
