"""Dynamic-network serving: versioned oracle invalidation and updates.

The regression at the heart of PR 3: ``engine.solve(...)``, then a
network mutation, then ``engine.solve(...)`` again must reflect the
mutation — the seed engine kept serving pre-mutation PLL distances.
Every test here compares the long-lived engine against a fresh engine
built over the mutated network with the *same frozen scales*, which is
the definition of "not stale".
"""

from __future__ import annotations

import pytest

from repro.api import TeamFormationEngine, TeamRequest
from repro.expertise import Expert, ExpertNetwork
from repro.graph.pll import pll_build_count

from .conftest import PROJECT, build_figure1_network


@pytest.fixture()
def network() -> ExpertNetwork:
    """A mutable copy of the figure-1 network (the shared session-scoped
    fixture must stay pristine)."""
    return build_figure1_network()


def assert_not_stale(engine: TeamFormationEngine, request: TeamRequest) -> None:
    """The long-lived engine answers exactly like a fresh one."""
    served = engine.solve(request)
    fresh = TeamFormationEngine(
        engine.network, scales=engine.scales, oracle_kind=engine.oracle_kind
    ).solve(request)
    assert served.team == fresh.team
    assert served.scores == fresh.scores


@pytest.mark.parametrize("oracle_kind", ["pll", "dijkstra"])
def test_regression_mutation_between_solves_is_visible(network, oracle_kind):
    """The stale-oracle bug: a post-solve edge must change the answer."""
    engine = TeamFormationEngine(network, oracle_kind=oracle_kind)
    request = TeamRequest(skills=PROJECT, solver="greedy", objective="cc")
    before = engine.solve(request)
    assert sorted(before.team.members) == ["han", "liu", "ren"]
    # A near-free direct collaboration makes the golshan/kotzias team
    # strictly cheaper in pure communication cost.
    network.add_collaboration("golshan", "kotzias", weight=0.01)
    after = engine.solve(request)
    assert sorted(after.team.members) == ["golshan", "kotzias"]
    assert_not_stale(engine, request)


def test_edge_insertion_upgrades_incrementally_without_rebuild(network):
    engine = TeamFormationEngine(network)
    request = TeamRequest(skills=PROJECT, solver="greedy")
    engine.solve(request)
    network.add_collaboration("golshan", "kotzias", weight=0.01)
    before = pll_build_count()
    assert_not_stale(engine, request)  # fresh engine pays its own build
    served_builds = pll_build_count() - before
    assert served_builds == 1  # only the fresh comparison engine built


def test_add_expert_and_edge_are_incremental_and_visible(network):
    engine = TeamFormationEngine(network)
    request = TeamRequest(skills=("SN", "TM", "QC"), solver="greedy")
    assert not engine.solve(request).found  # QC uncovered
    network.add_expert(Expert("quine", skills={"QC"}, h_index=30))
    network.add_collaboration("quine", "han", weight=0.1)
    before = pll_build_count()
    response = engine.solve(request)
    assert pll_build_count() - before == 0  # absorbed in place
    assert response.found
    assert "quine" in response.team.members
    assert_not_stale(engine, request)


def test_removal_falls_back_to_rebuild(network):
    engine = TeamFormationEngine(network)
    request = TeamRequest(skills=PROJECT, solver="greedy", objective="cc")
    network.add_collaboration("golshan", "kotzias", weight=0.01)
    engine.solve(request)
    network.remove_collaboration("golshan", "kotzias")
    before = pll_build_count()
    response = engine.solve(request)
    assert pll_build_count() - before == 1  # rebuild, not incremental
    assert sorted(response.team.members) == ["han", "liu", "ren"]
    assert_not_stale(engine, request)


def test_weight_increase_falls_back_to_rebuild(network):
    engine = TeamFormationEngine(network)
    request = TeamRequest(skills=PROJECT, solver="greedy", objective="cc")
    network.add_collaboration("golshan", "kotzias", weight=0.01)
    engine.solve(request)
    network.add_collaboration("golshan", "kotzias", weight=4.0)
    before = pll_build_count()
    assert sorted(engine.solve(request).team.members) == ["han", "liu", "ren"]
    assert pll_build_count() - before == 1
    assert_not_stale(engine, request)


def test_insert_then_increase_chain_is_net_insertion(network):
    """A reweighting chain is judged by its net effect, not per link.

    Insert at 0.5 then raise to 2.0 within one delta: the cached index
    never saw the edge, so the chain is a pure insertion at 2.0 and must
    stay on the incremental path.
    """
    engine = TeamFormationEngine(network)
    request = TeamRequest(skills=PROJECT, solver="greedy", objective="cc")
    engine.solve(request)
    network.add_collaboration("golshan", "kotzias", weight=0.5)
    network.add_collaboration("golshan", "kotzias", weight=2.0)
    before = pll_build_count()
    engine.solve(request)
    assert pll_build_count() - before == 0  # net insertion: no rebuild
    assert_not_stale(engine, request)


def test_skill_update_reuses_index_untouched(network):
    engine = TeamFormationEngine(network)
    engine.solve(TeamRequest(skills=PROJECT, solver="greedy"))
    network.update_skills("bridge", {"SN", "TM"})
    before = pll_build_count()
    response = engine.solve(TeamRequest(skills=PROJECT, solver="greedy"))
    assert pll_build_count() - before == 0  # skills never touch distances
    assert response.found
    assert_not_stale(engine, TeamRequest(skills=PROJECT, solver="greedy"))


def test_h_index_update_rebuilds_fold_but_not_cc(network):
    engine = TeamFormationEngine(network)
    fold = TeamRequest(skills=PROJECT, solver="greedy", objective="sa-ca-cc")
    cc = TeamRequest(skills=PROJECT, solver="greedy", objective="cc")
    engine.solve(fold)
    engine.solve(cc)
    network.update_h_index("lappas", 200)
    before = pll_build_count()
    engine.solve(cc)
    assert pll_build_count() - before == 0  # cc ignores authority
    engine.solve(fold)
    assert pll_build_count() - before == 1  # the fold must re-weigh
    assert_not_stale(engine, fold)


def test_remove_expert_referenced_by_pending_request(network):
    """Removing the only holders of a requested skill is an in-band miss."""
    engine = TeamFormationEngine(network)
    request = TeamRequest(skills=("DB",), solver="greedy")
    assert engine.solve(request).found
    network.remove_expert("golshan")
    network.remove_expert("kotzias")
    response = engine.solve(request)
    assert not response.found
    assert response.team is None
    assert "DB" in response.error


def test_cached_oracle_keys_evict_stale_versions(network):
    engine = TeamFormationEngine(network)
    request = TeamRequest(skills=PROJECT, solver="greedy")
    for weight in (0.9, 0.8, 0.7, 0.6):
        network.add_collaboration("liu", "ren", weight=weight)
        engine.solve(request)
    keys = engine.cached_oracle_keys
    assert len(keys) == 1  # one base, stale versions re-keyed away
    assert keys[0][-1] == network.version
    # The finder cache is purged the same way: stale finders would pin
    # replaced indexes past the oracle-cache bound.
    assert {key[-1] for key in engine._finders} == {network.version}


def test_apply_updates_reports_reconciliation(network):
    engine = TeamFormationEngine(network)
    engine.solve(TeamRequest(skills=PROJECT, solver="greedy"))  # fold
    engine.solve(TeamRequest(skills=PROJECT, solver="rarest_first"))  # raw
    assert engine.apply_updates() == {"cached": 2, "incremental": 0, "rebuilt": 0}
    network.add_collaboration("liu", "lappas", weight=0.2)
    assert engine.apply_updates() == {"cached": 0, "incremental": 2, "rebuilt": 0}
    network.remove_collaboration("liu", "lappas")
    report = engine.apply_updates()
    assert report == {"cached": 0, "incremental": 0, "rebuilt": 2}
    assert_not_stale(engine, TeamRequest(skills=PROJECT, solver="greedy"))


def test_journal_truncation_forces_correct_rebuild(network, monkeypatch):
    monkeypatch.setattr(ExpertNetwork, "JOURNAL_CAP", 2)
    engine = TeamFormationEngine(network)
    request = TeamRequest(skills=PROJECT, solver="greedy")
    engine.solve(request)
    for weight in (0.9, 0.7, 0.5, 0.3):
        network.add_collaboration("golshan", "kotzias", weight=weight)
    assert network.mutations_since(0) is None  # history gone
    before = pll_build_count()
    engine.solve(request)
    assert pll_build_count() - before == 1  # no delta -> rebuild
    assert_not_stale(engine, request)


def test_refresh_scales_drops_caches_and_rescales(network):
    engine = TeamFormationEngine(network)
    engine.solve(TeamRequest(skills=PROJECT, solver="greedy"))
    network.add_collaboration("liu", "lappas", weight=50.0)  # new max weight
    old_edge_scale = engine.scales.edge_scale
    scales = engine.refresh_scales()
    assert scales.edge_scale == 50.0 != old_edge_scale
    assert engine.cached_oracle_keys == ()


def test_solve_many_straddling_a_mutation(network):
    """Batch requests see the network as of their own solve call."""
    engine = TeamFormationEngine(network)
    request = TeamRequest(skills=PROJECT, solver="greedy", objective="cc")
    first = engine.solve(request)
    network.add_collaboration("golshan", "kotzias", weight=0.01)
    second, third = engine.solve_many([request, request])
    assert sorted(first.team.members) == ["han", "liu", "ren"]
    assert second.team == third.team
    assert sorted(second.team.members) == ["golshan", "kotzias"]
