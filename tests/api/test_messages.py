"""JSON round-trip properties and unit behavior of the API messages."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    MemberContributionPayload,
    ScoreBreakdown,
    TeamPayload,
    TeamRequest,
    TeamResponse,
    TimingInfo,
)
from repro.core import Team
from repro.graph import Graph

_ids = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=8,
)
_unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
_score = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)

requests = st.builds(
    TeamRequest,
    skills=st.lists(_ids, min_size=1, max_size=5, unique=True).map(tuple),
    solver=st.sampled_from(
        ("greedy", "rarest_first", "sa_optimal", "exact", "brute_force", "random", "pareto")
    ),
    objective=st.sampled_from(("cc", "ca", "ca-cc", "sa-ca-cc")),
    gamma=_unit,
    lam=_unit,
    sa_mode=st.sampled_from(("per_skill", "distinct")),
    oracle_kind=st.sampled_from(("pll", "dijkstra")),
    k=st.integers(1, 10),
    seed=st.none() | st.integers(-(2**31), 2**31),
    num_samples=st.none() | st.integers(1, 100_000),
)


@st.composite
def team_payloads(draw):
    members = tuple(sorted(draw(st.lists(_ids, min_size=1, max_size=6, unique=True))))
    skills = sorted(draw(st.lists(_ids, min_size=1, max_size=4, unique=True)))
    assignments = tuple(
        (skill, draw(st.sampled_from(members))) for skill in skills
    )
    pairs = [
        (u, v) for i, u in enumerate(members) for v in members[i + 1 :]
    ]
    chosen = draw(
        st.lists(st.sampled_from(pairs), max_size=len(pairs), unique=True)
        if pairs
        else st.just([])
    )
    edges = tuple(
        sorted((u, v, draw(_score)) for u, v in chosen)
    )
    root = draw(st.none() | st.sampled_from(members))
    return TeamPayload(
        members=members, assignments=assignments, edges=edges, root=root
    )


contributions = st.builds(
    MemberContributionPayload,
    expert_id=_ids,
    role=st.sampled_from(("skill holder", "connector")),
    covered_skills=st.lists(_ids, max_size=3, unique=True).map(
        lambda s: tuple(sorted(s))
    ),
    authority=_score,
    sa_share=_score,
    ca_share=_score,
    cc_share=_score,
    critical=st.booleans(),
)

responses = st.builds(
    TeamResponse,
    request=requests,
    solver=_ids,
    found=st.booleans(),
    team=st.none() | team_payloads(),
    alternates=st.lists(team_payloads(), max_size=2).map(tuple),
    contributions=st.lists(contributions, max_size=3).map(tuple),
    scores=st.none()
    | st.builds(
        ScoreBreakdown, cc=_score, ca=_score, sa=_score, ca_cc=_score, sa_ca_cc=_score
    ),
    timing=st.none()
    | st.builds(TimingInfo, solve_seconds=_score, oracle_builds=st.integers(0, 5)),
    error=st.none() | st.text(max_size=40),
)


@given(requests)
@settings(max_examples=200)
def test_request_json_roundtrip(request):
    assert TeamRequest.from_json(request.to_json()) == request


@given(requests)
def test_request_dict_roundtrip_through_json_types(request):
    # Through an actual JSON encode/decode, so tuples become lists etc.
    rebuilt = TeamRequest.from_dict(json.loads(json.dumps(request.to_dict())))
    assert rebuilt == request


@given(responses)
@settings(max_examples=200)
def test_response_json_roundtrip(response):
    assert TeamResponse.from_json(response.to_json()) == response


@given(team_payloads())
def test_payload_team_roundtrip(payload):
    # payload -> live Team -> payload is the identity on canonical payloads
    assert TeamPayload.from_team(payload.to_team()) == payload


def test_request_defaults_fill_missing_keys():
    request = TeamRequest.from_dict({"skills": ["a", "b"]})
    assert request.solver == "greedy"
    assert request.objective == "sa-ca-cc"
    assert request.k == 1


def test_request_validation():
    with pytest.raises(ValueError):
        TeamRequest(skills=())
    with pytest.raises(ValueError):
        TeamRequest(skills=("a",), gamma=1.5)
    with pytest.raises(ValueError):
        TeamRequest(skills=("a",), sa_mode="bogus")
    with pytest.raises(ValueError):
        TeamRequest(skills=("a",), oracle_kind="magic")
    with pytest.raises(ValueError):
        TeamRequest(skills=("a",), k=0)


def test_request_replace():
    request = TeamRequest(skills=("a",), lam=0.2)
    swept = request.replace(lam=0.8)
    assert swept.lam == 0.8
    assert swept.skills == request.skills
    assert request.lam == 0.2  # original untouched


def test_payload_from_team_is_canonical():
    tree = Graph()
    tree.add_edge("b", "a", weight=2.0)
    tree.add_edge("b", "c", weight=1.0)
    team = Team(tree=tree, assignments={"s2": "c", "s1": "a"}, root="b")
    payload = TeamPayload.from_team(team)
    assert payload.members == ("a", "b", "c")
    assert payload.assignments == (("s1", "a"), ("s2", "c"))
    assert payload.edges == (("a", "b", 2.0), ("b", "c", 1.0))
    rebuilt = payload.to_team()
    assert rebuilt.key() == team.key()
    assert rebuilt.root == "b"


def test_network_version_is_default_omitted():
    """Absent from the JSON payload unless set (byte-stability pin).

    Pre-replication suites (and old recorded JSON) compare serialized
    responses byte for byte; a new always-present key would break every
    one of them, so ``network_version`` only appears once a replicated
    backend stamps it.
    """
    request = TeamRequest(skills=("a",))
    plain = TeamResponse(request=request, solver="greedy", found=False)
    assert "network_version" not in plain.to_dict()
    assert "network_version" not in json.loads(plain.to_json())
    stamped = TeamResponse(
        request=request, solver="greedy", found=False, network_version=7
    )
    assert stamped.to_dict()["network_version"] == 7
    assert TeamResponse.from_json(stamped.to_json()) == stamped
    # Old JSON without the key still parses (defaults to None).
    assert TeamResponse.from_json(plain.to_json()).network_version is None


def test_canonical_json_ignores_network_version():
    """Identity compares *what* was answered, not *who* answered it.

    Two engines at the same network state must be byte-indistinguishable
    through ``canonical_json`` even when one is a replica stamping its
    version — that is the differential gate replication is held to.
    """
    from dataclasses import replace

    request = TeamRequest(skills=("a",))
    plain = TeamResponse(request=request, solver="greedy", found=False)
    stamped = replace(plain, network_version=7)
    assert plain.canonical_json() == stamped.canonical_json()
    assert "network_version" not in plain.canonical_json()
