"""Sharded engine vs monolithic engine: byte-identical responses.

PR-10's hard acceptance bar: ``TeamFormationEngine(..., shards=K)`` must
answer every request with the *same canonical JSON bytes* as the
monolithic engine — for every registered solver and K in {1, 2, 4}.

The deterministic suites use a crafted *dyadic* network (powers-of-two
edge weights and h-indexes, gamma/lam = 0.5) so every folded weight and
every hub-sum is exact in binary floating point: the sharded oracle sums
``local + boundary + local`` in a different association order than the
monolithic two-hop sum, and only exact arithmetic makes "identical
floats" a theorem rather than a coincidence.  The figure-1 suite then
checks the same equality holds on the paper's (non-dyadic) numbers.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import TeamFormationEngine, TeamRequest
from repro.expertise import Expert, ExpertNetwork
from repro.graph.pll import pll_build_count
from repro.storage import SnapshotStore

from .conftest import PROJECT, build_figure1_network

ALL_SOLVERS = (
    "brute_force",
    "exact",
    "greedy",
    "pareto",
    "random",
    "rarest_first",
    "sa_optimal",
)

KS = (1, 2, 4)


def build_dyadic_network() -> ExpertNetwork:
    """Two components, powers-of-two weights, powers-of-two h-indexes.

    Component one is a bridge-heavy chain (articulation points for the
    partitioner to cut); component two is a triangle plus a pendant;
    plus one isolated expert.  Every edge weight is a power of two and
    every h-index is a power of two, so folded weights at gamma=0.5 and
    all hub sums are exactly representable.
    """
    experts = [
        Expert("a1", skills={"SN"}, h_index=8),
        Expert("a2", h_index=16),
        Expert("a3", skills={"TM"}, h_index=4),
        Expert("a4", h_index=32),
        Expert("a5", skills={"SN", "DB"}, h_index=2),
        Expert("a6", skills={"TM"}, h_index=8),
        Expert("b1", skills={"SN"}, h_index=4),
        Expert("b2", skills={"TM", "DB"}, h_index=16),
        Expert("b3", h_index=2),
        Expert("b4", skills={"DB"}, h_index=8),
        Expert("solo", skills={"SN"}, h_index=1),
    ]
    edges = [
        # chain of small blocks: a2 and a4 are articulation points
        ("a1", "a2", 0.5),
        ("a2", "a3", 0.25),
        ("a3", "a4", 0.5),
        ("a2", "a4", 1.0),
        ("a4", "a5", 2.0),
        ("a5", "a6", 0.5),
        ("a4", "a6", 4.0),
        # second component: triangle + pendant
        ("b1", "b2", 0.5),
        ("b2", "b3", 1.0),
        ("b1", "b3", 2.0),
        ("b3", "b4", 0.25),
    ]
    return ExpertNetwork(experts, edges)


def request_for(solver: str, skills=("SN", "TM")) -> TeamRequest:
    return TeamRequest(
        skills=skills,
        solver=solver,
        gamma=0.5,
        lam=0.5,
        seed=17,
        num_samples=64,
    )


@pytest.mark.parametrize("solver", ALL_SOLVERS)
@pytest.mark.parametrize("k", KS)
def test_all_solvers_byte_identical_on_dyadic_network(solver, k):
    network = build_dyadic_network()
    mono = TeamFormationEngine(network)
    sharded = TeamFormationEngine(network, shards=k)
    for skills in (("SN", "TM"), ("SN", "TM", "DB"), ("DB",)):
        request = request_for(solver, skills)
        assert (
            sharded.solve(request).canonical_json()
            == mono.solve(request).canonical_json()
        ), f"solver={solver} k={k} skills={skills}"


@pytest.mark.parametrize("solver", ALL_SOLVERS)
@pytest.mark.parametrize("k", KS)
def test_all_solvers_identical_on_figure1(solver, k):
    network = build_figure1_network()
    mono = TeamFormationEngine(network)
    sharded = TeamFormationEngine(network, shards=k)
    request = TeamRequest(
        skills=PROJECT, solver=solver, seed=3, num_samples=64
    )
    assert (
        sharded.solve(request).canonical_json()
        == mono.solve(request).canonical_json()
    )


def test_sharded_cache_keys_carry_the_plan_tag():
    network = build_dyadic_network()
    sharded = TeamFormationEngine(network, shards=2)
    mono = TeamFormationEngine(network)
    request = request_for("greedy")
    sharded.solve(request)
    mono.solve(request)
    tagged = [key for key in sharded.cached_oracle_keys if key]
    assert tagged, "solve must cache an index"
    for key in tagged:
        mark = key[-2]  # last element is the network version
        assert isinstance(mark, tuple) and mark[0] == "shards"
        assert mark[1] == 2
    for key in mono.cached_oracle_keys:
        assert not any(
            isinstance(part, tuple) and part and part[0] == "shards"
            for part in key
        ), "monolithic keys must be byte-unchanged"


def test_dijkstra_oracle_kind_is_never_sharded():
    network = build_dyadic_network()
    sharded = TeamFormationEngine(network, shards=2)
    request = TeamRequest(
        skills=("SN", "TM"), solver="greedy", oracle_kind="dijkstra"
    )
    mono = TeamFormationEngine(network)
    assert (
        sharded.solve(request).canonical_json()
        == mono.solve(request).canonical_json()
    )
    for key in sharded.cached_oracle_keys:
        if key[0] == "dijkstra":
            assert not any(
                isinstance(part, tuple) and part and part[0] == "shards"
                for part in key
            )


# ----------------------------------------------------------------------
# randomized identity (dyadic weights keep float sums exact)
# ----------------------------------------------------------------------
def dyadic_network(seed: int, n: int) -> ExpertNetwork:
    rng = random.Random(seed)
    skills = ("SN", "TM", "DB")
    experts = []
    for i in range(n):
        owned = {skills[i % 3]}
        if rng.random() < 0.3:
            owned.add(rng.choice(skills))
        experts.append(
            Expert(f"e{i}", skills=owned, h_index=2 ** rng.randint(0, 6))
        )
    edges = []
    for i in range(1, n):
        if rng.random() < 0.85:  # leave occasional disconnection
            edges.append(
                (f"e{i}", f"e{rng.randrange(i)}", 2.0 ** rng.randint(-3, 2))
            )
    for _ in range(n):
        i, j = rng.randrange(n), rng.randrange(n)
        if i != j:
            edges.append((f"e{i}", f"e{j}", 2.0 ** rng.randint(-3, 2)))
    return ExpertNetwork(experts, edges)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    k=st.sampled_from((2, 3, 4)),
    solver=st.sampled_from(("greedy", "rarest_first")),
)
def test_random_dyadic_networks_identical(seed, k, solver):
    network = dyadic_network(seed, n=16)
    mono = TeamFormationEngine(network)
    sharded = TeamFormationEngine(network, shards=k)
    request = TeamRequest(
        skills=("SN", "TM"), solver=solver, gamma=0.5, lam=0.5
    )
    assert (
        sharded.solve(request).canonical_json()
        == mono.solve(request).canonical_json()
    )


# ----------------------------------------------------------------------
# snapshots: sharded engines round-trip with zero rebuilds
# ----------------------------------------------------------------------
@pytest.mark.parametrize("k", (2, 4))
def test_sharded_snapshot_round_trip_zero_builds(tmp_path, k):
    network = build_dyadic_network()
    engine = TeamFormationEngine(network, shards=k)
    request = request_for("greedy")
    expected = engine.solve(request).canonical_json()
    engine.raw_oracle()  # warm the RarestFirst index too
    store = SnapshotStore(tmp_path / "snaps")
    engine.save_snapshot(store)

    before = pll_build_count()
    loaded = TeamFormationEngine.from_snapshot(store)
    assert pll_build_count() == before, "restore must not build any PLL"
    assert loaded.shards == k
    assert loaded.solve(request).canonical_json() == expected
    assert pll_build_count() == before, "solve after restore must stay warm"


def test_sharded_snapshot_meta_carries_residency(tmp_path):
    network = build_dyadic_network()
    engine = TeamFormationEngine(network, shards=2)
    engine.solve(request_for("greedy"))
    path = engine.save_snapshot(tmp_path / "store")
    from repro.storage import read_meta

    meta = read_meta(path)
    assert meta["shards"] == 2
    residency = meta["shard_residency"]
    assert set(residency) == set(network.skill_index.skills())
    assert all(v in (0, 1) for v in residency.values())


def test_monolithic_snapshot_meta_unchanged(tmp_path):
    network = build_dyadic_network()
    engine = TeamFormationEngine(network)
    engine.solve(request_for("greedy"))
    path = engine.save_snapshot(tmp_path / "store")
    from repro.storage import read_meta

    meta = read_meta(path)
    assert "shards" not in meta
    assert "shard_residency" not in meta


def test_sharded_snapshot_bytes_round_trip(tmp_path):
    network = build_dyadic_network()
    engine = TeamFormationEngine(network, shards=3)
    request = request_for("rarest_first")
    expected = engine.solve(request).canonical_json()
    blob = engine.snapshot_bytes()
    before = pll_build_count()
    loaded = TeamFormationEngine.from_snapshot_bytes(blob)
    assert pll_build_count() == before
    assert loaded.solve(request).canonical_json() == expected
