"""Engine semantics: per-solver identity with direct construction, the
shared-oracle cache, batch solving, and response assembly."""

from __future__ import annotations

import pytest

from repro.api import TeamFormationEngine, TeamPayload, TeamRequest
from repro.core import (
    BruteForceSolver,
    ExactSolver,
    GreedyTeamFinder,
    ParetoTeamDiscovery,
    RandomSolver,
    RarestFirstSolver,
    TeamEvaluator,
)
from repro.core.sa_solver import SaOptimalSolver
from repro.graph.pll import pll_build_count

from .conftest import PROJECT, PROJECT3


def _direct_greedy(network, request):
    return GreedyTeamFinder(
        network,
        objective=request.objective,
        gamma=request.gamma,
        lam=request.lam,
        sa_mode=request.sa_mode,
        oracle_kind=request.oracle_kind,
    ).find_team(list(request.skills))


def _direct_rarest_first(network, request):
    return RarestFirstSolver(
        network, oracle_kind=request.oracle_kind
    ).find_team(list(request.skills))


def _direct_sa_optimal(network, request):
    return SaOptimalSolver(
        network, gamma=request.gamma, lam=request.lam, sa_mode=request.sa_mode
    ).find_team(list(request.skills))


def _direct_exact(network, request):
    return ExactSolver(
        network, gamma=request.gamma, lam=request.lam, sa_mode=request.sa_mode
    ).find_team(list(request.skills))


def _direct_brute_force(network, request):
    return BruteForceSolver(
        network,
        objective=request.objective,
        gamma=request.gamma,
        lam=request.lam,
        sa_mode=request.sa_mode,
    ).find_team(list(request.skills))


def _direct_random(network, request):
    return RandomSolver(
        network,
        gamma=request.gamma,
        lam=request.lam,
        sa_mode=request.sa_mode,
        num_samples=request.num_samples,
        seed=request.seed,
    ).find_team(list(request.skills))


def _direct_pareto(network, request):
    frontier = ParetoTeamDiscovery(
        network, oracle_kind=request.oracle_kind, sa_mode=request.sa_mode
    ).discover(list(request.skills))
    evaluator = TeamEvaluator(
        network, gamma=request.gamma, lam=request.lam, sa_mode=request.sa_mode
    )
    best = min(
        frontier,
        key=lambda p: (evaluator.score(p.team, request.objective), p.vector),
    )
    return best.team


IDENTITY_CASES = [
    (
        "greedy",
        _direct_greedy,
        {"objective": "sa-ca-cc", "gamma": 0.6, "lam": 0.4},
    ),
    ("greedy", _direct_greedy, {"objective": "cc"}),
    ("greedy", _direct_greedy, {"objective": "ca", "gamma": 0.3}),
    ("rarest_first", _direct_rarest_first, {}),
    ("sa_optimal", _direct_sa_optimal, {"gamma": 0.2, "lam": 0.9}),
    ("exact", _direct_exact, {"gamma": 0.6, "lam": 0.6}),
    ("brute_force", _direct_brute_force, {"objective": "sa-ca-cc"}),
    ("random", _direct_random, {"seed": 11, "num_samples": 300}),
    ("pareto", _direct_pareto, {"oracle_kind": "dijkstra"}),
]


@pytest.mark.parametrize(
    "solver,direct,params",
    IDENTITY_CASES,
    ids=[f"{name}-{i}" for i, (name, _, _) in enumerate(IDENTITY_CASES)],
)
def test_engine_team_identical_to_direct_construction(
    figure1_network, solver, direct, params
):
    """Acceptance: every registered solver, engine == direct construction."""
    request = TeamRequest(skills=PROJECT, solver=solver, **params)
    engine = TeamFormationEngine(figure1_network)
    response = engine.solve(request)
    assert response.found, response.error
    expected = direct(figure1_network, request)
    assert response.team == TeamPayload.from_team(expected)


def test_lambda_sweep_builds_exactly_one_pll_index(figure1_network):
    """Acceptance: a 3-value lambda sweep pays for one index build."""
    engine = TeamFormationEngine(figure1_network)
    requests = [
        TeamRequest(skills=PROJECT3, solver="greedy", lam=lam, oracle_kind="pll")
        for lam in (0.2, 0.5, 0.8)
    ]
    before = pll_build_count()
    responses = engine.solve_many(requests)
    assert pll_build_count() - before == 1
    # The response-level counters agree: first request paid, the rest hit.
    assert responses[0].timing.oracle_builds == 1
    assert all(r.timing.oracle_builds == 0 for r in responses[1:])
    assert all(r.found for r in responses)


def test_naive_per_query_construction_builds_one_index_each(figure1_network):
    """The contrast case: direct per-query solvers rebuild the index."""
    before = pll_build_count()
    for lam in (0.2, 0.5, 0.8):
        GreedyTeamFinder(figure1_network, lam=lam).find_team(list(PROJECT3))
    assert pll_build_count() - before == 3


def test_oracle_cache_is_keyed_on_gamma(figure1_network):
    engine = TeamFormationEngine(figure1_network)
    engine.solve(TeamRequest(skills=PROJECT, solver="greedy", gamma=0.3))
    before = pll_build_count()
    engine.solve(TeamRequest(skills=PROJECT, solver="greedy", gamma=0.7))
    assert pll_build_count() - before == 1  # different fold, new index
    before = pll_build_count()
    engine.solve(
        TeamRequest(skills=PROJECT, solver="greedy", gamma=0.7, lam=0.9)
    )
    assert pll_build_count() - before == 0  # same fold, cache hit


def test_oracle_cache_is_bounded(figure1_network):
    engine = TeamFormationEngine(figure1_network, max_cached_oracles=2)
    for gamma in (0.1, 0.2, 0.3, 0.4):
        engine.solve(TeamRequest(skills=PROJECT, solver="greedy", gamma=gamma))
    assert len(engine.cached_oracle_keys) <= 2
    # Evicted entries rebuild on demand and still answer correctly.
    response = engine.solve(
        TeamRequest(skills=PROJECT, solver="greedy", gamma=0.1)
    )
    assert response.found


def test_ca_objective_shares_gamma_one_fold(figure1_network):
    engine = TeamFormationEngine(figure1_network)
    engine.solve(
        TeamRequest(skills=PROJECT, solver="greedy", objective="ca-cc", gamma=1.0)
    )
    before = pll_build_count()
    # "ca" degenerates to the fold at gamma=1: must reuse the index above.
    engine.solve(
        TeamRequest(skills=PROJECT, solver="greedy", objective="ca", gamma=0.4)
    )
    assert pll_build_count() - before == 0


def test_k_returns_ranked_alternates(figure1_network):
    engine = TeamFormationEngine(figure1_network)
    response = engine.solve(TeamRequest(skills=PROJECT, solver="greedy", k=3))
    assert response.found
    assert len(response.alternates) == 2
    keys = {response.team} | set(response.alternates)
    assert len(keys) == 3  # distinct teams


def test_uncoverable_project_is_an_in_band_negative(figure1_network):
    engine = TeamFormationEngine(figure1_network)
    response = engine.solve(
        TeamRequest(skills=("quantum-basket-weaving",), solver="greedy")
    )
    assert not response.found
    assert response.team is None
    assert response.error


def test_contributions_sum_to_sa_ca_cc_score(figure1_network):
    engine = TeamFormationEngine(figure1_network)
    request = TeamRequest(skills=PROJECT3, solver="greedy", gamma=0.6, lam=0.4)
    response = engine.solve(request)
    assert response.found
    total = sum(c.total for c in response.contributions)
    assert total == pytest.approx(response.scores.sa_ca_cc)


def test_solve_many_matches_individual_solves(figure1_network):
    engine = TeamFormationEngine(figure1_network)
    requests = [
        TeamRequest(skills=PROJECT, solver="greedy", lam=0.2),
        TeamRequest(skills=PROJECT, solver="rarest_first"),
        TeamRequest(skills=PROJECT, solver="sa_optimal"),
    ]
    batch = engine.solve_many(requests)
    fresh = TeamFormationEngine(figure1_network)
    singles = [fresh.solve(r) for r in requests]
    assert [r.team for r in batch] == [r.team for r in singles]


def test_engine_response_roundtrips_and_validates(figure1_network):
    from repro.api import TeamResponse

    engine = TeamFormationEngine(figure1_network)
    response = engine.solve(TeamRequest(skills=PROJECT3, solver="greedy"))
    rebuilt = TeamResponse.from_json(response.to_json())
    assert rebuilt == response
    team = rebuilt.team.to_team()
    team.validate(set(PROJECT3), network=figure1_network)


def test_exact_intractability_reported_in_band(figure1_network):
    engine = TeamFormationEngine(figure1_network)
    adapterless = engine.exact_solver(max_assignments=1)
    with pytest.raises(Exception):
        adapterless.find_team(list(PROJECT3))
    # Through the API the same condition is a negative response, not a raise.
    registry_response = engine.solve(
        TeamRequest(skills=PROJECT3, solver="brute_force")
    )
    assert registry_response.found  # tiny network: tractable
