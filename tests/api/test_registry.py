"""SolverRegistry behavior: lookup, registration, isolation, errors."""

from __future__ import annotations

import pytest

from repro.api import (
    DEFAULT_REGISTRY,
    SolverRegistry,
    TeamFormationEngine,
    TeamRequest,
    TeamResponse,
    UnknownSolverError,
)

from .conftest import PROJECT

BUILTIN = (
    "brute_force",
    "exact",
    "greedy",
    "pareto",
    "random",
    "rarest_first",
    "sa_optimal",
)


def test_default_registry_has_all_builtin_solvers():
    assert DEFAULT_REGISTRY.names() == BUILTIN
    assert len(DEFAULT_REGISTRY) == len(BUILTIN)
    for name in BUILTIN:
        assert name in DEFAULT_REGISTRY


def test_unknown_solver_error_lists_alternatives():
    with pytest.raises(UnknownSolverError) as excinfo:
        DEFAULT_REGISTRY.factory("gradient_descent")
    message = str(excinfo.value)
    assert "gradient_descent" in message
    assert "greedy" in message


def test_duplicate_registration_requires_replace():
    registry = DEFAULT_REGISTRY.copy()
    with pytest.raises(ValueError):
        registry.register("greedy", lambda engine: None)
    registry.register("greedy", lambda engine: None, replace=True)


def test_copy_is_isolated_from_default():
    registry = DEFAULT_REGISTRY.copy()
    registry.register("custom", lambda engine: None)
    assert "custom" in registry
    assert "custom" not in DEFAULT_REGISTRY


def test_custom_solver_routes_through_engine(figure1_network):
    class EchoSolver:
        def __init__(self, engine):
            self.engine = engine

        def solve(self, request):
            return TeamResponse(request=request, solver="echo", found=False)

    registry = DEFAULT_REGISTRY.copy()
    registry.register("echo", EchoSolver)
    engine = TeamFormationEngine(figure1_network, registry=registry)
    response = engine.solve(TeamRequest(skills=PROJECT, solver="echo"))
    assert response.solver == "echo"
    assert not response.found
    assert "echo" in engine.list_solvers()


def test_engine_raises_for_unregistered_solver(figure1_network):
    engine = TeamFormationEngine(figure1_network)
    with pytest.raises(UnknownSolverError):
        engine.solve(TeamRequest(skills=PROJECT, solver="simulated_annealing"))
