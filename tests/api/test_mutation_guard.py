"""The engine's mutation guard: the PR-5 known limit, now fenced.

Direct :class:`ExpertNetwork` mutation on an engine-attached network
bypasses the engine's reader/writer lock, so a concurrent solve could
observe a torn network.  The engine installs a guard at attach time:
an unsanctioned mutation warns (:class:`UserWarning`), or raises under
``REPRO_STRICT=1`` — and because the check runs *before* any state
changes, a strict-mode raise leaves the network fully consistent.
"""

from __future__ import annotations

import threading
import warnings

import pytest

from repro.api import TeamFormationEngine
from repro.expertise import Expert

from .conftest import build_figure1_network

MUTATIONS = {
    "add_expert": lambda net: net.add_expert(Expert("zhu", h_index=4)),
    "remove_expert": lambda net: net.remove_expert("bridge"),
    "update_skills": lambda net: net.update_skills("liu", {"SN", "DB"}),
    "update_h_index": lambda net: net.update_h_index("liu", 10),
    "add_collaboration": lambda net: net.add_collaboration(
        "liu", "golshan", weight=2.0
    ),
    "remove_collaboration": lambda net: net.remove_collaboration(
        "liu", "ren"
    ),
}


def test_unattached_network_mutates_silently():
    network = build_figure1_network()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        network.update_h_index("liu", 10)
    assert network.version == 1


@pytest.mark.parametrize("op", sorted(MUTATIONS))
def test_direct_mutation_on_attached_network_warns(op):
    network = build_figure1_network()
    TeamFormationEngine(network)
    with pytest.warns(UserWarning, match="bypasses the engine's write lock"):
        MUTATIONS[op](network)
    # The warning names the offending method so the fix is obvious.
    with pytest.warns(UserWarning, match=rf"ExpertNetwork\.{op}\(\)"):
        MUTATIONS[op](build_and_attach())


def build_and_attach():
    network = build_figure1_network()
    TeamFormationEngine(network)
    return network


def test_mutation_inside_engine_mutate_is_sanctioned():
    network = build_figure1_network()
    engine = TeamFormationEngine(network)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        with engine.mutate() as net:
            net.update_h_index("liu", 10)
            net.add_collaboration("liu", "golshan", weight=2.0)
    assert network.version == 2


def test_engine_write_paths_are_sanctioned():
    # apply_updates / refresh_scales hold the write lock themselves and
    # must not trip the guard on their internal bookkeeping.
    network = build_figure1_network()
    engine = TeamFormationEngine(network)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        engine.apply_updates()
        engine.refresh_scales()


def test_strict_mode_raises_and_leaves_state_consistent(monkeypatch):
    monkeypatch.setenv("REPRO_STRICT", "1")
    network = build_figure1_network()
    engine = TeamFormationEngine(network)
    version = network.version
    weight = network.graph.weight("liu", "ren")
    with pytest.raises(RuntimeError, match="engine.mutate"):
        network.add_collaboration("liu", "ren", weight=9.0)
    # The raise happened before any view mutated: version unbumped,
    # graph untouched, so the engine's version-keyed caches stay right.
    assert network.version == version
    assert network.graph.weight("liu", "ren") == weight
    with engine.mutate() as net:  # the sanctioned path still works
        net.add_collaboration("liu", "ren", weight=9.0)
    assert network.graph.weight("liu", "ren") == 9.0


def test_guard_judges_the_calling_thread_not_global_lock_state():
    network = build_figure1_network()
    engine = TeamFormationEngine(network)
    seen: list[BaseException | None] = []
    entered = threading.Event()
    proceed = threading.Event()

    def writer():
        with engine.mutate() as net:
            net.update_h_index("liu", 10)
            entered.set()
            proceed.wait(timeout=30)

    def bystander():
        # Another thread mutating while the writer holds the lock is
        # still unsanctioned: holding it *somewhere* is not holding it.
        entered.wait(timeout=30)
        try:
            with pytest.warns(UserWarning):
                network.update_h_index("han", 5)
            seen.append(None)
        except BaseException as exc:  # noqa: BLE001 - reported to the assert
            seen.append(exc)
        finally:
            proceed.set()

    threads = [
        threading.Thread(target=writer),
        threading.Thread(target=bystander),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert seen == [None]


def test_warm_started_engine_attaches_the_guard(tmp_path):
    engine = TeamFormationEngine(build_figure1_network())
    engine.save_snapshot(tmp_path / "store")
    restored = TeamFormationEngine.from_snapshot(tmp_path / "store")
    with pytest.warns(UserWarning, match="bypasses the engine's write lock"):
        restored.network.update_h_index("liu", 10)


def test_set_mutation_guard_none_detaches():
    network = build_figure1_network()
    TeamFormationEngine(network)
    network.set_mutation_guard(None)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        network.update_h_index("liu", 10)
