"""Cold engine build vs snapshot warm start (standalone benchmark).

The persistence subsystem's bet is the paper's own: the 2-hop-cover
index is expensive to *build* and cheap to *use* — so a process that can
load a prebuilt index from disk reaches serving readiness far faster
than one that rebuilds it.  This benchmark measures exactly that:

* **cold**: construct a :class:`TeamFormationEngine` over an in-memory
  network and build its default serving indexes (the folded search graph
  at gamma and RarestFirst's raw graph);
* **save**: ``engine.save_snapshot()`` — reported with on-disk size and
  write throughput;
* **warm**: ``TeamFormationEngine.from_snapshot()`` — full CRC
  verification, network + journal restore, label decode; asserted to
  perform *zero* index builds;
* a differential check that cold and warm engines answer one greedy
  request identically.

The acceptance target for PR 4 is a >= 10x warm-start advantage at the
``small`` scale; pass ``--min-speedup 10`` to enforce it (exit 1).  The
CI smoke job runs this with ``--store`` pointing at a directory that is
then uploaded as a build artifact and re-loaded by the freshly built
package — guarding the snapshot format against accidental breaks::

    PYTHONPATH=src python benchmarks/bench_snapshot.py --scale small \
        --trials 3 --min-speedup 10
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

from _bench_json import write_json_report
from repro.api import TeamFormationEngine, TeamRequest
from repro.eval.workload import SCALE_CONFIGS, benchmark_network
from repro.graph.pll import pll_build_count

GAMMA = 0.6


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value!r}")
    return number


def build_cold(network) -> tuple[TeamFormationEngine, float]:
    """A serving-ready engine the expensive way; returns (engine, secs)."""
    t0 = time.perf_counter()
    engine = TeamFormationEngine(network)
    engine.search_oracle("sa-ca-cc", GAMMA)
    engine.raw_oracle()
    return engine, time.perf_counter() - t0


def probe_request(network) -> TeamRequest:
    """One answerable greedy request (most-supported skill)."""
    skill = max(
        network.skill_index.skills(),
        key=lambda s: (len(network.experts_with_skill(s)), s),
    )
    return TeamRequest(skills=(skill,), solver="greedy")


def canonical(response) -> str:
    payload = response.to_dict()
    payload["timing"] = None
    return json.dumps(payload, sort_keys=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALE_CONFIGS), default="small")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trials", type=_positive_int, default=3)
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="write the snapshot store here (kept; e.g. for a CI artifact); "
        "default: a temporary directory",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail (exit 1) when the median cold/warm speedup falls below this",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the measured numbers as a JSON report",
    )
    args = parser.parse_args(argv)

    network = benchmark_network(args.scale, seed=args.seed)
    print(
        f"scale={args.scale}: {len(network)} experts, {network.num_edges} "
        f"edges; {args.trials} trials"
    )
    request = probe_request(network)

    if args.store is None:
        tmp = tempfile.TemporaryDirectory()
        store_dir = Path(tmp.name) / "store"
    else:
        store_dir = Path(args.store)

    cold_times, save_times, load_times, size = [], [], [], 0
    for trial in range(args.trials):
        engine, t_cold = build_cold(network)
        cold_times.append(t_cold)
        cold_answer = canonical(engine.solve(request))

        t0 = time.perf_counter()
        path = engine.save_snapshot(store_dir, retain=1)
        t_save = time.perf_counter() - t0
        save_times.append(t_save)
        size = path.stat().st_size

        builds_before = pll_build_count()
        t0 = time.perf_counter()
        warm = TeamFormationEngine.from_snapshot(store_dir)
        t_load = time.perf_counter() - t0
        load_times.append(t_load)
        if pll_build_count() != builds_before:
            print("FAIL: warm start paid for an index build")
            return 1
        if canonical(warm.solve(request)) != cold_answer:
            print("FAIL: warm engine answered differently from the cold one")
            return 1
        mb = size / 1e6
        print(
            f"  trial {trial}: cold {t_cold * 1e3:9.2f}ms   "
            f"save {t_save * 1e3:8.2f}ms ({mb / t_save:6.1f} MB/s)   "
            f"load {t_load * 1e3:8.2f}ms ({mb / t_load:6.1f} MB/s)   "
            f"speedup {t_cold / t_load:8.1f}x"
        )

    cold, load = statistics.median(cold_times), statistics.median(load_times)
    save = statistics.median(save_times)
    speedup = cold / load if load > 0 else float("inf")
    print(f"  snapshot size     : {size} bytes ({size / 1e6:.2f} MB)")
    print(f"  median cold start : {cold * 1e3:9.2f}ms")
    print(f"  median save       : {save * 1e3:9.2f}ms")
    print(f"  median warm start : {load * 1e3:9.2f}ms")
    print(f"  median speedup    : {speedup:8.1f}x over {args.trials} trials")
    status = 0
    if args.min_speedup and speedup < args.min_speedup:
        print(f"FAIL: median speedup {speedup:.1f}x < required {args.min_speedup}x")
        status = 1
    if args.json:
        write_json_report(
            args.json,
            "snapshot",
            {
                "scale": args.scale,
                "trials": args.trials,
                "snapshot_bytes": size,
                "median_cold_seconds": cold,
                "median_save_seconds": save,
                "median_load_seconds": load,
                "median_speedup": speedup,
                "min_speedup": args.min_speedup,
                "gate_passed": status == 0,
            },
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
