"""Ablation — local-search refinement on top of Algorithm 1.

Measures how much of the greedy-to-Exact gap the prune/reroute/swap
local search recovers, and its cost.  Assertions: refinement never makes
a team worse, and the refined mean is at least as good as the greedy
mean across the project batch.
"""

from __future__ import annotations

from repro.core import GreedyTeamFinder, TeamEvaluator
from repro.core.refine import LocalSearchRefiner
from repro.eval.workload import sample_projects

from .conftest import write_result


def test_refinement_gap(benchmark, small_network, results_dir):
    projects = sample_projects(small_network, 4, 6, seed=83)
    finder = GreedyTeamFinder(
        small_network, objective="sa-ca-cc", oracle_kind="pll"
    )
    refiner = LocalSearchRefiner(small_network, objective="sa-ca-cc")
    evaluator = TeamEvaluator(small_network)
    greedy_teams = [finder.find_team(p) for p in projects]

    def run():
        return [
            refiner.refine(team, project)
            for team, project in zip(greedy_teams, projects)
        ]

    refined_teams = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Refinement ablation (SA-CA-CC, small network)"]
    greedy_total = refined_total = 0.0
    for project, greedy, refined in zip(projects, greedy_teams, refined_teams):
        g = evaluator.sa_ca_cc(greedy)
        r = evaluator.sa_ca_cc(refined)
        assert r <= g + 1e-9
        greedy_total += g
        refined_total += r
        lines.append(
            f"  {', '.join(project)}: greedy={g:.4f} refined={r:.4f}"
        )
    improvement = 100.0 * (greedy_total - refined_total) / greedy_total
    lines.append(
        f"mean improvement: {improvement:.2f}% "
        f"({greedy_total:.4f} -> {refined_total:.4f})"
    )
    write_result(results_dir, "refinement", "\n".join(lines))
    assert refined_total <= greedy_total + 1e-9
