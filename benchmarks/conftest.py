"""Shared benchmark fixtures.

Each ``bench_*`` module regenerates one table/figure of the paper
(DESIGN.md §4): it runs the corresponding experiment once inside
``benchmark.pedantic`` (so pytest-benchmark reports the wall-clock cost),
asserts the paper's qualitative *shape*, and writes the rendered table to
``results/`` so ``bench_output.txt`` plus ``results/*.txt`` together
document the reproduction (see EXPERIMENTS.md).

Network scales are chosen so the whole suite finishes in minutes on a
laptop while preserving each experiment's regime (the paper's 40K-node
graph is out of reach for the Exact baseline anyway; shapes, not absolute
numbers, are under test — see DESIGN.md §3).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval.workload import benchmark_corpus, benchmark_network

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def _scale(default: str) -> str:
    """Benchmark network scale, overridable via ``REPRO_BENCH_SCALE``.

    CI's smoke job sets ``REPRO_BENCH_SCALE=tiny`` so the runtime
    benchmark exercises the full pipeline in seconds; local runs keep the
    paper-regime defaults.
    """
    return os.environ.get("REPRO_BENCH_SCALE", default)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist one experiment's rendered table."""
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def small_network():
    return benchmark_network(_scale("small"), seed=0)


@pytest.fixture(scope="session")
def medium_network():
    return benchmark_network(_scale("medium"), seed=0)


@pytest.fixture(scope="session")
def small_corpus():
    return benchmark_corpus(_scale("small"), seed=0)
