"""Figure 3 — SA-CA-CC score of each ranking strategy vs lambda.

Two benchmarks:

* ``test_figure3_greedy_panels`` — all four panel sizes (4/6/8/10 skills)
  on the medium network with CC / CA-CC / SA-CA-CC / Random (Exact
  skipped, as the paper's Exact also cannot run at this scale).
* ``test_figure3_with_exact`` — 4- and 6-skill panels on the small
  network with bounded skill supports, where Exact terminates (mirroring
  the paper, whose Exact "was only able to handle 4 and 6 skills").

Shape assertions: SA-CA-CC achieves the lowest mean SA-CA-CC score among
the greedy strategies at every lambda, and Exact lower-bounds SA-CA-CC
wherever it terminates.
"""

from __future__ import annotations

from repro.eval.experiments import run_figure3

from .conftest import write_result

LAMBDAS = (0.2, 0.4, 0.6, 0.8)


def test_figure3_greedy_panels(benchmark, medium_network, results_dir):
    def run():
        return run_figure3(
            medium_network,
            num_skills_list=(4, 6, 8, 10),
            lambdas=LAMBDAS,
            projects_per_size=8,
            random_samples=2000,
            exact_max_skills=0,  # Exact is exercised in the small-scale bench
            seed=3,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(results_dir, "figure3_medium", result.format())

    for num_skills in (4, 6, 8, 10):
        sa_curve, cacc_curve = [], []
        for lam in LAMBDAS:
            sa = result.cell(num_skills, lam, "sa-ca-cc").mean_score
            cc = result.cell(num_skills, lam, "cc").mean_score
            cacc = result.cell(num_skills, lam, "ca-cc").mean_score
            assert sa is not None and cc is not None and cacc is not None
            # The paper's claim: SA-CA-CC scores below CC everywhere.
            assert sa <= cc + 1e-9, (num_skills, lam)
            # Against CA-CC the two heuristics nearly coincide at small
            # lambda (SA barely matters); require the win where lambda
            # gives SA real weight, and on the lambda-averaged curve.
            if lam >= 0.5:
                assert sa <= cacc + 1e-9, (num_skills, lam)
            sa_curve.append(sa)
            cacc_curve.append(cacc)
        # lambda-averaged: SA-CA-CC at least matches CA-CC (1% tolerance
        # absorbs heuristic ties on the low-lambda end)
        assert sum(sa_curve) <= 1.01 * sum(cacc_curve), num_skills
    # scores grow with the number of skills (more holders to pay for)
    mean_4 = result.cell(4, 0.6, "sa-ca-cc").mean_score
    mean_10 = result.cell(10, 0.6, "sa-ca-cc").mean_score
    assert mean_10 > mean_4


def test_figure3_with_exact(benchmark, small_network, results_dir):
    def run():
        return run_figure3(
            small_network,
            num_skills_list=(4, 6),
            lambdas=LAMBDAS,
            projects_per_size=3,
            random_samples=2000,
            exact_max_skills=6,
            exact_time_budget=25.0,
            exact_max_assignments=100_000,
            max_support=5,
            seed=5,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(results_dir, "figure3_small_exact", result.format())

    exact_seen = 0
    for num_skills in (4, 6):
        for lam in LAMBDAS:
            exact = result.cell(num_skills, lam, "exact")
            sa = result.cell(num_skills, lam, "sa-ca-cc").mean_score
            if exact.mean_score is None:
                continue  # intractable on every project, like the paper's 8/10
            exact_seen += 1
            sa_cell = result.cell(num_skills, lam, "sa-ca-cc")
            if exact.num_projects == sa_cell.num_projects:
                # means over identical project sets are comparable
                assert exact.mean_score <= sa + 1e-9, (num_skills, lam)
    assert exact_seen > 0, "Exact should terminate on at least one panel"
