"""Scalability study — query cost and index cost vs network size.

Not a single paper figure, but the substrate behind the paper's "around
a few hundred milliseconds on a 40K-node graph" claim: how do index
construction and per-query latency grow with the expert network?  Run on
the three bundled scales (tiny/small/medium).
"""

from __future__ import annotations

import pytest

from repro.core import GreedyTeamFinder
from repro.eval.workload import benchmark_network, sample_projects
from repro.graph import PrunedLandmarkLabeling

SCALES = ("tiny", "small", "medium")


@pytest.mark.parametrize("scale", SCALES)
def test_index_build_scaling(benchmark, scale):
    network = benchmark_network(scale, seed=0)
    index = benchmark.pedantic(
        PrunedLandmarkLabeling, args=(network.graph,), rounds=1, iterations=1
    )
    assert index.average_label_size >= 1.0


@pytest.mark.parametrize("scale", SCALES)
def test_query_scaling(benchmark, scale):
    network = benchmark_network(scale, seed=0)
    finder = GreedyTeamFinder(network, objective="sa-ca-cc", oracle_kind="pll")
    projects = sample_projects(network, 4, 3, seed=53)
    state = {"i": 0}

    def one_query():
        project = projects[state["i"] % len(projects)]
        state["i"] += 1
        return finder.find_team(project)

    team = benchmark.pedantic(one_query, rounds=3, iterations=1)
    assert team is not None
