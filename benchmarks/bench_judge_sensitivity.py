"""Substitution audit — does Figure 4's conclusion depend on the judge model?

Sweeps the simulated judges' authority weight (DESIGN.md §3.2) and
asserts the honest pattern: authority-aware methods pull ahead exactly
when judges value authority, with a margin that grows with the weight.
This certifies that Figure 4's reproduced ordering is a property of the
*teams*, not an artifact of one judge parameterization.
"""

from __future__ import annotations

from repro.eval.experiments import run_judge_sensitivity

from .conftest import write_result

WEIGHTS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def test_judge_sensitivity(benchmark, small_network, results_dir):
    def run():
        return run_judge_sensitivity(
            small_network,
            weights=WEIGHTS,
            num_skills=4,
            num_projects=3,
            seed=19,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(results_dir, "judge_sensitivity", result.format())

    assert result.margin(1.0) > 0.0
    assert result.margin(1.0) > result.margin(0.0)
    # the margin trend over the sweep is upward overall
    margins = [result.margin(w) for w in WEIGHTS]
    first_half = sum(margins[: len(margins) // 2])
    second_half = sum(margins[len(margins) // 2 :])
    assert second_half > first_half
