"""Figure 6 — qualitative best-team comparison for one 4-skill project.

Shape assertions: the CC team's average authority (team h-index and
publication count) does not exceed the authority-aware teams'; CA-CC and
SA-CA-CC route through higher-h-index connectors when they use
connectors at all.
"""

from __future__ import annotations

from repro.eval.experiments import run_figure6

from .conftest import write_result


def test_figure6_team_reports(benchmark, small_network, results_dir):
    def run():
        return run_figure6(small_network, gamma=0.6, lam=0.6, seed=17)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(results_dir, "figure6", result.format())

    cc = result.report("cc").stats
    cacc = result.report("ca-cc").stats
    sacacc = result.report("sa-ca-cc").stats

    # Figure 6's headline: the CC team has the lowest authority.
    assert cc.team_h_index <= cacc.team_h_index + 1e-9
    assert cc.team_h_index <= sacacc.team_h_index + 1e-9
    assert cc.avg_num_publications <= max(
        cacc.avg_num_publications, sacacc.avg_num_publications
    ) + 1e-9

    # Every report covers the whole project.
    for report in result.reports:
        covered = {s for m in report.members for s in m.assigned_skills}
        assert covered == set(result.project), report.method
