"""Engine serving-throughput benchmark (standalone).

Measures queries/sec for a gamma-homogeneous request batch (a lambda
sweep over random projects — the paper's Figure 3 access pattern) served
two ways:

* **engine** — one :class:`repro.api.TeamFormationEngine` answering the
  whole batch via ``solve_many``, so every request after the first hits
  the keyed oracle cache;
* **naive** — a fresh :class:`GreedyTeamFinder` per request, each
  rebuilding its own 2-hop-cover index, which is what per-query solver
  construction costs.

Teams are asserted identical between the two paths, and the engine's
PLL-build count is asserted to be exactly one per distinct gamma.

Run it directly (the CI smoke job runs the tiny scale)::

    PYTHONPATH=src python benchmarks/bench_engine.py --scale small --requests 12
"""

from __future__ import annotations

import argparse
import sys
import time

from _bench_json import write_json_report
from repro.api import TeamFormationEngine, TeamRequest
from repro.core.greedy import GreedyTeamFinder
from repro.eval.workload import SCALE_CONFIGS, benchmark_network, sample_projects
from repro.graph.pll import pll_build_count

LAMBDAS = (0.2, 0.4, 0.6, 0.8)


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value!r}")
    return number


def build_requests(network, count: int, num_skills: int, seed: int) -> list[TeamRequest]:
    """A lambda sweep across random projects: ``count`` requests total."""
    projects = sample_projects(
        network, num_skills, (count + len(LAMBDAS) - 1) // len(LAMBDAS), seed=seed
    )
    requests = [
        TeamRequest(skills=tuple(project), solver="greedy", lam=lam)
        for project in projects
        for lam in LAMBDAS
    ]
    return requests[:count]


def bench_engine(network, requests: list[TeamRequest]) -> tuple[float, list, int]:
    """(seconds, teams, pll builds) serving the batch through one engine."""
    engine = TeamFormationEngine(network)
    before = pll_build_count()
    t0 = time.perf_counter()
    responses = engine.solve_many(requests)
    elapsed = time.perf_counter() - t0
    return elapsed, [r.team for r in responses], pll_build_count() - before


def bench_naive(network, requests: list[TeamRequest]) -> tuple[float, list, int]:
    """(seconds, teams, pll builds) constructing one solver per request."""
    from repro.api import TeamPayload

    before = pll_build_count()
    t0 = time.perf_counter()
    teams = []
    for request in requests:
        finder = GreedyTeamFinder(
            network,
            objective=request.objective,
            gamma=request.gamma,
            lam=request.lam,
            oracle_kind=request.oracle_kind,
        )
        team = finder.find_team(list(request.skills))
        teams.append(TeamPayload.from_team(team) if team is not None else None)
    elapsed = time.perf_counter() - t0
    return elapsed, teams, pll_build_count() - before


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=sorted(SCALE_CONFIGS), default="small"
    )
    parser.add_argument("--requests", type=_positive_int, default=12)
    parser.add_argument("--num-skills", type=_positive_int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the measured numbers as a JSON report",
    )
    args = parser.parse_args(argv)

    network = benchmark_network(args.scale, seed=0)
    requests = build_requests(network, args.requests, args.num_skills, args.seed)
    print(
        f"scale={args.scale}: {len(network)} experts, "
        f"{network.num_edges} edges; {len(requests)} requests "
        f"({len(LAMBDAS)}-lambda sweep, gamma fixed)"
    )

    naive_s, naive_teams, naive_builds = bench_naive(network, requests)
    engine_s, engine_teams, engine_builds = bench_engine(network, requests)

    if engine_teams != naive_teams:
        print("FAIL: engine and naive paths returned different teams")
        return 1
    if engine_builds != 1:
        print(f"FAIL: engine paid {engine_builds} PLL builds, expected 1")
        return 1
    if naive_builds != len(requests):
        print(
            f"FAIL: naive path paid {naive_builds} PLL builds, "
            f"expected {len(requests)}"
        )
        return 1

    engine_qps = len(requests) / engine_s
    naive_qps = len(requests) / naive_s
    print(
        f"  engine solve_many : {engine_s:8.3f}s  {engine_qps:8.1f} q/s  "
        f"({engine_builds} index build)"
    )
    print(
        f"  naive per-query   : {naive_s:8.3f}s  {naive_qps:8.1f} q/s  "
        f"({naive_builds} index builds)"
    )
    print(f"  speedup           : {naive_s / engine_s:8.2f}x  (identical teams)")
    if args.json:
        write_json_report(
            args.json,
            "engine",
            {
                "scale": args.scale,
                "requests": len(requests),
                "engine_seconds": engine_s,
                "naive_seconds": naive_s,
                "engine_qps": engine_qps,
                "naive_qps": naive_qps,
                "speedup": naive_s / engine_s,
            },
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
