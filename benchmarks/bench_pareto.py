"""Extension E8 — Pareto-optimal team discovery (the paper's future work).

Measures frontier mining over a (gamma, lambda) grid and asserts the
frontier's soundness: non-empty, mutually non-dominated, and containing
a team at least as good as each single-objective greedy optimum in its
own dimension.
"""

from __future__ import annotations

import pytest

from repro.core import (
    GreedyTeamFinder,
    ParetoTeamDiscovery,
    TeamEvaluator,
    dominates,
)
from repro.eval.workload import sample_projects


@pytest.fixture(scope="module")
def project(small_network):
    return sample_projects(small_network, 4, 1, seed=47)[0]


def test_pareto_frontier_mining(benchmark, small_network, project, results_dir):
    discovery = ParetoTeamDiscovery(
        small_network, grid=(0.0, 0.25, 0.5, 0.75, 1.0), k_per_cell=3
    )
    frontier = benchmark.pedantic(
        lambda: discovery.discover(project), rounds=1, iterations=1
    )
    assert frontier

    vectors = [p.vector for p in frontier]
    for i, vec in enumerate(vectors):
        assert not any(
            dominates(other, vec) for j, other in enumerate(vectors) if j != i
        )

    lines = ["Pareto frontier (CC, CA, SA) for project " + ", ".join(project)]
    for p in frontier:
        lines.append(
            f"  cc={p.cc:.3f}  ca={p.ca:.3f}  sa={p.sa:.3f}  "
            f"members={sorted(p.team.members)}"
        )
    (results_dir / "pareto.txt").write_text("\n".join(lines) + "\n")

    # frontier covers the CC-optimal corner
    evaluator = TeamEvaluator(small_network, scales=discovery.scales)
    cc_team = GreedyTeamFinder(
        small_network, objective="cc", oracle_kind="dijkstra",
        scales=discovery.scales,
    ).find_team(project)
    assert min(p.cc for p in frontier) <= evaluator.cc(cc_team) + 1e-9
