"""Section 4.1 — per-query latency of CC / CA-CC / SA-CA-CC vs #skills.

This module uses pytest-benchmark the conventional way: each
(method, num_skills) pair is a parametrized benchmark of a single
``find_team`` call, so the emitted comparison table *is* the paper's
runtime discussion.  Index construction (the 2-hop cover) is excluded —
it is one-off preprocessing, performed in the session fixture.

Shape assertions: the three methods stay within a small constant factor
of each other ("similar runtime since they use the same fundamental
algorithm and indexing methods").
"""

from __future__ import annotations

import pytest

from repro.eval.experiments.common import MethodSuite
from repro.eval.workload import sample_projects

METHODS = ("cc", "ca-cc", "sa-ca-cc")
SIZES = (4, 6, 8, 10)

_suite_cache: dict[int, MethodSuite] = {}


@pytest.fixture(scope="module")
def suite(medium_network):
    key = id(medium_network)
    if key not in _suite_cache:
        s = MethodSuite(medium_network, gamma=0.6, lam=0.6, oracle_kind="pll")
        _ = (s.cc, s.ca_cc, s.sa_ca_cc())  # build all indexes up front
        _suite_cache[key] = s
    return _suite_cache[key]


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("num_skills", SIZES)
def test_query_latency(benchmark, suite, medium_network, method, num_skills):
    projects = sample_projects(
        medium_network, num_skills, 3, seed=29 + num_skills
    )
    finder = suite.finder(method)
    state = {"i": 0}

    def one_query():
        project = projects[state["i"] % len(projects)]
        state["i"] += 1
        return finder.find_team(project)

    team = benchmark.pedantic(one_query, rounds=3, iterations=1, warmup_rounds=1)
    assert team is not None
