"""Concurrent serving vs the sequential loop (standalone benchmark).

Three ways to answer the same warm request batch, all from one PR-4
snapshot so no path pays an index build:

* **sequential** — one warm-started engine, plain ``solve_many`` (the
  pre-PR-5 serving loop);
* **threaded** — the same shared engine with ``solve_many(parallel=N)``
  (exercises the engine's thread-safety; the GIL bounds its speedup, so
  it is reported, not gated);
* **pool** — an :class:`EngineReplicaPool` of N worker processes, each
  warm-started from the same snapshot file, with warm request groups
  split across every replica.

A fourth pass drives the same batch through the **persistent server**
(:class:`repro.serving.TeamServer` on a Unix socket, the PR-7 front
end) and measures *per-request latency* — p50/p95/p99 over sequential
round trips — since a long-lived service is judged by its tail, not
its mean.  Server responses must be byte-identical to the sequential
loop too.  The latency gate is **p99 < 50x p50** at the small scale:
a warm engine answering homogeneous requests has no excuse for a
pathological tail; like the throughput gate it auto-relaxes to
identity-only below 4 usable cores (a preempted single-core runner
makes tail ratios meaningless).

Responses must be **byte-identical** across all paths (timing nulled —
wall-clock can never reproduce), and the warm batch must report zero
oracle builds end to end.  The PR-5 acceptance gate is a >= 3x pool
speedup over sequential at the small scale given >= 4 usable cores; on
hosts with fewer cores the throughput gate auto-relaxes to the
identity-only check (exactly as the PR-1 build bench does), which
still runs and must pass::

    PYTHONPATH=src python benchmarks/bench_serving.py --scale small \
        --requests 24 --min-speedup 3 --max-p99-ratio 50
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

from _bench_json import write_json_report
from repro import obs
from repro.api import TeamFormationEngine, TeamRequest
from repro.eval.workload import SCALE_CONFIGS, benchmark_network, sample_projects
from repro.obs import LatencyReservoir
from repro.serving.pool import EngineReplicaPool, usable_cores
from repro.serving.server import BackgroundServer, TeamServer, store_backend_loader
from repro.serving.server_conn import ServingClient

GAMMA = 0.6
LAMBDAS = (0.2, 0.4, 0.6, 0.8)


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value!r}")
    return number


def build_requests(network, count: int, num_skills: int, seed: int) -> list[TeamRequest]:
    """A lambda sweep at the snapshot's gamma: every request warm."""
    projects = sample_projects(
        network, num_skills, (count + len(LAMBDAS) - 1) // len(LAMBDAS), seed=seed
    )
    requests = [
        TeamRequest(skills=tuple(project), solver="greedy", gamma=GAMMA, lam=lam)
        for project in projects
        for lam in LAMBDAS
    ]
    return requests[:count]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALE_CONFIGS), default="small")
    parser.add_argument("--requests", type=_positive_int, default=24)
    parser.add_argument("--num-skills", type=_positive_int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--replicas", type=_positive_int, default=None,
        help="replica worker processes (default: usable cores, max 4)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="fail (exit 1) when the pool speedup falls below this — "
        "auto-relaxed to the identity-only check under 4 usable cores",
    )
    parser.add_argument(
        "--max-p99-ratio", type=float, default=0.0,
        help="fail (exit 1) when server p99 latency exceeds this multiple "
        "of p50 — auto-relaxed under 4 usable cores",
    )
    parser.add_argument(
        "--max-trace-overhead", type=float, default=0.0,
        help="fail (exit 1) when the traced sequential pass is slower "
        "than the untraced one by more than this ratio (e.g. 1.05) — "
        "auto-relaxed under 4 usable cores",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the measured numbers as a JSON report",
    )
    args = parser.parse_args(argv)

    cores = usable_cores()
    replicas = args.replicas or max(1, min(4, cores))
    network = benchmark_network(args.scale, seed=0)
    requests = build_requests(network, args.requests, args.num_skills, args.seed)
    print(
        f"scale={args.scale}: {len(network)} experts, {network.num_edges} "
        f"edges; {len(requests)} requests ({len(LAMBDAS)}-lambda sweep at "
        f"gamma={GAMMA}); usable cores: {cores}; replicas: {replicas}"
    )

    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "store"
        warm = TeamFormationEngine(network)
        warm.search_oracle("sa-ca-cc", GAMMA)
        warm.raw_oracle()
        warm.save_snapshot(store)

        sequential_engine = TeamFormationEngine.from_snapshot(store)
        t0 = time.perf_counter()
        sequential = sequential_engine.solve_many(requests)
        sequential_s = time.perf_counter() - t0

        # Tracing-overhead pass (PR 9): the same warm batch on the same
        # engine, untraced vs span-traced.  The first sequential pass
        # above doubles as the warm-up, so both measured passes here hit
        # fully warm caches; the per-layer counter deltas around the
        # traced pass become the per-stage breakdown in the JSON report.
        # Best-of-3 on both sides: a single warm pass is only ~100ms at
        # the small scale, where one scheduler preemption would swamp a
        # few-percent overhead signal.
        untraced_s = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            untraced = sequential_engine.solve_many(requests)
            untraced_s = min(untraced_s, time.perf_counter() - t0)
        tracer = obs.get_tracer()
        counters_before = dict(obs.global_registry().snapshot()["counters"])
        tracer.enable()
        try:
            traced_s = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                traced = sequential_engine.solve_many(requests)
                traced_s = min(traced_s, time.perf_counter() - t0)
        finally:
            tracer.disable()
            tracer.clear()
        counters_after = obs.global_registry().snapshot()["counters"]
        stages = {
            name: round(value - counters_before.get(name, 0), 6)
            for name, value in sorted(counters_after.items())
            if value != counters_before.get(name, 0)
        }
        trace_overhead = traced_s / untraced_s if untraced_s else 1.0

        threaded_engine = TeamFormationEngine.from_snapshot(store)
        t0 = time.perf_counter()
        threaded = threaded_engine.solve_many(requests, parallel=replicas)
        threaded_s = time.perf_counter() - t0

        with EngineReplicaPool(store, replicas=replicas) as pool:
            t0 = time.perf_counter()
            pooled = pool.solve_many(requests)
            pool_s = time.perf_counter() - t0
            pool_mode = f"{pool.replicas} worker process(es)"

        # Persistent-server pass: same requests over a Unix socket,
        # per-request round-trip latency measured client-side (what a
        # caller actually experiences: framing + queueing + solve).
        sock = str(Path(tmp) / "bench.sock")
        server = TeamServer(store_backend_loader(store), max_pending=256, workers=2)
        reservoir = LatencyReservoir(capacity=len(requests) + 1)
        with BackgroundServer(server, unix_path=sock):
            with ServingClient.connect_unix(sock) as client:
                served: list[str] = []
                t0 = time.perf_counter()
                for request in requests:
                    sent = time.perf_counter()
                    client.send_line(request.to_json())
                    served.append(client.recv_line())
                    reservoir.observe(time.perf_counter() - sent)
                server_s = time.perf_counter() - t0
        latency = reservoir.summary()

    expected = [r.canonical_json() for r in sequential]
    from repro.api.messages import TeamResponse

    if [TeamResponse.from_json(r).canonical_json() for r in served] != expected:
        print("FAIL: persistent-server answers differ from sequential")
        return 1
    if [r.canonical_json() for r in untraced] != expected:
        print("FAIL: repeat sequential answers differ from the first pass")
        return 1
    if [r.canonical_json() for r in traced] != expected:
        print("FAIL: traced answers are not byte-identical to untraced")
        return 1
    if not any(r.timing and r.timing.trace for r in traced):
        print("FAIL: traced pass attached no span trees")
        return 1
    if [r.canonical_json() for r in threaded] != expected:
        print("FAIL: threaded solve_many answers differ from sequential")
        return 1
    if [r.canonical_json() for r in pooled] != expected:
        print("FAIL: replica-pool answers differ from sequential")
        return 1
    builds = sum(
        r.timing.oracle_builds
        for path in (sequential, threaded, pooled)
        for r in path
        if r.timing
    )
    if builds != 0:
        print(f"FAIL: warm batches paid {builds} oracle builds, expected 0")
        return 1

    n = len(requests)
    print(
        f"  sequential loop   : {sequential_s:8.3f}s  {n / sequential_s:8.1f} q/s"
    )
    print(
        f"  threaded (N={replicas})    : {threaded_s:8.3f}s  "
        f"{n / threaded_s:8.1f} q/s  ({threaded_s and sequential_s / threaded_s:.2f}x)"
    )
    print(
        f"  replica pool      : {pool_s:8.3f}s  {n / pool_s:8.1f} q/s  "
        f"({sequential_s / pool_s:.2f}x, {pool_mode})"
    )
    print(
        f"  server (socket)   : {server_s:8.3f}s  {n / server_s:8.1f} q/s  "
        f"p50={latency['p50_ms']:.1f}ms p95={latency['p95_ms']:.1f}ms "
        f"p99={latency['p99_ms']:.1f}ms"
    )
    print(
        f"  tracing overhead  : {untraced_s:8.3f}s untraced vs "
        f"{traced_s:8.3f}s traced ({trace_overhead:.3f}x)"
    )
    print(
        "  identity          : byte-identical responses (traced included), "
        "0 oracle builds"
    )

    status = 0
    if args.min_speedup > 0:
        if cores < 4:
            print(
                f"  gate              : relaxed to identity-only "
                f"({cores} usable core(s) < 4; throughput target "
                f"{args.min_speedup:.1f}x needs real parallelism)"
            )
        elif sequential_s / pool_s < args.min_speedup:
            print(
                f"FAIL: pool speedup {sequential_s / pool_s:.2f}x below "
                f"required {args.min_speedup:.2f}x"
            )
            status = 1
        else:
            print(
                f"  gate              : pool speedup >= "
                f"{args.min_speedup:.1f}x satisfied"
            )
    if args.max_p99_ratio > 0:
        p99_ratio = (
            latency["p99_ms"] / latency["p50_ms"] if latency["p50_ms"] else 0.0
        )
        if cores < 4:
            print(
                f"  latency gate      : relaxed to identity-only "
                f"({cores} usable core(s) < 4; tail ratios are noise "
                "on a preempted runner)"
            )
        elif p99_ratio >= args.max_p99_ratio:
            print(
                f"FAIL: server p99/p50 ratio {p99_ratio:.1f}x at or above "
                f"the {args.max_p99_ratio:.1f}x bound "
                f"(p50={latency['p50_ms']:.1f}ms p99={latency['p99_ms']:.1f}ms)"
            )
            status = 1
        else:
            print(
                f"  latency gate      : p99/p50 = {p99_ratio:.1f}x < "
                f"{args.max_p99_ratio:.1f}x satisfied"
            )
    if args.max_trace_overhead > 0:
        if cores < 4:
            print(
                f"  trace gate        : relaxed to identity-only "
                f"({cores} usable core(s) < 4; wall-clock ratios are "
                "noise on a preempted runner)"
            )
        elif trace_overhead >= args.max_trace_overhead:
            print(
                f"FAIL: tracing overhead {trace_overhead:.3f}x at or above "
                f"the {args.max_trace_overhead:.2f}x bound"
            )
            status = 1
        else:
            print(
                f"  trace gate        : overhead {trace_overhead:.3f}x < "
                f"{args.max_trace_overhead:.2f}x satisfied"
            )
    if args.json:
        write_json_report(
            args.json,
            "serving",
            {
                "scale": args.scale,
                "requests": n,
                "replicas": replicas,
                "sequential_seconds": sequential_s,
                "threaded_seconds": threaded_s,
                "pool_seconds": pool_s,
                "pool_speedup": sequential_s / pool_s,
                "min_speedup": args.min_speedup,
                "server_seconds": server_s,
                "latency_p50_ms": latency["p50_ms"],
                "latency_p95_ms": latency["p95_ms"],
                "latency_p99_ms": latency["p99_ms"],
                "latency_mean_ms": latency["mean_ms"],
                "latency_max_ms": latency["max_ms"],
                "max_p99_ratio": args.max_p99_ratio,
                "untraced_seconds": untraced_s,
                "traced_seconds": traced_s,
                "trace_passes": 3,
                "trace_overhead": trace_overhead,
                "max_trace_overhead": args.max_trace_overhead,
                "stages": stages,
                "gate_passed": status == 0,
            },
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
