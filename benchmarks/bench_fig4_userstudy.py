"""Figure 4 — top-5 precision of CC / CA-CC / SA-CA-CC (simulated judges).

Shape assertions (the paper's Figure 4): both authority-aware strategies
beat CC at every project size; the judge panel has 6 members and scores
in [0, 1].
"""

from __future__ import annotations

from repro.eval.experiments import run_figure4

from .conftest import write_result

SIZES = (4, 6, 8, 10)


def test_figure4_precision(benchmark, small_network, results_dir):
    def run():
        return run_figure4(
            small_network,
            num_skills_list=SIZES,
            gamma=0.6,
            lam=0.6,
            k=5,
            num_judges=6,
            seed=11,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(results_dir, "figure4", result.format())

    wins = 0
    for t in SIZES:
        cc = result.precision(t, "cc")
        cacc = result.precision(t, "ca-cc")
        sacacc = result.precision(t, "sa-ca-cc")
        for p in (cc, cacc, sacacc):
            assert 0.0 <= p <= 1.0
        wins += (cacc >= cc) + (sacacc >= cc)
    # Authority-aware methods beat CC in (nearly) every panel; tolerate
    # one noisy inversion out of 8 comparisons.
    assert wins >= 7, f"authority-aware methods won only {wins}/8 comparisons"
