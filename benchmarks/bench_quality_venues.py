"""Section 4.3 — venue quality of SA-CA-CC teams vs CC teams.

The paper reports SA-CA-CC teams publishing in better-rated venues than
CC teams in 78% of cases.  Shape assertion: the simulated success rate is
decisively above the 50% coin-flip line (exact percentage depends on the
publication model's selectivity; see EXPERIMENTS.md for measured values).
"""

from __future__ import annotations

from repro.eval.experiments import run_quality

from .conftest import write_result


def test_quality_success_rate(benchmark, small_network, small_corpus, results_dir):
    ratings = [v.rating for v in small_corpus.venues.values()]

    def run():
        return run_quality(
            small_network,
            ratings,
            num_projects=5,
            num_skills=4,
            gamma=0.6,
            lam=0.6,
            k=5,
            trials_per_pair=20,
            seed=23,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(results_dir, "quality_venues", result.format())

    assert len(result.comparisons) == 25  # 5 projects x top-5 pairs
    assert result.success_rate > 0.5, (
        f"SA-CA-CC won only {100 * result.success_rate:.1f}% of venue "
        "comparisons (paper: 78%)"
    )
