"""Extensions beyond the paper's tables: replacement, diversity, portfolio.

Each benchmark exercises one production-oriented capability built on the
paper's core, asserting its contract:

* replacement proposals never break Definition 1 and rank by objective;
* diverse top-k honors the pairwise overlap bound while keeping the
  optimum;
* portfolio staffing returns member-disjoint teams.
"""

from __future__ import annotations

import pytest

from repro.core import GreedyTeamFinder, ReplacementRecommender, diverse_top_k
from repro.core.multi_project import MultiProjectStaffing
from repro.eval.workload import sample_projects
from repro.expertise import jaccard_similarity


@pytest.fixture(scope="module")
def finder(small_network):
    return GreedyTeamFinder(small_network, objective="sa-ca-cc", oracle_kind="pll")


def test_replacement_recommendation(benchmark, small_network, finder):
    project = sample_projects(small_network, 4, 1, seed=61)[0]
    team = finder.find_team(project)
    departing = sorted(team.skill_holders)[0]
    recommender = ReplacementRecommender(small_network)

    proposals = benchmark.pedantic(
        lambda: recommender.recommend(team, departing, k=3),
        rounds=2,
        iterations=1,
    )
    assert proposals
    scores = [p.score for p in proposals]
    assert scores == sorted(scores)
    for p in proposals:
        p.team.validate(set(project), small_network)


def test_diverse_top_k(benchmark, small_network, finder):
    project = sample_projects(small_network, 4, 1, seed=67)[0]

    teams = benchmark.pedantic(
        lambda: diverse_top_k(finder, project, k=5, max_overlap=0.4),
        rounds=2,
        iterations=1,
    )
    assert teams
    plain_best = finder.find_team(project)
    assert teams[0].key() == plain_best.key()
    for i, a in enumerate(teams):
        for b in teams[i + 1 :]:
            assert jaccard_similarity(a.members, b.members) <= 0.4 + 1e-9


def test_portfolio_staffing(benchmark, small_network):
    projects = sample_projects(small_network, 3, 4, seed=71)
    staffing = MultiProjectStaffing(small_network, order="cheapest-first")

    result = benchmark.pedantic(
        lambda: staffing.staff(projects), rounds=1, iterations=1
    )
    assert result.num_staffed >= 2
    seen: set[str] = set()
    for assignment in result.assignments:
        if assignment.team is None:
            continue
        assert not (assignment.team.members & seen)
        seen |= assignment.team.members
