"""Incremental PLL update vs full rebuild (standalone benchmark).

The dynamic-network subsystem's bet is that absorbing a single edge
insertion into an existing 2-hop cover (resumed pruned Dijkstras from
the affected endpoints' hubs) is far cheaper than rebuilding the index.
This benchmark measures exactly that on the synthetic-DBLP networks:

* build one base index per trial,
* time ``insert_edge`` for one random new collaboration (incremental),
* time a from-scratch ``PrunedLandmarkLabeling`` over the updated graph
  (rebuild),
* and verify on a random pair sample that the two indexes answer
  identical distances.

The acceptance target for PR 3 is a >= 5x incremental advantage on the
``small`` scale; pass ``--min-speedup 5`` to enforce it (exit 1).  The
CI smoke job runs the tiny scale with a deliberately loose ``2`` floor
(local margin is >20x, so only a broken incremental path trips it)::

    PYTHONPATH=src python benchmarks/bench_dynamic_updates.py --scale small \
        --trials 5 --min-speedup 5
"""

from __future__ import annotations

import argparse
import random
import statistics
import sys
import time

from _bench_json import write_json_report
from repro.eval.workload import SCALE_CONFIGS, benchmark_network
from repro.graph.pll import PrunedLandmarkLabeling


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value!r}")
    return number


def sample_new_edge(graph, rng: random.Random) -> tuple:
    """A uniformly random node pair not yet collaborating."""
    nodes = list(graph.nodes())
    while True:
        u, v = rng.sample(nodes, 2)
        if not graph.has_edge(u, v):
            return u, v


def verify_identical(
    incremental: PrunedLandmarkLabeling,
    rebuilt: PrunedLandmarkLabeling,
    rng: random.Random,
    pairs: int,
) -> tuple[int, float]:
    """(mismatches beyond fp noise, max relative difference) on a sample."""
    nodes = list(incremental._graph.nodes())
    mismatches, max_rel = 0, 0.0
    for _ in range(pairs):
        u, v = rng.choice(nodes), rng.choice(nodes)
        a, b = incremental.distance(u, v), rebuilt.distance(u, v)
        if a == b:
            continue
        rel = abs(a - b) / max(abs(a), abs(b), 1e-30)
        max_rel = max(max_rel, rel)
        if rel > 1e-9:
            mismatches += 1
    return mismatches, max_rel


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALE_CONFIGS), default="small")
    parser.add_argument("--trials", type=_positive_int, default=5)
    parser.add_argument("--sample-pairs", type=_positive_int, default=2000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail (exit 1) when the median speedup falls below this",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the measured numbers as a JSON report",
    )
    args = parser.parse_args(argv)

    rng = random.Random(args.seed)
    network = benchmark_network(args.scale, seed=0)
    graph = network.graph
    print(
        f"scale={args.scale}: {graph.num_nodes} nodes, {graph.num_edges} edges; "
        f"{args.trials} single-edge insertions"
    )

    speedups = []
    for trial in range(args.trials):
        u, v = sample_new_edge(graph, rng)
        weight = rng.uniform(0.05, 1.0)
        base = graph.copy()
        incremental = PrunedLandmarkLabeling(base)

        t0 = time.perf_counter()
        incremental.insert_edge(u, v, weight)
        t_inc = time.perf_counter() - t0

        t0 = time.perf_counter()
        rebuilt = PrunedLandmarkLabeling(base)  # base now holds the new edge
        t_full = time.perf_counter() - t0

        mismatches, max_rel = verify_identical(
            incremental, rebuilt, rng, args.sample_pairs
        )
        if mismatches:
            print(
                f"FAIL: trial {trial}: {mismatches}/{args.sample_pairs} sampled "
                f"distances diverge (max rel diff {max_rel:.2e})"
            )
            return 1
        speedup = t_full / t_inc if t_inc > 0 else float("inf")
        speedups.append(speedup)
        identical = "identical" if max_rel == 0.0 else f"rel diff<={max_rel:.1e}"
        print(
            f"  trial {trial}: incremental {t_inc * 1e3:9.2f}ms   "
            f"rebuild {t_full * 1e3:9.2f}ms   speedup {speedup:8.1f}x   "
            f"({args.sample_pairs} pairs {identical})"
        )

    median = statistics.median(speedups)
    print(f"  median speedup    : {median:8.1f}x over {args.trials} trials")
    status = 0
    if args.min_speedup and median < args.min_speedup:
        print(f"FAIL: median speedup {median:.1f}x < required {args.min_speedup}x")
        status = 1
    if args.json:
        write_json_report(
            args.json,
            "dynamic_updates",
            {
                "scale": args.scale,
                "trials": args.trials,
                "speedups": speedups,
                "median_speedup": median,
                "min_speedup": args.min_speedup,
                "gate_passed": status == 0,
            },
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
