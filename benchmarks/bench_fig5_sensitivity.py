"""Figure 5 — sensitivity of team measures to lambda.

Shape assertions (Section 4.4): the average skill-holder h-index trends
*upward* as lambda grows (skill-holder authority gets more weight); the
measures "change slowly"; and perturbing lambda by less than 0.05 leaves
the best team unchanged.
"""

from __future__ import annotations

import random

from repro.eval.experiments import run_figure5
from repro.eval.experiments.figure5 import lambda_stability
from repro.eval.workload import sample_project

from .conftest import write_result

LAMBDAS = tuple(round(0.1 * i, 2) for i in range(1, 10))


def test_figure5_sensitivity(benchmark, small_network, results_dir):
    def run():
        return run_figure5(
            small_network,
            lambdas=LAMBDAS,
            gamma=0.6,
            num_skills=4,
            num_random_projects=5,
            k=5,
            seed=13,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(results_dir, "figure5", result.format())

    for mode in ("top5", "best"):
        holder = [v for _, v in result.series(mode, "avg_holder_h_index")]
        assert len(holder) == len(LAMBDAS)
        # upward trend: the high-lambda half averages at least the
        # low-lambda half (panel a of Figure 5)
        half = len(holder) // 2
        low, high = holder[:half], holder[half:]
        assert sum(high) / len(high) >= sum(low) / len(low) - 1e-9, mode
        # teams stay small — measures change slowly, no blow-ups
        sizes = [v for _, v in result.series(mode, "size")]
        assert max(sizes) <= 4 * min(sizes) + 4


def test_lambda_stability_below_half_step(benchmark, small_network):
    """Section 4.4: moving lambda by < 0.05 does not change the result."""
    projects = [
        sample_project(small_network, 4, random.Random(seed))
        for seed in range(4)
    ]

    def run():
        return [
            lambda_stability(small_network, project, lam=0.6, delta=0.02)
            for project in projects
        ]

    stable = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(stable), "a lambda shift below 0.05 changed some best team"
