"""Shared ``--json`` reporting for the standalone benchmarks.

Every standalone benchmark accepts ``--json PATH`` and writes one JSON
document describing the run — benchmark name, host facts, and its
measured numbers — so CI can merge the per-bench reports into a single
``BENCH_<run>.json`` artifact (see ``benchmarks/merge_results.py``).
That artifact is uploaded on every run, which is what turns the
benchmark gates from point-in-time pass/fail checks into a persisted
perf trajectory.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

__all__ = ["usable_cores", "write_json_report"]


def usable_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _json_safe(value):
    """Replace non-finite floats (JSON has no inf/nan) recursively."""
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return repr(value)
        return value
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return value


def write_json_report(path: str, bench: str, payload: dict) -> Path:
    """Write one benchmark report to ``path`` and return it.

    The report carries the benchmark name and host facts alongside the
    caller's metrics so merged trajectories stay interpretable without
    the CI logs that produced them.
    """
    doc = {
        "bench": bench,
        "python": platform.python_version(),
        "usable_cores": usable_cores(),
        **payload,
    }
    out = Path(path)
    if out.parent != Path("."):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(_json_safe(doc), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"  json report       : {out}")
    return out
