"""Ablation E9 — Algorithm 1 (CC mode) vs RarestFirst (Lappas et al. [3]).

The paper positions its root-iteration greedy as the CC workhorse; the
classic alternative anchors on the rarest skill.  This ablation measures
both and asserts Algorithm 1's communication cost is never worse on
average (it explores every root, a strict superset of RarestFirst's
anchor set when the anchor holds the rarest skill).
"""

from __future__ import annotations

import pytest

from repro.core import GreedyTeamFinder, RarestFirstSolver, TeamEvaluator
from repro.eval.workload import sample_projects


@pytest.fixture(scope="module")
def projects(small_network):
    return sample_projects(small_network, 4, 5, seed=43)


@pytest.fixture(scope="module")
def cc_finder(small_network):
    return GreedyTeamFinder(small_network, objective="cc", oracle_kind="pll")


@pytest.fixture(scope="module")
def rarest_solver(small_network):
    return RarestFirstSolver(small_network, aggregate="sum", oracle_kind="pll")


def test_algorithm1_cc(benchmark, cc_finder, projects):
    teams = benchmark.pedantic(
        lambda: [cc_finder.find_team(p) for p in projects],
        rounds=1,
        iterations=1,
    )
    assert all(t is not None for t in teams)


def test_rarest_first(benchmark, rarest_solver, projects):
    teams = benchmark.pedantic(
        lambda: [rarest_solver.find_team(p) for p in projects],
        rounds=1,
        iterations=1,
    )
    assert all(t is not None for t in teams)


def test_algorithm1_cost_not_worse(small_network, cc_finder, rarest_solver, projects):
    evaluator = TeamEvaluator(small_network)
    alg1 = sum(evaluator.cc(cc_finder.find_team(p)) for p in projects)
    rarest = sum(evaluator.cc(rarest_solver.find_team(p)) for p in projects)
    assert alg1 <= rarest + 1e-9
