"""Dataset characterization — the analogue of the paper's setup paragraph.

Verifies that the synthetic benchmark networks land in the regime the
paper's DBLP subgraph lives in (sparse, clustered, junior skill holders
with markedly lower authority than the senior connectors), and records
the numbers for EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.eval.experiments import run_dataset_stats
from repro.eval.workload import benchmark_network

from .conftest import write_result

SCALES = ("tiny", "small", "medium")


@pytest.mark.parametrize("scale", SCALES)
def test_dataset_characterization(benchmark, scale, results_dir):
    network = benchmark_network(scale, seed=0)
    stats = benchmark.pedantic(
        run_dataset_stats, args=(network,), rounds=1, iterations=1
    )
    write_result(results_dir, f"dataset_{scale}", stats.format())

    # paper regime checks
    assert stats.mean_h_index_holders < stats.mean_h_index_others
    assert 0.0 < stats.density < 0.2  # sparse, like co-authorship graphs
    assert stats.average_clustering > 0.1  # strongly clustered
    assert stats.num_skill_holders >= 10
    assert 0.0 < stats.mean_edge_weight <= 1.0  # Jaccard distances
