"""Merge per-benchmark ``--json`` reports into one trajectory document.

CI runs each standalone benchmark with ``--json bench-results/<name>.json``
and then merges the directory into a single ``BENCH_<run id>.json``::

    python benchmarks/merge_results.py bench-results/*.json \
        --output BENCH_12345.json

The merged document is uploaded as a workflow artifact on every run, so
query-throughput and warm-start numbers accumulate run over run instead
of scrolling away in job logs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="+", help="per-bench JSON reports")
    parser.add_argument("--output", required=True, help="merged report path")
    args = parser.parse_args(argv)

    reports = []
    for name in sorted(args.inputs):
        path = Path(name)
        try:
            report = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"FAIL: unreadable report {path}: {exc}")
            return 1
        reports.append(report)
    merged = {"reports": reports}
    out = Path(args.output)
    out.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"merged {len(reports)} report(s) into {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
