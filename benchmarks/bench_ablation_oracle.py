"""Ablation E7 — the paper's 2-hop cover vs plain Dijkstra distances.

The paper adopts pruned landmark labeling [1] "to find the shortest path
between any two nodes in constant time".  This ablation quantifies that
design choice on our substrate:

* index construction cost (PLL pays it once; Dijkstra pays nothing);
* batched point-to-point query cost (PLL should win decisively once the
  per-source cache of the Dijkstra oracle stops helping);
* end-to-end ``find_team`` cost under either oracle;

and asserts both oracles return teams with identical greedy scores.
"""

from __future__ import annotations

import random

import pytest

from repro.core import GreedyTeamFinder, TeamEvaluator
from repro.graph import DijkstraOracle, PrunedLandmarkLabeling
from repro.eval.workload import sample_projects


@pytest.fixture(scope="module")
def query_workload(small_network):
    rng = random.Random(31)
    nodes = sorted(small_network.expert_ids())
    return [(rng.choice(nodes), rng.choice(nodes)) for _ in range(500)]


def test_pll_build(benchmark, small_network):
    index = benchmark(PrunedLandmarkLabeling, small_network.graph)
    assert index.average_label_size >= 1.0


def test_pll_query_batch(benchmark, small_network, query_workload):
    index = PrunedLandmarkLabeling(small_network.graph)

    def run():
        return sum(
            d
            for d in (index.distance(u, v) for u, v in query_workload)
            if d != float("inf")
        )

    total = benchmark(run)
    assert total > 0.0


def test_dijkstra_query_batch(benchmark, small_network, query_workload):
    # A small cache forces realistic recomputation, as in the root loop
    # of Algorithm 1 where every root is a fresh source.
    oracle = DijkstraOracle(small_network.graph, max_cached_sources=8)

    def run():
        return sum(
            d
            for d in (oracle.distance(u, v) for u, v in query_workload)
            if d != float("inf")
        )

    total = benchmark(run)
    assert total > 0.0


@pytest.mark.parametrize("oracle_kind", ["pll", "dijkstra"])
def test_find_team_under_oracle(benchmark, small_network, oracle_kind):
    projects = sample_projects(small_network, 4, 2, seed=37)
    finder = GreedyTeamFinder(
        small_network, objective="sa-ca-cc", oracle_kind=oracle_kind
    )
    team = benchmark.pedantic(
        lambda: finder.find_team(projects[0]), rounds=2, iterations=1
    )
    assert team is not None


def test_oracles_equivalent_results(small_network):
    projects = sample_projects(small_network, 4, 3, seed=41)
    evaluator = TeamEvaluator(small_network, gamma=0.6, lam=0.6)
    for project in projects:
        via_pll = GreedyTeamFinder(
            small_network, objective="sa-ca-cc", oracle_kind="pll"
        ).find_team(project)
        via_dijkstra = GreedyTeamFinder(
            small_network, objective="sa-ca-cc", oracle_kind="dijkstra"
        ).find_team(project)
        assert evaluator.sa_ca_cc(via_pll) == pytest.approx(
            evaluator.sa_ca_cc(via_dijkstra), abs=1e-9
        )
