"""Delta catch-up vs full snapshot transfer (standalone benchmark).

Delta-snapshot replication's bet: when the primary mutates, a follower
catches up by replaying a few enriched journal records through the
incremental 2-hop-cover path — *much* cheaper than re-shipping and
re-loading the whole engine snapshot, and infinitely cheaper than a
cold index rebuild.  This benchmark measures exactly that race, per
mutation burst:

* **delta**: frame the journal suffix (``ReplicationLog.delta_since``)
  and apply it on a lagging follower (``ReplicaFollower.apply``) —
  pinned to zero PLL builds;
* **snapshot**: frame the primary's full state
  (``ReplicationLog.snapshot_frame``) and apply it on an equally
  lagging follower — the fallback a follower past the journal floor
  pays.

Both followers (and the live primary) must answer a probe request
byte-identically after catching up; any divergence fails the run.  Pass
``--min-speedup`` to enforce a median snapshot/delta advantage (exit 1
below it)::

    PYTHONPATH=src python benchmarks/bench_replication.py --scale small \
        --bursts 8 --mutations-per-burst 4 --min-speedup 2
"""

from __future__ import annotations

import argparse
import random
import statistics
import sys
import time

from _bench_json import write_json_report
from repro.api import TeamFormationEngine, TeamRequest
from repro.eval.workload import SCALE_CONFIGS, benchmark_network
from repro.expertise import Expert
from repro.graph.pll import pll_build_count
from repro.serving.replication import ReplicaFollower, ReplicationLog


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value!r}"
        )
    return number


def probe_request(network) -> TeamRequest:
    """One answerable greedy request (most-supported skill)."""
    skill = max(
        network.skill_index.skills(),
        key=lambda s: (len(network.experts_with_skill(s)), s),
    )
    return TeamRequest(skills=(skill,), solver="greedy")


def mutate_burst(network, rng: random.Random, count: int) -> None:
    """``count`` mutations from the incrementally-applicable family.

    Expert joins, new collaborations and weight decreases stream into a
    2-hop cover without a rebuild — the delta path this benchmark prices.
    """
    skills = sorted(network.skill_index.skills())
    for _ in range(count):
        ids = list(network.expert_ids())
        op = rng.choice(("add_expert", "add_edge", "decrease"))
        if op == "add_expert":
            joiner = f"joiner_{network.version}"
            network.add_expert(
                Expert(
                    joiner,
                    skills={rng.choice(skills)},
                    h_index=rng.randint(1, 20),
                )
            )
            network.add_collaboration(
                joiner, rng.choice(ids), weight=rng.uniform(0.1, 1.0)
            )
        elif op == "add_edge":
            u, v = rng.sample(ids, 2)
            if network.graph.has_edge(u, v):
                network.add_collaboration(
                    u, v, weight=network.graph.weight(u, v) * 0.7
                )
            else:
                network.add_collaboration(u, v, weight=rng.uniform(0.1, 1.0))
        else:
            u, v, w = rng.choice(list(network.graph.edges()))
            network.add_collaboration(u, v, weight=w * rng.uniform(0.4, 0.95))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=sorted(SCALE_CONFIGS), default="small"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--bursts", type=_positive_int, default=8)
    parser.add_argument("--mutations-per-burst", type=_positive_int, default=4)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail (exit 1) when the median snapshot/delta catch-up "
        "advantage falls below this",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the measured numbers as a JSON report",
    )
    args = parser.parse_args(argv)

    rng = random.Random(args.seed)
    network = benchmark_network(args.scale, seed=args.seed)
    primary = TeamFormationEngine(network)
    request = probe_request(network)
    primary.solve(request)  # warm the serving index before any transfer
    log = ReplicationLog(primary)
    follower = ReplicaFollower(
        TeamFormationEngine.from_snapshot_bytes(primary.snapshot_bytes())
    )
    print(
        f"scale={args.scale}: {len(network)} experts, {network.num_edges} "
        f"edges; {args.bursts} bursts x {args.mutations_per_burst} mutations"
    )

    delta_times, snap_times, delta_sizes, snap_sizes = [], [], [], []
    for burst in range(args.bursts):
        # A second follower lagging identically, for the snapshot race.
        lagged_blob = primary.snapshot_bytes()
        with primary.mutate() as net:
            mutate_burst(net, rng, args.mutations_per_burst)

        builds_before = pll_build_count()
        t0 = time.perf_counter()
        delta = log.delta_since(follower.version)
        follower.apply(delta)
        t_delta = time.perf_counter() - t0
        live_answer = primary.solve(request).canonical_json()
        delta_answer = follower.engine.solve(request).canonical_json()
        if pll_build_count() != builds_before:
            print("FAIL: the delta catch-up path paid for an index rebuild")
            return 1
        if delta_answer != live_answer:
            print("FAIL: delta-synced follower diverged from the primary")
            return 1

        laggard = ReplicaFollower(
            TeamFormationEngine.from_snapshot_bytes(lagged_blob)
        )
        t0 = time.perf_counter()
        snap = log.snapshot_frame()
        laggard.apply(snap)
        t_snap = time.perf_counter() - t0
        if laggard.engine.solve(request).canonical_json() != live_answer:
            print("FAIL: snapshot-synced follower diverged from the primary")
            return 1

        delta_times.append(t_delta)
        snap_times.append(t_snap)
        delta_sizes.append(len(delta))
        snap_sizes.append(len(snap))
        print(
            f"  burst {burst}: delta {t_delta * 1e3:8.2f}ms "
            f"({len(delta):>7} B)   snapshot {t_snap * 1e3:8.2f}ms "
            f"({len(snap):>9} B)   advantage {t_snap / t_delta:6.1f}x"
        )

    t_delta = statistics.median(delta_times)
    t_snap = statistics.median(snap_times)
    speedup = t_snap / t_delta if t_delta > 0 else float("inf")
    print(f"  median delta catch-up    : {t_delta * 1e3:9.2f}ms")
    print(f"  median snapshot transfer : {t_snap * 1e3:9.2f}ms")
    print(f"  median delta stream size : {statistics.median(delta_sizes):.0f} B")
    print(f"  median snapshot size     : {statistics.median(snap_sizes):.0f} B")
    print(f"  median delta advantage   : {speedup:8.1f}x")
    status = 0
    if args.min_speedup and speedup < args.min_speedup:
        print(
            f"FAIL: median delta advantage {speedup:.1f}x < "
            f"required {args.min_speedup}x"
        )
        status = 1
    if args.json:
        write_json_report(
            args.json,
            "replication",
            {
                "scale": args.scale,
                "bursts": args.bursts,
                "mutations_per_burst": args.mutations_per_burst,
                "median_delta_seconds": t_delta,
                "median_snapshot_seconds": t_snap,
                "median_delta_bytes": statistics.median(delta_sizes),
                "median_snapshot_bytes": statistics.median(snap_sizes),
                "median_delta_advantage": speedup,
                "min_speedup": args.min_speedup,
                "gate_passed": status == 0,
            },
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
