"""Index build + distance-query-kernel benchmark (standalone).

Measures, per network scale:

* 2-hop-cover (PLL) construction time — sequential vs parallel
  (``--workers``), with an entry-for-entry label-identity check between
  the two builds (the batch schedule is worker-independent, so any
  difference is a bug, not noise);
* batched query throughput per kernel — ``dict`` (the legacy per-node
  dict-probing baseline), ``flat-py`` (flat-array store, stdlib dense
  scatter) and ``flat`` (flat-array store, numpy vectorized when
  available) — with an exact-equality check of every probed distance
  across kernels, plus point ``distance()`` throughput for reference;
* batched vs point-query greedy search, asserting identical teams.

The PR-6 acceptance gate is a >= ``--min-query-speedup`` batched
throughput win of the ``flat`` kernel over the ``dict`` baseline at the
last (largest) scale given >= 4 usable cores; on smaller hosts the
throughput gate auto-relaxes to the identity-only check (the PR-5
convention), which always runs and must pass.  Run it directly (it is
intentionally not a pytest module — the CI smoke job uses
``bench_runtime.py``)::

    PYTHONPATH=src python benchmarks/bench_index_build.py \
        --scale small --workers 1 4 --min-query-speedup 3 --json out.json
"""

from __future__ import annotations

import argparse
import random
import sys
import time

from _bench_json import usable_cores, write_json_report
from repro.core.greedy import GreedyTeamFinder
from repro.eval.workload import SCALE_CONFIGS, benchmark_network, sample_projects
from repro.graph.pll import PrunedLandmarkLabeling
from repro.graph.pll_kernel import numpy_available

QUERY_ROUNDS = 20_000

#: Benchmark order: baseline first so the speedup column reads naturally.
KERNELS = ("dict", "flat-py", "flat")


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value!r}")
    return number


def bench_build(
    graph, workers_list: list[int], repeat: int, order_strategy: str
) -> dict[int, float]:
    """Best-of-``repeat`` build seconds per worker count, with identity check."""
    times: dict[int, float] = {}
    reference = None
    for workers in workers_list:
        best = float("inf")
        for _ in range(repeat):
            t0 = time.perf_counter()
            pll = PrunedLandmarkLabeling(
                graph, workers=workers, order_strategy=order_strategy
            )
            best = min(best, time.perf_counter() - t0)
        if reference is None:
            reference = pll.labels()
        elif pll.labels() != reference:
            raise AssertionError(
                f"workers={workers} produced different labels than "
                f"workers={workers_list[0]}"
            )
        times[workers] = best
    return times


def _sweeps(graph, rounds: int) -> tuple[list, list[list]]:
    """Deterministic root sweeps mirroring a per-skill candidate scan."""
    rng = random.Random(17)
    nodes = sorted(graph.nodes(), key=repr)
    sweep = 50  # targets per root, mirroring a per-skill candidate sweep
    roots = [rng.choice(nodes) for _ in range(rounds // sweep)]
    targets = [rng.sample(nodes, min(sweep, len(nodes))) for _ in roots]
    return roots, targets


def bench_query_kernels(
    graph, rounds: int, order_strategy: str
) -> tuple[float, dict[str, float]]:
    """(point q/s, {kernel: batched q/s}) with cross-kernel identity check.

    Every kernel must answer a fixed probe set (every ~25th node against
    all nodes) with *exactly* equal floats — the flat kernels minimize
    the same IEEE-754 sums as the merge join, so any difference is a
    bug, not float noise.
    """
    roots, targets = _sweeps(graph, rounds)
    queries = sum(len(ts) for ts in targets)
    nodes = sorted(graph.nodes(), key=repr)
    probe_roots = nodes[:: max(1, len(nodes) // 25)]

    batch_qps: dict[str, float] = {}
    reference = None
    for kernel in KERNELS:
        pll = PrunedLandmarkLabeling(
            graph, kernel=kernel, order_strategy=order_strategy
        )
        t0 = time.perf_counter()
        for root, ts in zip(roots, targets):
            pll.distances_from(root, ts)
        batch_qps[kernel] = queries / (time.perf_counter() - t0)
        probes = {root: pll.distances_from(root, nodes) for root in probe_roots}
        if reference is None:
            reference = probes
        elif probes != reference:
            raise AssertionError(
                f"kernel={kernel} answered differently than kernel={KERNELS[0]}"
            )

    point = PrunedLandmarkLabeling(graph, order_strategy=order_strategy)
    t0 = time.perf_counter()
    for root, ts in zip(roots, targets):
        for t in ts:
            point.distance(root, t)
    point_qps = queries / (time.perf_counter() - t0)
    return point_qps, batch_qps


def bench_greedy(network) -> tuple[float, float]:
    """(point s, batched s) for one top-k sweep; asserts identical teams."""
    project = sample_projects(network, 4, 1, seed=23)[0]
    batched = GreedyTeamFinder(network)
    point = GreedyTeamFinder(network, batch_queries=False)
    t0 = time.perf_counter()
    teams_point = point.find_top_k(project, k=5)
    point_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    teams_batched = batched.find_top_k(project, k=5)
    batched_s = time.perf_counter() - t0
    if [t.key() for t in teams_point] != [t.key() for t in teams_batched]:
        raise AssertionError("batched greedy diverged from point-query greedy")
    return point_s, batched_s


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        nargs="+",
        choices=sorted(SCALE_CONFIGS),
        default=["tiny", "medium", "large"],
    )
    parser.add_argument("--workers", type=_positive_int, nargs="+", default=[1, 4])
    parser.add_argument("--repeat", type=_positive_int, default=3)
    parser.add_argument(
        "--order",
        choices=("degree", "centrality"),
        default="degree",
        help="landmark ordering strategy for every index built here",
    )
    parser.add_argument(
        "--min-query-speedup",
        type=float,
        default=0.0,
        help="fail (exit 1) when the flat kernel's batched throughput win "
        "over the dict baseline at the last scale falls below this — "
        "auto-relaxed to the identity-only check under 4 usable cores",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the measured numbers as a JSON report",
    )
    args = parser.parse_args(argv)

    cores = usable_cores()
    print(f"usable cores: {cores}; numpy kernel: {numpy_available()}")
    scales_report: dict[str, dict] = {}
    kernel_speedup = 0.0
    for scale in args.scale:
        network = benchmark_network(scale, seed=0)
        graph = network.graph
        print(
            f"\n[{scale}] n={graph.num_nodes} m={graph.num_edges}",
            flush=True,
        )
        times = bench_build(graph, args.workers, args.repeat, args.order)
        base = times[args.workers[0]]
        for workers, seconds in times.items():
            speedup = base / seconds if seconds else float("inf")
            print(
                f"  build workers={workers}: {seconds:.3f}s "
                f"(x{speedup:.2f} vs workers={args.workers[0]})"
            )
        point_qps, batch_qps = bench_query_kernels(
            graph, QUERY_ROUNDS, args.order
        )
        kernel_speedup = batch_qps["flat"] / batch_qps["dict"]
        print(f"  point queries     : {point_qps:,.0f} q/s (flat kernel)")
        for kernel in KERNELS:
            note = (
                f" (x{batch_qps[kernel] / batch_qps['dict']:.2f} vs dict)"
                if kernel != "dict"
                else " (baseline)"
            )
            print(f"  batched {kernel:<8}  : {batch_qps[kernel]:,.0f} q/s{note}")
        point_s, batched_s = bench_greedy(network)
        print(
            f"  greedy top-5: point {point_s:.3f}s, batched {batched_s:.3f}s "
            f"(x{point_s / batched_s:.2f}, identical teams)"
        )
        scales_report[scale] = {
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "build_seconds": {str(w): s for w, s in times.items()},
            "point_qps": point_qps,
            "batch_qps": dict(batch_qps),
            "flat_vs_dict_speedup": kernel_speedup,
            "greedy_point_seconds": point_s,
            "greedy_batched_seconds": batched_s,
        }

    status = 0
    if args.min_query_speedup > 0:
        gate_scale = args.scale[-1]
        if cores < 4:
            print(
                f"\ngate: relaxed to identity-only ({cores} usable core(s) "
                f"< 4; the {args.min_query_speedup:.1f}x kernel target is "
                f"calibrated for CI-class hosts)"
            )
        elif kernel_speedup < args.min_query_speedup:
            print(
                f"\nFAIL: flat kernel {kernel_speedup:.2f}x over dict at "
                f"scale={gate_scale}, below required "
                f"{args.min_query_speedup:.2f}x"
            )
            status = 1
        else:
            print(
                f"\ngate: flat kernel {kernel_speedup:.2f}x >= "
                f"{args.min_query_speedup:.1f}x over dict at "
                f"scale={gate_scale}"
            )

    if args.json:
        write_json_report(
            args.json,
            "index_build",
            {
                "numpy_kernel": numpy_available(),
                "order_strategy": args.order,
                "min_query_speedup": args.min_query_speedup,
                "gate_passed": status == 0,
                "scales": scales_report,
            },
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
