"""Index build + distance-query throughput benchmark (standalone).

Measures, per network scale:

* 2-hop-cover (PLL) construction time — sequential vs parallel
  (``--workers``), with an entry-for-entry label-identity check between
  the two builds (the batch schedule is worker-independent, so any
  difference is a bug, not noise);
* distance-query throughput — point ``distance()`` calls vs the batched
  ``distances_from`` API (one call per root sweep), reported in queries
  per second;
* batched vs point-query greedy search, asserting identical teams.

Run it directly (it is intentionally not a pytest module — the CI smoke
job uses ``bench_runtime.py``)::

    PYTHONPATH=src python benchmarks/bench_index_build.py --scale large --workers 1 4

Note on parallel speedup: the build fans out to ``multiprocessing``
worker processes, so the measured speedup is bounded by the machine's
usable cores (``os.sched_getaffinity``).  On a single-core container the
parallel build *cannot* be faster — the harness prints the core count
next to the numbers so the report is interpretable.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time

from repro.core.greedy import GreedyTeamFinder
from repro.eval.workload import SCALE_CONFIGS, benchmark_network, sample_projects
from repro.graph.pll import PrunedLandmarkLabeling

QUERY_ROUNDS = 20_000


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value!r}")
    return number


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def bench_build(graph, workers_list: list[int], repeat: int) -> dict[int, float]:
    """Best-of-``repeat`` build seconds per worker count, with identity check."""
    times: dict[int, float] = {}
    reference = None
    for workers in workers_list:
        best = float("inf")
        for _ in range(repeat):
            t0 = time.perf_counter()
            pll = PrunedLandmarkLabeling(graph, workers=workers)
            best = min(best, time.perf_counter() - t0)
        if reference is None:
            reference = pll.labels()
        elif pll.labels() != reference:
            raise AssertionError(
                f"workers={workers} produced different labels than "
                f"workers={workers_list[0]}"
            )
        times[workers] = best
    return times


def bench_queries(graph, rounds: int = QUERY_ROUNDS) -> tuple[float, float]:
    """(point queries/s, batched queries/s) over random root sweeps."""
    pll = PrunedLandmarkLabeling(graph)
    rng = random.Random(17)
    nodes = sorted(graph.nodes(), key=repr)
    sweep = 50  # targets per root, mirroring a per-skill candidate sweep
    roots = [rng.choice(nodes) for _ in range(rounds // sweep)]
    targets = [rng.sample(nodes, min(sweep, len(nodes))) for _ in roots]

    t0 = time.perf_counter()
    for root, ts in zip(roots, targets):
        for t in ts:
            pll.distance(root, t)
    point_qps = (len(roots) * sweep) / (time.perf_counter() - t0)

    batched = PrunedLandmarkLabeling(graph)  # fresh cache
    t0 = time.perf_counter()
    for root, ts in zip(roots, targets):
        batched.distances_from(root, ts)
    batch_qps = (len(roots) * sweep) / (time.perf_counter() - t0)
    return point_qps, batch_qps


def bench_greedy(network) -> tuple[float, float]:
    """(point s, batched s) for one top-k sweep; asserts identical teams."""
    project = sample_projects(network, 4, 1, seed=23)[0]
    batched = GreedyTeamFinder(network)
    point = GreedyTeamFinder(network, batch_queries=False)
    t0 = time.perf_counter()
    teams_point = point.find_top_k(project, k=5)
    point_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    teams_batched = batched.find_top_k(project, k=5)
    batched_s = time.perf_counter() - t0
    if [t.key() for t in teams_point] != [t.key() for t in teams_batched]:
        raise AssertionError("batched greedy diverged from point-query greedy")
    return point_s, batched_s


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        nargs="+",
        choices=sorted(SCALE_CONFIGS),
        default=["tiny", "medium", "large"],
    )
    parser.add_argument("--workers", type=_positive_int, nargs="+", default=[1, 4])
    parser.add_argument("--repeat", type=_positive_int, default=3)
    args = parser.parse_args(argv)

    cores = _usable_cores()
    print(f"usable cores: {cores}")
    for scale in args.scale:
        network = benchmark_network(scale, seed=0)
        graph = network.graph
        print(
            f"\n[{scale}] n={graph.num_nodes} m={graph.num_edges}",
            flush=True,
        )
        times = bench_build(graph, args.workers, args.repeat)
        base = times[args.workers[0]]
        for workers, seconds in times.items():
            speedup = base / seconds if seconds else float("inf")
            print(
                f"  build workers={workers}: {seconds:.3f}s "
                f"(x{speedup:.2f} vs workers={args.workers[0]})"
            )
        point_qps, batch_qps = bench_queries(graph)
        print(
            f"  query throughput: point {point_qps:,.0f} q/s, "
            f"batched {batch_qps:,.0f} q/s (x{batch_qps / point_qps:.2f})"
        )
        point_s, batched_s = bench_greedy(network)
        print(
            f"  greedy top-5: point {point_s:.3f}s, batched {batched_s:.3f}s "
            f"(x{point_s / batched_s:.2f}, identical teams)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
