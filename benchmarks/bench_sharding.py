"""Monolithic vs sharded PLL serving (standalone benchmark).

PR-10's sharding bet: cutting the collaboration graph into K shards
along its articulation structure makes each *shard's* index strictly
cheaper to build and hold than the monolithic 2-hop cover — the unit of
(re)build and of memory becomes one shard — while the boundary-distance
summary keeps every answer byte-identical to the monolithic oracle.
This benchmark measures exactly that trade:

* **build**: monolithic index build time vs the worst per-shard build
  time (the unit a rebuild or a scale-out replica actually pays);
* **memory**: monolithic label bytes vs the worst per-shard label
  bytes, plus the boundary-summary overhead;
* **query**: intra-shard and cross-shard query throughput vs the
  monolithic index, over the same source/target pairs;
* an **identity check** on every sampled query: the sharded answer must
  equal the monolithic float exactly (edge weights are quantized to
  multiples of 1/64 so sums are exact and "equal" is well-defined).

Gates (exit 1 on failure):

* ``--min-memory-ratio R`` — at the largest K, worst-shard label bytes
  must be <= R x monolithic label bytes (PR-10 acceptance: 0.6 at K=4,
  small scale), and worst-shard build time strictly below monolithic.
* ``--min-intra-ratio R`` — sharded intra-shard throughput must stay
  within R x monolithic.  Auto-relaxed on hosts with fewer than 4
  usable cores, where scheduling noise dwarfs the effect.

CI runs the tiny smoke::

    PYTHONPATH=src python benchmarks/bench_sharding.py --scale tiny \
        --shards 1 2 4 --sources 12 --json bench-results/sharding.json
"""

from __future__ import annotations

import argparse
import math
import statistics
import sys
import time

from _bench_json import usable_cores, write_json_report
from repro.eval.workload import SCALE_CONFIGS, benchmark_network
from repro.graph import Graph
from repro.graph.partition import plan_shards
from repro.graph.pll import PrunedLandmarkLabeling
from repro.graph.sharded_oracle import ShardedPLLOracle


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value!r}"
        )
    return number


def federated_graph(scale: str, seed: int, communities: int) -> Graph:
    """``communities`` copies of the scale network, bridged in a chain.

    The synthetic ``benchmark_network`` graphs are single biconnected
    blobs — the topology sharding can *not* help with (the partitioner
    correctly refuses to cut them, and the gate run reports 1.00x).
    Real collaboration networks are the opposite: dense communities
    joined through a few connector authors.  This builder models that
    regime — each community is one scale-network instance, consecutive
    communities are joined through a dedicated connector node (an
    articulation point by construction) — so the benchmark measures
    sharding on the workload shape it exists for.

    Weights are snapped to multiples of 1/64: dyadic sums are exact in
    binary floating point, so monolithic and sharded answers are
    comparable with ``==`` instead of a tolerance — the same hard bar
    the engine test suite enforces.
    """
    g = Graph()
    anchors = []
    for c in range(communities):
        source = benchmark_network(scale, seed=seed + c).graph
        first = None
        for node in source.nodes():
            name = f"c{c}:{node}"
            g.add_node(name)
            if first is None:
                first = name
        for u, v, w in source.edges():
            g.add_edge(
                f"c{c}:{u}", f"c{c}:{v}", weight=max(1, round(w * 64)) / 64.0
            )
        anchors.append(first)
    for c in range(communities - 1):
        connector = f"connector{c}"
        g.add_edge(anchors[c], connector, weight=2.0)
        g.add_edge(connector, anchors[c + 1], weight=2.0)
    return g


def sample_pairs(graph: Graph, plan, sources: int):
    """Deterministic (source, target-set) plus intra/cross pair splits."""
    nodes = list(graph.nodes())
    step = max(1, len(nodes) // sources)
    picked = nodes[::step][:sources]
    intra: list[tuple] = []
    cross: list[tuple] = []
    for i, u in enumerate(picked):
        v = picked[(i + 1) % len(picked)]
        if u == v:
            continue
        if set(plan.shards_of(u)) & set(plan.shards_of(v)):
            intra.append((u, v))
        else:
            cross.append((u, v))
    return picked, intra, cross


def best_build_seconds(graph: Graph, trials: int) -> float:
    """Best-of-``trials`` wall time to build one PLL over ``graph``.

    Build times on shared hosts swing 20-30% between identical runs
    (allocator growth, frequency scaling); the *minimum* over a few
    trials is the standard low-noise estimator for a deterministic
    computation.
    """
    best = float("inf")
    for _ in range(trials):
        t0 = time.perf_counter()
        PrunedLandmarkLabeling(graph)
        best = min(best, time.perf_counter() - t0)
    return best


def time_queries(oracle, picked, targets) -> float:
    """Median seconds for one ``distances_from`` sweep per source."""
    times = []
    for u in picked:
        t0 = time.perf_counter()
        oracle.distances_from(u, targets)
        times.append(time.perf_counter() - t0)
    return statistics.median(times) if times else 0.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=sorted(SCALE_CONFIGS), default="small"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--shards",
        type=_positive_int,
        nargs="+",
        default=[1, 2, 4],
        metavar="K",
        help="shard counts to measure (default: 1 2 4)",
    )
    parser.add_argument(
        "--sources",
        type=_positive_int,
        default=24,
        help="identity/throughput sample sources (default: 24)",
    )
    parser.add_argument(
        "--communities",
        type=_positive_int,
        default=6,
        metavar="C",
        help="scale-network communities bridged into the benchmark graph "
        "(default: 6)",
    )
    parser.add_argument(
        "--trials",
        type=_positive_int,
        default=3,
        help="build-time trials; the best is reported (default: 3)",
    )
    parser.add_argument(
        "--min-memory-ratio",
        type=float,
        default=0.0,
        metavar="R",
        help="fail when worst-shard label bytes at the largest K exceed "
        "R x monolithic (0 = report only); also requires worst-shard "
        "build time strictly below monolithic",
    )
    parser.add_argument(
        "--min-intra-ratio",
        type=float,
        default=0.0,
        metavar="R",
        help="fail when sharded intra-shard throughput falls below "
        "R x monolithic (0 = report only; auto-relaxed under 4 cores)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the measured numbers as a JSON report",
    )
    args = parser.parse_args(argv)

    graph = federated_graph(args.scale, args.seed, args.communities)
    print(
        f"scale={args.scale} x {args.communities} communities: "
        f"{graph.num_nodes} nodes, {graph.num_edges} edges "
        "(weights quantized to 1/64)"
    )

    mono_build = best_build_seconds(graph, args.trials)
    mono = PrunedLandmarkLabeling(graph)
    mono_bytes = mono.total_label_entries * 16
    nodes = list(graph.nodes())
    print(
        f"  monolithic: build {mono_build * 1e3:8.2f}ms   "
        f"labels {mono_bytes:>10d} B"
    )

    rows = []
    status = 0
    for k in sorted(set(args.shards)):
        plan = plan_shards(graph, k)
        t0 = time.perf_counter()
        sharded = ShardedPLLOracle(graph, plan)
        total_build = time.perf_counter() - t0
        shard_builds = []
        for i in range(k):  # per-shard rebuild cost, measured directly
            shard_nodes = plan.shards[i]
            if not shard_nodes:
                shard_builds.append(0.0)
                continue
            sub = graph.subgraph(shard_nodes)
            shard_builds.append(best_build_seconds(sub, args.trials))
        worst_build = max(shard_builds)
        worst_bytes = max(
            (sharded.label_bytes(i) for i in range(k)), default=0
        )

        picked, intra, cross = sample_pairs(graph, plan, args.sources)
        mismatches = 0
        for u in picked:
            if sharded.distances_from(u, nodes) != mono.distances_from(
                u, nodes
            ):
                mismatches += 1
        sharded_sweep = time_queries(sharded, picked, nodes)
        mono_sweep = time_queries(mono, picked, nodes)

        def qps(oracle, pairs):
            if not pairs:
                return float("nan")
            t0 = time.perf_counter()
            for u, v in pairs:
                oracle.distance(u, v)
            elapsed = time.perf_counter() - t0
            return len(pairs) / elapsed if elapsed > 0 else float("inf")

        intra_qps = qps(sharded, intra)
        cross_qps = qps(sharded, cross)
        mono_intra_qps = qps(mono, intra)
        mono_cross_qps = qps(mono, cross)

        print(
            f"  K={k}: worst shard build {worst_build * 1e3:8.2f}ms "
            f"({worst_build / mono_build:5.2f}x mono)   "
            f"worst labels {worst_bytes:>9d} B "
            f"({worst_bytes / mono_bytes:5.2f}x)   "
            f"boundary {len(plan.boundary)}"
        )
        print(
            f"       intra {intra_qps:10.0f} q/s (mono {mono_intra_qps:10.0f})"
            f"   cross {cross_qps:10.0f} q/s (mono {mono_cross_qps:10.0f})"
            f"   identity {'OK' if not mismatches else 'FAIL'}"
        )
        if mismatches:
            print(
                f"FAIL: K={k}: {mismatches}/{len(picked)} sampled sources "
                "disagree with the monolithic oracle"
            )
            status = 1
        rows.append(
            {
                "shards": k,
                "total_build_seconds": total_build,
                "worst_shard_build_seconds": worst_build,
                "worst_shard_label_bytes": worst_bytes,
                "total_label_bytes": sharded.label_bytes(),
                "boundary_nodes": len(plan.boundary),
                "intra_pairs": len(intra),
                "cross_pairs": len(cross),
                "intra_qps": intra_qps,
                "cross_qps": cross_qps,
                "mono_intra_qps": mono_intra_qps,
                "mono_cross_qps": mono_cross_qps,
                "sweep_seconds": sharded_sweep,
                "mono_sweep_seconds": mono_sweep,
                "identity_ok": not mismatches,
            }
        )

    cores = usable_cores()
    relax_query_gates = cores < 4
    top = max(row["shards"] for row in rows)
    top_row = next(row for row in rows if row["shards"] == top)
    if args.min_memory_ratio and top > 1:
        ratio = top_row["worst_shard_label_bytes"] / mono_bytes
        if ratio > args.min_memory_ratio:
            print(
                f"FAIL: K={top} worst-shard label bytes are {ratio:.2f}x "
                f"monolithic (gate: <= {args.min_memory_ratio})"
            )
            status = 1
        if top_row["worst_shard_build_seconds"] >= mono_build:
            print(
                f"FAIL: K={top} worst-shard build "
                f"({top_row['worst_shard_build_seconds'] * 1e3:.2f}ms) is "
                f"not below the monolithic build ({mono_build * 1e3:.2f}ms)"
            )
            status = 1
    if args.min_intra_ratio and top > 1:
        mono_qps = top_row["mono_intra_qps"]
        got = top_row["intra_qps"]
        if (
            not relax_query_gates
            and not math.isnan(mono_qps)
            and not math.isnan(got)
            and got < args.min_intra_ratio * mono_qps
        ):
            print(
                f"FAIL: K={top} intra-shard throughput {got:.0f} q/s is "
                f"below {args.min_intra_ratio} x monolithic "
                f"({mono_qps:.0f} q/s)"
            )
            status = 1
        elif relax_query_gates:
            print(
                f"  query gates relaxed: only {cores} usable core(s) "
                "(< 4); memory/build gates still apply"
            )

    if args.json:
        write_json_report(
            args.json,
            "sharding",
            {
                "scale": args.scale,
                "communities": args.communities,
                "sources": args.sources,
                "mono_build_seconds": mono_build,
                "mono_label_bytes": mono_bytes,
                "runs": rows,
                "min_memory_ratio": args.min_memory_ratio,
                "min_intra_ratio": args.min_intra_ratio,
                "query_gates_relaxed": relax_query_gates,
                "gate_passed": status == 0,
            },
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
