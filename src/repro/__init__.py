"""repro — Authority-Based Team Discovery in Social Networks.

A from-scratch Python reproduction of Zihayat, An, Golab, Kargar and
Szlichta, *Authority-Based Team Discovery in Social Networks* (EDBT
2017; arXiv:1611.02992): given an expert network whose nodes carry
skills and authority (h-index) and whose edges carry communication
costs, find teams covering a required skill set while jointly optimizing
communication cost (CC), connector authority (CA) and skill-holder
authority (SA).

Quickstart::

    from repro import Expert, ExpertNetwork, GreedyTeamFinder

    experts = [
        Expert("ada", skills={"compilers"}, h_index=4),
        Expert("grace", skills={"databases"}, h_index=7),
        Expert("alan", h_index=40),  # no required skill: a connector
    ]
    net = ExpertNetwork(experts, edges=[("ada", "alan", 0.4),
                                        ("alan", "grace", 0.3)])
    team = GreedyTeamFinder(net, objective="sa-ca-cc").find_team(
        ["compilers", "databases"])
    print(sorted(team.members), team.assignments)

Package layout: :mod:`repro.graph` (graph substrate incl. the 2-hop-cover
distance oracle), :mod:`repro.expertise` (the expert-network model),
:mod:`repro.dblp` (DBLP parsing / synthetic corpora / network building),
:mod:`repro.core` (the paper's algorithms), :mod:`repro.eval` (workloads
and the per-figure experiment runners).
"""

from .api import (
    DEFAULT_REGISTRY,
    SolverRegistry,
    TeamFormationEngine,
    TeamRequest,
    TeamResponse,
)
from .core import (
    BruteForceSolver,
    ExactSolver,
    GreedyTeamFinder,
    IntractableError,
    ObjectiveScales,
    ParetoTeam,
    ParetoTeamDiscovery,
    RandomSolver,
    RarestFirstSolver,
    Replacement,
    ReplacementError,
    ReplacementRecommender,
    Team,
    TeamEvaluator,
    TeamValidationError,
    authority_fold_transform,
)
from .expertise import (
    Expert,
    ExpertNetwork,
    SkillCoverageError,
    load_network,
    save_network,
)
from .graph import Graph, GraphError

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_REGISTRY",
    "SolverRegistry",
    "TeamFormationEngine",
    "TeamRequest",
    "TeamResponse",
    "BruteForceSolver",
    "ExactSolver",
    "GreedyTeamFinder",
    "IntractableError",
    "ObjectiveScales",
    "ParetoTeam",
    "ParetoTeamDiscovery",
    "RandomSolver",
    "RarestFirstSolver",
    "Replacement",
    "ReplacementError",
    "ReplacementRecommender",
    "Team",
    "TeamEvaluator",
    "TeamValidationError",
    "authority_fold_transform",
    "Expert",
    "ExpertNetwork",
    "SkillCoverageError",
    "load_network",
    "save_network",
    "Graph",
    "GraphError",
    "__version__",
]
