"""A pool of engine replicas, each warm-started from one snapshot.

:class:`EngineReplicaPool` is the multi-process tier of the serving
layer.  The parent resolves a PR-4 snapshot to one concrete file, then
spawns N worker processes whose initializer calls
:meth:`TeamFormationEngine.from_snapshot` on that file — a warm start,
so **zero** index builds happen per worker no matter how many replicas
the pool runs.  Request batches are planned by :mod:`repro.serving.batch`
(warm groups spread across replicas, cold groups pinned so the pool
builds each missing index at most once) and travel as JSON strings —
the same lossless encoding the wire API uses — so nothing about a
request or response needs to be picklable beyond text.

Workers answer through :meth:`TeamFormationEngine.solve_isolated`, so a
poisoned request inside a job yields one typed error response instead
of killing the job (or the worker).

In sandboxes where worker processes cannot be spawned (no fork/spawn,
restricted semaphores), the pool degrades to a single in-process
replica: same API, same responses, no parallelism — mirroring the PLL
builder's own fallback.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import TYPE_CHECKING

from .. import obs
from ..storage.codec import warm_bases_from_meta
from ..storage.format import read_container
from ..storage.store import resolve_snapshot_path
from .batch import plan_jobs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.engine import TeamFormationEngine
    from ..api.messages import TeamRequest, TeamResponse
    from ..storage.store import SnapshotStore
    from .replication import ReplicationLog

__all__ = ["EngineReplicaPool", "usable_cores"]


def usable_cores() -> int:
    """Cores this process may schedule on (affinity-aware).

    The one shared answer to "how parallel can this host go": the
    pool's default replica count and the serving benchmark's gate-relax
    threshold both read it, so they can never disagree.
    """
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1

#: The replica owned by this worker process (set by the initializer).
_WORKER_ENGINE: "TeamFormationEngine | None" = None
_WORKER_INIT_ERROR: str | None = None


def _init_replica(snapshot_path: str) -> None:
    """Worker initializer: warm-start this process's private replica.

    Never raises: ``multiprocessing.Pool`` responds to a crashing
    initializer by silently respawning the worker forever, which would
    turn a failed warm start (snapshot GC'd between parent validation
    and worker spawn, per-worker OOM) into a hang.  The failure is
    recorded instead, and the first job raises it cleanly through
    ``Pool.map`` back to the caller.
    """
    global _WORKER_ENGINE, _WORKER_INIT_ERROR
    from ..api.engine import TeamFormationEngine

    try:
        _WORKER_ENGINE = TeamFormationEngine.from_snapshot(snapshot_path)
    except Exception as exc:  # noqa: BLE001 - see docstring
        _WORKER_INIT_ERROR = f"{type(exc).__name__}: {exc}"


def _probe_replica(_: object = None) -> str | None:
    """First task on every worker: report the warm-start outcome."""
    return _WORKER_INIT_ERROR


def _serve_job(job: list[tuple[int, str]]) -> list[tuple[int, str]]:
    """Answer one job of ``(index, request_json)`` on this replica."""
    from ..api.messages import TeamRequest

    engine = _WORKER_ENGINE
    if engine is None:
        raise RuntimeError(
            "replica warm start failed: "
            + (_WORKER_INIT_ERROR or "initializer did not run")
        )
    out = []
    for index, text in job:
        response = engine.solve_isolated(TeamRequest.from_json(text))
        out.append((index, response.to_json()))
    return out


def _apply_delta_job(data: bytes) -> int:
    """Advance this worker's replica by one delta stream; return its version.

    Runs on the worker's single-job executor, so it is naturally
    serialized against solve jobs — a solve never observes a
    half-applied stream.  A snapshot frame rebinds the worker's engine
    to the freshly transferred one.
    """
    global _WORKER_ENGINE
    from .replication import ReplicaFollower

    engine = _WORKER_ENGINE
    if engine is None:
        raise RuntimeError(
            "replica warm start failed: "
            + (_WORKER_INIT_ERROR or "initializer did not run")
        )
    follower = ReplicaFollower(engine)
    follower.apply(data)
    _WORKER_ENGINE = follower.engine
    return follower.version


class EngineReplicaPool:
    """N process-local engine replicas serving one snapshot's state.

    Parameters
    ----------
    source:
        A :class:`SnapshotStore`, store directory, or ``*.snap`` file.
        Resolved to one concrete file up front, so every replica loads
        identical bytes (and therefore answers byte-identical
        responses) even if the store's LATEST pointer moves later.
    replicas:
        Worker process count; defaults to the usable core count.  The
        parent verifies the snapshot (full CRC pass) before spawning
        anything, so a corrupt file fails fast with the storage layer's
        typed error instead of a worker crash loop.

    >>> # with EngineReplicaPool("./snapshots", replicas=4) as pool:
    >>> #     responses = pool.solve_many(requests)
    """

    def __init__(
        self,
        source: "SnapshotStore | str | Path",
        *,
        replicas: int | None = None,
    ) -> None:
        self._path = resolve_snapshot_path(source)
        # Fail fast in the parent: decode errors here carry the typed
        # snapshot exceptions; a worker initializer crash would not.
        meta, _sections = read_container(self._path)
        self._warm_bases = frozenset(warm_bases_from_meta(meta))
        # Sharded snapshots carry a {skill: home shard} residency map;
        # the batch planner uses it to pin shard-local request groups
        # (see repro.serving.batch).  Absent on monolithic snapshots.
        residency = meta.get("shard_residency")
        self._shard_residency: dict[str, int] | None = (
            {str(k): int(v) for k, v in residency.items()}
            if isinstance(residency, dict)
            else None
        )
        # Replication state (attach_primary): which network version the
        # replicas currently serve, and the bounded-staleness budget.
        self._replica_version = int(meta.get("network_version", 0))
        self._log: "ReplicationLog | None" = None
        self._max_lag_ms: float | None = None
        self._snapshot_fallbacks = 0
        if replicas is None:
            replicas = max(1, usable_cores())
        if replicas < 1:
            raise ValueError("replicas must be positive")
        self._requested_replicas = replicas
        self._closed = False
        # One single-worker executor per replica (not one N-worker
        # pool): routing is what makes pinning mean something — a cold
        # group's jobs must land on the *same* worker process across
        # batches, so its index is built at most once for the pool's
        # whole lifetime.  ProcessPoolExecutor rather than
        # multiprocessing.Pool because a worker dying mid-job must
        # surface as BrokenProcessPool, not hang a silently-respawned
        # pool's never-completed result.
        self._workers: list[ProcessPoolExecutor] = []
        self._pinned_worker: dict[tuple, int] = {}
        self._next_worker = 0
        # Routing state mutates per job; the persistent server drives
        # one pool from several executor threads at once, so the
        # round-robin cursor and pin table need a lock.
        self._route_lock = threading.Lock()
        self._local: "TeamFormationEngine | None" = None
        if replicas > 1:
            workers: list[ProcessPoolExecutor] = []
            try:
                ctx = multiprocessing.get_context()
                for _ in range(replicas):
                    workers.append(
                        ProcessPoolExecutor(
                            max_workers=1,
                            mp_context=ctx,
                            initializer=_init_replica,
                            initargs=(str(self._path),),
                        )
                    )
                # Eager probe: spawn every worker now and surface a
                # failed warm start (e.g. the snapshot vanished between
                # parent validation and worker spawn) as a construction
                # error, not a first-batch surprise.  All probes are
                # submitted before any result is awaited so the N
                # snapshot loads overlap instead of serializing.
                probes = [w.submit(_probe_replica) for w in workers]
                for probe in probes:
                    error = probe.result()
                    if error is not None:
                        raise RuntimeError(
                            f"replica warm start failed: {error}"
                        )
                self._workers = workers
            except (OSError, ValueError, pickle.PickleError, BrokenProcessPool):
                # Constrained sandbox (no fork/spawn): degrade to
                # in-process serving.
                for worker in workers:
                    worker.shutdown(wait=False, cancel_futures=True)
                self._workers = []
            except BaseException:
                # A failed warm start is an error, not a degrade — but
                # never leak spawned workers on the way out.
                for worker in workers:
                    worker.shutdown(wait=False, cancel_futures=True)
                raise
        if not self._workers:
            from ..api.engine import TeamFormationEngine

            self._local = TeamFormationEngine.from_snapshot(self._path)

    # ------------------------------------------------------------------
    @property
    def replicas(self) -> int:
        """How many replicas actually serve (1 in degraded mode)."""
        return len(self._workers) if self._workers else 1

    @property
    def snapshot_path(self) -> Path:
        """The one snapshot file every replica warm-started from."""
        return self._path

    @property
    def warm_bases(self) -> frozenset:
        """Index bases prebuilt in the snapshot (drives job splitting)."""
        return self._warm_bases

    # ------------------------------------------------------------------
    def solve_many(
        self, requests: "list[TeamRequest]"
    ) -> "list[TeamResponse]":
        """Answer a batch across the pool; responses in request order.

        Per-request error isolation always applies (the pool exists to
        serve, not to crash): a bad request comes back as a typed error
        response, exactly as :meth:`TeamFormationEngine.solve_many`
        returns in its default ``isolate`` mode.
        """
        from dataclasses import replace

        from ..api.messages import TeamResponse

        requests = list(requests)
        if not requests:
            return []
        if self._closed:
            raise RuntimeError("the replica pool has been closed")
        stale = self._stale_rejection()
        if stale is not None:
            # Bounded staleness is an *admission* check: a too-stale
            # replica set answers nothing, typed, rather than answering
            # from a world the primary has left behind.
            return [
                replace(
                    TeamResponse.for_error(request, "stale_replica", stale),
                    network_version=self._replica_version,
                )
                for request in requests
            ]
        stamp = self._replica_version if self._log is not None else None
        registry = obs.global_registry()
        registry.counter("pool_batches").inc()
        registry.counter("pool_requests").inc(len(requests))
        if not self._workers:
            assert self._local is not None
            # Round-trip through JSON even in-process, so degraded mode
            # returns the exact bytes worker mode would.
            with obs.span(
                "pool.solve_many", mode="degraded", requests=len(requests)
            ):
                return [
                    self._stamped(
                        TeamResponse.from_json(response.to_json()), stamp
                    )
                    for response in self._local.solve_many(requests)
                ]
        with obs.span(
            "pool.solve_many", mode="workers", requests=len(requests)
        ):
            with obs.span("pool.route"):
                jobs = plan_jobs(
                    requests,
                    len(self._workers),
                    self._warm_bases,
                    self._shard_residency,
                )
                # Route the whole batch under ONE lock acquisition, then
                # submit and await entirely outside it.  Routing is pure
                # bookkeeping (a cursor bump or a dict lookup); holding
                # `_route_lock` across submission — let alone across
                # `future.result()` — would serialize concurrent callers
                # of a pool that exists to overlap them (the PR-7
                # single-request server path did exactly that).
                with self._route_lock:
                    routed = [
                        (self._route_locked(pin), job) for pin, job in jobs
                    ]
            registry.counter("pool_jobs").inc(len(routed))
            with obs.span("pool.submit", jobs=len(routed)):
                pending = []
                for worker_index, job in routed:
                    payload = [
                        (index, requests[index].to_json()) for index in job
                    ]
                    registry.gauge(f"pool_depth_r{worker_index}").add(1)
                    pending.append(
                        (
                            worker_index,
                            self._workers[worker_index].submit(
                                _serve_job, payload
                            ),
                        )
                    )
            responses: "list[TeamResponse | None]" = [None] * len(requests)
            # future.result() raises BrokenProcessPool if a worker died
            # mid-job (OOM kill, segfault) — an error the caller sees,
            # never a silently-respawned worker and a hang.
            with obs.span("pool.await"):
                for worker_index, future in pending:
                    try:
                        answers = future.result()
                    finally:
                        registry.gauge(f"pool_depth_r{worker_index}").add(-1)
                    for index, text in answers:
                        responses[index] = self._stamped(
                            TeamResponse.from_json(text), stamp
                        )
        assert all(r is not None for r in responses)
        return responses  # type: ignore[return-value]

    @staticmethod
    def _stamped(
        response: "TeamResponse", stamp: int | None
    ) -> "TeamResponse":
        """Stamp the replica's network version onto a pooled answer.

        Only when replication is attached (``stamp`` is not ``None``):
        an un-replicated pool keeps the exact pre-replication payload
        bytes.
        """
        if stamp is None:
            return response
        from dataclasses import replace

        return replace(response, network_version=stamp)

    def _stale_rejection(self) -> str | None:
        """The typed rejection message when the staleness budget is blown."""
        if self._log is None or self._max_lag_ms is None:
            return None
        lag = self._log.lag_ms(self._replica_version)
        if lag <= self._max_lag_ms:
            return None
        return (
            f"replicas are {lag:.0f}ms behind the primary "
            f"(version {self._replica_version}, budget "
            f"{self._max_lag_ms:.0f}ms) — sync and retry"
        )

    def _route(self, pin: tuple | None) -> int:
        """Pick the worker for a job; pinned keys stick for pool life.

        Thread-safe: concurrent callers (the persistent server's solve
        workers) round-robin without ever double-assigning a pin.
        """
        with self._route_lock:
            return self._route_locked(pin)

    def _route_locked(self, pin: tuple | None) -> int:
        """:meth:`_route` body; caller holds ``_route_lock``."""
        if pin is None:
            worker = self._next_worker
            self._next_worker = (self._next_worker + 1) % len(self._workers)
            return worker
        worker = self._pinned_worker.get(pin)
        if worker is None:
            # First sight of this cold group: round-robin over the
            # pinned assignments so multiple cold groups spread out.
            worker = len(self._pinned_worker) % len(self._workers)
            self._pinned_worker[pin] = worker
        return worker

    # ------------------------------------------------------------------
    # replication (see repro.serving.replication)
    # ------------------------------------------------------------------
    @property
    def replica_version(self) -> int:
        """The network version every replica currently serves."""
        return self._replica_version

    @property
    def snapshot_fallbacks(self) -> int:
        """How many syncs had to fall back to a full snapshot transfer."""
        return self._snapshot_fallbacks

    def attach_primary(
        self,
        log: "ReplicationLog",
        *,
        max_lag_ms: float | None = None,
    ) -> None:
        """Subscribe this pool's replicas to a primary's replication log.

        After attaching, :meth:`sync` advances every replica from the
        log's delta stream, every answer is stamped with the replica
        ``network_version`` it was computed at, and — when
        ``max_lag_ms`` is set — :meth:`solve_many` rejects requests
        with a typed ``stale_replica`` error whenever the replicas lag
        the primary by more than the budget, instead of ever answering
        from too-stale state.
        """
        if max_lag_ms is not None and max_lag_ms < 0:
            raise ValueError("max_lag_ms must be non-negative")
        self._log = log
        self._max_lag_ms = max_lag_ms

    def sync(self, log: "ReplicationLog | None" = None) -> int:
        """Advance every replica to the primary's tip; returns the version.

        The delta path: fetch ``log.delta_since(replica_version)`` and
        broadcast the (identical) bytes to every worker, where they
        replay through the engine's incremental reconciliation — zero
        index rebuilds when the delta allows it.  When the pool has
        fallen past the log's floor (:class:`JournalTruncatedError`) or
        a replica reports an unreconcilable lineage
        (:class:`StaleSnapshotError`), it falls back to one full
        snapshot transfer — counted in :attr:`snapshot_fallbacks` —
        and continues.
        """
        from ..storage.errors import JournalTruncatedError, StaleSnapshotError

        log = log if log is not None else self._log
        if log is None:
            raise RuntimeError("no replication log attached (attach_primary)")
        if self._closed:
            raise RuntimeError("the replica pool has been closed")
        registry = obs.global_registry()
        registry.counter("pool_syncs").inc()
        start = time.perf_counter()
        try:
            try:
                data = log.delta_since(self._replica_version)
            except JournalTruncatedError:
                data = None
            if data is not None:
                if not data:
                    return self._replica_version  # already at the tip
                try:
                    return self.apply_delta(data)
                except StaleSnapshotError:
                    # A replica's state cannot absorb the delta (diverged
                    # lineage): repair it the same way a truncated journal
                    # is repaired — with the primary's full state.
                    pass
            self._snapshot_fallbacks += 1
            registry.counter("pool_sync_fallbacks").inc()
            return self.apply_delta(log.snapshot_frame())
        finally:
            registry.reservoir("pool_sync").observe(time.perf_counter() - start)
            registry.gauge("replication_lag_ms").set(
                log.lag_ms(self._replica_version)
            )

    def apply_delta(self, data: bytes) -> int:
        """Broadcast one delta stream to every replica; returns the version.

        All replicas receive identical bytes, so they advance in
        lockstep; a divergent outcome (two replicas reporting different
        versions afterwards) is a hard error, never a quietly
        inconsistent pool.
        """
        if self._closed:
            raise RuntimeError("the replica pool has been closed")
        if not self._workers:
            assert self._local is not None
            from .replication import ReplicaFollower

            with obs.span("pool.apply_delta", bytes=len(data)):
                follower = ReplicaFollower(self._local)
                follower.apply(data)
            self._local = follower.engine
            self._replica_version = follower.version
            return self._replica_version
        with obs.span("pool.apply_delta", bytes=len(data)):
            futures = [
                worker.submit(_apply_delta_job, data)
                for worker in self._workers
            ]
            versions = {future.result() for future in futures}
        if len(versions) != 1:
            raise RuntimeError(
                f"replicas diverged after delta apply: versions {sorted(versions)}"
            )
        self._replica_version = versions.pop()
        return self._replica_version

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker processes down (idempotent).

        A closed pool refuses further batches; create a new pool to
        serve again.
        """
        self._closed = True
        for worker in self._workers:
            worker.shutdown(wait=False, cancel_futures=True)
        self._workers = []
        self._local = None

    def __enter__(self) -> "EngineReplicaPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EngineReplicaPool(snapshot={self._path.name!r}, "
            f"replicas={self.replicas}, warm={len(self._warm_bases)})"
        )
