"""Request placement for the replica pool: group, then split or pin.

The pool's scheduling problem is the engine's cache-key problem turned
inside out.  Inside one engine, a gamma-homogeneous batch pays for at
most one PLL build because every request after the first hits the keyed
oracle cache.  Across N replica processes there is no shared cache — so
a naive round-robin of a cold-gamma batch would pay for the same build
N times, once per replica it touched.

The placement rule keeps the pool-wide guarantee:

* requests are grouped by the oracle-cache base their solve will touch
  (:func:`request_index_key` — the ``(gamma, oracle_kind)`` grouping
  from the engine, refined by graph flavor exactly as the engine's own
  cache keys are);
* a group whose index is **warm in the snapshot** every replica loaded
  (or that needs no index at all) is split across all replicas — free
  parallelism, no build anywhere;
* a **cold** group is pinned to a single replica, so the missing index
  is built at most once pool-wide.

When the snapshot was built by a *sharded* engine, its meta carries a
``{skill: home shard}`` residency map.  Passing it to :func:`plan_jobs`
refines the splittable branch: instead of dealing a warm group
round-robin, requests are sub-grouped by the majority home shard of
their skills and each sub-group is pinned with a ``("shard", i)`` key.
The pool's sticky pin table then sends every shard-``i`` group to the
same replica batch after batch, so each replica's PLL source cache and
boundary-summary working set stay hot for *one* shard's neighborhood
instead of thrashing across all of them.
"""

from __future__ import annotations

from collections.abc import Collection, Mapping, Sequence

from ..api.messages import TeamRequest

__all__ = ["request_index_key", "request_home_shard", "plan_jobs"]

#: Solvers that never touch a distance oracle: their requests are
#: always free to spread across replicas.
_NO_INDEX_SOLVERS = frozenset(
    {"sa_optimal", "exact", "brute_force", "random"}
)


def request_index_key(request: TeamRequest) -> tuple | None:
    """The oracle-cache base ``request``'s solve will touch, or ``None``.

    Mirrors :meth:`TeamFormationEngine._search_entry`'s keying: ``cc``
    ignores gamma, ``ca`` degenerates to the fold at ``gamma=1``,
    RarestFirst measures the raw graph, and the assignment-style solvers
    use no distance index at all.  Pareto mines a whole gamma grid of
    folds, so it is modelled as its own (never-warm) group per
    ``oracle_kind`` and stays pinned to one replica.
    """
    solver = request.solver
    if solver in _NO_INDEX_SOLVERS:
        return None
    kind = request.oracle_kind
    if solver == "rarest_first":
        return (kind, "raw")
    if solver == "pareto":
        return (kind, "pareto")
    # Greedy (and unknown/custom solvers, conservatively treated like
    # it): Algorithm 1's search graph.
    objective = request.objective
    if objective == "cc":
        return (kind, "cc")
    effective_gamma = 1.0 if objective == "ca" else request.gamma
    return (kind, "fold", effective_gamma)


def request_home_shard(
    request: TeamRequest, shard_residency: Mapping[str, int]
) -> int | None:
    """Majority home shard of ``request``'s skills, or ``None``.

    Each skill votes for its home shard (where most of its holders
    live, per the residency map persisted in a sharded snapshot's
    meta); the request goes where most of its skills point, ties to
    the lowest shard id.  ``None`` when no skill is in the map — the
    request has no shard affinity and should be dealt round-robin.
    """
    votes: dict[int, int] = {}
    for skill in request.skills:
        home = shard_residency.get(skill)
        if home is not None:
            votes[home] = votes.get(home, 0) + 1
    if not votes:
        return None
    return max(votes.items(), key=lambda kv: (kv[1], -kv[0]))[0]


def plan_jobs(
    requests: Sequence[TeamRequest],
    replicas: int,
    warm_bases: Collection[tuple],
    shard_residency: Mapping[str, int] | None = None,
) -> list[tuple[tuple | None, list[int]]]:
    """Partition a batch into per-replica jobs of request *indices*.

    Returns ``(pin_key, indices)`` jobs in a deterministic order, where
    ``indices`` index into ``requests``.  Splittable groups (no index
    needed, or warm in ``warm_bases``) are dealt round-robin with
    ``pin_key=None`` so heterogeneous solve times balance; a cold group
    stays whole and carries its index base as ``pin_key`` — the pool
    routes every job with the same ``pin_key`` to the same replica, so
    the missing index is built at most once pool-wide *across batches*,
    not merely within one.  The caller reassembles responses by index,
    so job order never affects the response order.

    With ``shard_residency`` (the ``{skill: home shard}`` map from a
    sharded snapshot's meta), splittable *index-backed* groups are
    instead sub-grouped by :func:`request_home_shard` and pinned with
    ``("shard", i)`` keys, keeping each shard's query locality on one
    replica; requests with no shard affinity still deal round-robin.
    No-index solver groups ignore residency — they never touch labels,
    so affinity buys nothing and balance wins.
    """
    if replicas < 1:
        raise ValueError("replicas must be positive")
    warm = set(warm_bases)
    groups: dict[tuple | None, list[int]] = {}
    for index, request in enumerate(requests):
        groups.setdefault(request_index_key(request), []).append(index)
    jobs: list[tuple[tuple | None, list[int]]] = []
    for key, indices in groups.items():
        dijkstra_backed = key is not None and key[0] == "dijkstra"
        splittable = (
            key is None
            or key in warm
            # A Dijkstra "index" is lazy per-source trees — there is no
            # build to duplicate, so pinning would only serialize.
            or (dijkstra_backed and key[1] != "pareto")
        )
        if not splittable:
            jobs.append((key, indices))
            continue
        if shard_residency is not None and key is not None and replicas > 1:
            by_shard: dict[int, list[int]] = {}
            free: list[int] = []
            for index in indices:
                home = request_home_shard(requests[index], shard_residency)
                if home is None:
                    free.append(index)
                else:
                    by_shard.setdefault(home, []).append(index)
            for shard in sorted(by_shard):
                jobs.append((("shard", shard), by_shard[shard]))
            indices = free
            if not indices:
                continue
        if replicas > 1 and len(indices) > 1:
            for offset in range(min(replicas, len(indices))):
                jobs.append((None, indices[offset::replicas]))
        else:
            jobs.append((None, indices))
    return [(pin, job) for pin, job in jobs if job]
