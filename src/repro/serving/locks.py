"""Synchronization primitives for the concurrent serving layer.

The engine's concurrency contract has two tiers of exclusion:

* a **reader/writer discipline** — many solves may run concurrently
  (readers), but state transitions that would tear an in-flight solve
  (network mutation through :meth:`TeamFormationEngine.mutate`, eager
  reconciliation in :meth:`~TeamFormationEngine.apply_updates`,
  :meth:`~TeamFormationEngine.refresh_scales`) are writers and run
  alone;
* **single-flight index builds** — concurrent cache misses on the same
  oracle key block on one per-key :class:`threading.Lock` so a cold
  engine hammered from N threads pays for exactly one PLL build
  (asserted via ``pll_build_count`` in the regression suite).

This module provides the first tier.  :class:`ReadWriteLock` is
deliberately small: reentrant for readers and the writer (a solve may
nest engine calls; ``mutate`` may nest ``apply_updates``), writer-
preferring (a waiting writer blocks *new* top-level readers, so a
mutation burst cannot be starved by a solve stream), and it refuses
read→write upgrades outright — upgrade deadlocks are a bug in the
caller, not a scheduling problem to solve here.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """A reentrant, writer-preferring readers/writer lock.

    * Any number of threads may hold the **read** side concurrently.
    * The **write** side is exclusive against readers and other writers.
    * A thread already holding either side may re-acquire the read side,
      and the writer may re-acquire the write side (recursion depths are
      tracked per thread), so nested engine entry points never
      self-deadlock.
    * A thread holding only the read side must not request the write
      side: two such threads would deadlock symmetrically, so the
      attempt raises :class:`RuntimeError` immediately.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers: dict[int, int] = {}  # thread ident -> recursion depth
        self._writer: int | None = None
        self._writer_depth = 0
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        """Take (or deepen) this thread's hold on the read side."""
        me = threading.get_ident()
        with self._cond:
            # Reentrant fast path: a thread already inside (either side)
            # may deepen its read hold even while a writer is queued —
            # blocking it would deadlock the lock against itself.
            if self._writer == me or me in self._readers:
                self._readers[me] = self._readers.get(me, 0) + 1
                return
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers[me] = 1

    def release_read(self) -> None:
        """Undo one :meth:`acquire_read` by this thread."""
        me = threading.get_ident()
        with self._cond:
            depth = self._readers.get(me, 0)
            if depth <= 0:
                raise RuntimeError("release_read without a matching acquire")
            if depth == 1:
                del self._readers[me]
                if not self._readers:
                    self._cond.notify_all()
            else:
                self._readers[me] = depth - 1

    @contextmanager
    def read_locked(self):
        """``with rw.read_locked():`` — hold the read side for the block."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def acquire_write(self) -> None:
        """Take (or deepen) exclusive ownership of the lock."""
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if self._readers.get(me):
                raise RuntimeError(
                    "cannot upgrade a read lock to a write lock; release "
                    "the read side first"
                )
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        """Undo one :meth:`acquire_write` by the writer thread."""
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write by a non-writer thread")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    @contextmanager
    def write_locked(self):
        """``with rw.write_locked():`` — hold the write side for the block."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    # ------------------------------------------------------------------
    # introspection (tests / diagnostics)
    # ------------------------------------------------------------------
    @property
    def active_readers(self) -> int:
        """How many distinct threads currently hold the read side."""
        with self._cond:
            return len(self._readers)

    @property
    def write_held(self) -> bool:
        """Whether any thread currently holds the write side."""
        with self._cond:
            return self._writer is not None

    @property
    def write_held_by_current_thread(self) -> bool:
        """Whether *this* thread holds the write side.

        This is what the engine's mutation guard asks: a direct network
        mutation is sanctioned exactly when the calling thread is inside
        ``engine.mutate()`` (or another exclusive-writer entry point).
        """
        with self._cond:
            return self._writer == threading.get_ident()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReadWriteLock(readers={self.active_readers}, "
            f"writer={self.write_held})"
        )
