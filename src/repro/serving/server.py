"""The serving loops behind ``repro-teams serve``: batch and persistent.

**Batch mode** (:func:`read_requests` / :func:`serve_batch`) answers one
JSON-lines request batch and exits — one request per line (a
:class:`TeamRequest` dict), one response per line (a
:class:`TeamResponse` JSON object), in request order::

    {"skills": ["SN", "TM"], "solver": "greedy", "lam": 0.4}
    {"skills": ["DB"], "solver": "rarest_first"}

Batch parsing is strict and **up front**: a malformed line, an
unvalidatable request, or an unknown solver is a usage error naming the
offending line — the caller (the CLI) reports it cleanly and exits 2,
matching the ``mutate --script`` convention, before any work is done.
Failures *during* solving, by contrast, are served in-band: the batch
runs with per-request error isolation, so one request a solver chokes
on becomes one typed error response instead of aborting the batch.

**Persistent mode** (:class:`TeamServer`) is the long-lived asyncio
front end: the same NDJSON protocol over a TCP or Unix socket
(:mod:`repro.serving.server_conn`), backed by a warm engine or an
:class:`~repro.serving.pool.EngineReplicaPool`, with

* **admission control** — a bounded pending queue; a request arriving
  while it is full is answered immediately with a typed ``overloaded``
  error response, never buffered without bound or silently dropped;
* **per-request deadlines** — ``TeamRequest.deadline_ms`` (or the
  server default) is honored end to end: a request whose budget expires
  while still queued is answered ``deadline_exceeded`` without ever
  occupying a solve worker;
* **metrics** (:mod:`repro.serving.metrics`) — counters, gauges and
  streaming latency percentiles, exposed in-band via ``{"op": "stats"}``
  and an optional periodic log line;
* **zero-downtime hot reload** — on SIGHUP or ``{"op": "reload"}`` the
  backend loader runs again in the background (re-resolving the
  snapshot store's LATEST pointer), the fresh backend is swapped in
  atomically, and the old one is drained: in-flight solves hold a lease
  on the backend they started on and complete there, so no request ever
  observes a torn mix of versions.  A failed reload (corrupt LATEST,
  vanished store) is logged and counted; the old backend keeps serving.

Solves run in a thread-pool executor (the engine is thread-safe since
PR 5), so the event loop never blocks on a solve and keeps accepting —
and rejecting — traffic at full speed while workers are busy.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import threading
import time
from collections.abc import Callable, Collection, Sequence
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import IO

from .. import obs
from ..api.messages import TeamRequest, TeamResponse
from ..obs import MetricsRegistry, render_prometheus
from .server_conn import serve_connection

__all__ = [
    "read_requests",
    "serve_batch",
    "TeamServer",
    "BackgroundServer",
    "EngineBackend",
    "PoolBackend",
    "ReplicatedBackend",
    "store_backend_loader",
    "fixed_engine_loader",
    "replicated_backend_loader",
]

logger = logging.getLogger("repro.serving")

#: The slow-query log: one structured JSON line (full span tree) per
#: over-threshold request, kept on its own logger so operators can route
#: it (e.g. to a file) without touching the serving log.
_slow_logger = logging.getLogger("repro.obs.slow")


def read_requests(
    text: str, *, solver_names: Collection[str] | None = None
) -> list[TeamRequest]:
    """Parse a JSON-lines request batch (blank / ``#`` lines skipped).

    Raises :class:`ValueError` naming the first offending line for
    malformed JSON, a non-object line, an invalid request, or — when
    ``solver_names`` is given — a solver the registry does not know.
    An empty batch is also a :class:`ValueError`: a serve invocation
    with nothing to serve is a usage error, not a silent no-op.
    """
    requests: list[TeamRequest] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: invalid JSON ({exc})") from None
        if not isinstance(data, dict):
            raise ValueError(
                f"line {lineno}: expected a JSON object with a 'skills' key"
            )
        try:
            request = TeamRequest.from_dict(data)
        except KeyError as exc:
            raise ValueError(
                f"line {lineno}: missing required field {exc.args[0]!r}"
            ) from None
        except (TypeError, ValueError) as exc:
            raise ValueError(f"line {lineno}: {exc}") from None
        if solver_names is not None and request.solver not in solver_names:
            known = ", ".join(sorted(solver_names))
            raise ValueError(
                f"line {lineno}: unknown solver {request.solver!r}; "
                f"registered solvers: {known}"
            )
        requests.append(request)
    if not requests:
        raise ValueError("no requests in input (empty batch)")
    return requests


def serve_batch(
    solve_many: Callable[[list[TeamRequest]], Sequence[TeamResponse]],
    requests: list[TeamRequest],
    out: IO[str],
) -> dict[str, int]:
    """Serve one parsed batch; write responses as JSON lines to ``out``.

    ``solve_many`` is whichever backend answers the batch — the shared
    engine (optionally threaded) or a replica pool; both already apply
    per-request error isolation.  Returns the tally::

        {"requests": n, "found": n, "misses": n, "errors": n}

    where ``misses`` are legitimate negative answers (uncoverable /
    intractable) and ``errors`` are requests the isolation layer caught.
    """
    responses = solve_many(requests)
    tally = {"requests": len(requests), "found": 0, "misses": 0, "errors": 0}
    for response in responses:
        out.write(response.to_json())
        out.write("\n")
        if response.found:
            tally["found"] += 1
        elif response.error_kind in (None, "uncoverable", "intractable"):
            tally["misses"] += 1
        else:
            tally["errors"] += 1
    return tally


# ----------------------------------------------------------------------
# persistent serving: backends
# ----------------------------------------------------------------------
class EngineBackend:
    """A :class:`TeamFormationEngine` as a server backend.

    ``solve`` routes through :meth:`~TeamFormationEngine.solve_isolated`
    so a poisoned request becomes one typed error response — the server
    must answer, never crash.  The engine is thread-safe, so one backend
    serves every executor worker concurrently.
    """

    def __init__(self, engine, *, snapshot_path: "Path | None" = None) -> None:
        self.engine = engine
        self.snapshot_path = Path(snapshot_path) if snapshot_path else None

    def solve(self, request: TeamRequest) -> TeamResponse:
        """Answer one request with a typed (never-raising) response."""
        return self.engine.solve_isolated(request)

    def describe(self) -> dict:
        """JSON-ready identity of this backend (stats/reload envelopes)."""
        network = self.engine.network
        return {
            "kind": "engine",
            "network_version": network.version,
            "experts": len(network),
            "snapshot": self.snapshot_path.name if self.snapshot_path else None,
        }

    def close(self) -> None:
        """Nothing to tear down for an in-process engine."""


class PoolBackend:
    """An :class:`~repro.serving.pool.EngineReplicaPool` as a backend.

    Each request travels as its own single-element batch, so the pool's
    warm/cold routing still applies and responses stay byte-identical
    to the in-process engine.  ``close`` shuts the worker processes
    down — the server calls it only after every in-flight lease on this
    backend has been released, which is what makes hot reload
    zero-downtime for the pool tier too.
    """

    def __init__(self, pool) -> None:
        self.pool = pool

    def solve(self, request: TeamRequest) -> TeamResponse:
        """Answer one request through the replica pool (error-isolated)."""
        return self.pool.solve_many([request])[0]

    def describe(self) -> dict:
        """JSON-ready identity of this backend (stats/reload envelopes)."""
        return {
            "kind": "pool",
            "replicas": self.pool.replicas,
            "snapshot": self.pool.snapshot_path.name,
        }

    def close(self) -> None:
        """Shut the worker processes down."""
        self.pool.close()


class ReplicatedBackend:
    """A live primary engine delta-replicated into a follower pool.

    The backend PR 7's :class:`PoolBackend` could not be: *mutable*.
    The primary engine owns the authoritative network; a
    :class:`~repro.serving.replication.ReplicationLog` captures its
    mutation stream; the replica pool's followers advance from that
    stream (:meth:`EngineReplicaPool.sync`) instead of being frozen at
    their warm-start snapshot.  Solves route to the followers (with the
    pool's bounded-staleness admission check and ``network_version``
    stamping); :meth:`mutate` applies a list of JSON mutation ops to
    the primary and immediately syncs the followers, so by the time the
    ``mutate`` envelope is answered, every replica serves the new
    version.
    """

    def __init__(
        self, pool, log, *, snapshot_path: "Path | None" = None
    ) -> None:
        self.pool = pool
        self.log = log
        self.snapshot_path = Path(snapshot_path) if snapshot_path else None

    def solve(self, request: TeamRequest) -> TeamResponse:
        """Answer one request through the follower pool (error-isolated)."""
        return self.pool.solve_many([request])[0]

    def mutate(self, ops: "list[dict]") -> dict:
        """Apply mutation ops to the primary, then sync the followers.

        Ops use the shared JSON vocabulary of
        :func:`repro.serving.replication.apply_network_op`.  Applies
        under the primary engine's write lock; a failing op stops the
        list there (earlier ops stay applied, as in the ``mutate`` CLI)
        but the followers are *still* synced to whatever prefix landed,
        so primary and replicas never drift apart on an error path.
        """
        from ..graph.adjacency import GraphError
        from .replication import apply_network_op

        engine = self.log.engine
        error = None
        applied = 0
        with engine.mutate() as network:
            for op in ops:
                try:
                    apply_network_op(network, op)
                except (KeyError, ValueError, GraphError) as exc:
                    error = f"op {applied + 1} ({op.get('op')!r}): {exc}"
                    break
                applied += 1
        replica_version = self.pool.sync(self.log)
        report = {
            "ok": error is None,
            "applied": applied,
            "primary_version": engine.network.version,
            "replica_version": replica_version,
            "snapshot_fallbacks": self.pool.snapshot_fallbacks,
        }
        if error is not None:
            report["error"] = error
        return report

    def describe(self) -> dict:
        """JSON-ready identity of this backend (stats/reload envelopes)."""
        return {
            "kind": "replicated",
            "replicas": self.pool.replicas,
            "primary_version": self.log.engine.network.version,
            "replica_version": self.pool.replica_version,
            "snapshot_fallbacks": self.pool.snapshot_fallbacks,
            "snapshot": self.snapshot_path.name if self.snapshot_path else None,
        }

    def close(self) -> None:
        """Detach the log and shut the worker processes down."""
        self.log.close()
        self.pool.close()


def store_backend_loader(
    source: "str | Path", *, replicas: int | None = None
) -> Callable[[], "EngineBackend | PoolBackend"]:
    """A backend loader over a snapshot store — the hot-reload path.

    The returned callable re-resolves ``source`` (a store directory, a
    :class:`SnapshotStore`, or one ``*.snap`` file) to a concrete
    snapshot **every time it runs**, so each reload picks up the store's
    current LATEST pointer.  With ``replicas`` it warm-starts an
    :class:`EngineReplicaPool`; otherwise one in-process engine.
    """
    from ..storage.store import resolve_snapshot_path

    def load() -> "EngineBackend | PoolBackend":
        path = resolve_snapshot_path(source)
        if replicas is not None and replicas > 1:
            from .pool import EngineReplicaPool

            return PoolBackend(EngineReplicaPool(path, replicas=replicas))
        from ..api.engine import TeamFormationEngine

        return EngineBackend(
            TeamFormationEngine.from_snapshot(path), snapshot_path=path
        )

    return load


def replicated_backend_loader(
    source: "str | Path",
    *,
    replicas: int | None = None,
    max_lag_ms: float | None = None,
) -> Callable[[], ReplicatedBackend]:
    """A backend loader for replicated serving (``serve --replicate``).

    Each run (startup and every hot reload) re-resolves ``source`` to
    the store's current LATEST snapshot, warm-starts the primary engine
    *and* the follower pool from those identical bytes, and wires the
    primary's :class:`~repro.serving.replication.ReplicationLog` into
    the pool with the given staleness budget.
    """
    from ..storage.store import resolve_snapshot_path

    def load() -> ReplicatedBackend:
        path = resolve_snapshot_path(source)
        from ..api.engine import TeamFormationEngine
        from .pool import EngineReplicaPool
        from .replication import ReplicationLog

        primary = TeamFormationEngine.from_snapshot(path)
        log = ReplicationLog(primary)
        try:
            pool = EngineReplicaPool(path, replicas=replicas)
        except BaseException:
            log.close()
            raise
        pool.attach_primary(log, max_lag_ms=max_lag_ms)
        return ReplicatedBackend(pool, log, snapshot_path=path)

    return load


def fixed_engine_loader(engine) -> Callable[[], EngineBackend]:
    """A loader around one pre-built engine (no store: reload re-serves it).

    Used when the server is started from a freshly built network rather
    than a snapshot store.  Reload is a no-op swap to the same engine —
    still safe, just not useful — because there is no LATEST pointer to
    re-resolve; serving from a store is what makes reload meaningful.
    """
    backend = EngineBackend(engine)

    def load() -> EngineBackend:
        return backend

    return load


class _Lease:
    """In-flight reference counting for one backend generation.

    All mutation happens on the event-loop thread (dispatchers acquire
    before handing the solve to the executor and release after awaiting
    it), so plain integers suffice.  ``retire`` marks the generation
    dead; the last release closes it.  A generation retired with zero
    holders closes immediately.
    """

    __slots__ = ("backend", "holders", "retired")

    def __init__(self, backend) -> None:
        self.backend = backend
        self.holders = 0
        self.retired = False

    def acquire(self):
        self.holders += 1
        return self.backend

    def release(self) -> None:
        self.holders -= 1
        if self.retired and self.holders == 0:
            self.backend.close()

    def retire(self) -> None:
        self.retired = True
        if self.holders == 0:
            self.backend.close()


class _Pending:
    """One admitted request waiting for (or occupying) a worker.

    ``span`` is the request's root trace span (``None`` when tracing is
    off) and ``queue_span`` its queue-wait child, started at admission
    and finished when a dispatcher picks the item up.
    """

    __slots__ = ("request", "expiry", "arrival", "future", "span", "queue_span")

    def __init__(
        self, request, expiry, arrival, future, span=None, queue_span=None
    ) -> None:
        self.request = request
        self.expiry = expiry
        self.arrival = arrival
        self.future = future
        self.span = span
        self.queue_span = queue_span


#: Sentinel that tells a dispatcher task to exit.
_STOP = object()


class TeamServer:
    """The persistent asyncio serving front end.

    Parameters
    ----------
    loader:
        Zero-argument callable returning a fresh backend
        (:class:`EngineBackend` or :class:`PoolBackend`).  Runs once at
        startup and once per hot reload, always off the event loop.
    max_pending:
        Bound on the pending-request queue (admitted but not yet picked
        up by a worker).  Arrivals beyond it are answered ``overloaded``.
    default_deadline_ms:
        Deadline applied to requests that carry no ``deadline_ms`` of
        their own; ``None`` means such requests never expire.
    workers:
        Solve concurrency: dispatcher tasks and executor threads.  The
        engine is GIL-bound for pure-Python solves, so this buys
        latency overlap more than throughput; a :class:`PoolBackend`
        adds real parallelism.
    stats_interval:
        Seconds between periodic stats log lines (0 disables).
    drain_timeout:
        Upper bound on waiting for in-flight requests during
        :meth:`stop`.
    slow_ms:
        Slow-query threshold: any request whose root span outlives it
        is logged — full span tree, one structured JSON line — on the
        ``repro.obs.slow`` logger and counted in ``slow_queries``.
        ``None`` (default) disables the log.
    trace_requests:
        When true, every answered request carries its finished span
        tree in ``timing.trace``.  Identity-safe: ``canonical_json()``
        nulls ``timing``, so traced and untraced responses stay
        byte-identical under the serving identity contract.
    """

    def __init__(
        self,
        loader: Callable[[], "EngineBackend | PoolBackend"],
        *,
        max_pending: int = 64,
        default_deadline_ms: int | None = None,
        workers: int = 2,
        stats_interval: float = 0.0,
        drain_timeout: float = 30.0,
        metrics: MetricsRegistry | None = None,
        slow_ms: float | None = None,
        trace_requests: bool = False,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be positive")
        if workers < 1:
            raise ValueError("workers must be positive")
        if default_deadline_ms is not None and default_deadline_ms < 0:
            raise ValueError("default_deadline_ms must be non-negative")
        if slow_ms is not None and slow_ms < 0:
            raise ValueError("slow_ms must be non-negative")
        self._loader = loader
        self._max_pending = max_pending
        self._default_deadline_ms = default_deadline_ms
        self._workers = workers
        self._stats_interval = stats_interval
        self._drain_timeout = drain_timeout
        self._slow_ms = slow_ms
        self._trace_requests = trace_requests
        # Per-request root spans exist when either surface needs them.
        self._tracing = slow_ms is not None or trace_requests
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._lease: _Lease | None = None
        self._server: asyncio.AbstractServer | None = None
        self._dispatchers: list[asyncio.Task] = []
        self._conn_tasks: set[asyncio.Task] = set()
        self._stats_task: asyncio.Task | None = None
        self._reload_lock = asyncio.Lock()
        self._in_flight = 0
        self._stopping = False
        self._stop_task: asyncio.Task | None = None
        self._done = asyncio.Event()
        self._unix_path: Path | None = None
        self._address: tuple[str, int] | str | None = None
        self._started_at = time.monotonic()
        self._sighup_installed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(
        self,
        *,
        host: str | None = None,
        port: int | None = None,
        unix_path: "str | Path | None" = None,
    ) -> "tuple[str, int] | str":
        """Load the initial backend and start listening.

        Exactly one of ``host``/``port`` or ``unix_path`` selects the
        transport.  Returns the bound address — ``(host, port)`` with
        the real port for ``port=0``, or the socket path.  SIGHUP is
        wired to :meth:`reload` where the platform and thread allow it
        (best effort: background-thread loops cannot own signals).
        """
        if (unix_path is None) == (host is None or port is None):
            raise ValueError("pass either host+port or unix_path, not both")
        self._loop = asyncio.get_running_loop()
        self._started_at = time.monotonic()
        backend = await asyncio.to_thread(self._loader)
        self._lease = _Lease(backend)
        self._queue = asyncio.Queue(maxsize=self._max_pending)
        self._executor = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="team-serve"
        )
        self._dispatchers = [
            self._loop.create_task(self._dispatch(), name=f"dispatch-{i}")
            for i in range(self._workers)
        ]
        if self._stats_interval > 0:
            self._stats_task = self._loop.create_task(self._stats_loop())
        if unix_path is not None:
            self._unix_path = Path(unix_path)
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=str(self._unix_path)
            )
            self._address = str(self._unix_path)
        else:
            self._server = await asyncio.start_server(
                self._on_connection, host=host, port=port
            )
            bound = self._server.sockets[0].getsockname()
            self._address = (bound[0], bound[1])
        try:
            self._loop.add_signal_handler(signal.SIGHUP, self._on_sighup)
            self._sighup_installed = True
        except (NotImplementedError, RuntimeError, ValueError):
            self._sighup_installed = False  # non-unix or non-main thread
        logger.info("serving on %s (backend %s)", self._address, backend.describe())
        return self._address

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` (or a shutdown op/signal) completes."""
        await self._done.wait()

    @property
    def address(self) -> "tuple[str, int] | str | None":
        return self._address

    @property
    def stopping(self) -> bool:
        return self._stopping

    def request_shutdown(self) -> None:
        """Begin a graceful stop from sync context (signal handlers, ops)."""
        if self._loop is None or self._stop_task is not None:
            return
        self._stop_task = self._loop.create_task(self.stop())

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, tear down.

        Idempotent.  New connections are refused immediately; open
        connections finish their current request (the handlers observe
        :attr:`stopping` and exit); queued and in-flight requests are
        answered (bounded by ``drain_timeout``); then dispatchers, the
        executor, the backend and the socket are torn down.
        """
        if self._stopping:
            await self._done.wait()
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._sighup_installed and self._loop is not None:
            try:
                self._loop.remove_signal_handler(signal.SIGHUP)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        deadline = time.monotonic() + self._drain_timeout
        while (
            self._queue is not None
            and (self._queue.qsize() > 0 or self._in_flight > 0)
            and time.monotonic() < deadline
        ):
            await asyncio.sleep(0.01)
        for task in self._dispatchers:
            task.cancel()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._stats_task is not None:
            self._stats_task.cancel()
        await asyncio.gather(
            *self._dispatchers, *self._conn_tasks, return_exceptions=True
        )
        if self._stats_task is not None:
            await asyncio.gather(self._stats_task, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self._lease is not None:
            self._lease.retire()
        if self._unix_path is not None:
            self._unix_path.unlink(missing_ok=True)
        logger.info("server stopped (%s)", self.metrics.format_line())
        self._done.set()

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    async def submit(self, request: TeamRequest) -> str:
        """Admit one request and await its response JSON line.

        This is the whole admission story: compute the effective
        deadline, reject an already-expired request without queueing it,
        reject on a full queue with a typed ``overloaded`` response, and
        otherwise wait for a dispatcher to answer.
        """
        assert self._loop is not None and self._queue is not None
        metrics = self.metrics
        metrics.counter("requests_received").inc()
        arrival = self._loop.time()
        root = queue_span = None
        if self._tracing:
            root = obs.get_tracer().trace(
                "request", solver=request.solver
            ).start()
        deadline_ms = (
            request.deadline_ms
            if request.deadline_ms is not None
            else self._default_deadline_ms
        )
        expiry = arrival + deadline_ms / 1e3 if deadline_ms is not None else None
        if self._stopping:
            metrics.counter("rejected_overloaded").inc()
            self._finish_trace(root, "overloaded")
            return TeamResponse.for_error(
                request, "overloaded", "server is shutting down"
            ).to_json()
        if expiry is not None and expiry <= arrival:
            metrics.counter("rejected_deadline").inc()
            self._finish_trace(root, "deadline_exceeded")
            return self._deadline_response(request, deadline_ms)
        if root is not None:
            queue_span = root.child("queue_wait").start()
        item = _Pending(
            request, expiry, arrival, self._loop.create_future(),
            root, queue_span,
        )
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            metrics.counter("rejected_overloaded").inc()
            self._finish_trace(root, "overloaded")
            return TeamResponse.for_error(
                request,
                "overloaded",
                f"pending queue full ({self._max_pending} requests); "
                "retry with backoff",
            ).to_json()
        metrics.gauge("pending").set(self._queue.qsize())
        return await item.future

    def _finish_trace(self, root, outcome: str) -> None:
        """Finish a request's root span; log it when over ``slow_ms``."""
        if root is None:
            return
        root.set_attribute("outcome", outcome)
        root.finish()
        if self._slow_ms is not None and root.wall_ms >= self._slow_ms:
            self.metrics.counter("slow_queries").inc()
            _slow_logger.warning(
                json.dumps(
                    {
                        "slow_ms": round(root.wall_ms, 3),
                        "threshold_ms": self._slow_ms,
                        "trace": root.to_dict(),
                    },
                    sort_keys=True,
                )
            )

    @staticmethod
    def _deadline_response(request: TeamRequest, deadline_ms: int | None) -> str:
        return TeamResponse.for_error(
            request,
            "deadline_exceeded",
            f"deadline of {deadline_ms} ms expired before a worker was free",
        ).to_json()

    async def _dispatch(self) -> None:
        """One worker: pull admitted requests, enforce deadlines, solve.

        The expiry check happens *here*, after the queue wait — an
        expired request is answered without ever reaching the executor,
        so it cannot occupy a worker thread that live requests need.
        The backend lease is taken before the executor hop and released
        after it, pinning this solve to one backend generation across
        any concurrent hot reload.
        """
        assert self._loop is not None and self._queue is not None
        metrics = self.metrics
        while True:
            item = await self._queue.get()
            metrics.gauge("pending").set(self._queue.qsize())
            if item is _STOP:  # pragma: no cover - legacy escape hatch
                return
            if item.queue_span is not None:
                item.queue_span.finish()
            if item.expiry is not None and self._loop.time() >= item.expiry:
                metrics.counter("rejected_deadline").inc()
                self._finish_trace(item.span, "deadline_exceeded")
                item.future.set_result(
                    self._deadline_response(
                        item.request,
                        item.request.deadline_ms
                        if item.request.deadline_ms is not None
                        else self._default_deadline_ms,
                    )
                )
                continue
            assert self._lease is not None
            lease = self._lease
            backend = lease.acquire()
            self._in_flight += 1
            metrics.gauge("in_flight").set(self._in_flight)
            try:
                if item.span is not None:
                    # Executor threads do not inherit the loop's
                    # context: tracer.run re-parents everything the
                    # solve opens under this request's root span.
                    response = await self._loop.run_in_executor(
                        self._executor,
                        obs.get_tracer().run,
                        item.span,
                        backend.solve,
                        item.request,
                    )
                else:
                    response = await self._loop.run_in_executor(
                        self._executor, backend.solve, item.request
                    )
            except Exception as exc:  # noqa: BLE001 - serving boundary
                logger.exception("backend solve failed")
                response = TeamResponse.for_error(
                    item.request, "internal", f"{type(exc).__name__}: {exc}"
                )
            finally:
                self._in_flight -= 1
                metrics.gauge("in_flight").set(self._in_flight)
                lease.release()
            if response.found:
                metrics.counter("answered_found").inc()
                outcome = "found"
            elif response.error_kind in (None, "uncoverable", "intractable"):
                metrics.counter("answered_no_team").inc()
                outcome = "no_team"
            else:
                metrics.counter("answered_error").inc()
                outcome = response.error_kind or "error"
            if item.span is not None:
                self._finish_trace(item.span, outcome)
                if self._trace_requests:
                    response = response.with_trace(item.span.to_dict())
            metrics.reservoir("request").observe(self._loop.time() - item.arrival)
            if not item.future.done():
                item.future.set_result(response.to_json())

    # ------------------------------------------------------------------
    # admin ops
    # ------------------------------------------------------------------
    async def handle_op(self, op: "str | dict") -> dict:
        """Answer one admin op with its JSON envelope.

        Accepts the whole parsed op object (payload-carrying ops like
        ``mutate`` need their extra keys) or, for convenience and
        backward compatibility, a bare op name.
        """
        data = {"op": op} if isinstance(op, str) else op
        name = data["op"]
        self.metrics.counter(f"op_{name}").inc()
        if name == "ping":
            return {"op": "ping", "ok": True}
        if name == "stats":
            return self.stats()
        if name == "metrics":
            return {
                "op": "metrics",
                "content_type": "text/plain; version=0.0.4",
                "text": render_prometheus(self.merged_metrics()),
            }
        if name == "reload":
            return await self.reload(reason="admin op")
        if name == "mutate":
            return await self._handle_mutate(data)
        if name == "shutdown":
            self.request_shutdown()
            return {"op": "shutdown", "ok": True}
        raise ValueError(f"unknown op {name!r}")  # parse_line filters first

    async def _handle_mutate(self, data: dict) -> dict:
        """Apply a ``mutate`` op's ``"ops"`` list on a mutable backend.

        Runs the backend's ``mutate`` (apply to primary + sync
        followers) in a thread with a lease held, so a concurrent hot
        reload can never close the backend mid-mutation.  Backends
        without a ``mutate`` method (plain engine/pool) answer a typed
        refusal — mutation requires ``serve --replicate``.
        """
        metrics = self.metrics
        ops = data.get("ops")
        if not isinstance(ops, list) or not all(
            isinstance(entry, dict) for entry in ops
        ):
            metrics.counter("mutate_failed").inc()
            return {
                "op": "mutate",
                "ok": False,
                "error": 'mutate requires an "ops" list of objects',
            }
        assert self._lease is not None
        lease = self._lease
        backend = lease.acquire()
        try:
            mutate = getattr(backend, "mutate", None)
            if mutate is None:
                metrics.counter("mutate_failed").inc()
                return {
                    "op": "mutate",
                    "ok": False,
                    "error": "backend does not support mutation "
                    "(start the server with --replicate)",
                    "backend": backend.describe(),
                }
            report = await asyncio.to_thread(mutate, ops)
        except Exception as exc:  # noqa: BLE001 - serving boundary
            logger.exception("mutate op failed")
            metrics.counter("mutate_failed").inc()
            return {
                "op": "mutate",
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
            }
        finally:
            lease.release()
        # Every mutate lands in exactly one of mutate_ok/mutate_failed,
        # so op_mutate == mutate_ok + mutate_failed post-quiesce.  A
        # completed backend mutate always synced the followers (even a
        # partial-prefix failure syncs what landed), hence the
        # replication counters here.
        metrics.counter(
            "mutate_ok" if report.get("ok") else "mutate_failed"
        ).inc()
        metrics.counter("mutate_ops_applied").inc(int(report.get("applied", 0)))
        metrics.counter("replication_syncs").inc()
        metrics.gauge("replication_snapshot_fallbacks").set(
            float(report.get("snapshot_fallbacks", 0))
        )
        return {"op": "mutate", **report}

    def merged_metrics(self) -> dict:
        """Server registry + per-layer global registry, one snapshot.

        Name collisions cannot happen by convention: layer
        instrumentation prefixes its names (``engine_``, ``kernel_``,
        ``oracle_``, ``pool_``, ``replication_``, ``pll_``, ``flat_``)
        while the server registry keeps the PR-7 vocabulary.
        """
        merged = self.metrics.snapshot()
        layers = obs.global_registry().snapshot()
        for section in ("counters", "gauges", "latency"):
            merged[section] = {**merged[section], **layers.get(section, {})}
        return merged

    def stats(self) -> dict:
        """The stats-op envelope: server facts, backend, metrics."""
        assert self._lease is not None
        return {
            "op": "stats",
            "server": {
                "uptime_seconds": time.monotonic() - self._started_at,
                "max_pending": self._max_pending,
                "default_deadline_ms": self._default_deadline_ms,
                "workers": self._workers,
                "stopping": self._stopping,
                "sighup_reload": self._sighup_installed,
            },
            "backend": self._lease.backend.describe(),
            **self.metrics.snapshot(),
            "layers": obs.global_registry().snapshot(),
        }

    # ------------------------------------------------------------------
    # hot reload
    # ------------------------------------------------------------------
    def _on_sighup(self) -> None:
        assert self._loop is not None
        self._loop.create_task(self.reload(reason="SIGHUP"))

    async def reload(self, *, reason: str = "manual") -> dict:
        """Swap to a freshly loaded backend with zero downtime.

        The loader runs in a thread (``asyncio.to_thread``) so warming
        the new engine/pool never blocks the event loop: traffic keeps
        flowing on the old backend the whole time.  On success the
        fresh backend is published with one assignment (dispatchers
        read ``self._lease`` once per request), and the old generation
        is retired — it closes when its last in-flight solve releases
        its lease.  On failure the old backend keeps serving; the
        error is logged and counted, never fatal.

        Concurrent reloads serialize on a lock, so a SIGHUP burst warms
        one backend at a time.
        """
        metrics = self.metrics
        async with self._reload_lock:
            metrics.counter("reloads_requested").inc()
            logger.info("reload requested (%s)", reason)
            try:
                backend = await asyncio.to_thread(self._loader)
            except Exception as exc:  # noqa: BLE001 - reload must not kill serving
                metrics.counter("reloads_failed").inc()
                logger.error("reload failed, keeping current backend: %s", exc)
                assert self._lease is not None
                return {
                    "op": "reload",
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "backend": self._lease.backend.describe(),
                }
            old = self._lease
            self._lease = _Lease(backend)
            if old is not None:
                old.retire()
            metrics.counter("reloads_ok").inc()
            description = backend.describe()
            logger.info("reload complete (%s): %s", reason, description)
            return {"op": "reload", "ok": True, "backend": description}

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        try:
            await serve_connection(self, reader, writer)
        except asyncio.CancelledError:
            # Shutdown cancels connection handlers.  Ending the task as
            # *cancelled* trips asyncio.streams' connection_made
            # callback (it calls task.exception() unguarded), so a
            # shutdown-driven cancel exits normally instead.
            if not self._stopping:
                raise
        finally:
            self._conn_tasks.discard(task)

    async def _stats_loop(self) -> None:
        while True:
            await asyncio.sleep(self._stats_interval)
            logger.info("stats %s", self.metrics.format_line())


class BackgroundServer:
    """A :class:`TeamServer` on its own event-loop thread.

    The harness tests, the latency benchmark and the CI smoke script all
    need a running server *next to* blocking client code in the same
    process; this wraps the asyncio lifecycle so they don't each
    reinvent it.  ``start`` blocks until the socket is bound (startup
    errors re-raise in the caller), ``run`` executes a coroutine on the
    server's loop from any thread, ``stop`` drains and joins.
    """

    def __init__(
        self,
        server: TeamServer,
        *,
        host: str | None = None,
        port: int | None = None,
        unix_path: "str | Path | None" = None,
    ) -> None:
        self.server = server
        self._host, self._port, self._unix = host, port, unix_path
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="team-server", daemon=True
        )
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self.address: "tuple[str, int] | str | None" = None

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self.address = self._loop.run_until_complete(
                self.server.start(
                    host=self._host, port=self._port, unix_path=self._unix
                )
            )
        except BaseException as exc:  # noqa: BLE001 - re-raised in start()
            self._startup_error = exc
            self._ready.set()
            self._loop.close()
            return
        self._ready.set()
        self._loop.run_until_complete(self.server.serve_forever())
        # Flush callbacks queued by the final tasks (e.g. the cross-
        # thread future resolution inside stop()) before closing.
        self._loop.run_until_complete(asyncio.sleep(0.01))
        self._loop.close()

    def start(self) -> "tuple[str, int] | str":
        """Start the loop thread; returns the bound address.

        Re-raises in the caller anything the server's own ``start``
        raised on the loop thread (bad store, bind failure, ...).
        """
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        assert self.address is not None
        return self.address

    def run(self, coro, *, timeout: float = 60.0):
        """Run ``coro`` on the server's loop; return its result."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    def stop(self, *, timeout: float = 60.0) -> None:
        """Stop the server, drain the loop, and join the thread."""
        if self._startup_error is None and not self._loop.is_closed():
            asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            ).result(timeout)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
