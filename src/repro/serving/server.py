"""The JSON-lines serving loop behind ``repro-teams serve``.

One request per line (a :class:`TeamRequest` dict), one response per
line (a :class:`TeamResponse` JSON object), in request order::

    {"skills": ["SN", "TM"], "solver": "greedy", "lam": 0.4}
    {"skills": ["DB"], "solver": "rarest_first"}

Parsing is strict and **up front**: a malformed line, an unvalidatable
request, or an unknown solver is a usage error naming the offending
line — the caller (the CLI) reports it cleanly and exits 2, matching
the ``mutate --script`` convention, before any work is done.  Failures
*during* solving, by contrast, are served in-band: the batch runs with
per-request error isolation, so one request a solver chokes on becomes
one typed error response instead of aborting the batch.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Collection, Sequence
from typing import IO

from ..api.messages import TeamRequest, TeamResponse

__all__ = ["read_requests", "serve_batch"]


def read_requests(
    text: str, *, solver_names: Collection[str] | None = None
) -> list[TeamRequest]:
    """Parse a JSON-lines request batch (blank / ``#`` lines skipped).

    Raises :class:`ValueError` naming the first offending line for
    malformed JSON, a non-object line, an invalid request, or — when
    ``solver_names`` is given — a solver the registry does not know.
    An empty batch is also a :class:`ValueError`: a serve invocation
    with nothing to serve is a usage error, not a silent no-op.
    """
    requests: list[TeamRequest] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: invalid JSON ({exc})") from None
        if not isinstance(data, dict):
            raise ValueError(
                f"line {lineno}: expected a JSON object with a 'skills' key"
            )
        try:
            request = TeamRequest.from_dict(data)
        except KeyError as exc:
            raise ValueError(
                f"line {lineno}: missing required field {exc.args[0]!r}"
            ) from None
        except (TypeError, ValueError) as exc:
            raise ValueError(f"line {lineno}: {exc}") from None
        if solver_names is not None and request.solver not in solver_names:
            known = ", ".join(sorted(solver_names))
            raise ValueError(
                f"line {lineno}: unknown solver {request.solver!r}; "
                f"registered solvers: {known}"
            )
        requests.append(request)
    if not requests:
        raise ValueError("no requests in input (empty batch)")
    return requests


def serve_batch(
    solve_many: Callable[[list[TeamRequest]], Sequence[TeamResponse]],
    requests: list[TeamRequest],
    out: IO[str],
) -> dict[str, int]:
    """Serve one parsed batch; write responses as JSON lines to ``out``.

    ``solve_many`` is whichever backend answers the batch — the shared
    engine (optionally threaded) or a replica pool; both already apply
    per-request error isolation.  Returns the tally::

        {"requests": n, "found": n, "misses": n, "errors": n}

    where ``misses`` are legitimate negative answers (uncoverable /
    intractable) and ``errors`` are requests the isolation layer caught.
    """
    responses = solve_many(requests)
    tally = {"requests": len(requests), "found": 0, "misses": 0, "errors": 0}
    for response in responses:
        out.write(response.to_json())
        out.write("\n")
        if response.found:
            tally["found"] += 1
        elif response.error_kind in (None, "uncoverable", "intractable"):
            tally["misses"] += 1
        else:
            tally["errors"] += 1
    return tally
