"""Delta-snapshot replication: a live primary feeding follower replicas.

PR 7's replica pool froze the bug this module fixes into architecture:
replicas warm-start from one snapshot file and then *never move again*,
so the moment the primary's network mutates, every replica silently
serves answers computed over a world that no longer exists.  Delta
replication closes that gap without ever re-shipping (or worse,
rebuilding) the expensive 2-hop-cover state:

* :class:`ReplicationLog` — the primary side.  It subscribes to the
  engine's network as a synchronous mutation listener, so every
  journaled :class:`~repro.expertise.network.NetworkMutation` is
  captured **enriched** — together with the payload the bare journal
  record omits (the added expert's full profile, the replaced skill
  set, the new h-index) — at the exact version it happened.
  :meth:`ReplicationLog.delta_since` frames any contiguous suffix of
  that history into the CRC-checked byte stream of
  :mod:`repro.storage.delta`, with an advisory hint saying whether the
  whole delta is incrementally applicable to a 2-hop cover.
* :class:`ReplicaFollower` — the follower side.  It owns a warm-started
  engine and advances it from stream bytes:
  delta frames replay through
  :meth:`~repro.api.engine.TeamFormationEngine.apply_delta_payload`
  (the same write-locked, journal-checked path local mutations take),
  snapshot frames replace the engine wholesale via
  :meth:`~repro.api.engine.TeamFormationEngine.from_snapshot_bytes` —
  the fallback for a follower that fell past the log's floor
  (:class:`~repro.storage.errors.JournalTruncatedError`).

The log is bounded (like the network journal itself), so "how far back
can a follower lag before a full transfer" is an explicit capacity
knob, and :meth:`ReplicationLog.lag_ms` turns a follower's version into
a wall-clock staleness bound — what the replica pool's ``max_lag_ms``
admission check enforces per request.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..expertise.expert import Expert
from ..expertise.network import ExpertNetwork, NetworkMutation
from ..expertise.serialize import (
    expert_from_dict,
    expert_to_dict,
    mutation_from_dict,
    mutation_to_dict,
)
from ..storage.delta import (
    FRAME_SNAPSHOT,
    encode_delta_frame,
    encode_snapshot_frame,
    iter_frames,
)
from ..storage.errors import JournalTruncatedError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.engine import TeamFormationEngine

__all__ = [
    "ReplicationRecord",
    "ReplicationLog",
    "ReplicaFollower",
    "apply_network_op",
]


@dataclass(frozen=True, slots=True)
class ReplicationRecord:
    """One enriched journal record: replayable on a remote follower.

    A bare :class:`NetworkMutation` says *that* something changed but
    not always enough to redo it elsewhere (``add_expert`` lacks the
    profile, ``update_skills`` the skills, ``update_h_index`` the
    value).  The enrichment fields carry exactly that payload, captured
    synchronously at the mutation's version; ``t`` is the primary-local
    :func:`time.monotonic` capture instant, which prices a lagging
    follower's staleness in wall-clock terms (:meth:`ReplicationLog.lag_ms`).
    """

    mutation: NetworkMutation
    expert: Expert | None = None
    h_index: float | None = None
    t: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (``t`` stays primary-local, never shipped)."""
        out: dict[str, Any] = {"mutation": mutation_to_dict(self.mutation)}
        if self.expert is not None:
            out["expert"] = expert_to_dict(self.expert)
        if self.h_index is not None:
            out["h_index"] = self.h_index
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ReplicationRecord":
        """Rebuild a shipped record (inverse of :meth:`to_dict`)."""
        return cls(
            mutation=mutation_from_dict(data["mutation"]),
            expert=(
                None
                if data.get("expert") is None
                else expert_from_dict(data["expert"])
            ),
            h_index=(
                None if data.get("h_index") is None else float(data["h_index"])
            ),
        )


def _hint_incremental(records: list[ReplicationRecord]) -> bool:
    """Whether the whole run is incrementally applicable to a 2-hop cover.

    Advisory only — the follower's engine re-checks per cached index
    (:meth:`~repro.api.engine.TeamFormationEngine._plan_incremental`)
    before touching anything, so a wrong hint costs a lazy
    reconciliation, never a wrong distance.  Conservative: an h-index
    update is incremental off the authority fold but not under it, so
    it hints ``False``.
    """
    for record in records:
        mutation = record.mutation
        if mutation.op in (
            "remove_expert",
            "remove_collaboration",
            "update_h_index",
        ):
            return False
        if (
            mutation.op == "add_collaboration"
            and mutation.old_weight is not None
            and mutation.weight > mutation.old_weight
        ):
            return False
    return True


class ReplicationLog:
    """Primary-side capture of an engine's mutation stream, as frames.

    Attach one log per primary engine; it hooks the network's mutation
    listener and records every journaled change, enriched, into a
    bounded deque.  ``capacity`` bounds memory exactly like the network
    journal's own cap does: a follower asking for history older than
    the log's floor gets :class:`JournalTruncatedError` — the typed
    signal to fall back to :meth:`snapshot_frame`.

    Thread-safety: the listener runs on the mutating thread (which
    holds the engine's write lock); :meth:`delta_since` /
    :meth:`lag_ms` run on serving threads.  One internal lock keeps the
    deque consistent between them.
    """

    def __init__(
        self,
        engine: "TeamFormationEngine",
        *,
        capacity: int = ExpertNetwork.JOURNAL_CAP,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._engine = engine
        self._capacity = capacity
        self._lock = threading.Lock()
        self._records: deque[ReplicationRecord] = deque()
        self._floor = engine.network.version
        self._floor_time = time.monotonic()
        self._closed = False
        engine.network.add_mutation_listener(self._on_mutation)

    # ------------------------------------------------------------------
    @property
    def engine(self) -> "TeamFormationEngine":
        return self._engine

    @property
    def floor(self) -> int:
        """Oldest version a delta can still start from."""
        with self._lock:
            return self._floor

    @property
    def version(self) -> int:
        """Newest version the log has captured (the primary's tip)."""
        with self._lock:
            return self._tip_locked()

    def _tip_locked(self) -> int:
        return (
            self._records[-1].mutation.version
            if self._records
            else self._floor
        )

    # ------------------------------------------------------------------
    def _on_mutation(self, mutation: NetworkMutation) -> None:
        network = self._engine.network
        expert: Expert | None = None
        h_index: float | None = None
        if mutation.op in ("add_expert", "update_skills"):
            expert = network.expert(mutation.expert_id)
        elif mutation.op == "update_h_index":
            h_index = network.expert(mutation.expert_id).h_index
        record = ReplicationRecord(
            mutation=mutation,
            expert=expert,
            h_index=h_index,
            t=time.monotonic(),
        )
        with self._lock:
            self._records.append(record)
            while len(self._records) > self._capacity:
                dropped = self._records.popleft()
                self._floor = dropped.mutation.version
                self._floor_time = dropped.t

    # ------------------------------------------------------------------
    def delta_since(self, version: int) -> bytes:
        """The delta stream advancing a follower at ``version`` to the tip.

        Returns ``b""`` when the follower is already current (an empty
        stream is a valid no-op stream).  Raises
        :class:`JournalTruncatedError` when ``version`` predates the
        log's floor — the caller must ship :meth:`snapshot_frame`
        instead — and ``ValueError`` when the follower claims a version
        *ahead* of the primary (a lineage confusion no delta can fix).
        """
        with self._lock:
            tip = self._tip_locked()
            if version > tip:
                raise ValueError(
                    f"follower version {version} is ahead of the primary "
                    f"({tip}); it belongs to a different lineage"
                )
            if version == tip:
                return b""
            if version < self._floor:
                raise JournalTruncatedError(version, self._floor)
            records = [
                r for r in self._records if r.mutation.version > version
            ]
            payload = {
                "from_version": version,
                "to_version": records[-1].mutation.version,
                "records": [r.to_dict() for r in records],
                "hints": {"incremental": _hint_incremental(records)},
            }
        return encode_delta_frame(payload)

    def compact(self, floor: int) -> int:
        """Raise the log's floor to ``floor``, dropping covered records.

        The snapshot-store GC calls this after deleting old snapshots:
        any follower that would need history at or below ``floor`` can
        no longer be served a snapshot from that era anyway, so holding
        the delta records buys nothing — a follower that far behind
        gets :class:`JournalTruncatedError` from :meth:`delta_since`
        and falls back to a full-state transfer, exactly as if the
        capacity bound had evicted the records.

        The floor never moves backwards and never past the tip.
        Returns the effective floor after compaction.
        """
        with self._lock:
            target = min(max(floor, self._floor), self._tip_locked())
            while (
                self._records
                and self._records[0].mutation.version <= target
            ):
                dropped = self._records.popleft()
                self._floor_time = dropped.t
            self._floor = target
            return self._floor

    def snapshot_frame(self) -> bytes:
        """A full-state transfer: the primary's engine as one frame.

        The fallback when :meth:`delta_since` raises
        :class:`JournalTruncatedError`.  Ships every current
        2-hop-cover index inside the container, so the follower resumes
        warm — zero index builds — just as it started.
        """
        return encode_snapshot_frame(self._engine.snapshot_bytes())

    def lag_ms(self, replica_version: int) -> float:
        """Wall-clock staleness of a follower at ``replica_version``.

        ``0.0`` when current; otherwise the age of the *oldest* change
        the follower has not seen (primary-local monotonic clock) —
        i.e. an upper bound on "how long ago did this replica's world
        diverge".  A follower past the floor is priced at the floor's
        drop time: at least that stale.
        """
        from .. import obs

        now = time.monotonic()
        lag = 0.0
        with self._lock:
            if replica_version < self._tip_locked():
                base = self._floor_time
                if replica_version >= self._floor:
                    for record in self._records:
                        if record.mutation.version > replica_version:
                            base = record.t
                            break
                lag = max(0.0, (now - base) * 1000.0)
        obs.global_registry().gauge("replication_lag_ms").set(lag)
        return lag

    def close(self) -> None:
        """Detach from the network (idempotent); the log stops growing."""
        if not self._closed:
            self._closed = True
            self._engine.network.remove_mutation_listener(self._on_mutation)

    def __enter__(self) -> "ReplicationLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"ReplicationLog(floor={self._floor}, "
                f"tip={self._tip_locked()}, records={len(self._records)})"
            )


class ReplicaFollower:
    """Follower-side reconciliation: stream bytes in, a current engine out.

    Owns one warm-started engine and advances it frame by frame.  Delta
    frames replay through the engine's journal-checked incremental path;
    a snapshot frame *replaces* the engine (``engine`` is a property —
    callers must re-read it after :meth:`apply`).  Counters record what
    replication cost so far.
    """

    def __init__(self, engine: "TeamFormationEngine") -> None:
        self._engine = engine
        self.frames = 0
        self.applied = 0
        self.skipped = 0
        self.snapshot_fallbacks = 0

    @property
    def engine(self) -> "TeamFormationEngine":
        return self._engine

    @property
    def version(self) -> int:
        return self._engine.network.version

    def apply(self, data: bytes) -> dict:
        """Advance the follower by one stream; returns what happened.

        Mirrors :meth:`TeamFormationEngine.apply_delta_stream` —
        idempotent replay, gap and lineage checks, one eager
        :meth:`~repro.api.engine.TeamFormationEngine.apply_updates`
        pass when every applied frame hinted incremental — plus
        snapshot-frame handling: the engine is swapped for one loaded
        from the shipped container, and subsequent delta frames in the
        *same* stream continue from the new engine's version.
        """
        from .. import obs
        from ..api.engine import TeamFormationEngine

        report: dict = {
            "frames": 0,
            "applied": 0,
            "skipped": 0,
            "snapshot_fallbacks": 0,
            "reconciled": None,
        }
        start = time.perf_counter()
        hints_incremental = True
        with obs.span("replication.apply", bytes=len(data)) as sp:
            for kind, payload in iter_frames(data):
                report["frames"] += 1
                if kind == FRAME_SNAPSHOT:
                    self._engine = TeamFormationEngine.from_snapshot_bytes(
                        payload
                    )
                    report["snapshot_fallbacks"] += 1
                    continue
                frame = self._engine.apply_delta_payload(payload)
                report["applied"] += frame["applied"]
                report["skipped"] += frame["skipped"]
                if frame["applied"]:
                    hints_incremental = (
                        hints_incremental and frame["incremental_hint"]
                    )
            if report["applied"] and hints_incremental:
                report["reconciled"] = self._engine.apply_updates()
            sp.set_attribute("applied", report["applied"])
        self.frames += report["frames"]
        self.applied += report["applied"]
        self.skipped += report["skipped"]
        self.snapshot_fallbacks += report["snapshot_fallbacks"]
        registry = obs.global_registry()
        registry.counter("replication_frames").inc(report["frames"])
        registry.counter("replication_records_applied").inc(report["applied"])
        registry.counter("replication_records_skipped").inc(report["skipped"])
        registry.counter("replication_snapshot_fallbacks").inc(
            report["snapshot_fallbacks"]
        )
        registry.reservoir("replication_delta_apply").observe(
            time.perf_counter() - start
        )
        return report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicaFollower(version={self.version}, frames={self.frames}, "
            f"applied={self.applied}, fallbacks={self.snapshot_fallbacks})"
        )


def _op_field(op: dict, kind: str, name: str) -> Any:
    try:
        return op[name]
    except KeyError:
        raise ValueError(f"op {kind!r} requires field {name!r}") from None


def apply_network_op(network: ExpertNetwork, op: dict) -> None:
    """Dispatch one JSON-style mutation op onto a network.

    The shared vocabulary of the ``mutate`` CLI script and the
    replicated server's ``mutate`` wire op: ``{"op": "add_expert", ...}``
    and friends.  Raises ``ValueError`` for unknown ops and missing
    fields (named), and lets the network's own ``KeyError`` /
    ``GraphError`` surface for ops that are well-formed but impossible.
    """
    kind = op.get("op")
    if kind == "add_expert":
        network.add_expert(
            Expert(
                _op_field(op, kind, "id"),
                name=op.get("name", ""),
                skills=frozenset(op.get("skills", ())),
                h_index=op.get("h_index", 1.0),
            )
        )
    elif kind == "remove_expert":
        network.remove_expert(_op_field(op, kind, "id"))
    elif kind == "update_skills":
        network.update_skills(
            _op_field(op, kind, "id"), _op_field(op, kind, "skills")
        )
    elif kind == "update_h_index":
        network.update_h_index(
            _op_field(op, kind, "id"), _op_field(op, kind, "h_index")
        )
    elif kind == "add_collaboration":
        network.add_collaboration(
            _op_field(op, kind, "u"),
            _op_field(op, kind, "v"),
            weight=op.get("weight", 1.0),
        )
    elif kind == "remove_collaboration":
        network.remove_collaboration(
            _op_field(op, kind, "u"), _op_field(op, kind, "v")
        )
    else:
        raise ValueError(f"unknown op {kind!r}")
