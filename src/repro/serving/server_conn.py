"""Per-connection wire protocol of the persistent serving front end.

The protocol is newline-delimited JSON, one message per line, over TCP
or a Unix socket.  A line is either

* a **solve request** — any object with a ``"skills"`` key, parsed as a
  :class:`repro.api.messages.TeamRequest` (``deadline_ms`` included) and
  answered with exactly one :class:`TeamResponse` JSON line, **byte
  identical** to what an in-process ``engine.solve`` at the same network
  version would serialize; or
* an **admin op** — an object with an ``"op"`` key: ``"stats"``
  (metrics snapshot), ``"reload"`` (hot-swap to the store's LATEST
  snapshot), ``"ping"`` (liveness), ``"shutdown"`` (graceful stop),
  ``"mutate"`` (apply a ``"ops"`` list of network mutations on a
  replicated backend and sync its followers).  Ops are answered with
  one ``{"op": ...}`` envelope line; payload-carrying ops keep their
  extra keys (the whole object reaches the server).

Responses come back **in request order per connection** (requests may
be pipelined; the handler answers strictly sequentially), so a client
never needs correlation ids — which is also what keeps solve response
bytes identical to the batch path.

Unlike the one-shot batch loop (:func:`repro.serving.server.read_requests`,
where a malformed line is a usage error that aborts the run), a
long-lived server must survive bad input: a malformed or invalid line
is answered in-band with one ``{"op": "error", ...}`` envelope and the
connection stays open.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import TYPE_CHECKING, Any

from ..api.messages import TeamRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .server import TeamServer

__all__ = [
    "ADMIN_OPS",
    "WireProtocolError",
    "parse_line",
    "error_line",
    "serve_connection",
    "ServingClient",
]

#: Ops the connection handler dispatches to the server.
ADMIN_OPS = frozenset(
    {"stats", "metrics", "reload", "ping", "shutdown", "mutate"}
)

#: Per-line size bound: a line this long is an attack or a bug, either
#: way it must not buffer unboundedly inside the reader.
MAX_LINE_BYTES = 1 << 20


class WireProtocolError(ValueError):
    """A line the protocol cannot interpret (answered in-band)."""


def parse_line(line: str) -> tuple[str, Any]:
    """Parse one wire line into ``("op", dict)`` or ``("solve", request)``.

    An op line yields the *whole* parsed object (not just the op name),
    so payload-carrying ops — ``mutate`` with its ``"ops"`` list —
    reach :meth:`TeamServer.handle_op` intact.

    Raises :class:`WireProtocolError` with a client-presentable message
    for malformed JSON, a non-object line, an unknown op, or a request
    :class:`TeamRequest` validation rejects.  (An *unknown solver* is
    deliberately not rejected here: the request parses, and the engine's
    isolation layer answers it with a typed ``unknown_solver`` response
    — the same bytes the batch path produces.)
    """
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise WireProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise WireProtocolError(
            "expected a JSON object (a TeamRequest dict or an admin op)"
        )
    if "op" in data:
        op = data["op"]
        if op not in ADMIN_OPS:
            known = ", ".join(sorted(ADMIN_OPS))
            raise WireProtocolError(f"unknown op {op!r}; known ops: {known}")
        return "op", data
    try:
        return "solve", TeamRequest.from_dict(data)
    except KeyError as exc:
        raise WireProtocolError(
            f"missing required field {exc.args[0]!r}"
        ) from None
    except (TypeError, ValueError) as exc:
        raise WireProtocolError(str(exc)) from None


def error_line(message: str, *, kind: str = "invalid_request") -> str:
    """The in-band error envelope for a line that never became a request."""
    return json.dumps(
        {"op": "error", "error": message, "error_kind": kind}, sort_keys=True
    )


async def serve_connection(
    server: "TeamServer",
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one client connection until EOF, error, or server stop.

    Strictly sequential: read a line, answer it, read the next.
    Pipelined requests queue in the stream reader and are answered in
    arrival order.  Backpressure and deadlines are the *server's* job
    (admission happens in :meth:`TeamServer.submit`); this loop only
    frames messages and keeps per-connection ordering.
    """
    metrics = server.metrics
    metrics.counter("connections_opened").inc()
    metrics.gauge("connections_active").add(1)
    try:
        while not server.stopping:
            try:
                raw = await reader.readline()
            except (
                asyncio.LimitOverrunError,
                ValueError,
                ConnectionResetError,
            ):
                break
            if not raw:
                break  # EOF
            if len(raw) > MAX_LINE_BYTES:
                await _write_line(
                    writer, error_line("request line too long")
                )
                metrics.counter("invalid_lines").inc()
                continue
            line = raw.decode("utf-8", errors="replace").strip()
            if not line or line.startswith("#"):
                continue
            try:
                kind, payload = parse_line(line)
            except WireProtocolError as exc:
                metrics.counter("invalid_lines").inc()
                await _write_line(writer, error_line(str(exc)))
                continue
            if kind == "op":
                envelope = await server.handle_op(payload)
                await _write_line(
                    writer, json.dumps(envelope, sort_keys=True)
                )
                if payload["op"] == "shutdown":
                    break
            else:
                response_json = await server.submit(payload)
                await _write_line(writer, response_json)
    except (ConnectionResetError, BrokenPipeError):
        pass  # client went away mid-write; nothing to answer
    finally:
        metrics.counter("connections_closed").inc()
        metrics.gauge("connections_active").add(-1)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def _write_line(writer: asyncio.StreamWriter, text: str) -> None:
    writer.write(text.encode("utf-8") + b"\n")
    await writer.drain()


class ServingClient:
    """A small *blocking* client for the NDJSON protocol.

    This is the consumer side the tests, the latency benchmark and the
    CI smoke script share: connect over TCP or a Unix socket, send one
    JSON object per line, read one response line per message.  ``send``
    and ``recv`` are split so callers can pipeline.
    """

    def __init__(self, sock: socket.socket, *, timeout: float = 30.0) -> None:
        sock.settimeout(timeout)
        self._sock = sock
        self._file = sock.makefile("rwb")

    @classmethod
    def connect_tcp(
        cls, host: str, port: int, *, timeout: float = 30.0
    ) -> "ServingClient":
        return cls(socket.create_connection((host, port)), timeout=timeout)

    @classmethod
    def connect_unix(cls, path: str, *, timeout: float = 30.0) -> "ServingClient":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(path)
        return cls(sock, timeout=timeout)

    def send(self, message: dict) -> None:
        """Send one JSON object as a wire line (no response read)."""
        self.send_line(json.dumps(message))

    def send_line(self, line: str) -> None:
        """Send one raw line verbatim (malformed-input testing)."""
        self._file.write(line.encode("utf-8") + b"\n")
        self._file.flush()

    def recv_line(self) -> str:
        """Read one raw response line; raises ConnectionError on EOF."""
        raw = self._file.readline()
        if not raw:
            raise ConnectionError("server closed the connection")
        return raw.decode("utf-8").rstrip("\n")

    def recv(self) -> dict:
        """Read one response line and parse it as JSON."""
        return json.loads(self.recv_line())

    def round_trip(self, message: dict) -> dict:
        """Send one message and read its (parsed) response."""
        self.send(message)
        return self.recv()

    def round_trip_raw(self, message: dict) -> str:
        """Send one message and read its raw response line (byte checks)."""
        self.send(message)
        return self.recv_line()

    def close(self) -> None:
        """Close the socket (idempotent; errors on teardown ignored)."""
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
