"""Serving metrics: counters, gauges, and streaming latency reservoirs.

The persistent server (:mod:`repro.serving.server`) needs latency
percentiles over an *unbounded* request stream without keeping every
observation.  :class:`LatencyReservoir` uses Vitter's Algorithm R —
uniform reservoir sampling with a fixed capacity — so p50/p95/p99 stay
estimable at O(capacity) memory no matter how long the server runs.
The reservoir's RNG is seeded, so a replayed request stream yields the
same sample (and the same reported percentiles) run over run.

Everything in the registry is thread-safe: observations arrive from
executor worker threads while the asyncio event loop snapshots the
registry for a ``{"op": "stats"}`` response or the ``--stats-interval``
log line.  A :meth:`MetricsRegistry.snapshot` is a plain JSON-ready
dict — the wire format of the stats op.
"""

from __future__ import annotations

import random
import threading
from bisect import insort

__all__ = ["Counter", "Gauge", "LatencyReservoir", "MetricsRegistry"]

#: The percentiles every latency summary reports, as (label, fraction).
PERCENTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge instead")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time numeric level (queue depth, active connections)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to an absolute value."""
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        """Move the gauge by ``delta`` (negative deltas allowed)."""
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class LatencyReservoir:
    """Streaming percentile estimation via uniform reservoir sampling.

    Until ``capacity`` observations have arrived, the reservoir holds
    *every* observation and percentiles are exact.  Past capacity, each
    new observation replaces a uniformly random slot with probability
    ``capacity / seen`` (Algorithm R), keeping the reservoir a uniform
    sample of the whole stream.  The sample is kept sorted (binary
    insertion), so quantile reads never pay a sort.

    ``observe`` takes seconds; summaries report milliseconds — the unit
    latency SLOs are written in.
    """

    __slots__ = ("_capacity", "_lock", "_rng", "_sample", "_seen", "_sum", "_max")

    def __init__(self, capacity: int = 2048, *, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("reservoir capacity must be positive")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self._sample: list[float] = []
        self._seen = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency observation (in seconds)."""
        value = float(seconds)
        with self._lock:
            self._seen += 1
            self._sum += value
            if value > self._max:
                self._max = value
            if len(self._sample) < self._capacity:
                insort(self._sample, value)
                return
            slot = self._rng.randrange(self._seen)
            if slot < self._capacity:
                # Replace one uniformly chosen resident observation.
                del self._sample[self._rng.randrange(self._capacity)]
                insort(self._sample, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._seen

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1) of the sampled stream, in seconds."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        if not self._sample:
            return 0.0
        # Nearest-rank on the sorted sample: robust for the small-n
        # exact regime and unbiased enough for the sampled one.
        rank = min(len(self._sample) - 1, int(q * len(self._sample)))
        return self._sample[rank]

    def summary(self) -> dict[str, float | int]:
        """JSON-ready summary in **milliseconds** (plus the raw count)."""
        with self._lock:
            out: dict[str, float | int] = {
                "count": self._seen,
                "mean_ms": (self._sum / self._seen * 1e3) if self._seen else 0.0,
                "max_ms": self._max * 1e3,
            }
            for label, q in PERCENTILES:
                out[f"{label}_ms"] = self._quantile_locked(q) * 1e3
            return out


class MetricsRegistry:
    """A named collection of counters, gauges, and latency reservoirs.

    Instruments are created on first touch (``registry.counter("x")``)
    and live for the registry's lifetime; :meth:`snapshot` freezes the
    whole registry into the stats-op wire dict.  Creation is
    lock-protected so two threads first-touching the same name get the
    same instrument.
    """

    def __init__(self, *, reservoir_capacity: int = 2048, seed: int = 0) -> None:
        self._lock = threading.Lock()
        self._reservoir_capacity = reservoir_capacity
        self._seed = seed
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._reservoirs: dict[str, LatencyReservoir] = {}

    def counter(self, name: str) -> Counter:
        """The named counter, created on first touch."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created on first touch."""
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def reservoir(self, name: str) -> LatencyReservoir:
        """The named latency reservoir, created on first touch."""
        with self._lock:
            instrument = self._reservoirs.get(name)
            if instrument is None:
                instrument = self._reservoirs[name] = LatencyReservoir(
                    self._reservoir_capacity, seed=self._seed
                )
            return instrument

    def snapshot(self) -> dict:
        """Every instrument's current reading as one JSON-ready dict."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            reservoirs = dict(self._reservoirs)
        return {
            "counters": {
                name: counters[name].value for name in sorted(counters)
            },
            "gauges": {name: gauges[name].value for name in sorted(gauges)},
            "latency": {
                name: reservoirs[name].summary() for name in sorted(reservoirs)
            },
        }

    def format_line(self) -> str:
        """One compact human-readable stats line (the interval log)."""
        snap = self.snapshot()
        parts = [
            f"{name}={value}" for name, value in snap["counters"].items()
        ]
        parts += [
            f"{name}={value:g}" for name, value in snap["gauges"].items()
        ]
        for name, summary in snap["latency"].items():
            parts.append(
                f"{name}[p50={summary['p50_ms']:.1f}ms "
                f"p95={summary['p95_ms']:.1f}ms "
                f"p99={summary['p99_ms']:.1f}ms n={summary['count']}]"
            )
        return " ".join(parts) if parts else "(no metrics yet)"
