"""repro.serving — the concurrent serving layer.

PR 4 made serving state durable; this package makes it **concurrent**,
in two tiers:

* **Tier one — a thread-safe engine.**
  :class:`repro.api.TeamFormationEngine` is safe to share across
  threads: concurrent cache misses on the same oracle key single-flight
  onto one build (:mod:`repro.serving.locks` has the reader/writer
  primitive; the per-key build locks live in the engine), FIFO eviction
  and memo bookkeeping are lock-protected, stale indexes are upgraded
  onto clones so an in-flight solve never observes a half-reconciled
  index, and ``engine.mutate()`` / ``apply_updates()`` /
  ``refresh_scales()`` run as exclusive writers.
  ``engine.solve_many(requests, parallel=N)`` threads a batch over the
  shared engine with per-request error isolation.

* **Tier two — a replica pool over snapshots.**
  :class:`EngineReplicaPool` (:mod:`repro.serving.pool`) spawns N
  worker processes that each warm-start a private engine replica from
  one PR-4 snapshot (``from_snapshot`` — zero index builds per worker)
  and schedules request batches across them.  Requests are grouped by
  the index their solve needs (:mod:`repro.serving.batch`): groups whose
  index is already warm in the snapshot spread across every replica,
  while a cold group stays on one replica so the pool as a whole builds
  each missing index at most once.

:mod:`repro.serving.server` is the JSON-lines request/response layer
behind ``repro-teams serve``: the one-shot batch loop, and the
persistent asyncio front end (:class:`TeamServer` — admission control,
per-request deadlines, a metrics registry with streaming latency
percentiles, and zero-downtime snapshot hot reload; wire protocol in
:mod:`repro.serving.server_conn`, instruments in
:mod:`repro.serving.metrics`).

:mod:`repro.serving.replication` keeps replicas current against a live
primary: :class:`ReplicationLog` frames the primary's mutation journal
into CRC-checked delta byte streams, :class:`ReplicaFollower` applies
them through the engine's version-keyed incremental path, and
``serve --replicate`` wires both under a :class:`ReplicatedBackend`
with bounded-staleness admission (``--max-lag-ms``).

Submodules import lazily (PEP 562): the engine imports
:mod:`repro.serving.locks`, while :mod:`repro.serving.pool` imports the
engine — eager re-exports here would complete that cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "BackgroundServer",
    "EngineBackend",
    "EngineReplicaPool",
    "MetricsRegistry",
    "PoolBackend",
    "ReadWriteLock",
    "ReplicaFollower",
    "ReplicatedBackend",
    "ReplicationLog",
    "ReplicationRecord",
    "ServingClient",
    "TeamServer",
    "apply_network_op",
    "fixed_engine_loader",
    "plan_jobs",
    "replicated_backend_loader",
    "request_index_key",
    "read_requests",
    "serve_batch",
    "store_backend_loader",
    "usable_cores",
]

_EXPORTS = {
    "BackgroundServer": ("repro.serving.server", "BackgroundServer"),
    "EngineBackend": ("repro.serving.server", "EngineBackend"),
    "EngineReplicaPool": ("repro.serving.pool", "EngineReplicaPool"),
    "MetricsRegistry": ("repro.serving.metrics", "MetricsRegistry"),
    "PoolBackend": ("repro.serving.server", "PoolBackend"),
    "ReadWriteLock": ("repro.serving.locks", "ReadWriteLock"),
    "ReplicaFollower": ("repro.serving.replication", "ReplicaFollower"),
    "ReplicatedBackend": ("repro.serving.server", "ReplicatedBackend"),
    "ReplicationLog": ("repro.serving.replication", "ReplicationLog"),
    "ReplicationRecord": ("repro.serving.replication", "ReplicationRecord"),
    "ServingClient": ("repro.serving.server_conn", "ServingClient"),
    "TeamServer": ("repro.serving.server", "TeamServer"),
    "apply_network_op": ("repro.serving.replication", "apply_network_op"),
    "fixed_engine_loader": ("repro.serving.server", "fixed_engine_loader"),
    "plan_jobs": ("repro.serving.batch", "plan_jobs"),
    "replicated_backend_loader": (
        "repro.serving.server",
        "replicated_backend_loader",
    ),
    "request_index_key": ("repro.serving.batch", "request_index_key"),
    "read_requests": ("repro.serving.server", "read_requests"),
    "serve_batch": ("repro.serving.server", "serve_batch"),
    "store_backend_loader": ("repro.serving.server", "store_backend_loader"),
    "usable_cores": ("repro.serving.pool", "usable_cores"),
}

if TYPE_CHECKING:  # pragma: no cover - static imports for type checkers
    from .batch import plan_jobs, request_index_key
    from .locks import ReadWriteLock
    from .metrics import MetricsRegistry
    from .pool import EngineReplicaPool, usable_cores
    from .replication import (
        ReplicaFollower,
        ReplicationLog,
        ReplicationRecord,
        apply_network_op,
    )
    from .server import (
        BackgroundServer,
        EngineBackend,
        PoolBackend,
        ReplicatedBackend,
        TeamServer,
        fixed_engine_loader,
        read_requests,
        replicated_backend_loader,
        serve_batch,
        store_backend_loader,
    )
    from .server_conn import ServingClient


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__() -> list[str]:
    return sorted(__all__)
