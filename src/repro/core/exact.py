"""The paper's ``Exact`` baseline: exhaustive (SA-CA-CC)-optimal search.

Section 4: "Exact performs exhaustive search to find an (SA-CA-CC)-optimal
solution.  Note, however, that Exact is intractable for large networks or
large projects."

Our implementation decomposes the objective.  For a fixed skill -> expert
assignment with holder set ``H``::

    SA-CA-CC = lam * SA(assignment)
             + (1 - lam) * min over trees containing H of
                   [gamma * CA(tree) + (1 - gamma) * CC(tree)]

The inner minimum is an exact *node-weighted Steiner tree*: edge cost
``(1 - gamma) * w`` plus node cost ``gamma * a'`` for every non-holder
tree node.  We solve it with the Dreyfus–Wagner DP from
:mod:`repro.graph.steiner` (cached per distinct holder set) and enumerate
all assignments.  The optimal team over subgraphs is always achieved by a
tree (removing a cycle edge never increases any objective term), so this
is a true global optimum.

Intractability is surfaced, not hidden: exceeding ``max_assignments`` or
``time_budget`` raises :class:`IntractableError`, which the Figure 3
harness reports as the paper does ("Exact ... did not terminate in
reasonable time for 8 and 10 skills").
"""

from __future__ import annotations

import itertools
import time
from collections.abc import Iterable

from ..expertise.network import ExpertNetwork
from ..graph.adjacency import Graph, GraphError
from ..graph.steiner import dreyfus_wagner
from .objectives import ObjectiveScales, SaMode, TeamEvaluator
from .team import Team

__all__ = ["ExactSolver", "IntractableError"]


class IntractableError(Exception):
    """The exhaustive search would exceed its assignment or time budget."""


class ExactSolver:
    """Exhaustive SA-CA-CC optimizer (assignments x node-weighted Steiner).

    Parameters mirror :class:`repro.core.greedy.GreedyTeamFinder`;
    ``max_assignments`` bounds the assignment product and ``time_budget``
    (seconds) bounds wall-clock time, both raising
    :class:`IntractableError` when exceeded.
    """

    def __init__(
        self,
        network: ExpertNetwork,
        *,
        gamma: float = 0.6,
        lam: float = 0.6,
        scales: ObjectiveScales | None = None,
        sa_mode: SaMode = "per_skill",
        max_assignments: int = 500_000,
        time_budget: float | None = None,
    ) -> None:
        self.network = network
        self.evaluator = TeamEvaluator(
            network, gamma=gamma, lam=lam, scales=scales, sa_mode=sa_mode
        )
        self.gamma = self.evaluator.gamma
        self.lam = self.evaluator.lam
        self.max_assignments = max_assignments
        self.time_budget = time_budget
        # Steiner results depend on gamma but not lambda: one solver can
        # serve a whole lambda sweep and only pay Dreyfus-Wagner once per
        # distinct holder set.
        self._connection_cache: dict[frozenset[str], tuple[float, Graph] | None] = {}
        # Connection search graph: edges pre-scaled by (1 - gamma) on
        # normalized weights; node costs added per holder set below.
        scale = self.evaluator.scales.edge_scale
        self._conn_graph = network.graph.reweighted(
            lambda u, v, w: (1.0 - self.gamma) * (w / scale)
        )

    # ------------------------------------------------------------------
    def find_team(self, project: Iterable[str], *, lam: float | None = None) -> Team:
        """The provably optimal team under SA-CA-CC.

        ``lam`` optionally overrides the constructor's lambda (the
        Steiner cache is lambda-independent, so sweeping lambda on one
        solver instance is cheap).  Raises :class:`IntractableError` when
        over budget and :class:`SkillCoverageError` when the project is
        uncoverable.
        """
        best = self._search(project, k=1, lam=lam)
        return best[0]

    def find_top_k(
        self, project: Iterable[str], k: int = 5, *, lam: float | None = None
    ) -> list[Team]:
        """The ``k`` best distinct teams by exact SA-CA-CC score."""
        return self._search(project, k=k, lam=lam)

    # ------------------------------------------------------------------
    def _search(
        self, project: Iterable[str], k: int, lam: float | None = None
    ) -> list[Team]:
        lam = self.lam if lam is None else lam
        if not 0.0 <= lam <= 1.0:
            raise ValueError(f"lambda must be in [0, 1], got {lam}")
        skills = sorted(set(project))
        if not skills:
            raise ValueError("project must require at least one skill")
        index = self.network.skill_index
        index.require_coverable(skills)
        pools = [sorted(index.experts_with(s)) for s in skills]

        total_assignments = 1
        for pool in pools:
            total_assignments *= len(pool)
            if total_assignments > self.max_assignments:
                raise IntractableError(
                    f"{total_assignments}+ assignments exceed "
                    f"max_assignments={self.max_assignments}"
                )

        deadline = (
            time.monotonic() + self.time_budget
            if self.time_budget is not None
            else None
        )
        # (score, counter, assignment, steiner tree) — counter breaks ties.
        results: list[tuple[float, int, dict[str, str], Graph]] = []
        seen_keys: set = set()

        for counter, combo in enumerate(itertools.product(*pools)):
            if deadline is not None and counter % 64 == 0:
                if time.monotonic() > deadline:
                    raise IntractableError(
                        f"time budget of {self.time_budget}s exhausted after "
                        f"{counter} assignments"
                    )
            assignment = dict(zip(skills, combo))
            holders = frozenset(combo)
            connection = self._connect(holders, self._connection_cache)
            if connection is None:
                continue  # holders mutually disconnected
            conn_cost, steiner = connection
            sa = self._sa_of(assignment)
            score = lam * sa + (1.0 - lam) * conn_cost
            key = (holders, tuple(sorted(assignment.items())))
            if key in seen_keys:
                continue
            seen_keys.add(key)
            results.append((score, counter, assignment, steiner))
            results.sort(key=lambda r: (r[0], r[1]))
            del results[4 * k :]

        if not results:
            raise IntractableError("no assignment yields a connected team")

        teams: list[Team] = []
        team_keys: set = set()
        for score, _, assignment, steiner in results:
            team = self._to_team(assignment, steiner)
            if team.key() in team_keys:
                continue
            team_keys.add(team.key())
            teams.append(team)
            if len(teams) == k:
                break
        return teams

    # ------------------------------------------------------------------
    def _sa_of(self, assignment: dict[str, str]) -> float:
        if self.evaluator.sa_mode == "per_skill":
            experts: Iterable[str] = assignment.values()
        else:
            experts = set(assignment.values())
        return sum(self.evaluator.node_cost(c) for c in experts)

    def _connect(
        self,
        holders: frozenset[str],
        cache: dict[frozenset[str], tuple[float, Graph] | None],
    ) -> tuple[float, Graph] | None:
        """Exact min of ``gamma*CA + (1-gamma)*CC`` over trees spanning
        ``holders`` (None when they cannot be connected)."""
        if holders in cache:
            return cache[holders]
        def node_cost(v: str) -> float:
            return self.gamma * self.evaluator.node_cost(v)

        try:
            cost, tree = dreyfus_wagner(
                self._conn_graph, sorted(holders), node_cost=node_cost
            )
        except GraphError:
            cache[holders] = None  # holders span disconnected components
            return None
        cache[holders] = (cost, tree)
        return cost, tree

    def _to_team(self, assignment: dict[str, str], steiner: Graph) -> Team:
        """Rebuild the Steiner tree with original network edge weights."""
        tree = Graph()
        for node in steiner.nodes():
            tree.add_node(node)
        for u, v, _ in steiner.edges():
            tree.add_edge(u, v, weight=self.network.graph.weight(u, v))
        return Team(tree=tree, assignments=dict(assignment), root=None)
