"""Local-search refinement of greedy teams.

Algorithm 1 commits to the best single root; it never reconsiders a
holder choice or a routing after the fact.  This refiner closes part of
the remaining gap to ``Exact`` with three classic improving moves,
applied first-improvement until a local optimum:

1. **prune** — drop connector leaves (and chains) that no longer serve
   connectivity; strictly improves every objective term;
2. **reroute** — reconnect the current holders with a Steiner
   approximation over the authority-folded graph ``G'`` (better
   connectors for the same holders);
3. **swap** — replace one skill's holder with another member of
   ``C(s)`` and reconnect; accepted only when the full objective
   improves.

Every accepted move is re-scored with the literal Definitions 2–6, so
refinement can only improve the reported objective (asserted in tests
and in ``benchmarks/bench_refinement.py``).
"""

from __future__ import annotations

from collections.abc import Iterable

from ..expertise.network import ExpertNetwork
from ..graph.adjacency import Graph, GraphError
from ..graph.components import prune_leaves
from ..graph.distance import DijkstraOracle
from ..graph.steiner import mst_steiner_tree
from .objectives import ObjectiveScales, SaMode, TeamEvaluator
from .team import Team
from .transform import authority_fold_transform

__all__ = ["LocalSearchRefiner"]


class LocalSearchRefiner:
    """First-improvement local search over prune / reroute / swap moves."""

    def __init__(
        self,
        network: ExpertNetwork,
        *,
        objective: str = "sa-ca-cc",
        gamma: float = 0.6,
        lam: float = 0.6,
        scales: ObjectiveScales | None = None,
        sa_mode: SaMode = "per_skill",
        max_rounds: int = 20,
    ) -> None:
        if max_rounds < 1:
            raise ValueError("max_rounds must be positive")
        self.network = network
        self.objective = objective
        self.evaluator = TeamEvaluator(
            network, gamma=gamma, lam=lam, scales=scales, sa_mode=sa_mode
        )
        self.max_rounds = max_rounds
        # Routing graph: authority folded in, so Steiner rebuilds prefer
        # authoritative connectors (for pure CC, gamma plays no role).
        fold_gamma = 0.0 if objective == "cc" else self.evaluator.gamma
        self._routing_graph = authority_fold_transform(
            network, fold_gamma, scales=self.evaluator.scales
        )
        # One cached-tree oracle shared by every Steiner rebuild: a swap
        # scan rebuilds hundreds of candidate trees over the same routing
        # graph with heavily overlapping terminal sets, so each terminal's
        # shortest-path tree is computed once per refine run, not once per
        # candidate (batched root->holder queries instead of per-rebuild
        # Dijkstras).
        self._routing_oracle = DijkstraOracle(self._routing_graph)

    # ------------------------------------------------------------------
    def refine(self, team: Team, project: Iterable[str] | None = None) -> Team:
        """A team at least as good as ``team`` under the chosen objective.

        ``project`` defaults to the team's assigned skills.  The input
        team is never mutated.
        """
        skills = sorted(set(project) if project is not None else team.assignments)
        current = team
        score = self.evaluator.score(current, self.objective)
        for _ in range(self.max_rounds):
            improved = False
            for move in (self._prune, self._reroute, self._swap):
                candidate = move(current, skills)
                if candidate is None:
                    continue
                candidate_score = self.evaluator.score(candidate, self.objective)
                if candidate_score < score - 1e-12:
                    current, score = candidate, candidate_score
                    improved = True
                    break
            if not improved:
                break
        return current

    # ------------------------------------------------------------------
    # moves
    # ------------------------------------------------------------------
    def _prune(self, team: Team, skills: list[str]) -> Team | None:
        holders = team.skill_holders
        pruned = prune_leaves(team.tree, required=holders)
        if pruned.num_nodes == team.tree.num_nodes:
            return None
        return Team(tree=pruned, assignments=dict(team.assignments), root=team.root)

    def _reroute(self, team: Team, skills: list[str]) -> Team | None:
        return self._rebuild(dict(team.assignments))

    def _swap(self, team: Team, skills: list[str]) -> Team | None:
        """First improving single-holder swap (scanned deterministically)."""
        base_score = self.evaluator.score(team, self.objective)
        for skill in skills:
            incumbent = team.assignments[skill]
            for candidate in sorted(self.network.experts_with_skill(skill)):
                if candidate == incumbent:
                    continue
                assignment = dict(team.assignments)
                assignment[skill] = candidate
                rebuilt = self._rebuild(assignment)
                if rebuilt is None:
                    continue
                if (
                    self.evaluator.score(rebuilt, self.objective)
                    < base_score - 1e-12
                ):
                    return rebuilt
        return None

    # ------------------------------------------------------------------
    def _rebuild(self, assignment: dict[str, str]) -> Team | None:
        holders = sorted(set(assignment.values()))
        try:
            steiner = mst_steiner_tree(
                self._routing_graph, holders, oracle=self._routing_oracle
            )
        except GraphError:
            return None
        tree = Graph()
        for node in steiner.nodes():
            tree.add_node(node)
        for u, v, _ in steiner.edges():
            tree.add_edge(u, v, weight=self.network.graph.weight(u, v))
        return Team(tree=tree, assignments=dict(assignment), root=None)
