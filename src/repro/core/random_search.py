"""The ``Random`` baseline (Section 4).

"We also implemented Random, which randomly builds 10,000 teams and
selects the one with the lowest SA-CA-CC."

A random team is built the way Algorithm 1 builds teams, but with every
choice randomized: a uniformly random *root* expert and a uniformly
random holder per required skill, connected along the root's
shortest-path tree.  Randomizing the root is what makes the baseline
honest — connecting random holders *optimally* would smuggle half of the
greedy algorithm into the baseline.  Roots are drawn from a bounded pool
whose shortest-path trees are memoized, so 10,000 samples stay cheap.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterable

from ..expertise.network import ExpertNetwork
from ..graph.adjacency import Graph
from ..graph.dijkstra import dijkstra, reconstruct_path
from .objectives import ObjectiveScales, SaMode, TeamEvaluator
from .team import Team

__all__ = ["RandomSolver", "DEFAULT_NUM_SAMPLES"]

#: The paper's sample count.
DEFAULT_NUM_SAMPLES = 10_000


class RandomSolver:
    """Best-of-N random teams under SA-CA-CC.

    ``root_pool_size`` bounds how many distinct random roots are used per
    query (their shortest-path trees are cached); holders are re-sampled
    for every one of the ``num_samples`` teams.
    """

    def __init__(
        self,
        network: ExpertNetwork,
        *,
        gamma: float = 0.6,
        lam: float = 0.6,
        scales: ObjectiveScales | None = None,
        sa_mode: SaMode = "per_skill",
        num_samples: int = DEFAULT_NUM_SAMPLES,
        root_pool_size: int = 64,
        seed: int | random.Random | None = None,
    ) -> None:
        if num_samples < 1:
            raise ValueError("num_samples must be positive")
        if root_pool_size < 1:
            raise ValueError("root_pool_size must be positive")
        self.network = network
        self.evaluator = TeamEvaluator(
            network, gamma=gamma, lam=lam, scales=scales, sa_mode=sa_mode
        )
        self.num_samples = num_samples
        self.root_pool_size = root_pool_size
        self._rng = seed if isinstance(seed, random.Random) else random.Random(seed)
        self._trees: dict[str, tuple[dict, dict]] = {}

    def find_team(self, project: Iterable[str]) -> Team | None:
        """Lowest-SA-CA-CC team among ``num_samples`` random builds."""
        by_lam = self.find_teams_for_lambdas(project, [self.evaluator.lam])
        return by_lam[self.evaluator.lam]

    def find_teams_for_lambdas(
        self, project: Iterable[str], lambdas: Iterable[float]
    ) -> dict[float, Team | None]:
        """One shared sample pool, best team selected per lambda.

        When sweeping lambda (Figure 3), the same 10,000 samples are
        re-scored per lambda instead of re-drawn — cheaper, and it removes
        sampling noise between the lambda series.
        """
        skills = sorted(set(project))
        if not skills:
            raise ValueError("project must require at least one skill")
        self.network.skill_index.require_coverable(skills)
        lambdas = list(lambdas)
        evaluators = {
            lam: self.evaluator.with_params(lam=lam) for lam in lambdas
        }
        pools = {s: sorted(self.network.experts_with_skill(s)) for s in skills}
        all_experts = sorted(self.network.expert_ids())
        root_pool = (
            all_experts
            if len(all_experts) <= self.root_pool_size
            else self._rng.sample(all_experts, self.root_pool_size)
        )
        best: dict[float, tuple[float, Team] | None] = {lam: None for lam in lambdas}
        for _ in range(self.num_samples):
            root = self._rng.choice(root_pool)
            assignment = {s: self._rng.choice(pools[s]) for s in skills}
            team = self._build(root, assignment)
            if team is None:
                continue
            for lam, evaluator in evaluators.items():
                score = evaluator.sa_ca_cc(team)
                current = best[lam]
                if current is None or score < current[0]:
                    best[lam] = (score, team)
        return {
            lam: (entry[1] if entry is not None else None)
            for lam, entry in best.items()
        }

    def _build(self, root: str, assignment: dict[str, str]) -> Team | None:
        """Connect sampled holders along the root's shortest-path tree."""
        if root not in self._trees:
            self._trees[root] = dijkstra(self.network.graph, root)
        dist, parent = self._trees[root]
        holders = sorted(set(assignment.values()))
        if any(h not in dist for h in holders):
            return None  # some holder unreachable from this root
        tree = Graph()
        tree.add_node(root)
        for holder in holders:
            path = reconstruct_path(parent, holder)
            for u, v in itertools.pairwise(path):
                if not tree.has_edge(u, v):
                    tree.add_edge(u, v, weight=self.network.graph.weight(u, v))
        return Team(tree=tree, assignments=dict(assignment), root=root)
