"""Team explanations: why each member is on the team and what they cost.

A staffing decision needs more than a score: which members drive the
communication cost, whose authority is carrying the team, and who is
structurally irreplaceable.  :func:`explain_team` decomposes the
SA-CA-CC objective member-by-member:

* a skill holder's contribution is its (normalized) inverse authority,
  weighted by lambda per covered skill;
* a connector's contribution is its inverse authority weighted by
  ``(1 - lambda) * gamma``;
* each member is also attributed half the weight of its incident team
  edges (``(1 - lambda) * (1 - gamma)`` weighted), so the per-member
  contributions sum exactly to the team's SA-CA-CC score;
* members that are articulation points of the team subgraph are flagged
  ``critical`` — removing them disconnects the team, so the replacement
  recommender can only re-route, not drop them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..expertise.network import ExpertNetwork
from ..graph.articulation import articulation_points
from .objectives import ObjectiveScales, SaMode, TeamEvaluator
from .team import Team

__all__ = ["MemberContribution", "TeamExplanation", "explain_team"]


@dataclass(frozen=True, slots=True)
class MemberContribution:
    """One member's share of the team's SA-CA-CC score."""

    expert_id: str
    role: str                      # "skill holder" | "connector"
    covered_skills: tuple[str, ...]
    authority: float               # raw h-index, for display
    sa_share: float
    ca_share: float
    cc_share: float
    critical: bool                 # articulation point of the team

    @property
    def total(self) -> float:
        return self.sa_share + self.ca_share + self.cc_share


@dataclass(frozen=True, slots=True)
class TeamExplanation:
    """Full decomposition; contributions sum to the objective value."""

    score: float
    gamma: float
    lam: float
    contributions: tuple[MemberContribution, ...]

    def heaviest(self) -> MemberContribution:
        """The member contributing the most cost."""
        return max(self.contributions, key=lambda c: c.total)

    def critical_members(self) -> list[str]:
        """Ids of members whose removal disconnects the team."""
        return [c.expert_id for c in self.contributions if c.critical]

    def format(self) -> str:
        """Human-readable decomposition, heaviest members first."""
        lines = [
            f"SA-CA-CC = {self.score:.4f}  (gamma={self.gamma}, lambda={self.lam})"
        ]
        for c in sorted(self.contributions, key=lambda c: -c.total):
            flags = " [critical]" if c.critical else ""
            skills = (
                f" covers {', '.join(c.covered_skills)}" if c.covered_skills else ""
            )
            lines.append(
                f"  {c.expert_id:<20} {c.role:<12} h={c.authority:<6.1f} "
                f"sa={c.sa_share:.4f} ca={c.ca_share:.4f} cc={c.cc_share:.4f} "
                f"total={c.total:.4f}{flags}{skills}"
            )
        return "\n".join(lines)


def explain_team(
    team: Team,
    network: ExpertNetwork,
    *,
    gamma: float = 0.6,
    lam: float = 0.6,
    scales: ObjectiveScales | None = None,
    sa_mode: SaMode = "per_skill",
) -> TeamExplanation:
    """Decompose ``team``'s SA-CA-CC score by member (see module docstring)."""
    evaluator = TeamEvaluator(
        network, gamma=gamma, lam=lam, scales=scales, sa_mode=sa_mode
    )
    critical = articulation_points(team.tree)
    skills_by_member: dict[str, list[str]] = {}
    for skill, holder in sorted(team.assignments.items()):
        skills_by_member.setdefault(holder, []).append(skill)

    edge_weight_factor = (1.0 - lam) * (1.0 - gamma)
    contributions = []
    for member in sorted(team.members):
        covered = tuple(skills_by_member.get(member, ()))
        node_cost = evaluator.node_cost(member)
        if covered:
            role = "skill holder"
            multiplicity = (
                len(covered) if sa_mode == "per_skill" else 1
            )
            sa_share = lam * node_cost * multiplicity
            ca_share = 0.0
        else:
            role = "connector"
            sa_share = 0.0
            ca_share = (1.0 - lam) * gamma * node_cost
        # half of each incident edge, so edges are attributed exactly once
        incident = sum(
            evaluator.edge_cost(weight) / 2.0
            for neighbor, weight in team.tree.neighbors(member).items()
        )
        contributions.append(
            MemberContribution(
                expert_id=member,
                role=role,
                covered_skills=covered,
                authority=network.authority(member),
                sa_share=sa_share,
                ca_share=ca_share,
                cc_share=edge_weight_factor * incident,
                critical=member in critical,
            )
        )
    return TeamExplanation(
        score=evaluator.sa_ca_cc(team),
        gamma=gamma,
        lam=lam,
        contributions=tuple(contributions),
    )
