"""RarestFirst baseline (Lappas, Liu and Terzi, KDD 2009 — the paper's [3]).

The classic communication-cost heuristic the team-formation line started
from: anchor the search on the *rarest* required skill, and for each of
its holders attach the closest holder of every other skill.  The original
paper scores candidates by the *diameter* (max anchor-to-holder
distance); we keep that scoring and also expose a sum-of-distances
variant that matches this paper's CC definition more closely.

Included as an extra baseline for the ablation benchmark
(``benchmarks/bench_ablation_baselines.py``); the reproduction's own CC
strategy is Algorithm 1 in ``cc`` mode.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable
from typing import Literal

from ..expertise.network import ExpertNetwork
from ..graph.adjacency import Graph
from ..graph.dijkstra import dijkstra, reconstruct_path
from ..graph.distance import DistanceOracle, build_oracle
from .team import Team

__all__ = ["RarestFirstSolver"]

_INF = float("inf")


class RarestFirstSolver:
    """Anchor-on-rarest-skill heuristic for communication cost."""

    def __init__(
        self,
        network: ExpertNetwork,
        *,
        aggregate: Literal["diameter", "sum"] = "diameter",
        oracle_kind: str = "pll",
        oracle: DistanceOracle | None = None,
    ) -> None:
        if aggregate not in ("diameter", "sum"):
            raise ValueError(f"unknown aggregate {aggregate!r}")
        self.network = network
        self.aggregate = aggregate
        # An injected oracle (built over the *plain* network graph) lets
        # many queries share one index, mirroring GreedyTeamFinder.
        self._oracle: DistanceOracle = (
            oracle if oracle is not None else build_oracle(network.graph, oracle_kind)
        )

    def find_team(self, project: Iterable[str]) -> Team | None:
        """Best team by the anchor heuristic; None if disconnected."""
        skills = sorted(set(project))
        if not skills:
            raise ValueError("project must require at least one skill")
        index = self.network.skill_index
        index.require_coverable(skills)
        rarest = index.rarest_first(skills)[0]
        others = [s for s in skills if s != rarest]

        best_anchor: str | None = None
        best_assignment: dict[str, str] = {}
        best_cost = _INF
        for anchor in sorted(index.experts_with(rarest)):
            assignment = {rarest: anchor}
            distances: list[float] = []
            feasible = True
            for skill in others:
                if skill in self.network.skills_of(anchor):
                    assignment[skill] = anchor
                    distances.append(0.0)
                    continue
                choice, d_best = None, _INF
                for holder in sorted(index.experts_with(skill)):
                    d = self._oracle.distance(anchor, holder)
                    if d < d_best:
                        choice, d_best = holder, d
                if choice is None:
                    feasible = False
                    break
                assignment[skill] = choice
                distances.append(d_best)
            if not feasible:
                continue
            cost = (
                max(distances, default=0.0)
                if self.aggregate == "diameter"
                else sum(distances)
            )
            if cost < best_cost:
                best_cost, best_anchor, best_assignment = cost, anchor, assignment
        if best_anchor is None:
            return None
        return self._materialize(best_anchor, best_assignment)

    def _materialize(self, anchor: str, assignment: dict[str, str]) -> Team:
        holders = set(assignment.values())
        _, parent = dijkstra(self.network.graph, anchor, targets=list(holders))
        tree = Graph()
        tree.add_node(anchor)
        for holder in holders:
            path = reconstruct_path(parent, holder)
            for u, v in itertools.pairwise(path):
                if not tree.has_edge(u, v):
                    tree.add_edge(u, v, weight=self.network.graph.weight(u, v))
        return Team(tree=tree, assignments=dict(assignment), root=anchor)
