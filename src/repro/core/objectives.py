"""Objective functions: CC, CA, SA and their combinations (Definitions 2-6).

The paper combines edge weights (communication cost) with inverse
authorities "after normalizing edge and node weights since they may have
different scales" (Section 3.1).  :class:`ObjectiveScales` captures those
two normalization constants; :class:`TeamEvaluator` bundles a network,
the tradeoff parameters gamma and lambda, and the scales into a single
object that scores teams by any of the five objectives.

Scoring always happens on the *final* team with these literal
definitions, regardless of which transformed graph guided the search —
that is how Figure 3 can report the SA-CA-CC score of teams found by the
plain CC strategy.

One ambiguity in the paper: Definition 5 sums skill-holder authority over
the ``n`` skill-expert pairs of Definition 1, which charges an expert once
*per covered skill*; Definition 3's connector sum is clearly per-node.
``sa_mode`` selects the literal reading (``"per_skill"``, default) or the
set-based one (``"distinct"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from ..expertise.network import ExpertNetwork
from .team import Team

__all__ = ["ObjectiveScales", "TeamEvaluator", "SaMode"]

SaMode = Literal["per_skill", "distinct"]


@dataclass(frozen=True, slots=True)
class ObjectiveScales:
    """Normalization constants: divide weights by these before combining.

    ``edge_scale`` rescales communication costs, ``authority_scale``
    rescales inverse authorities; both default to 1 (no normalization).
    """

    edge_scale: float = 1.0
    authority_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.edge_scale <= 0 or self.authority_scale <= 0:
            raise ValueError("scales must be positive")

    @classmethod
    def from_network(cls, network: ExpertNetwork) -> "ObjectiveScales":
        """Min-max scales: the network's largest edge weight and largest
        inverse authority (minimums are 0 by construction)."""
        edge = network.max_edge_weight()
        auth = network.max_inverse_authority()
        return cls(edge_scale=edge or 1.0, authority_scale=auth or 1.0)


class TeamEvaluator:
    """Scores teams under Definitions 2-6 for fixed gamma/lambda/scales.

    >>> # evaluator = TeamEvaluator(network, gamma=0.6, lam=0.6)
    >>> # evaluator.sa_ca_cc(team)
    """

    def __init__(
        self,
        network: ExpertNetwork,
        *,
        gamma: float = 0.6,
        lam: float = 0.6,
        scales: ObjectiveScales | None = None,
        sa_mode: SaMode = "per_skill",
    ) -> None:
        if not 0.0 <= gamma <= 1.0:
            raise ValueError(f"gamma must be in [0, 1], got {gamma}")
        if not 0.0 <= lam <= 1.0:
            raise ValueError(f"lambda must be in [0, 1], got {lam}")
        if sa_mode not in ("per_skill", "distinct"):
            raise ValueError(f"unknown sa_mode {sa_mode!r}")
        self.network = network
        self.gamma = gamma
        self.lam = lam
        self.scales = scales or ObjectiveScales.from_network(network)
        self.sa_mode: SaMode = sa_mode

    # ------------------------------------------------------------------
    # normalized primitives
    # ------------------------------------------------------------------
    def edge_cost(self, weight: float) -> float:
        """Normalized communication cost of one edge weight."""
        return weight / self.scales.edge_scale

    def node_cost(self, expert_id: str) -> float:
        """Normalized inverse authority of one expert."""
        return (
            self.network.inverse_authority(expert_id)
            / self.scales.authority_scale
        )

    # ------------------------------------------------------------------
    # Definitions 2-6
    # ------------------------------------------------------------------
    def cc(self, team: Team) -> float:
        """Communication cost: sum of (normalized) team edge weights."""
        return sum(self.edge_cost(w) for _, _, w in team.tree.edges())

    def ca(self, team: Team) -> float:
        """Connector authority: sum of a' over non-skill-holder members."""
        return sum(self.node_cost(c) for c in team.connectors)

    def sa(self, team: Team) -> float:
        """Skill-holder authority (see ``sa_mode`` in the module docstring)."""
        if self.sa_mode == "per_skill":
            return sum(self.node_cost(c) for c in team.assignments.values())
        return sum(self.node_cost(c) for c in team.skill_holders)

    def ca_cc(self, team: Team) -> float:
        """Definition 4: ``gamma * CA + (1 - gamma) * CC``."""
        return self.gamma * self.ca(team) + (1.0 - self.gamma) * self.cc(team)

    def sa_ca_cc(self, team: Team) -> float:
        """Definition 6: ``lambda * SA + (1 - lambda) * CA-CC``."""
        return self.lam * self.sa(team) + (1.0 - self.lam) * self.ca_cc(team)

    def score(self, team: Team, objective: str) -> float:
        """Dispatch by objective name: cc | ca | sa | ca-cc | sa-ca-cc."""
        try:
            fn = {
                "cc": self.cc,
                "ca": self.ca,
                "sa": self.sa,
                "ca-cc": self.ca_cc,
                "sa-ca-cc": self.sa_ca_cc,
            }[objective]
        except KeyError:
            raise ValueError(f"unknown objective {objective!r}") from None
        return fn(team)

    def with_params(
        self, *, gamma: float | None = None, lam: float | None = None
    ) -> "TeamEvaluator":
        """A copy with updated tradeoff parameters (same network/scales)."""
        return TeamEvaluator(
            self.network,
            gamma=self.gamma if gamma is None else gamma,
            lam=self.lam if lam is None else lam,
            scales=self.scales,
            sa_mode=self.sa_mode,
        )
