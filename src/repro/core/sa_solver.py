"""Problem 4: minimal skill-holder authority (polynomial time).

Unlike Problems 1, 2, 3 and 5, Problem 4 is easy — the paper notes:
"Problem 4 can be solved in polynomial time: for each skill in P, we
find an expert with the highest a (lowest a'), and then produce a
connected subgraph containing the selected experts.  However, this
ignores communication cost and connectors' authority."

This solver implements exactly that: the per-skill argmax-authority
holder is SA-optimal by construction (SA is separable per skill), and
the selected holders are connected with a Steiner approximation over the
plain communication-cost graph.  The resulting team is *provably
SA-optimal* while making no promise about CC or CA — the trade the
paper's SA-CA-CC objective then addresses.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..expertise.network import ExpertNetwork
from ..graph.adjacency import Graph, GraphError
from ..graph.steiner import mst_steiner_tree
from .objectives import ObjectiveScales, SaMode, TeamEvaluator
from .team import Team

__all__ = ["SaOptimalSolver"]


class SaOptimalSolver:
    """Exact polynomial solver for Problem 4 (minimal SA)."""

    def __init__(
        self,
        network: ExpertNetwork,
        *,
        gamma: float = 0.6,
        lam: float = 1.0,
        scales: ObjectiveScales | None = None,
        sa_mode: SaMode = "per_skill",
    ) -> None:
        self.network = network
        # Defaults are Problem 4's reading of the objective: lam=1 weighs
        # SA alone.  The chosen team never depends on gamma/lam (the
        # per-skill argmax only uses node costs), but callers scoring the
        # result through ``self.evaluator`` see the parameters they asked
        # for instead of silently hardcoded ones.
        self.evaluator = TeamEvaluator(
            network, gamma=gamma, lam=lam, scales=scales, sa_mode=sa_mode
        )
        self.gamma = self.evaluator.gamma
        self.lam = self.evaluator.lam

    def find_team(self, project: Iterable[str]) -> Team | None:
        """The SA-optimal team, or ``None`` if the per-skill optima cannot
        be connected (they may span components).

        Ties on authority break toward the lexicographically smallest
        expert id, making the result deterministic.
        """
        skills = sorted(set(project))
        if not skills:
            raise ValueError("project must require at least one skill")
        self.network.skill_index.require_coverable(skills)
        assignment = {
            skill: min(
                self.network.experts_with_skill(skill),
                key=lambda c: (self.evaluator.node_cost(c), c),
            )
            for skill in skills
        }
        holders = sorted(set(assignment.values()))
        try:
            steiner = mst_steiner_tree(self.network.graph, holders)
        except GraphError:
            return None
        tree = Graph()
        for node in steiner.nodes():
            tree.add_node(node)
        for u, v, w in steiner.edges():
            tree.add_edge(u, v, weight=w)
        return Team(tree=tree, assignments=assignment, root=None)

    def optimal_sa(self, project: Iterable[str]) -> float:
        """The provably minimal SA value for ``project`` (no team built).

        Equals ``sum over skills of min over C(s) of a'`` in per-skill
        mode; in distinct mode this is a lower bound achieved when one
        expert can take every skill whose minimum it attains.
        """
        skills = sorted(set(project))
        self.network.skill_index.require_coverable(skills)
        return sum(
            min(
                self.evaluator.node_cost(c)
                for c in self.network.experts_with_skill(skill)
            )
            for skill in skills
        )
