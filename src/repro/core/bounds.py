"""Objective lower bounds and optimality-gap reporting.

The greedy algorithms are heuristics; without `Exact` (intractable at
scale) there is no way to tell *how far* a returned team might be from
optimal.  This module derives cheap, provably valid lower bounds on the
optimal objective value of a project:

* **SA bound** — any team must assign each skill to somebody, so its SA
  is at least the per-skill minimum inverse authority
  (``sum over s of min over C(s) of a'``; the set-based ``distinct``
  mode is bounded by the largest such minimum).
* **CC bound** — if no single expert covers every skill, a valid team
  has at least one edge, so its CC is at least the cheapest edge
  touching any candidate holder set's connection (we use the global
  minimum edge weight — weak but sound).
* **CA bound** — zero (a team of adjacent holders has no connectors).

The combined bound plugs these into the objective's linear form.  The
gap ``(score - bound) / bound`` certifies solution quality: Figure 3's
Exact scores must always land between the bound and the greedy score,
which the test suite asserts.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..expertise.network import ExpertNetwork
from .objectives import ObjectiveScales, SaMode, TeamEvaluator
from .team import Team

__all__ = ["ObjectiveBounds", "optimality_gap"]


class ObjectiveBounds:
    """Valid lower bounds on the optimal objective values of a project."""

    def __init__(
        self,
        network: ExpertNetwork,
        *,
        gamma: float = 0.6,
        lam: float = 0.6,
        scales: ObjectiveScales | None = None,
        sa_mode: SaMode = "per_skill",
    ) -> None:
        self.network = network
        self.evaluator = TeamEvaluator(
            network, gamma=gamma, lam=lam, scales=scales, sa_mode=sa_mode
        )

    # ------------------------------------------------------------------
    def sa_bound(self, project: Iterable[str]) -> float:
        """Least possible (normalized) skill-holder authority."""
        skills = sorted(set(project))
        self.network.skill_index.require_coverable(skills)
        minima = [
            min(
                self.evaluator.node_cost(c)
                for c in self.network.experts_with_skill(s)
            )
            for s in skills
        ]
        if self.evaluator.sa_mode == "per_skill":
            return sum(minima)
        # distinct mode: one expert could cover everything, paying only
        # the largest of the per-skill minima.
        return max(minima, default=0.0)

    def cc_bound(self, project: Iterable[str]) -> float:
        """Least possible (normalized) communication cost.

        Zero when one expert covers the whole project; otherwise at
        least one edge is needed, so the global cheapest edge is a valid
        bound.
        """
        skills = sorted(set(project))
        self.network.skill_index.require_coverable(skills)
        pools = [self.network.experts_with_skill(s) for s in skills]
        if set.intersection(*map(set, pools)):
            return 0.0
        cheapest = min(
            (w for _, _, w in self.network.graph.edges()), default=0.0
        )
        return self.evaluator.edge_cost(cheapest)

    def ca_bound(self, project: Iterable[str]) -> float:
        """Connector authority can always be zero (no-connector teams)."""
        return 0.0

    def sa_ca_cc_bound(self, project: Iterable[str]) -> float:
        """Lower bound on the optimal SA-CA-CC value of ``project``."""
        gamma, lam = self.evaluator.gamma, self.evaluator.lam
        ca_cc = gamma * self.ca_bound(project) + (1.0 - gamma) * self.cc_bound(
            project
        )
        return lam * self.sa_bound(project) + (1.0 - lam) * ca_cc


def optimality_gap(
    bounds: ObjectiveBounds, team: Team, project: Iterable[str]
) -> float:
    """Relative gap of ``team`` against the SA-CA-CC lower bound.

    ``0.0`` means the bound is met exactly (the team is certifiably
    optimal); the value is ``inf`` only for a zero bound with a positive
    score.
    """
    bound = bounds.sa_ca_cc_bound(project)
    score = bounds.evaluator.sa_ca_cc(team)
    if bound <= 0.0:
        return 0.0 if score <= 1e-12 else float("inf")
    return max(0.0, (score - bound) / bound)
