"""The ``G -> G'`` transformation (Section 3.2.2).

To let the communication-cost algorithm also optimize authority, the
paper folds node weights onto the edges::

    w'(c_i, c_j) = gamma * (a'(c_i) + a'(c_j)) + 2 * (1 - gamma) * w(c_i, c_j)

On a path from ``root`` to a skill holder ``v``, summing ``w'`` charges
every *interior* node's inverse authority exactly twice and each
endpoint's once, while communication cost is charged twice per edge —
i.e. path length in ``G'`` is ``2 * [gamma * (CA-ish) + (1-gamma) * CC]``
plus the endpoint corrections the greedy subtracts via
``DIST(root, v) - gamma * a'(v)``.  Setting ``gamma = 1`` optimizes pure
connector authority (Problem 2).

All quantities are normalized with :class:`ObjectiveScales` before
mixing, per Section 3.1.
"""

from __future__ import annotations

from ..expertise.network import ExpertNetwork
from ..graph.adjacency import Graph
from .objectives import ObjectiveScales

__all__ = ["authority_fold_transform", "transformed_edge_weight"]


def transformed_edge_weight(
    inv_auth_u: float, inv_auth_v: float, weight: float, gamma: float
) -> float:
    """The scalar rule ``w' = gamma*(a'_u + a'_v) + 2*(1-gamma)*w``.

    Inputs are assumed already normalized.
    """
    return gamma * (inv_auth_u + inv_auth_v) + 2.0 * (1.0 - gamma) * weight


def authority_fold_transform(
    network: ExpertNetwork,
    gamma: float,
    *,
    scales: ObjectiveScales | None = None,
) -> Graph:
    """Build ``G'`` from the expert network.

    Returns a new :class:`Graph` over the same nodes whose edge weights
    follow the paper's rule on normalized quantities.  The original
    network is untouched.
    """
    if not 0.0 <= gamma <= 1.0:
        raise ValueError(f"gamma must be in [0, 1], got {gamma}")
    scales = scales or ObjectiveScales.from_network(network)
    inv_auth = {
        expert_id: network.inverse_authority(expert_id) / scales.authority_scale
        for expert_id in network.expert_ids()
    }

    def rule(u: str, v: str, w: float) -> float:
        return transformed_edge_weight(
            inv_auth[u], inv_auth[v], w / scales.edge_scale, gamma
        )

    return network.graph.reweighted(rule)
