"""Ground-truth solver by full enumeration of member sets.

This is *not* the paper's ``Exact`` (see :mod:`repro.core.exact`); it is
an even more literal optimizer used as the trust anchor of the test
suite: enumerate every subset of experts, keep those that induce a
connected subgraph covering the project, take the MST of the induced
subgraph (optimal spanning structure for any fixed member set, since CC
is the only edge-dependent term), and try every skill -> holder
assignment inside the set.  Exponential in the network size — guarded by
``max_nodes``.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable

from ..expertise.network import ExpertNetwork
from ..graph.components import is_connected
from ..graph.steiner import minimum_spanning_tree
from .exact import IntractableError
from .objectives import ObjectiveScales, SaMode, TeamEvaluator
from .team import Team

__all__ = ["BruteForceSolver"]


class BruteForceSolver:
    """Provably optimal teams on *tiny* networks, for cross-validation."""

    def __init__(
        self,
        network: ExpertNetwork,
        *,
        objective: str = "sa-ca-cc",
        gamma: float = 0.6,
        lam: float = 0.6,
        scales: ObjectiveScales | None = None,
        sa_mode: SaMode = "per_skill",
        max_nodes: int = 14,
    ) -> None:
        if len(network) > max_nodes:
            raise IntractableError(
                f"{len(network)} experts exceed max_nodes={max_nodes}"
            )
        self.network = network
        self.objective = objective
        self.evaluator = TeamEvaluator(
            network, gamma=gamma, lam=lam, scales=scales, sa_mode=sa_mode
        )

    def find_team(self, project: Iterable[str]) -> Team | None:
        """The global optimum of ``objective`` over all valid teams."""
        skills = sorted(set(project))
        if not skills:
            raise ValueError("project must require at least one skill")
        self.network.skill_index.require_coverable(skills)
        experts = sorted(self.network.expert_ids())
        best_team: Team | None = None
        best_score = float("inf")
        for r in range(1, len(experts) + 1):
            for subset in itertools.combinations(experts, r):
                team = self._best_team_on(set(subset), skills)
                if team is None:
                    continue
                score = self.evaluator.score(team, self.objective)
                if score < best_score - 1e-12:
                    best_score, best_team = score, team
        return best_team

    def _best_team_on(
        self, members: set[str], skills: list[str]
    ) -> Team | None:
        """Best assignment on a fixed member set (or None if invalid)."""
        pools = []
        for skill in skills:
            holders = self.network.experts_with_skill(skill) & members
            if not holders:
                return None
            pools.append(sorted(holders))
        sub = self.network.graph.subgraph(members)
        if not is_connected(sub):
            return None
        tree = minimum_spanning_tree(sub)
        best_team: Team | None = None
        best_score = float("inf")
        for combo in itertools.product(*pools):
            team = Team(tree=tree, assignments=dict(zip(skills, combo)))
            score = self.evaluator.score(team, self.objective)
            if score < best_score - 1e-12:
                best_score, best_team = score, team
        return best_team
