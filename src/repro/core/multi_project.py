"""Staffing several projects at once with non-overlapping teams.

A natural operational extension of the paper: an organization rarely
forms one team in isolation — it staffs a *portfolio* of projects, and
an expert committed to one project is unavailable to the others.  This
module allocates teams to an ordered list of projects greedily: each
project is solved on the network minus the experts already committed,
in either arrival order or a cost-aware order ("cheapest-first", which
tends to raise total welfare by letting constrained projects pick before
the pool thins).

Greedy sequential allocation is the standard baseline for this NP-hard
packing problem; exact portfolio optimization is out of scope and the
per-project solver is already a heuristic.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Literal

from ..expertise.network import ExpertNetwork
from .greedy import GreedyTeamFinder
from .objectives import ObjectiveScales, SaMode
from .team import Team

__all__ = ["ProjectAssignment", "PortfolioResult", "MultiProjectStaffing"]


@dataclass(frozen=True, slots=True)
class ProjectAssignment:
    """Outcome for one project: its team or the reason it went unstaffed."""

    project: tuple[str, ...]
    team: Team | None
    score: float | None
    failure: str | None = None

    @property
    def staffed(self) -> bool:
        return self.team is not None


@dataclass
class PortfolioResult:
    assignments: list[ProjectAssignment]

    @property
    def num_staffed(self) -> int:
        return sum(1 for a in self.assignments if a.staffed)

    @property
    def total_score(self) -> float:
        return sum(a.score for a in self.assignments if a.score is not None)

    def committed_experts(self) -> frozenset[str]:
        """All experts bound to some staffed team."""
        members: set[str] = set()
        for a in self.assignments:
            if a.team is not None:
                members |= a.team.members
        return frozenset(members)


class MultiProjectStaffing:
    """Allocate disjoint teams to a list of projects."""

    def __init__(
        self,
        network: ExpertNetwork,
        *,
        objective: str = "sa-ca-cc",
        gamma: float = 0.6,
        lam: float = 0.6,
        scales: ObjectiveScales | None = None,
        sa_mode: SaMode = "per_skill",
        order: Literal["arrival", "cheapest-first"] = "arrival",
        oracle_kind: str = "dijkstra",
    ) -> None:
        if order not in ("arrival", "cheapest-first"):
            raise ValueError(f"unknown order {order!r}")
        self.network = network
        self.objective = objective
        self.gamma = gamma
        self.lam = lam
        self.scales = scales or ObjectiveScales.from_network(network)
        self.sa_mode: SaMode = sa_mode
        self.order = order
        self.oracle_kind = oracle_kind

    def staff(self, projects: Sequence[Iterable[str]]) -> PortfolioResult:
        """Assign mutually disjoint teams to ``projects``.

        Unstaffable projects (skills exhausted by earlier commitments,
        or never coverable) are reported with a ``failure`` reason
        rather than raised — portfolio staffing is best-effort.
        """
        normalized = [tuple(sorted(set(p))) for p in projects]
        order = list(range(len(normalized)))
        if self.order == "cheapest-first":
            baseline = self._baseline_scores(normalized)
            order.sort(key=lambda i: baseline[i])
        committed: set[str] = set()
        outcomes: dict[int, ProjectAssignment] = {}
        for idx in order:
            project = normalized[idx]
            outcomes[idx] = self._staff_one(project, committed)
            team = outcomes[idx].team
            if team is not None:
                committed |= team.members
        return PortfolioResult(
            assignments=[outcomes[i] for i in range(len(normalized))]
        )

    # ------------------------------------------------------------------
    def _baseline_scores(self, projects: list[tuple[str, ...]]) -> list[float]:
        """Unconstrained solve per project, used only for ordering."""
        scores = []
        for project in projects:
            assignment = self._staff_one(project, committed=set())
            scores.append(
                assignment.score if assignment.score is not None else float("inf")
            )
        return scores

    def _staff_one(
        self, project: tuple[str, ...], committed: set[str]
    ) -> ProjectAssignment:
        available = [
            e for e in self.network.expert_ids() if e not in committed
        ]
        if not available:
            return ProjectAssignment(
                project=project, team=None, score=None, failure="no experts left"
            )
        subnetwork = self.network.subnetwork(available)
        if not subnetwork.skill_index.is_coverable(project):
            return ProjectAssignment(
                project=project,
                team=None,
                score=None,
                failure="required skills exhausted",
            )
        finder = GreedyTeamFinder(
            subnetwork,
            objective=self.objective,
            gamma=self.gamma,
            lam=self.lam,
            scales=self.scales,
            sa_mode=self.sa_mode,
            oracle_kind=self.oracle_kind,
        )
        team = finder.find_team(project)
        if team is None:
            return ProjectAssignment(
                project=project,
                team=None,
                score=None,
                failure="holders disconnected after commitments",
            )
        score = finder.evaluator.score(team, "sa-ca-cc")
        return ProjectAssignment(project=project, team=team, score=score)
