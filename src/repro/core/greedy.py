"""Algorithm 1 and its authority-aware modifications (Section 3.2).

The search iterates every expert ``c_r`` as a potential root, picks for
each required skill the holder minimizing a mode-dependent distance score
from the root, and keeps the root(s) with the smallest score sum.  The
three modes differ only in the score and in which graph distances are
measured on:

``cc``        score = ``DIST_G(root, v)`` — Problem 1, prior art.
``ca-cc``     score = ``DIST_G'(root, v) - gamma * a'(v)`` — Problem 3;
              ``gamma = 1`` degenerates to Problem 2 (pure CA).
``sa-ca-cc``  score = ``(1-lam) * (DIST_G'(root, v) - gamma * a'(v))
              + lam * a'(v)`` — Problem 5.

In every authority-aware mode, a root that itself holds the skill is
assigned it at score zero (Section 3.2.2).  ``DIST`` queries go through a
pluggable distance oracle — the paper's 2-hop cover by default.

Final teams are *materialized* from a single Dijkstra tree rooted at the
winning root (all root-to-holder paths then share edges consistently, so
the team subgraph is a tree) and re-scored with the literal Definitions
2-6 by a :class:`TeamEvaluator`.
"""

from __future__ import annotations

import itertools
from bisect import insort
from collections.abc import Iterable, Sequence

from ..expertise.network import ExpertNetwork
from ..graph.adjacency import Graph
from ..graph.dijkstra import dijkstra, reconstruct_path
from ..graph.distance import DistanceOracle, build_oracle
from .objectives import ObjectiveScales, SaMode, TeamEvaluator
from .team import Team
from .transform import authority_fold_transform

__all__ = ["GreedyTeamFinder", "OBJECTIVES", "search_graph_for"]

OBJECTIVES = ("cc", "ca", "ca-cc", "sa-ca-cc")

_INF = float("inf")


def search_graph_for(
    network: ExpertNetwork,
    objective: str,
    gamma: float,
    scales: ObjectiveScales,
) -> Graph:
    """The graph Algorithm 1 measures distances on for ``objective``.

    ``cc`` searches plain ``G`` with normalized weights (a monotone
    rescale, so teams are unchanged); every authority-aware mode searches
    the folded graph ``G'``.  Shared between :class:`GreedyTeamFinder`
    and the engine's oracle cache so an injected oracle is always built
    over the exact graph the finder would have built itself.
    """
    if objective == "cc":
        return network.graph.reweighted(lambda u, v, w: w / scales.edge_scale)
    if objective == "ca":
        gamma = 1.0
    return authority_fold_transform(network, gamma, scales=scales)


class GreedyTeamFinder:
    """The paper's greedy solver for Problems 1, 2, 3 and 5.

    Parameters
    ----------
    network:
        The expert network ``G``.
    objective:
        One of ``"cc"``, ``"ca"``, ``"ca-cc"``, ``"sa-ca-cc"``.  ``"ca"``
        is ``"ca-cc"`` with ``gamma`` forced to 1 (Problem 2).
    gamma, lam:
        Tradeoff parameters of Definitions 4 and 6.
    oracle_kind:
        ``"pll"`` (2-hop cover, the paper's choice) or ``"dijkstra"``.
    index_workers:
        Worker processes for PLL index construction (``None`` uses the
        module default, settable via the CLI's ``--parallel-index``).
    batch_queries:
        When true (default), each (root, skill) sweep issues one batched
        ``distances_from`` call instead of per-candidate point lookups.
        Scores — and therefore teams — are identical either way; the
        point-query path remains for oracles without a batch API and as
        the reference in the equivalence tests.
    root_candidates:
        Optional restriction of the root loop (Algorithm 1 line 3); by
        default every expert is tried, as in the paper.
    scales:
        Normalization constants; derived from the network when omitted.
    """

    def __init__(
        self,
        network: ExpertNetwork,
        *,
        objective: str = "sa-ca-cc",
        gamma: float = 0.6,
        lam: float = 0.6,
        oracle_kind: str = "pll",
        root_candidates: Iterable[str] | None = None,
        scales: ObjectiveScales | None = None,
        sa_mode: SaMode = "per_skill",
        oracle: DistanceOracle | None = None,
        search_graph: Graph | None = None,
        index_workers: int | None = None,
        batch_queries: bool = True,
    ) -> None:
        if objective not in OBJECTIVES:
            raise ValueError(f"unknown objective {objective!r}; expected {OBJECTIVES}")
        if objective == "ca":
            gamma = 1.0
        self.network = network
        self.objective = objective
        self.evaluator = TeamEvaluator(
            network, gamma=gamma, lam=lam, scales=scales, sa_mode=sa_mode
        )
        self.gamma = self.evaluator.gamma
        self.lam = self.evaluator.lam
        # An injected search graph must come from `search_graph_for` with
        # this finder's (objective, gamma, scales) — the engine passes it
        # alongside the matching oracle so neither is built twice.
        self._search_graph = (
            search_graph if search_graph is not None else self._build_search_graph()
        )
        # An injected oracle lets a lambda sweep share one index: the
        # search graph depends only on (network, gamma, scales), never on
        # lambda, so `finder.oracle` can be handed to the next finder.
        self._oracle: DistanceOracle = (
            oracle
            if oracle is not None
            else build_oracle(
                self._search_graph, oracle_kind, workers=index_workers
            )
        )
        self._batch_queries = batch_queries and hasattr(
            self._oracle, "distances_from"
        )
        self._roots = (
            list(root_candidates)
            if root_candidates is not None
            else list(network.expert_ids())
        )
        unknown = [r for r in self._roots if r not in network]
        if unknown:
            raise KeyError(f"root candidates outside the network: {unknown[:5]!r}")

    @property
    def oracle(self) -> DistanceOracle:
        """The distance oracle over the search graph (shareable, see init)."""
        return self._oracle

    @property
    def search_graph(self) -> Graph:
        """The (possibly transformed) graph distances are measured on."""
        return self._search_graph

    # ------------------------------------------------------------------
    # search-graph construction
    # ------------------------------------------------------------------
    def _build_search_graph(self) -> Graph:
        return search_graph_for(
            self.network, self.objective, self.gamma, self.evaluator.scales
        )

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def _skill_score(self, root: str, candidate: str) -> float:
        """The mode-dependent score of assigning ``candidate`` from ``root``."""
        return self._score_from_distance(
            self._oracle.distance(root, candidate), candidate
        )

    def _score_from_distance(self, dist: float, candidate: str) -> float:
        """Combine an oracle distance into the mode-dependent score.

        Shared by the point-query and batched paths so both compute
        bit-identical floats (the equivalence tests compare whole teams).
        """
        if dist == _INF:
            return _INF
        if self.objective == "cc":
            return dist
        corrected = dist - self.gamma * self.evaluator.node_cost(candidate)
        if self.objective in ("ca", "ca-cc"):
            return corrected
        # sa-ca-cc (Section 3.2.3)
        node = self.evaluator.node_cost(candidate)
        return (1.0 - self.lam) * corrected + self.lam * node

    def _best_holder(
        self, root: str, candidates: Sequence[str]
    ) -> tuple[str | None, float]:
        """Best (holder, score) for one skill from ``root``.

        ``candidates`` must be sorted: ties on score keep the
        lexicographically smallest holder in both query modes.  The
        batched mode fetches every root -> candidate distance in one
        ``distances_from`` call (one label-array hoist, memoized per
        root) instead of ``len(candidates)`` point lookups.
        """
        best_expert, best_score = None, _INF
        if self._batch_queries:
            dists = self._oracle.distances_from(root, candidates)
            for candidate in candidates:
                score = self._score_from_distance(dists[candidate], candidate)
                if score < best_score:
                    best_expert, best_score = candidate, score
        else:
            for candidate in candidates:
                score = self._skill_score(root, candidate)
                if score < best_score:
                    best_expert, best_score = candidate, score
        return best_expert, best_score

    # ------------------------------------------------------------------
    # the root loop (Algorithm 1)
    # ------------------------------------------------------------------
    def find_team(self, project: Iterable[str]) -> Team | None:
        """Best team for ``project``; ``None`` if no root covers it."""
        teams = self.find_top_k(project, k=1)
        return teams[0] if teams else None

    def find_top_k(self, project: Iterable[str], k: int = 5) -> list[Team]:
        """Top-``k`` distinct teams by greedy cost (Section 3.2.1).

        The bounded list ``L`` is kept over root iterations exactly as the
        paper describes; a few extra candidates are retained so that
        deduplication (several roots can induce the same team) still
        yields ``k`` distinct teams.
        """
        if k < 1:
            raise ValueError("k must be positive")
        skills = sorted(set(project))
        if not skills:
            raise ValueError("project must require at least one skill")
        self.network.skill_index.require_coverable(skills)
        candidates = {
            s: sorted(self.network.experts_with_skill(s)) for s in skills
        }

        capacity = max(4 * k, k + 8)
        # Entries: (greedy_cost, tie, root, {skill: expert})
        best: list[tuple[float, int, str, dict[str, str]]] = []
        for tie, root in enumerate(self._roots):
            total = 0.0
            assignment: dict[str, str] = {}
            feasible = True
            root_skills = self.network.skills_of(root)
            bound = best[-1][0] if len(best) >= capacity else _INF
            for skill in skills:
                if skill in root_skills:
                    # Root holds the skill: zero score, assigned to root.
                    assignment[skill] = root
                    continue
                best_expert, best_score = self._best_holder(
                    root, candidates[skill]
                )
                if best_expert is None:
                    feasible = False
                    break
                assignment[skill] = best_expert
                total += best_score
                if total >= bound:
                    feasible = False  # cannot enter the bounded list
                    break
            if not feasible:
                continue
            insort(best, (total, tie, root, assignment), key=lambda e: (e[0], e[1]))
            if len(best) > capacity:
                best.pop()

        teams: list[Team] = []
        seen: set = set()
        for _, _, root, assignment in best:
            team = self._materialize(root, assignment)
            if team.key() in seen:
                continue
            seen.add(team.key())
            teams.append(team)
            if len(teams) == k:
                break
        return teams

    def team_from_root(self, root: str, project: Iterable[str]) -> Team | None:
        """The team Algorithm 1 would grow from one specific root.

        Returns ``None`` when some skill is unreachable from ``root``.
        Exposed for tests and for the qualitative Figure 6 experiment.
        """
        skills = sorted(set(project))
        assignment: dict[str, str] = {}
        root_skills = self.network.skills_of(root)
        for skill in skills:
            if skill in root_skills:
                assignment[skill] = root
                continue
            holders = sorted(self.network.experts_with_skill(skill))
            best_expert, _ = self._best_holder(root, holders)
            if best_expert is None:
                return None
            assignment[skill] = best_expert
        return self._materialize(root, assignment)

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def _materialize(self, root: str, assignment: dict[str, str]) -> Team:
        """Union of root-to-holder paths from one Dijkstra tree of ``G'``.

        Using a single shortest-path tree keeps the union cycle-free and
        mirrors Algorithm 1's ``add`` (line 13: connect ``bestExpert``
        along its path from the root).  Edge weights in the returned team
        come from the *original* network, so evaluation sees real
        communication costs.
        """
        holders = set(assignment.values())
        dist, parent = dijkstra(self._search_graph, root, targets=list(holders))
        tree = Graph()
        tree.add_node(root)
        for holder in holders:
            path = reconstruct_path(parent, holder)
            for u, v in itertools.pairwise(path):
                if not tree.has_edge(u, v):
                    tree.add_edge(u, v, weight=self.network.graph.weight(u, v))
        return Team(tree=tree, assignments=dict(assignment), root=root)
