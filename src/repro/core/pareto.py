"""Pareto-optimal team discovery (the paper's announced future work).

Section 5: "Another way to jointly optimize the communication cost and
expert authority objectives is to find a set of Pareto-optimal teams.  In
the future, we plan to develop algorithms to find such teams."  The
related [6] (Zihayat, Kargar, An — WI 2014) does two-phase Pareto-set
discovery for three-objective team formation.

We implement a practical frontier miner in that spirit: run the greedy
solver across a grid of (gamma, lambda) tradeoffs plus the pure-CC mode,
collect all top-k teams each configuration produces, evaluate every team
on the raw objective vector ``(CC, CA, SA)`` and keep the non-dominated
set.  The grid acts as a scalarization sweep: every supported
(convex-hull) Pareto point is reachable by *some* weighted combination,
so a dense grid recovers the supported frontier; the dominance filter
guarantees soundness of whatever is returned.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from ..expertise.network import ExpertNetwork
from .greedy import GreedyTeamFinder
from .objectives import ObjectiveScales, SaMode, TeamEvaluator
from .team import Team

__all__ = ["ParetoTeam", "ParetoTeamDiscovery", "dominates", "pareto_filter"]


def dominates(a: Sequence[float], b: Sequence[float], *, tol: float = 1e-12) -> bool:
    """Whether vector ``a`` Pareto-dominates ``b`` (minimization).

    ``a`` dominates ``b`` iff it is no worse in every coordinate and
    strictly better in at least one.
    """
    if len(a) != len(b):
        raise ValueError("vectors must have equal length")
    no_worse = all(x <= y + tol for x, y in zip(a, b))
    strictly = any(x < y - tol for x, y in zip(a, b))
    return no_worse and strictly


def pareto_filter(items: Iterable, key: Callable[[object], Sequence[float]]) -> list:
    """Return the non-dominated subset of ``items`` under ``key`` vectors."""
    pool = list(items)
    vectors = [key(item) for item in pool]
    keep: list = []
    for i, item in enumerate(pool):
        if not any(
            dominates(vectors[j], vectors[i]) for j in range(len(pool)) if j != i
        ):
            keep.append(item)
    return keep


@dataclass(frozen=True, slots=True)
class ParetoTeam:
    """A frontier member: the team and its ``(CC, CA, SA)`` vector."""

    team: Team
    cc: float
    ca: float
    sa: float

    @property
    def vector(self) -> tuple[float, float, float]:
        return (self.cc, self.ca, self.sa)


class ParetoTeamDiscovery:
    """Scalarization-sweep frontier miner over (gamma, lambda)."""

    def __init__(
        self,
        network: ExpertNetwork,
        *,
        grid: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
        k_per_cell: int = 3,
        oracle_kind: str = "dijkstra",
        scales: ObjectiveScales | None = None,
        sa_mode: SaMode = "per_skill",
        finder_factory: Callable[..., GreedyTeamFinder] | None = None,
    ) -> None:
        bad = [g for g in grid if not 0.0 <= g <= 1.0]
        if bad:
            raise ValueError(f"grid values outside [0, 1]: {bad}")
        if k_per_cell < 1:
            raise ValueError("k_per_cell must be positive")
        self.network = network
        self.grid = tuple(sorted(set(grid)))
        self.k_per_cell = k_per_cell
        self.oracle_kind = oracle_kind
        self.scales = scales or ObjectiveScales.from_network(network)
        self.sa_mode: SaMode = sa_mode
        # The sweep builds one greedy finder per grid cell; an injected
        # factory (e.g. TeamFormationEngine.greedy_finder) lets all cells
        # share cached distance oracles instead of rebuilding per cell.
        self._finder_factory = finder_factory or self._default_finder
        # A parameter-free evaluator for the raw objective vector.
        self._vector_eval = TeamEvaluator(
            network, gamma=0.5, lam=0.5, scales=self.scales, sa_mode=sa_mode
        )

    def _default_finder(self, **params: object) -> GreedyTeamFinder:
        return GreedyTeamFinder(
            self.network,
            oracle_kind=self.oracle_kind,
            scales=self.scales,
            sa_mode=self.sa_mode,
            **params,  # type: ignore[arg-type]
        )

    def discover(self, project: Iterable[str]) -> list[ParetoTeam]:
        """Mine the (CC, CA, SA) Pareto frontier for ``project``.

        Returns frontier teams sorted by ascending CC (a natural display
        order: cheapest-communication end of the frontier first).
        """
        skills = sorted(set(project))
        candidates: dict = {}
        for team in self._generate(skills):
            candidates.setdefault(team.key(), team)
        scored = [
            ParetoTeam(
                team=t,
                cc=self._vector_eval.cc(t),
                ca=self._vector_eval.ca(t),
                sa=self._vector_eval.sa(t),
            )
            for t in candidates.values()
        ]
        frontier = pareto_filter(scored, key=lambda p: p.vector)
        return sorted(frontier, key=lambda p: (p.cc, p.ca, p.sa))

    def _generate(self, skills: list[str]):
        finder = self._finder_factory(objective="cc")
        yield from finder.find_top_k(skills, k=self.k_per_cell)
        for gamma in self.grid:
            finder = self._finder_factory(objective="ca-cc", gamma=gamma)
            yield from finder.find_top_k(skills, k=self.k_per_cell)
            for lam in self.grid:
                finder = self._finder_factory(
                    objective="sa-ca-cc", gamma=gamma, lam=lam
                )
                yield from finder.find_top_k(skills, k=self.k_per_cell)
