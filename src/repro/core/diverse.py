"""Diversity-aware top-k: alternatives that are actually different.

Plain top-k (Section 3.2.1) often returns k near-duplicates — the same
core team with one swapped member — because neighbouring roots induce
overlapping trees.  When the results are shown to a decision maker
(Figure 4's user study, or any staffing tool), near-duplicates waste
slots.  This module re-ranks a candidate pool greedily under a maximum
pairwise Jaccard overlap on member sets: the best team always survives,
and every further pick must differ from *all* previous picks by at least
``1 - max_overlap``.

This is the standard maximal-marginal-relevance style post-processing;
it composes with any solver that can produce a candidate pool.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..expertise.jaccard import jaccard_similarity
from .greedy import GreedyTeamFinder
from .team import Team

__all__ = ["diversify", "diverse_top_k"]


def diversify(
    teams: Sequence[Team], k: int, *, max_overlap: float = 0.5
) -> list[Team]:
    """Greedily select up to ``k`` teams with bounded pairwise overlap.

    ``teams`` must be ordered best-first; the first team is always kept.
    Overlap between two teams is the Jaccard similarity of their member
    sets.  ``max_overlap=1.0`` degenerates to plain truncation,
    ``max_overlap=0.0`` demands disjoint teams.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if not 0.0 <= max_overlap <= 1.0:
        raise ValueError(f"max_overlap must be in [0, 1], got {max_overlap}")
    picked: list[Team] = []
    for team in teams:
        if len(picked) == k:
            break
        if all(
            jaccard_similarity(team.members, kept.members) <= max_overlap + 1e-12
            for kept in picked
        ):
            picked.append(team)
    return picked


def diverse_top_k(
    finder: GreedyTeamFinder,
    project: Iterable[str],
    k: int = 5,
    *,
    max_overlap: float = 0.5,
    pool_factor: int = 4,
) -> list[Team]:
    """Top-``k`` diverse teams from a greedy finder.

    Draws a ``pool_factor * k`` candidate pool (cost-ordered) and filters
    it with :func:`diversify`.  Fewer than ``k`` teams may be returned
    when the pool cannot supply enough sufficiently-different teams.
    """
    if pool_factor < 1:
        raise ValueError("pool_factor must be positive")
    pool = finder.find_top_k(project, k=pool_factor * k)
    return diversify(pool, k, max_overlap=max_overlap)
