"""Team-member replacement: keep a team viable when an expert leaves.

The paper's related work ([4] Li et al., *Replacing the Irreplaceable:
Fast Algorithms for Team Member Recommendation*, WWW 2015) motivates
this companion capability: once a team is formed, members become
unavailable, and the recommender should propose substitutes that keep
the project covered while degrading the ranking objective as little as
possible.

Semantics here:

* If the departing expert is a **skill holder**, candidate substitutes
  are experts outside the team holding *all* the skills that were
  assigned to the departing member; each candidate yields a rebuilt team
  (remaining holders + candidate reconnected by a Steiner approximation
  on the network without the departing expert), ranked by the chosen
  objective.
* If the departing expert is a pure **connector**, no substitute is
  needed — the remaining skill holders are simply reconnected without
  them (possibly through different connectors).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..expertise.network import ExpertNetwork
from ..graph.adjacency import Graph, GraphError
from ..graph.distance import DijkstraOracle
from ..graph.steiner import mst_steiner_tree
from .objectives import ObjectiveScales, SaMode, TeamEvaluator
from .team import Team

__all__ = ["Replacement", "ReplacementError", "ReplacementRecommender"]


class ReplacementError(Exception):
    """No valid replacement exists (coverage or connectivity is lost)."""


@dataclass(frozen=True, slots=True)
class Replacement:
    """One ranked replacement proposal."""

    team: Team
    substitute: str | None  # None when the departee was a pure connector
    score: float            # objective value of the rebuilt team
    delta: float            # score - original team's score (lower is better)


class ReplacementRecommender:
    """Ranks substitutes for a departing team member."""

    def __init__(
        self,
        network: ExpertNetwork,
        *,
        objective: str = "sa-ca-cc",
        gamma: float = 0.6,
        lam: float = 0.6,
        scales: ObjectiveScales | None = None,
        sa_mode: SaMode = "per_skill",
    ) -> None:
        self.network = network
        self.objective = objective
        self.evaluator = TeamEvaluator(
            network, gamma=gamma, lam=lam, scales=scales, sa_mode=sa_mode
        )

    # ------------------------------------------------------------------
    def recommend(
        self, team: Team, departing: str, *, k: int = 3
    ) -> list[Replacement]:
        """Top-``k`` replacement teams after ``departing`` leaves.

        Raises :class:`ReplacementError` when the member is not in the
        team, when no candidate covers the lost skills, or when the
        network minus the departee cannot reconnect the team.
        """
        if k < 1:
            raise ValueError("k must be positive")
        if departing not in team.members:
            raise ReplacementError(f"{departing!r} is not a member of the team")
        base_score = self.evaluator.score(team, self.objective)
        lost_skills = sorted(
            s for s, holder in team.assignments.items() if holder == departing
        )

        # The network minus the departee — and a cached-tree oracle over
        # it — are shared by every candidate rebuild: building the
        # subgraph per candidate was the old hot spot, and the oracle
        # batches each terminal's shortest-path tree across candidates
        # (the terminal sets differ in a single substitute).
        remaining = [n for n in self.network.expert_ids() if n != departing]
        working = self.network.graph.subgraph(remaining)
        oracle = DijkstraOracle(working)

        if not lost_skills:
            rebuilt = self._rebuild(dict(team.assignments), working, oracle)
            if rebuilt is None:
                raise ReplacementError(
                    f"removing connector {departing!r} disconnects the team"
                )
            score = self.evaluator.score(rebuilt, self.objective)
            return [
                Replacement(
                    team=rebuilt,
                    substitute=None,
                    score=score,
                    delta=score - base_score,
                )
            ]

        candidates = self._candidates(lost_skills, forbidden=team.members)
        if not candidates:
            raise ReplacementError(
                f"no expert outside the team holds all of {lost_skills}"
            )
        proposals: list[Replacement] = []
        for candidate in candidates:
            assignment = {
                s: (candidate if holder == departing else holder)
                for s, holder in team.assignments.items()
            }
            rebuilt = self._rebuild(assignment, working, oracle)
            if rebuilt is None:
                continue
            score = self.evaluator.score(rebuilt, self.objective)
            proposals.append(
                Replacement(
                    team=rebuilt,
                    substitute=candidate,
                    score=score,
                    delta=score - base_score,
                )
            )
        if not proposals:
            raise ReplacementError(
                f"no candidate for {lost_skills} can be reconnected to the team"
            )
        proposals.sort(key=lambda r: (r.score, r.substitute or ""))
        return proposals[:k]

    # ------------------------------------------------------------------
    def _candidates(
        self, lost_skills: list[str], *, forbidden: frozenset[str]
    ) -> list[str]:
        pools = [self.network.experts_with_skill(s) for s in lost_skills]
        joint = set.intersection(*map(set, pools)) if pools else set()
        return sorted(joint - set(forbidden))

    def _rebuild(
        self,
        assignment: dict[str, str],
        working: Graph,
        oracle: DijkstraOracle,
    ) -> Team | None:
        """Reconnect the assignment's holders on the ``working`` network."""
        holders = sorted(set(assignment.values()))
        try:
            steiner = mst_steiner_tree(working, holders, oracle=oracle)
        except GraphError:
            return None
        tree = Graph()
        for node in steiner.nodes():
            tree.add_node(node)
        for u, v, w in steiner.edges():
            tree.add_edge(u, v, weight=w)
        return Team(tree=tree, assignments=dict(assignment), root=None)
