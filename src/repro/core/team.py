"""The :class:`Team` object (Definition 1) and its structural invariants.

A team is a connected subgraph of the expert network whose nodes cover a
project, together with an explicit skill -> expert assignment
``{<s_1, c_s1>, ..., <s_n, c_sn>}``.  Members that are assigned at least
one skill are *skill holders*; all remaining members are *connectors*
(Definition 3's "all nodes excluding skill holders").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.adjacency import Graph
from ..graph.components import is_connected

__all__ = ["Team", "TeamValidationError"]


class TeamValidationError(Exception):
    """Raised when a candidate team violates Definition 1."""


@dataclass(frozen=True)
class Team:
    """A discovered team: its subgraph and skill assignment.

    Parameters
    ----------
    tree:
        The team's subgraph over expert ids, carrying the *original*
        communication-cost edge weights (evaluation normalizes on the
        fly).  Solvers produce trees, but any connected subgraph is
        accepted by Definition 1.
    assignments:
        Mapping from each required skill to the member covering it.
    root:
        The root expert Algorithm 1 grew this team from (diagnostic;
        ``None`` for solvers without a root concept).
    """

    tree: Graph
    assignments: dict[str, str]
    root: str | None = None
    _members: frozenset[str] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_members", frozenset(self.tree.nodes()))
        if not self._members:
            raise TeamValidationError("a team must have at least one member")

    # ------------------------------------------------------------------
    # membership views
    # ------------------------------------------------------------------
    @property
    def members(self) -> frozenset[str]:
        """All experts in the team (skill holders and connectors)."""
        return self._members

    @property
    def skill_holders(self) -> frozenset[str]:
        """Members assigned at least one required skill."""
        return frozenset(self.assignments.values())

    @property
    def connectors(self) -> frozenset[str]:
        """Members not assigned any skill (Definition 3)."""
        return self._members - self.skill_holders

    @property
    def size(self) -> int:
        return len(self._members)

    def edges(self) -> list[tuple[str, str, float]]:
        """The team subgraph's edges as (u, v, weight) triples."""
        return list(self.tree.edges())

    def holder_of(self, skill: str) -> str:
        """The expert assigned to ``skill``; raises ``KeyError`` if absent."""
        return self.assignments[skill]

    def key(self) -> tuple[frozenset[str], tuple[tuple[str, str], ...]]:
        """Identity for deduplication: member set + sorted assignment."""
        return (self._members, tuple(sorted(self.assignments.items())))

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self, project: set[str] | frozenset[str], network=None) -> None:
        """Enforce Definition 1; raise :class:`TeamValidationError` if broken.

        Checks: every project skill is assigned; assignees are members;
        the subgraph is connected; and — when ``network`` is given — each
        assignee really holds the skill and every tree edge exists in the
        network with a matching weight.
        """
        missing = set(project) - set(self.assignments)
        if missing:
            raise TeamValidationError(f"unassigned skills: {sorted(missing)}")
        strays = set(self.assignments.values()) - self._members
        if strays:
            raise TeamValidationError(f"assignees outside the team: {sorted(strays)}")
        if not is_connected(self.tree):
            raise TeamValidationError("team subgraph is not connected")
        if network is not None:
            for skill, holder in self.assignments.items():
                if skill not in network.skills_of(holder):
                    raise TeamValidationError(
                        f"{holder!r} is assigned {skill!r} but does not hold it"
                    )
            for u, v, w in self.tree.edges():
                if not network.graph.has_edge(u, v):
                    raise TeamValidationError(
                        f"team edge ({u!r}, {v!r}) missing from the network"
                    )
                if abs(network.graph.weight(u, v) - w) > 1e-9:
                    raise TeamValidationError(
                        f"team edge ({u!r}, {v!r}) weight diverges from network"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Team(size={self.size}, holders={sorted(self.skill_holders)}, "
            f"connectors={sorted(self.connectors)})"
        )
