"""Core team-discovery algorithms: the paper's primary contribution."""

from .bounds import ObjectiveBounds, optimality_gap
from .brute_force import BruteForceSolver
from .diverse import diverse_top_k, diversify
from .exact import ExactSolver, IntractableError
from .explain import MemberContribution, TeamExplanation, explain_team
from .greedy import OBJECTIVES, GreedyTeamFinder, search_graph_for
from .multi_project import (
    MultiProjectStaffing,
    PortfolioResult,
    ProjectAssignment,
)
from .objectives import ObjectiveScales, SaMode, TeamEvaluator
from .pareto import ParetoTeam, ParetoTeamDiscovery, dominates, pareto_filter
from .random_search import DEFAULT_NUM_SAMPLES, RandomSolver
from .replacement import Replacement, ReplacementError, ReplacementRecommender
from .rarest_first import RarestFirstSolver
from .refine import LocalSearchRefiner
from .sa_solver import SaOptimalSolver
from .team import Team, TeamValidationError
from .transform import authority_fold_transform, transformed_edge_weight

__all__ = [
    "BruteForceSolver",
    "ObjectiveBounds",
    "optimality_gap",
    "diverse_top_k",
    "diversify",
    "ExactSolver",
    "IntractableError",
    "MemberContribution",
    "TeamExplanation",
    "explain_team",
    "OBJECTIVES",
    "GreedyTeamFinder",
    "search_graph_for",
    "MultiProjectStaffing",
    "PortfolioResult",
    "ProjectAssignment",
    "ObjectiveScales",
    "SaMode",
    "TeamEvaluator",
    "ParetoTeam",
    "ParetoTeamDiscovery",
    "dominates",
    "pareto_filter",
    "DEFAULT_NUM_SAMPLES",
    "Replacement",
    "ReplacementError",
    "ReplacementRecommender",
    "RandomSolver",
    "RarestFirstSolver",
    "LocalSearchRefiner",
    "SaOptimalSolver",
    "Team",
    "TeamValidationError",
    "authority_fold_transform",
    "transformed_edge_weight",
]
