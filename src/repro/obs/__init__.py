"""repro.obs — zero-dependency observability for the solve path.

Three pieces, all stdlib-only:

* **Tracing** (:mod:`repro.obs.trace`): contextvar-propagated spans
  with deterministic ids, wall/CPU timings, structured attributes, and
  a bounded in-memory buffer of finished traces.  Instrumentation in
  the engine, PLL kernels, replica pool, and replication follower all
  calls :func:`repro.obs.span` — one contextvar read when tracing is
  off.

* **Metrics** (re-exported from :mod:`repro.serving.metrics`): this
  package is the *canonical import point* for the registry primitives.
  Both ``repro/graph/metrics.py`` (dataset characterization tables)
  and ``repro/serving/metrics.py`` (counters/gauges/reservoirs) exist;
  importing ``Counter`` et al. from ``repro.obs`` sidesteps the name
  shadowing hazard.  :func:`global_registry` holds the process-wide
  registry that per-layer instrumentation lands in; the server merges
  it into ``{"op": "stats"}`` (as ``"layers"``) and ``{"op":
  "metrics"}``.

* **Exposition** (:mod:`repro.obs.prom`): Prometheus text-format
  rendering of any registry snapshot.
"""

from __future__ import annotations

from ..serving.metrics import Counter, Gauge, LatencyReservoir, MetricsRegistry
from .prom import render_prometheus
from .trace import (
    Span,
    Tracer,
    current_span,
    get_tracer,
    record,
    span,
    trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "LatencyReservoir",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "current_span",
    "get_tracer",
    "global_registry",
    "record",
    "render_prometheus",
    "span",
    "trace",
]

_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry per-layer instrumentation lands in."""
    return _GLOBAL
