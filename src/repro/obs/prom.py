"""Prometheus text-format exposition for a metrics snapshot.

Renders the ``{"counters": ..., "gauges": ..., "latency": ...}`` dict
produced by :meth:`MetricsRegistry.snapshot` as Prometheus text format
0.0.4 — counters and gauges as single samples, latency reservoirs as
summaries (``quantile`` labels plus ``_count`` / ``_sum`` / ``_max``).

Pure string formatting over plain dicts: no client library, no
registry coupling, so the same renderer serves both the in-band
``{"op": "metrics"}`` admin op and ``repro-teams stats --prom``.
"""

from __future__ import annotations

import re
from typing import Any

__all__ = ["render_prometheus"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")

_QUANTILE_KEYS = (("p50_ms", "0.5"), ("p95_ms", "0.95"), ("p99_ms", "0.99"))


def _sanitize(name: str) -> str:
    clean = _NAME_OK.sub("_", name)
    if not clean or clean[0].isdigit():
        clean = f"_{clean}"
    return clean


def _format_value(value: Any) -> str:
    number = float(value)
    if number.is_integer():
        return str(int(number))
    return repr(number)


def render_prometheus(snapshot: dict[str, Any], *, prefix: str = "repro") -> str:
    """Render one metrics snapshot as Prometheus exposition text."""
    lines: list[str] = []

    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = f"{prefix}_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")

    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = f"{prefix}_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")

    for name, summary in sorted(snapshot.get("latency", {}).items()):
        metric = f"{prefix}_{_sanitize(name)}_ms"
        count = int(summary.get("count", 0))
        lines.append(f"# TYPE {metric} summary")
        for key, quantile in _QUANTILE_KEYS:
            if key in summary:
                lines.append(
                    f'{metric}{{quantile="{quantile}"}} '
                    f"{_format_value(summary[key])}"
                )
        lines.append(f"{metric}_count {count}")
        mean = float(summary.get("mean_ms", 0.0))
        lines.append(f"{metric}_sum {_format_value(mean * count)}")
        if "max_ms" in summary:
            lines.append(f"{metric}_max {_format_value(summary['max_ms'])}")

    return "\n".join(lines) + "\n" if lines else ""
