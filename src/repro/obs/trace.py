"""Zero-dependency trace/span API with contextvar propagation.

A *trace* is one tree of :class:`Span` objects describing a single
logical operation (usually one served request).  Spans record wall and
CPU time (``time.perf_counter`` / ``time.thread_time``), structured
attributes, and deterministic per-trace integer ids (root = 1, then
creation order), so two traces of the same request shape compare
structurally equal.

Propagation rides a :mod:`contextvars` variable: entering a span makes
it the implicit parent for spans opened below it, across ``await``
points and — via :meth:`Tracer.run` — across explicit thread hops
(``loop.run_in_executor`` does *not* propagate context by itself).

The tracer is bounded everywhere so it can stay on in production:

* at most :data:`MAX_CHILDREN` recorded children per span (excess
  increments the parent's ``dropped`` counter and returns a no-op);
* at most :data:`MAX_TRACES` finished root spans retained in the
  in-memory buffer (:meth:`Tracer.recent`).

Nothing here imports outside the stdlib, and nothing here touches the
canonical response path: span trees ride in ``TimingInfo.trace``,
which ``canonical_json()`` already nulls.
"""

from __future__ import annotations

import contextvars
import threading
import time
from typing import Any, Callable

__all__ = [
    "MAX_CHILDREN",
    "MAX_TRACES",
    "Span",
    "Tracer",
    "current_span",
    "get_tracer",
    "record",
    "span",
    "trace",
]

MAX_CHILDREN = 128
MAX_TRACES = 64

_current_span: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class Span:
    """One timed node in a trace tree.

    Use as a context manager (``with tracer.span("engine.solve"):``) or
    drive :meth:`start` / :meth:`finish` explicitly when the lifetime
    crosses coroutine/thread boundaries (the server's root request span
    does this: started at admission, finished at dispatch).
    """

    __slots__ = (
        "name",
        "span_id",
        "trace_id",
        "attributes",
        "children",
        "dropped",
        "wall_ms",
        "cpu_ms",
        "_parent",
        "_tracer",
        "_next_child_id",
        "_wall_start",
        "_cpu_start",
        "_token",
        "_finished",
    )

    def __init__(
        self,
        name: str,
        *,
        span_id: int,
        trace_id: str,
        tracer: "Tracer | None",
        parent: "Span | None",
        attributes: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.trace_id = trace_id
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.children: list[Span] = []
        self.dropped = 0
        self.wall_ms: float = 0.0
        self.cpu_ms: float = 0.0
        self._parent = parent
        self._tracer = tracer
        self._next_child_id = span_id + 1
        self._wall_start: float | None = None
        self._cpu_start: float | None = None
        self._token: contextvars.Token | None = None
        self._finished = False

    @property
    def is_recording(self) -> bool:
        """False only for the shared no-op span."""
        return True

    @property
    def is_root(self) -> bool:
        return self._parent is None

    # -- id allocation -------------------------------------------------
    def _root(self) -> "Span":
        node = self
        while node._parent is not None:
            node = node._parent
        return node

    def _allocate_id(self) -> int:
        root = self._root()
        span_id = root._next_child_id
        root._next_child_id += 1
        return span_id

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "Span":
        """Begin timing (wall + CPU clocks); returns ``self``."""
        self._wall_start = time.perf_counter()
        self._cpu_start = time.thread_time()
        return self

    def finish(self) -> "Span":
        """Stop timing (idempotent); a finished root lands in the buffer."""
        if self._finished:
            return self
        self._finished = True
        if self._wall_start is not None:
            self.wall_ms = (time.perf_counter() - self._wall_start) * 1e3
        if self._cpu_start is not None:
            self.cpu_ms = (time.thread_time() - self._cpu_start) * 1e3
        if self._parent is None and self._tracer is not None:
            self._tracer._retain(self)
        return self

    def __enter__(self) -> "Span":
        self.start()
        self._token = _current_span.set(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        self.finish()

    # -- structure -----------------------------------------------------
    def child(self, name: str, **attributes: Any) -> "Span":
        """Create (but do not start) a child span, or a no-op at cap."""
        if len(self.children) >= MAX_CHILDREN:
            self.dropped += 1
            return _NOOP
        child = Span(
            name,
            span_id=self._allocate_id(),
            trace_id=self.trace_id,
            tracer=self._tracer,
            parent=self,
            attributes=attributes,
        )
        self.children.append(child)
        return child

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one structured attribute to this span."""
        self.attributes[key] = value

    def to_dict(self) -> dict[str, Any]:
        """This span (and its subtree) as one JSON-ready dict."""
        node: dict[str, Any] = {
            "id": self.span_id,
            "name": self.name,
            "wall_ms": round(self.wall_ms, 3),
            "cpu_ms": round(self.cpu_ms, 3),
        }
        if self._parent is None:
            node["trace_id"] = self.trace_id
        if self.attributes:
            node["attrs"] = dict(self.attributes)
        if self.dropped:
            node["dropped"] = self.dropped
        if self.children:
            node["children"] = [c.to_dict() for c in self.children]
        return node


class _NoopSpan(Span):
    """Absorbs children of an over-cap span without recording anything.

    Deliberately does *not* set the contextvar on ``__enter__``: spans
    opened below a dropped span attach to the still-current real
    ancestor, whose cap then drops them too.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(
            "noop", span_id=0, trace_id="", tracer=None, parent=None
        )

    @property
    def is_recording(self) -> bool:
        return False

    def start(self) -> "Span":
        return self

    def finish(self) -> "Span":
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def child(self, name: str, **attributes: Any) -> "Span":
        return self

    def set_attribute(self, key: str, value: Any) -> None:
        return None


_NOOP = _NoopSpan()


class Tracer:
    """Factory for spans plus a bounded buffer of finished traces.

    ``enabled`` gates whether *implicit* roots are created: with the
    tracer disabled, :meth:`span` outside any active trace returns the
    shared no-op, so instrumented library code costs one contextvar
    read.  :meth:`trace` always records — the server uses it so
    ``--slow-ms`` works without globally enabling tracing.
    """

    def __init__(self, *, max_traces: int = MAX_TRACES) -> None:
        self.enabled = False
        self._max_traces = max_traces
        self._finished: list[Span] = []
        self._lock = threading.Lock()
        self._next_trace = 0

    # -- configuration -------------------------------------------------
    def enable(self) -> None:
        """Start recording implicit roots from :meth:`span`."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording implicit roots (active traces still record)."""
        self.enabled = False

    # -- span creation -------------------------------------------------
    def _new_trace_id(self) -> str:
        with self._lock:
            self._next_trace += 1
            return f"t{self._next_trace}"

    def trace(self, name: str, **attributes: Any) -> Span:
        """A new recording root span, regardless of ``enabled``."""
        return Span(
            name,
            span_id=1,
            trace_id=self._new_trace_id(),
            tracer=self,
            parent=None,
            attributes=attributes,
        )

    def span(self, name: str, **attributes: Any) -> Span:
        """A child of the current span, a new root, or a no-op."""
        parent = _current_span.get()
        if parent is not None:
            return parent.child(name, **attributes)
        if self.enabled:
            return self.trace(name, **attributes)
        return _NOOP

    def run(self, span: Span, fn: Callable[..., Any], *args: Any) -> Any:
        """Run ``fn(*args)`` with ``span`` current in *this* thread.

        The bridge for executor hops: ``run_in_executor(ex, tracer.run,
        root, backend.solve, request)`` re-parents everything the solve
        opens under ``root`` even though the event-loop context did not
        follow the callable into the pool thread.
        """
        token = _current_span.set(span)
        try:
            return fn(*args)
        finally:
            _current_span.reset(token)

    def record(self, name: str, wall_seconds: float, **attributes: Any) -> None:
        """Attach an already-measured event as a finished child span.

        For code that times itself anyway (the kernel query path):
        no-op unless a trace is active, so the hot path never pays for
        span bookkeeping when nobody is looking.
        """
        parent = _current_span.get()
        if parent is None:
            return
        if len(parent.children) >= MAX_CHILDREN:
            # Over-cap fast path: the kernel hot loop calls this once
            # per batched query, so skip the kwargs repack and no-op
            # span round trip that `child()` would pay.
            parent.dropped += 1
            return
        child = parent.child(name, **attributes)
        child.wall_ms = wall_seconds * 1e3
        child._finished = True

    # -- finished-trace buffer ----------------------------------------
    def _retain(self, root: Span) -> None:
        with self._lock:
            self._finished.append(root)
            if len(self._finished) > self._max_traces:
                del self._finished[: len(self._finished) - self._max_traces]

    def recent(self) -> list[Span]:
        """The most recent finished root spans, oldest first (bounded)."""
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        """Drop every retained finished trace."""
        with self._lock:
            self._finished.clear()


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _TRACER


def current_span() -> Span | None:
    """The span currently active in this context, if any."""
    return _current_span.get()


def span(name: str, **attributes: Any) -> Span:
    """Shortcut for ``get_tracer().span(...)`` — the instrumentation

    entry point used across the engine, kernels, pool, and replication.
    """
    return _TRACER.span(name, **attributes)


def trace(name: str, **attributes: Any) -> Span:
    """Shortcut for ``get_tracer().trace(...)``."""
    return _TRACER.trace(name, **attributes)


def record(name: str, wall_seconds: float, **attributes: Any) -> None:
    """Shortcut for ``get_tracer().record(...)``."""
    _TRACER.record(name, wall_seconds, **attributes)
