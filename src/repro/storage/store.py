"""Directory-backed snapshot store: latest-pointer, retention, GC.

A :class:`SnapshotStore` owns one directory of snapshot files::

    store/
      snap-000001-v0.snap
      snap-000002-v3.snap
      LATEST            <- "snap-000002-v3.snap"

Snapshots are numbered by a monotonically increasing sequence (derived
from the file names present, so concurrent processes sharing a store
converge) and tagged with the network version they froze.  Every write
is atomic (temp + rename, see :func:`repro.storage.format.atomic_write_bytes`)
and the ``LATEST`` pointer is itself replaced atomically *after* the
snapshot file is durable, so a crash between the two steps leaves the
previous snapshot current — never a dangling pointer.

Retention is count-based: ``retain`` newest snapshots survive
:meth:`SnapshotStore.gc` (the ``LATEST`` target always survives,
whatever its age).  ``retain=None`` disables automatic GC.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from .errors import SnapshotError
from .format import atomic_write_bytes, read_container, read_meta, write_container

__all__ = ["SnapshotStore", "SnapshotInfo", "resolve_snapshot_path"]

_SNAP_NAME = re.compile(r"^snap-(\d{6})-v(\d+)\.snap$")
_LATEST = "LATEST"


def resolve_snapshot_path(source: "SnapshotStore | str | Path") -> Path:
    """Pin a snapshot *source* to one concrete ``*.snap`` file path.

    ``source`` may be a :class:`SnapshotStore`, a store directory (the
    LATEST snapshot is taken), or a single snapshot file.  Resolution
    happens exactly once, which is what the concurrent consumers need:
    the replica pool resolves the path in the parent and hands the same
    file to every worker process, so all replicas warm-start from
    identical bytes even if the store's LATEST pointer moves while the
    pool is being populated.  :class:`SnapshotError` when the store is
    empty or the file is missing.
    """
    if isinstance(source, SnapshotStore):
        return source.latest_path()
    path = Path(source)
    if path.is_dir():
        return SnapshotStore(path).latest_path()
    if not path.exists():
        raise SnapshotError(f"snapshot {path} does not exist")
    return path


@dataclass(frozen=True, slots=True)
class SnapshotInfo:
    """One store entry: file name, sequence number, sizes, meta."""

    name: str
    sequence: int
    network_version: int
    size_bytes: int
    is_latest: bool

    def format(self) -> str:
        """One human-readable listing line (the CLI's ``snapshot info`` view)."""
        latest = "  <- LATEST" if self.is_latest else ""
        return (
            f"{self.name}  seq={self.sequence}  "
            f"network-version={self.network_version}  "
            f"{self.size_bytes} bytes{latest}"
        )


class SnapshotStore:
    """A directory of CRC-verified snapshots with a LATEST pointer.

    Parameters
    ----------
    root:
        Store directory; created on first save.
    retain:
        How many newest snapshots :meth:`save` keeps (older ones are
        garbage-collected after the LATEST pointer moves).  ``None``
        keeps everything until :meth:`gc` is called explicitly.
    """

    def __init__(self, root: str | Path, *, retain: int | None = 5) -> None:
        if retain is not None and retain < 1:
            raise ValueError("retain must be a positive count (or None)")
        self.root = Path(root)
        self.retain = retain

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def save(
        self, meta: dict[str, Any], sections: dict[str, bytes]
    ) -> Path:
        """Write a new snapshot, move LATEST to it, GC old ones."""
        sequence = self._next_sequence()
        version = int(meta.get("network_version", 0))
        name = f"snap-{sequence:06d}-v{version}.snap"
        path = write_container(self.root / name, meta, sections)
        atomic_write_bytes(self.root / _LATEST, f"{name}\n".encode("utf-8"))
        if self.retain is not None:
            self.gc(retain=self.retain)
        return path

    def _next_sequence(self) -> int:
        sequences = [info.sequence for info in self.list()]
        return (max(sequences) + 1) if sequences else 1

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def latest_path(self) -> Path:
        """Path of the snapshot LATEST points to.

        Falls back to the highest-sequence file when the pointer is
        missing (e.g. a store populated by hand); raises
        :class:`SnapshotError` when the store holds no snapshot at all.
        """
        pointer = self.root / _LATEST
        dangling: Path | None = None
        if pointer.exists():
            name = pointer.read_text(encoding="utf-8").strip()
            path = self.root / name
            if _SNAP_NAME.match(name) and path.exists():
                return path
            dangling = path
        infos = self.list()
        if not infos:
            if dangling is not None:
                raise SnapshotError(
                    f"LATEST points to {dangling}, which does not exist, "
                    f"and store {self.root} holds no other snapshot"
                )
            raise SnapshotError(f"no snapshots in store {self.root}")
        return self.root / infos[-1].name

    def load_latest(self) -> tuple[dict[str, Any], dict[str, bytes]]:
        """Read and verify the latest snapshot: ``(meta, sections)``."""
        return read_container(self.latest_path())

    def load(self, name: str) -> tuple[dict[str, Any], dict[str, bytes]]:
        """Read and verify one snapshot by file name."""
        return read_container(self.root / name)

    def list(self) -> list[SnapshotInfo]:
        """Every snapshot in the store, oldest first."""
        if not self.root.is_dir():
            return []
        latest_name = None
        pointer = self.root / _LATEST
        if pointer.exists():
            latest_name = pointer.read_text(encoding="utf-8").strip()
        infos = []
        for path in self.root.iterdir():
            match = _SNAP_NAME.match(path.name)
            if not match:
                continue
            infos.append(
                SnapshotInfo(
                    name=path.name,
                    sequence=int(match.group(1)),
                    network_version=int(match.group(2)),
                    size_bytes=path.stat().st_size,
                    is_latest=path.name == latest_name,
                )
            )
        infos.sort(key=lambda info: info.sequence)
        return infos

    def meta(self, name: str | None = None) -> dict[str, Any]:
        """Verified manifest meta of one snapshot (default: latest)."""
        path = self.root / name if name else self.latest_path()
        return read_meta(path)

    # ------------------------------------------------------------------
    # retention
    # ------------------------------------------------------------------
    def gc(self, *, retain: int | None = None, log=None) -> list[str]:
        """Delete all but the ``retain`` newest snapshots.

        The LATEST target is never deleted.  Returns the removed file
        names (oldest first).

        With ``log`` (a :class:`repro.serving.replication.ReplicationLog`),
        the log is compacted in the same breath: its floor is raised to
        the oldest *retained* snapshot's network version.  Any follower
        that still needed older delta history could only have come from
        a snapshot this GC just deleted, so keeping those records buys
        nothing — such a follower's next sync gets the typed
        ``JournalTruncatedError`` and falls back to a full-state
        transfer.
        """
        keep = self.retain if retain is None else retain
        if keep is None or keep < 1:
            raise ValueError("gc needs a positive retain count")
        infos = self.list()
        try:
            latest = self.latest_path().name
        except SnapshotError:
            return []
        removed = []
        for info in infos[:-keep] if len(infos) > keep else []:
            if info.name == latest:
                continue
            (self.root / info.name).unlink(missing_ok=True)
            removed.append(info.name)
        if log is not None and removed:
            remaining = self.list()
            if remaining:
                log.compact(min(info.network_version for info in remaining))
        return removed
