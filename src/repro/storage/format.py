"""The versioned binary snapshot container: magic + manifest + CRC sections.

One snapshot file holds named byte *sections* (the network state, one
label blob per persisted oracle) described by a JSON *manifest*::

    offset  size  field
    0       8     magic  b"RPROSNAP"
    8       2     format version (unsigned, little-endian)
    10      2     reserved (zero)
    12      4     manifest length in bytes
    16      4     CRC-32 of the manifest bytes
    20      ...   manifest (UTF-8 JSON)
    ...     ...   section payloads, concatenated in manifest order

The manifest is ``{"meta": {...}, "sections": [{"name", "offset",
"length", "crc32"}, ...]}`` with offsets relative to the end of the
manifest.  Every section carries its own CRC-32, so a flipped byte
anywhere in the file is caught at load time — in the header (bad magic),
the manifest (manifest CRC) or a payload (section CRC) — and surfaces as
:class:`~repro.storage.errors.CorruptSnapshotError` before any content
is interpreted.  A version field larger than
:data:`SNAPSHOT_FORMAT_VERSION` raises
:class:`~repro.storage.errors.FormatVersionError` instead: the bytes are
fine, the reader is too old.

Writes are crash-safe: the file is assembled in a same-directory
temporary, flushed, fsynced and then atomically renamed over the target
(:func:`atomic_write_bytes`), so readers never observe a half-written
snapshot.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any

from .errors import CorruptSnapshotError, FormatVersionError

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_FORMAT_VERSION",
    "write_container",
    "encode_container",
    "decode_container",
    "read_container",
    "read_meta",
    "atomic_write_bytes",
]

SNAPSHOT_MAGIC = b"RPROSNAP"

#: Bump on any incompatible change to the container layout *or* to the
#: encoding of a section.  Readers reject newer versions with
#: :class:`FormatVersionError`; older versions remain loadable for as
#: long as the changelog in this docstring says they are.  History:
#: 1 — initial format (PR 4).
SNAPSHOT_FORMAT_VERSION = 1

_HEADER = struct.Struct("<8sHHII")


def encode_container(
    meta: dict[str, Any], sections: dict[str, bytes]
) -> bytes:
    """Serialize ``meta`` and ``sections`` into one snapshot byte string."""
    entries = []
    offset = 0
    payloads = []
    for name, payload in sections.items():
        entries.append(
            {
                "name": name,
                "offset": offset,
                "length": len(payload),
                "crc32": zlib.crc32(payload),
            }
        )
        payloads.append(payload)
        offset += len(payload)
    manifest = json.dumps(
        {"meta": meta, "sections": entries}, sort_keys=True
    ).encode("utf-8")
    header = _HEADER.pack(
        SNAPSHOT_MAGIC,
        SNAPSHOT_FORMAT_VERSION,
        0,
        len(manifest),
        zlib.crc32(manifest),
    )
    return b"".join([header, manifest, *payloads])


def write_container(
    path: str | Path, meta: dict[str, Any], sections: dict[str, bytes]
) -> Path:
    """Atomically write one snapshot file; returns the final path."""
    path = Path(path)
    atomic_write_bytes(path, encode_container(meta, sections))
    return path


def _parse_header(blob: bytes, source: str) -> tuple[int, bytes, int]:
    """Validate magic/version/manifest; return (version, manifest, payload offset)."""
    if len(blob) < _HEADER.size:
        raise CorruptSnapshotError(
            f"{source}: truncated header ({len(blob)} bytes, "
            f"need {_HEADER.size})"
        )
    magic, version, _reserved, manifest_len, manifest_crc = _HEADER.unpack_from(
        blob
    )
    if magic != SNAPSHOT_MAGIC:
        raise CorruptSnapshotError(
            f"{source}: bad magic {magic!r} (not a repro snapshot file)"
        )
    if version > SNAPSHOT_FORMAT_VERSION:
        raise FormatVersionError(version, SNAPSHOT_FORMAT_VERSION)
    manifest_end = _HEADER.size + manifest_len
    if len(blob) < manifest_end:
        raise CorruptSnapshotError(
            f"{source}: truncated manifest (file ends at {len(blob)}, "
            f"manifest ends at {manifest_end})"
        )
    manifest = blob[_HEADER.size : manifest_end]
    if zlib.crc32(manifest) != manifest_crc:
        raise CorruptSnapshotError(f"{source}: manifest CRC mismatch")
    return version, manifest, manifest_end


def _parse_manifest(manifest: bytes, source: str) -> dict[str, Any]:
    try:
        parsed = json.loads(manifest.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        # CRC passed but the JSON is malformed: the *writer* was broken.
        raise CorruptSnapshotError(
            f"{source}: undecodable manifest ({exc})"
        ) from None
    if (
        not isinstance(parsed, dict)
        or not isinstance(parsed.get("meta"), dict)
        or not isinstance(parsed.get("sections"), list)
    ):
        raise CorruptSnapshotError(f"{source}: malformed manifest structure")
    return parsed


def decode_container(
    blob: bytes, *, source: str = "<bytes>"
) -> tuple[dict[str, Any], dict[str, bytes]]:
    """Fully verify one in-memory snapshot container.

    The byte-level twin of :func:`read_container`, for containers that
    arrive over a wire instead of from a file — the replication layer
    ships full snapshots as one frame payload (:mod:`repro.storage.delta`)
    and verifies them here before interpretation.  ``source`` names the
    origin in error messages.
    """
    _version, manifest, payload_start = _parse_header(blob, source)
    parsed = _parse_manifest(manifest, source)
    sections: dict[str, bytes] = {}
    for entry in parsed["sections"]:
        name, offset = entry["name"], entry["offset"]
        length, crc = entry["length"], entry["crc32"]
        start = payload_start + offset
        payload = blob[start : start + length]
        if len(payload) != length:
            raise CorruptSnapshotError(
                f"{source}: section {name!r} truncated "
                f"({len(payload)}/{length} bytes)"
            )
        if zlib.crc32(payload) != crc:
            raise CorruptSnapshotError(
                f"{source}: section {name!r} CRC mismatch"
            )
        sections[name] = payload
    return parsed["meta"], sections


def read_container(
    path: str | Path,
) -> tuple[dict[str, Any], dict[str, bytes]]:
    """Read and fully verify one snapshot file.

    Returns ``(meta, sections)``.  Raises
    :class:`CorruptSnapshotError` on any integrity failure and
    :class:`FormatVersionError` on a future format version; on success
    every returned byte has passed its CRC.
    """
    path = Path(path)
    source = str(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise CorruptSnapshotError(f"{source}: unreadable ({exc})") from exc
    return decode_container(blob, source=source)


def read_meta(path: str | Path) -> dict[str, Any]:
    """Read only the verified manifest ``meta`` (header + manifest CRC).

    Cheap introspection for ``snapshot info`` and store listings: the
    section payloads are neither read into memory nor CRC-checked.
    """
    path = Path(path)
    source = str(path)
    try:
        with open(path, "rb") as handle:
            head = handle.read(_HEADER.size)
            if len(head) == _HEADER.size:
                manifest_len = _HEADER.unpack(head)[3]
                head += handle.read(manifest_len)
    except OSError as exc:
        raise CorruptSnapshotError(f"{source}: unreadable ({exc})") from exc
    _version, manifest, _payload_start = _parse_header(head, source)
    return _parse_manifest(manifest, source)["meta"]


def atomic_write_bytes(path: Path, blob: bytes) -> None:
    """Write ``blob`` to ``path`` via same-directory temp + rename.

    The temporary carries the PID so concurrent writers never collide;
    fsync of the file (and best-effort fsync of the directory) makes the
    rename durable before it is observable.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".tmp-{os.getpid()}-{path.name}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    try:  # pragma: no cover - platform dependent
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        pass
