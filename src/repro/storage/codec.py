"""Section codecs: network state and compact binary PLL labels.

The container (:mod:`repro.storage.format`) moves opaque named byte
sections; this module defines what is *in* them for an engine snapshot:

* ``network`` — the expert network state **and** mutation history as
  canonical JSON (:func:`repro.expertise.serialize.network_to_dict`).
  JSON floats round-trip exactly (``repr``-based shortest decimals), so
  edge weights, h-indexes and scales are bit-preserved.
* ``engine`` — JSON: the frozen normalization scales, default
  ``sa_mode`` / ``oracle_kind``, and one metadata record per persisted
  oracle-cache entry (which cache, graph flavor, gamma, the network
  version the entry is keyed at, and which label section holds it).
* ``labels/<i>`` — one 2-hop-cover label store in a flat array layout
  (for a *sharded* entry this section is replaced by one
  ``labels/<i>/shard/<j>`` section per shard in the identical layout
  plus a ``labels/<i>/boundary`` JSON section carrying the boundary
  node list and raw summary edges; the entry record in ``engine`` lists
  both, and pre-sharding snapshots load unchanged)::

      u32  node count N
      u32  length of the landmark-order JSON
      ...  landmark order (JSON list of node ids, rank ascending)
      u32  incremental_updates counter
      u64  total label entries T
      u32[N]  per-node entry counts, in rank order
      u32[T]  hub ranks, nodes concatenated in rank order
      f64[T]  hub distances
      i32[T]  parent ranks (-1 = none)

  Arrays are little-endian on disk whatever the host byte order, packed
  with the stdlib :mod:`array`/:mod:`struct` modules — ``numpy`` is
  never required, keeping the runtime dependency-free (the layout is
  ``numpy.frombuffer``-friendly for external tooling that has it).

Decoders defend against *structurally* broken content with
:class:`CorruptSnapshotError` even though every section already passed
its CRC: a CRC protects against bit rot, not against a truncating or
buggy writer.
"""

from __future__ import annotations

import json
import struct
import sys
from array import array
from dataclasses import dataclass
from typing import Any

from ..expertise.network import ExpertNetwork
from ..expertise.serialize import network_from_dict, network_to_dict
from .errors import CorruptSnapshotError

__all__ = [
    "OracleEntryState",
    "EngineSnapshotState",
    "encode_labels",
    "encode_flat_labels",
    "decode_labels",
    "decode_labels_flat",
    "encode_engine_snapshot",
    "decode_engine_snapshot",
    "strip_shard_tag",
]

# array typecodes are platform-sized; resolve the 4-byte ones once.
_U32 = "I" if array("I").itemsize == 4 else "L"
_I32 = "i" if array("i").itemsize == 4 else "l"
_SWAP = sys.byteorder == "big"

_LABEL_HEAD = struct.Struct("<II")
_LABEL_MID = struct.Struct("<IQ")

#: Identifies an engine snapshot's manifest (vs other future payloads).
SNAPSHOT_KIND = "engine-snapshot"


def _pack(typecode: str, values: list) -> bytes:
    data = array(typecode, values)
    if _SWAP:  # pragma: no cover - big-endian hosts only
        data.byteswap()
    return data.tobytes()


def _pack_array(data: array) -> bytes:
    """Like :func:`_pack` but for an already-flat :mod:`array` column.

    On little-endian hosts (everywhere we run) this is a single
    ``tobytes`` memcpy — the zero-copy half of the flat snapshot path.
    """
    if _SWAP:  # pragma: no cover - big-endian hosts only
        data = data[:]  # the caller's column may be a live index's
        data.byteswap()
    return data.tobytes()


def _unpack_array(
    typecode: str, blob: bytes, offset: int, count: int
) -> tuple[array, int]:
    size = array(typecode).itemsize * count
    if offset + size > len(blob):
        raise CorruptSnapshotError(
            f"label section truncated: need {size} bytes at {offset}, "
            f"have {len(blob) - offset}"
        )
    data = array(typecode)
    data.frombytes(blob[offset : offset + size])
    if _SWAP:  # pragma: no cover - big-endian hosts only
        data.byteswap()
    return data, offset + size


def _unpack(typecode: str, blob: bytes, offset: int, count: int) -> tuple[list, int]:
    data, offset = _unpack_array(typecode, blob, offset, count)
    return data.tolist(), offset


# ----------------------------------------------------------------------
# PLL label sections
# ----------------------------------------------------------------------
def encode_labels(state: dict) -> bytes:
    """Pack :meth:`PrunedLandmarkLabeling.export_labels` output."""
    order_blob = json.dumps(state["order"]).encode("utf-8")
    counts = [len(ranks) for ranks in state["ranks"]]
    total = sum(counts)
    flat_ranks: list[int] = []
    flat_dists: list[float] = []
    flat_parents: list[int] = []
    for ranks, dists, parents in zip(
        state["ranks"], state["dists"], state["parents"]
    ):
        flat_ranks.extend(ranks)
        flat_dists.extend(dists)
        flat_parents.extend(parents)
    return b"".join(
        [
            _LABEL_HEAD.pack(len(state["order"]), len(order_blob)),
            order_blob,
            _LABEL_MID.pack(int(state["incremental_updates"]), total),
            _pack(_U32, counts),
            _pack(_U32, flat_ranks),
            _pack("d", flat_dists),
            _pack(_I32, flat_parents),
        ]
    )


def encode_flat_labels(state: dict) -> bytes:
    """Pack :meth:`PrunedLandmarkLabeling.export_flat_labels` output.

    Byte-identical to :func:`encode_labels` over the equivalent
    per-node-list state — the on-disk layout *is* the flat layout, so
    each column is one memcpy instead of a per-entry Python loop.
    """
    order_blob = json.dumps(state["order"]).encode("utf-8")
    return b"".join(
        [
            _LABEL_HEAD.pack(len(state["order"]), len(order_blob)),
            order_blob,
            _LABEL_MID.pack(
                int(state["incremental_updates"]), len(state["ranks"])
            ),
            _pack(_U32, state["counts"]),
            _pack_array(state["ranks"]),
            _pack_array(state["dists"]),
            _pack_array(state["parents"]),
        ]
    )


def _decode_label_columns(
    blob: bytes,
) -> tuple[list, list[int], array, array, array, int]:
    """Shared parse of a label section into validated flat columns."""
    if len(blob) < _LABEL_HEAD.size:
        raise CorruptSnapshotError("label section shorter than its header")
    n_nodes, order_len = _LABEL_HEAD.unpack_from(blob)
    offset = _LABEL_HEAD.size
    if offset + order_len + _LABEL_MID.size > len(blob):
        raise CorruptSnapshotError("label section truncated in landmark order")
    try:
        order = json.loads(blob[offset : offset + order_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptSnapshotError(f"undecodable landmark order ({exc})") from None
    if not isinstance(order, list) or len(order) != n_nodes:
        raise CorruptSnapshotError(
            f"landmark order length {len(order) if isinstance(order, list) else '?'}"
            f" does not match node count {n_nodes}"
        )
    offset += order_len
    incremental_updates, total = _LABEL_MID.unpack_from(blob, offset)
    offset += _LABEL_MID.size
    counts, offset = _unpack(_U32, blob, offset, n_nodes)
    if sum(counts) != total:
        raise CorruptSnapshotError(
            f"label counts sum to {sum(counts)}, header claims {total}"
        )
    flat_ranks, offset = _unpack_array(_U32, blob, offset, total)
    flat_dists, offset = _unpack_array("d", blob, offset, total)
    flat_parents, offset = _unpack_array(_I32, blob, offset, total)
    # Rank values index into ``order``: a CRC only proves the bytes are
    # what the writer wrote, not that the writer was sane — reject
    # out-of-range references here rather than IndexError-ing later.
    if total and not (0 <= min(flat_ranks) and max(flat_ranks) < n_nodes):
        raise CorruptSnapshotError("label hub rank out of range")
    if total and not (-1 <= min(flat_parents) and max(flat_parents) < n_nodes):
        raise CorruptSnapshotError("label parent rank out of range")
    return order, counts, flat_ranks, flat_dists, flat_parents, incremental_updates


def decode_labels_flat(blob: bytes) -> dict:
    """Inverse of :func:`encode_flat_labels` — columns stay flat.

    Returns the shape :meth:`PrunedLandmarkLabeling.from_flat_labels`
    adopts directly, so a warm start never inflates per-node lists.
    """
    order, counts, ranks, dists, parents, incremental = _decode_label_columns(blob)
    return {
        "order": order,
        "counts": counts,
        "ranks": ranks,
        "dists": dists,
        "parents": parents,
        "incremental_updates": incremental,
    }


def decode_labels(blob: bytes) -> dict:
    """Inverse of :func:`encode_labels` (bit-exact, per-node lists)."""
    order, counts, flat_ranks, flat_dists, flat_parents, incremental = (
        _decode_label_columns(blob)
    )
    ranks, dists, parents = [], [], []
    start = 0
    for count in counts:
        stop = start + count
        ranks.append(flat_ranks[start:stop].tolist())
        dists.append(flat_dists[start:stop].tolist())
        parents.append(flat_parents[start:stop].tolist())
        start = stop
    return {
        "order": order,
        "ranks": ranks,
        "dists": dists,
        "parents": parents,
        "incremental_updates": incremental,
    }


# ----------------------------------------------------------------------
# engine snapshots
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class OracleEntryState:
    """One persisted oracle-cache entry.

    ``cache`` is ``"search"`` or ``"raw"`` (which engine cache it lives
    in); ``base`` is the engine's cache base key — ``(kind, "cc")``,
    ``(kind, "fold", gamma)`` or ``(kind, "raw")``; ``version`` is the
    network version the entry is keyed at; ``labels`` is
    :meth:`PrunedLandmarkLabeling.export_flat_labels` output (the
    legacy :meth:`~PrunedLandmarkLabeling.export_labels` per-node-list
    shape, distinguished by the absence of a ``"counts"`` key, is still
    accepted — both encode to the same bytes).
    """

    cache: str
    base: tuple
    version: int
    labels: dict | None = None
    #: Per-shard label states + boundary summary document for entries
    #: holding a :class:`~repro.graph.sharded_oracle.ShardedPLLOracle`
    #: (``labels`` is ``None`` for those; see ``export_state``).
    shard_labels: tuple[dict, ...] | None = None
    boundary: dict | None = None


@dataclass(frozen=True, slots=True)
class EngineSnapshotState:
    """Everything :class:`TeamFormationEngine` needs for a warm start."""

    network: ExpertNetwork
    edge_scale: float
    authority_scale: float
    sa_mode: str
    oracle_kind: str
    entries: tuple[OracleEntryState, ...]
    #: Shard count of a sharded engine (``None`` = monolithic).
    shards: int | None = None
    #: Planning hint duplicated into the manifest meta: skill -> home
    #: shard of the majority of its holders (see ``plan_jobs``).
    shard_residency: dict[str, int] | None = None


def strip_shard_tag(base: tuple) -> tuple:
    """The flavor core of a cache base, shard tag removed.

    Sharded engines append ``("shards", K, plan_hash)`` to their cache
    bases; request planning (``serving/batch.py``) matches on the flavor
    core only, so warm-base lookups see the same shape either way.
    """
    if base and isinstance(base[-1], tuple) and base[-1][:1] == ("shards",):
        return base[:-1]
    return base


def _base_to_meta(base: tuple) -> dict[str, Any]:
    core = strip_shard_tag(base)
    meta: dict[str, Any] = {"kind": core[0], "flavor": core[1]}
    if core[1] == "fold":
        meta["gamma"] = core[2]
    if core is not base:
        meta["shards"] = base[-1][1]
        meta["plan_hash"] = base[-1][2]
    return meta


def _base_from_meta(meta: dict[str, Any]) -> tuple:
    if meta["flavor"] == "fold":
        core: tuple = (meta["kind"], "fold", float(meta["gamma"]))
    elif meta["flavor"] in ("cc", "raw"):
        core = (meta["kind"], meta["flavor"])
    else:
        raise CorruptSnapshotError(f"unknown graph flavor {meta['flavor']!r}")
    if "shards" in meta:
        return (*core, ("shards", int(meta["shards"]), str(meta["plan_hash"])))
    return core


def encode_engine_snapshot(
    state: EngineSnapshotState,
) -> tuple[dict[str, Any], dict[str, bytes]]:
    """Encode one engine state into container ``(meta, sections)``."""
    network_dict = network_to_dict(state.network)
    entry_meta = []
    sections: dict[str, bytes] = {
        "network": json.dumps(network_dict, sort_keys=True).encode("utf-8")
    }
    for i, entry in enumerate(state.entries):
        record = {
            "cache": entry.cache,
            "version": entry.version,
            **_base_to_meta(entry.base),
        }
        if entry.shard_labels is not None:
            # One label section per shard + the boundary summary, all
            # listed in the entry record (and therefore the manifest)
            # so loaders know the layout before touching any payload.
            shard_sections = []
            for j, shard_state in enumerate(entry.shard_labels):
                name = f"labels/{i}/shard/{j}"
                sections[name] = encode_flat_labels(shard_state)
                shard_sections.append(name)
            boundary_section = f"labels/{i}/boundary"
            sections[boundary_section] = json.dumps(
                entry.boundary or {}, sort_keys=True
            ).encode("utf-8")
            record["shard_sections"] = shard_sections
            record["boundary_section"] = boundary_section
        else:
            section = f"labels/{i}"
            labels = entry.labels
            if "counts" in labels:
                sections[section] = encode_flat_labels(labels)
            else:
                sections[section] = encode_labels(labels)
            record["section"] = section
        entry_meta.append(record)
    engine_doc: dict[str, Any] = {
        "edge_scale": state.edge_scale,
        "authority_scale": state.authority_scale,
        "sa_mode": state.sa_mode,
        "oracle_kind": state.oracle_kind,
        "entries": entry_meta,
    }
    if state.shards is not None:
        engine_doc["shards"] = state.shards
    sections["engine"] = json.dumps(engine_doc, sort_keys=True).encode("utf-8")
    meta = {
        "kind": SNAPSHOT_KIND,
        "network_version": state.network.version,
        "experts": len(state.network),
        "edges": state.network.num_edges,
        "oracle_entries": len(state.entries),
        # Which index bases are warm, duplicated into the manifest so a
        # scheduler (the replica pool) can plan request placement from
        # `read_meta` alone — no CRC pass, no label decode.
        "warm": [_base_to_meta(entry.base) for entry in state.entries],
    }
    if state.shards is not None:
        meta["shards"] = state.shards
    if state.shard_residency is not None:
        meta["shard_residency"] = state.shard_residency
    return meta, sections


def warm_bases_from_meta(meta: dict[str, Any]) -> tuple[tuple, ...]:
    """The oracle-cache bases a snapshot carries prebuilt indexes for.

    Read from the manifest ``meta`` (see :func:`repro.storage.format.read_meta`);
    snapshots written before the ``warm`` manifest key existed simply
    report no warm bases, which schedulers must treat as "assume cold"
    — a correct, merely conservative answer.
    """
    try:
        return tuple(
            strip_shard_tag(_base_from_meta(entry))
            for entry in meta.get("warm", ())
        )
    except (KeyError, TypeError, CorruptSnapshotError):
        return ()


def _json_section(sections: dict[str, bytes], name: str) -> Any:
    try:
        return json.loads(sections[name].decode("utf-8"))
    except KeyError:
        raise CorruptSnapshotError(f"missing section {name!r}") from None
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptSnapshotError(
            f"undecodable section {name!r} ({exc})"
        ) from None


def decode_engine_snapshot(
    meta: dict[str, Any], sections: dict[str, bytes]
) -> EngineSnapshotState:
    """Inverse of :func:`encode_engine_snapshot` (verified sections in)."""
    if meta.get("kind") != SNAPSHOT_KIND:
        raise CorruptSnapshotError(
            f"not an engine snapshot (kind={meta.get('kind')!r})"
        )
    try:
        network = network_from_dict(_json_section(sections, "network"))
    except (ValueError, KeyError, TypeError) as exc:
        raise CorruptSnapshotError(f"invalid network section ({exc})") from None
    engine = _json_section(sections, "engine")
    entries = []
    try:
        for record in engine["entries"]:
            if "shard_sections" in record:
                shard_labels = tuple(
                    decode_labels_flat(sections[name])
                    for name in record["shard_sections"]
                )
                boundary = _json_section(sections, record["boundary_section"])
                if not isinstance(boundary, dict):
                    raise CorruptSnapshotError(
                        "boundary summary section is not a JSON object"
                    )
                entries.append(
                    OracleEntryState(
                        cache=record["cache"],
                        base=_base_from_meta(record),
                        version=int(record["version"]),
                        shard_labels=shard_labels,
                        boundary=boundary,
                    )
                )
            else:
                entries.append(
                    OracleEntryState(
                        cache=record["cache"],
                        base=_base_from_meta(record),
                        version=int(record["version"]),
                        labels=decode_labels_flat(sections[record["section"]]),
                    )
                )
        shards = engine.get("shards")
        state = EngineSnapshotState(
            network=network,
            edge_scale=float(engine["edge_scale"]),
            authority_scale=float(engine["authority_scale"]),
            sa_mode=engine["sa_mode"],
            oracle_kind=engine["oracle_kind"],
            entries=tuple(entries),
            shards=None if shards is None else int(shards),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CorruptSnapshotError(f"invalid engine section ({exc})") from None
    for entry in state.entries:
        if entry.cache not in ("search", "raw"):
            raise CorruptSnapshotError(f"unknown cache {entry.cache!r}")
        if entry.version > network.version:
            raise CorruptSnapshotError(
                f"oracle entry at version {entry.version} is ahead of the "
                f"snapshot network ({network.version})"
            )
    return state
