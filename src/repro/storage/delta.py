"""The replication delta stream: length-prefixed, CRC-checked frames.

Delta-snapshot replication (:mod:`repro.serving.replication`) moves a
follower engine from network version *u* to version *v* as **bytes**, so
the transport can be anything — a socket, a file, a message queue, a
plain function call between processes.  This module owns the byte
layout, mirroring the snapshot container's conventions
(:mod:`repro.storage.format`): a fixed little-endian header, one CRC-32
per payload, typed errors before any content is interpreted.

A stream is a concatenation of *frames*::

    offset  size  field
    0       8     magic  b"RPRODELT"
    8       2     format version (unsigned, little-endian)
    10      2     frame kind (FRAME_DELTA=1 | FRAME_SNAPSHOT=2)
    12      4     payload length in bytes
    16      4     CRC-32 of the payload
    20      ...   payload

* a **delta frame** (kind 1) carries a UTF-8 JSON object describing one
  contiguous run of enriched journal records — ``from_version``,
  ``to_version``, the records themselves, and advisory incremental-PLL
  hints (see :class:`repro.serving.replication.ReplicationLog`);
* a **snapshot frame** (kind 2) carries one complete engine snapshot
  container (the exact bytes :func:`repro.storage.format.encode_container`
  produces) for the full-transfer fallback when the delta a follower
  needs has been truncated past the journal floor.

Frames are self-delimiting, so a stream can be cut anywhere between
frames and resumed later; a cut *inside* a frame surfaces as
:class:`~repro.storage.errors.CorruptDeltaError` (truncation), never as
a silently short delta.
"""

from __future__ import annotations

import json
import struct
import zlib
from collections.abc import Iterator
from typing import Any

from .errors import CorruptDeltaError, FormatVersionError

__all__ = [
    "DELTA_MAGIC",
    "DELTA_FORMAT_VERSION",
    "FRAME_DELTA",
    "FRAME_SNAPSHOT",
    "encode_delta_frame",
    "encode_snapshot_frame",
    "iter_frames",
]

DELTA_MAGIC = b"RPRODELT"

#: Bump on any incompatible change to the frame layout or the delta
#: payload schema.  Readers reject newer versions with
#: :class:`FormatVersionError` — same policy as the snapshot container.
#: History: 1 — initial format (PR 8).
DELTA_FORMAT_VERSION = 1

#: Frame kinds.  A delta frame advances a follower incrementally; a
#: snapshot frame replaces its whole engine state (the fallback path).
FRAME_DELTA = 1
FRAME_SNAPSHOT = 2

_FRAME_HEADER = struct.Struct("<8sHHII")


def _frame(kind: int, payload: bytes) -> bytes:
    header = _FRAME_HEADER.pack(
        DELTA_MAGIC,
        DELTA_FORMAT_VERSION,
        kind,
        len(payload),
        zlib.crc32(payload),
    )
    return header + payload


def encode_delta_frame(payload: dict[str, Any]) -> bytes:
    """Frame one delta payload (a JSON-ready dict) into stream bytes."""
    return _frame(
        FRAME_DELTA, json.dumps(payload, sort_keys=True).encode("utf-8")
    )


def encode_snapshot_frame(container: bytes) -> bytes:
    """Frame one complete snapshot container into stream bytes.

    ``container`` is the output of
    :func:`repro.storage.format.encode_container` — it carries its own
    magic, manifest and per-section CRCs, which the receiver verifies a
    second time when decoding it; the frame CRC here only guards the
    transport hop.
    """
    return _frame(FRAME_SNAPSHOT, container)


def iter_frames(data: bytes) -> Iterator[tuple[int, Any]]:
    """Decode a stream into verified ``(kind, payload)`` frames, in order.

    For :data:`FRAME_DELTA` the payload is the parsed JSON object (its
    structure validated: ``from_version`` / ``to_version`` integers,
    ``records`` a list); for :data:`FRAME_SNAPSHOT` it is the raw
    container bytes.  Raises :class:`CorruptDeltaError` on bad magic,
    truncation, CRC mismatch, or a malformed delta payload, and
    :class:`FormatVersionError` when the stream was written by a newer
    format.  Every yielded payload has passed its CRC.
    """
    offset = 0
    index = 0
    total = len(data)
    while offset < total:
        if total - offset < _FRAME_HEADER.size:
            raise CorruptDeltaError(
                f"frame {index}: truncated header "
                f"({total - offset} bytes, need {_FRAME_HEADER.size})"
            )
        magic, version, kind, length, crc = _FRAME_HEADER.unpack_from(
            data, offset
        )
        if magic != DELTA_MAGIC:
            raise CorruptDeltaError(
                f"frame {index}: bad magic {magic!r} "
                "(not a repro delta stream)"
            )
        if version > DELTA_FORMAT_VERSION:
            raise FormatVersionError(version, DELTA_FORMAT_VERSION)
        start = offset + _FRAME_HEADER.size
        payload = data[start : start + length]
        if len(payload) != length:
            raise CorruptDeltaError(
                f"frame {index}: truncated payload "
                f"({len(payload)}/{length} bytes)"
            )
        if zlib.crc32(payload) != crc:
            raise CorruptDeltaError(f"frame {index}: payload CRC mismatch")
        if kind == FRAME_DELTA:
            yield kind, _parse_delta_payload(payload, index)
        elif kind == FRAME_SNAPSHOT:
            yield kind, payload
        else:
            raise CorruptDeltaError(
                f"frame {index}: unknown frame kind {kind}"
            )
        offset = start + length
        index += 1


def _parse_delta_payload(payload: bytes, index: int) -> dict[str, Any]:
    try:
        parsed = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        # CRC passed but the JSON is malformed: the *writer* was broken.
        raise CorruptDeltaError(
            f"frame {index}: undecodable delta payload ({exc})"
        ) from None
    if (
        not isinstance(parsed, dict)
        or not isinstance(parsed.get("from_version"), int)
        or not isinstance(parsed.get("to_version"), int)
        or not isinstance(parsed.get("records"), list)
    ):
        raise CorruptDeltaError(
            f"frame {index}: malformed delta payload structure"
        )
    if parsed["from_version"] >= parsed["to_version"]:
        raise CorruptDeltaError(
            f"frame {index}: empty or backwards version range "
            f"({parsed['from_version']} -> {parsed['to_version']})"
        )
    return parsed
