"""Typed failure modes of the snapshot persistence subsystem.

Every error a caller can act on gets its own class, because the three
failure modes demand three different reactions:

* :class:`CorruptSnapshotError` — the bytes are damaged (truncation,
  bit-flip, wrong file).  React: fall back to an older snapshot or a
  cold build; never trust partial content.
* :class:`FormatVersionError` — the bytes are intact but written by a
  *newer* format than this reader understands.  React: upgrade the
  package; retrying or falling back to older snapshots is pointless if
  they share the format.
* :class:`StaleSnapshotError` — the snapshot is valid but cannot be
  reconciled with the live network (its version predates the live
  journal's floor, or is ahead of the live network entirely).  React:
  take a fresh snapshot from the live engine; replay is impossible.

All three derive from :class:`SnapshotError` so "anything snapshot"
can be caught in one clause, and *none* of them ever leaves a caller
holding a silently wrong oracle — loading either returns a verified
engine or raises.
"""

from __future__ import annotations

__all__ = [
    "SnapshotError",
    "CorruptSnapshotError",
    "FormatVersionError",
    "StaleSnapshotError",
]


class SnapshotError(Exception):
    """Base class for every snapshot persistence failure."""


class CorruptSnapshotError(SnapshotError):
    """The snapshot bytes fail integrity verification.

    Raised on wrong magic, truncated files, manifest/section CRC
    mismatches, and structurally impossible manifests.  The message
    names what check failed and where.
    """


class FormatVersionError(SnapshotError):
    """The snapshot was written by a format this reader does not know.

    Carries both versions so operators can see at a glance whether the
    fix is "upgrade the package" (snapshot is newer) — downgrades are
    reported as corruption only when the header itself is damaged.
    """

    def __init__(self, found: int, supported: int) -> None:
        super().__init__(
            f"snapshot format version {found} is not supported "
            f"(this reader understands versions <= {supported})"
        )
        self.found = found
        self.supported = supported


class StaleSnapshotError(SnapshotError):
    """The snapshot cannot be reconciled with the live network.

    Raised when the snapshot's network version predates the live
    journal's floor (the mutation delta needed to catch up was
    truncated), when it claims a version *ahead* of the live network,
    or when the two journals disagree over their shared history — the
    snapshot was taken from a different mutation lineage that merely
    shares a version number.  Loading it against that network would
    serve wrong distances, so the loader refuses.
    """
