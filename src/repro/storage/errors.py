"""Typed failure modes of the snapshot persistence subsystem.

Every error a caller can act on gets its own class, because the three
failure modes demand three different reactions:

* :class:`CorruptSnapshotError` — the bytes are damaged (truncation,
  bit-flip, wrong file).  React: fall back to an older snapshot or a
  cold build; never trust partial content.
* :class:`FormatVersionError` — the bytes are intact but written by a
  *newer* format than this reader understands.  React: upgrade the
  package; retrying or falling back to older snapshots is pointless if
  they share the format.
* :class:`StaleSnapshotError` — the snapshot is valid but cannot be
  reconciled with the live network (its version predates the live
  journal's floor, or is ahead of the live network entirely).  React:
  take a fresh snapshot from the live engine; replay is impossible.

Replication (PR 8) refines two of these without adding new reactions:
:class:`CorruptDeltaError` is :class:`CorruptSnapshotError` for the
delta-frame stream, and :class:`JournalTruncatedError` is
:class:`StaleSnapshotError` surfaced mid-replication — the typed signal
that a follower must fall back to a full snapshot transfer.

All of them derive from :class:`SnapshotError` so "anything snapshot"
can be caught in one clause, and *none* of them ever leaves a caller
holding a silently wrong oracle — loading either returns a verified
engine or raises.
"""

from __future__ import annotations

__all__ = [
    "SnapshotError",
    "CorruptSnapshotError",
    "CorruptDeltaError",
    "FormatVersionError",
    "StaleSnapshotError",
    "JournalTruncatedError",
]


class SnapshotError(Exception):
    """Base class for every snapshot persistence failure."""


class CorruptSnapshotError(SnapshotError):
    """The snapshot bytes fail integrity verification.

    Raised on wrong magic, truncated files, manifest/section CRC
    mismatches, and structurally impossible manifests.  The message
    names what check failed and where.
    """


class CorruptDeltaError(CorruptSnapshotError):
    """A replication delta stream fails integrity verification.

    Same contract as :class:`CorruptSnapshotError` (wrong magic,
    truncated frame, CRC mismatch, structurally impossible payload) for
    the delta-frame stream of :mod:`repro.storage.delta`.  React like a
    failed fetch: re-request the delta, or fall back to a full snapshot
    transfer — never apply a partially verified frame.
    """


class FormatVersionError(SnapshotError):
    """The snapshot was written by a format this reader does not know.

    Carries both versions so operators can see at a glance whether the
    fix is "upgrade the package" (snapshot is newer) — downgrades are
    reported as corruption only when the header itself is damaged.
    """

    def __init__(self, found: int, supported: int) -> None:
        super().__init__(
            f"snapshot format version {found} is not supported "
            f"(this reader understands versions <= {supported})"
        )
        self.found = found
        self.supported = supported

    def __reduce__(self):
        # Default exception pickling replays ``args`` — the formatted
        # message, not our two ints — so a worker-raised instance would
        # fail to unpickle in the parent.  Replay the real constructor.
        return (type(self), (self.found, self.supported))


class StaleSnapshotError(SnapshotError):
    """The snapshot cannot be reconciled with the live network.

    Raised when the snapshot's network version predates the live
    journal's floor (the mutation delta needed to catch up was
    truncated), when it claims a version *ahead* of the live network,
    or when the two journals disagree over their shared history — the
    snapshot was taken from a different mutation lineage that merely
    shares a version number.  Loading it against that network would
    serve wrong distances, so the loader refuses.
    """


class JournalTruncatedError(StaleSnapshotError):
    """A catch-up delta was requested from past the journal's floor.

    Raised (instead of silently answering "rebuild from scratch") when a
    replication consumer asks for the mutations since a version the
    bounded journal no longer retains — the follower fell too far
    behind.  React: transfer a full snapshot and resume the delta stream
    from its version.  Subclasses :class:`StaleSnapshotError` because it
    is the same condition (`the delta needed to catch up was truncated`)
    surfaced mid-replication rather than at load time, so existing
    "stale → take a fresh snapshot" handlers keep working.
    """

    def __init__(self, since_version: int, floor: int) -> None:
        super().__init__(
            f"cannot replay the delta since version {since_version}: the "
            f"journal floor has advanced to {floor} — fall back to a full "
            "snapshot transfer"
        )
        self.since_version = since_version
        self.floor = floor

    def __reduce__(self):
        # Same pickling concern as FormatVersionError: replica-pool
        # workers raise this across a process boundary.
        return (type(self), (self.since_version, self.floor))
