"""repro.storage — durable snapshots for networks and 2-hop-cover indexes.

The paper's premise is that the expensive preprocessing (the PLL index)
is built once and amortized over many queries; this package makes "once"
mean *once per deployment* instead of once per process:

* :mod:`repro.storage.format` — the versioned binary container (magic,
  format version, JSON manifest, CRC-32-checked sections) with atomic
  write-rename;
* :mod:`repro.storage.codec` — what the sections hold: the network
  state + mutation journal as canonical JSON, and each persisted
  oracle-cache entry's labels in a compact little-endian array layout
  (stdlib ``struct``/``array`` only — ``numpy`` never required);
* :mod:`repro.storage.store` — :class:`SnapshotStore`, a snapshot
  directory with a LATEST pointer and count-based retention/GC;
* :mod:`repro.storage.delta` — the replication delta stream: CRC-checked
  frames carrying enriched journal records (or a whole snapshot
  container for the full-transfer fallback) between a primary and its
  follower replicas (:mod:`repro.serving.replication`);
* :mod:`repro.storage.errors` — the typed failure modes
  (:class:`CorruptSnapshotError`, :class:`CorruptDeltaError`,
  :class:`FormatVersionError`, :class:`StaleSnapshotError`,
  :class:`JournalTruncatedError`).

The consumer is :meth:`repro.api.TeamFormationEngine.save_snapshot` /
:meth:`~repro.api.TeamFormationEngine.from_snapshot`, which freeze and
warm-start the whole serving state — network, scales, and the keyed
oracle cache — and reconcile a snapshot taken at network-version *v*
with a newer live journal through the engine's existing incremental
update path.
"""

from .codec import (
    EngineSnapshotState,
    OracleEntryState,
    decode_engine_snapshot,
    decode_labels,
    decode_labels_flat,
    encode_engine_snapshot,
    encode_flat_labels,
    encode_labels,
    warm_bases_from_meta,
)
from .delta import (
    DELTA_FORMAT_VERSION,
    DELTA_MAGIC,
    FRAME_DELTA,
    FRAME_SNAPSHOT,
    encode_delta_frame,
    encode_snapshot_frame,
    iter_frames,
)
from .errors import (
    CorruptDeltaError,
    CorruptSnapshotError,
    FormatVersionError,
    JournalTruncatedError,
    SnapshotError,
    StaleSnapshotError,
)
from .format import (
    SNAPSHOT_FORMAT_VERSION,
    SNAPSHOT_MAGIC,
    decode_container,
    read_container,
    read_meta,
    write_container,
)
from .store import SnapshotInfo, SnapshotStore, resolve_snapshot_path

__all__ = [
    "SnapshotStore",
    "SnapshotInfo",
    "resolve_snapshot_path",
    "SnapshotError",
    "CorruptSnapshotError",
    "CorruptDeltaError",
    "FormatVersionError",
    "StaleSnapshotError",
    "JournalTruncatedError",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_FORMAT_VERSION",
    "DELTA_MAGIC",
    "DELTA_FORMAT_VERSION",
    "FRAME_DELTA",
    "FRAME_SNAPSHOT",
    "encode_delta_frame",
    "encode_snapshot_frame",
    "iter_frames",
    "decode_container",
    "read_container",
    "read_meta",
    "write_container",
    "EngineSnapshotState",
    "OracleEntryState",
    "encode_engine_snapshot",
    "decode_engine_snapshot",
    "encode_labels",
    "encode_flat_labels",
    "decode_labels",
    "decode_labels_flat",
    "warm_bases_from_meta",
]
