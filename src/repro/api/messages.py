"""Typed request/response messages for the team-formation serving API.

A :class:`TeamRequest` captures everything a solver needs to answer one
query — the required skills, which solver to route to, the objective and
its tradeoff parameters — and a :class:`TeamResponse` captures everything
a caller needs from the answer: the team itself, a per-member cost
decomposition, the full score breakdown and timing.  Both round-trip
losslessly through plain dicts and JSON (``to_json`` / ``from_json``), so
requests can arrive over a wire and responses can be logged, cached or
shipped back without touching pickle.

The payload types deliberately mirror — but do not reference — the live
domain objects: a :class:`TeamPayload` can be rebuilt into a
:class:`repro.core.team.Team` (``to_team``), and a
:class:`MemberContributionPayload` is a serializable view of
:class:`repro.core.explain.MemberContribution`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any

from ..core.explain import MemberContribution
from ..core.objectives import SaMode, TeamEvaluator
from ..core.team import Team
from ..graph.adjacency import Graph

__all__ = [
    "TeamRequest",
    "TeamPayload",
    "MemberContributionPayload",
    "ScoreBreakdown",
    "TimingInfo",
    "TeamResponse",
]

_SA_MODES = ("per_skill", "distinct")
_ORACLE_KINDS = ("pll", "dijkstra")


@dataclass(frozen=True, slots=True)
class TeamRequest:
    """One team-formation query, addressed to a registered solver.

    ``skills`` is the project (Definition 1); ``solver`` is a
    :class:`repro.api.registry.SolverRegistry` key.  ``seed`` and
    ``num_samples`` only matter to stochastic solvers (``random``);
    ``k`` asks for up to ``k`` ranked teams where the solver supports it
    (extras are returned as ``alternates``).

    ``deadline_ms`` is the caller's per-request latency budget in
    milliseconds, honored by the persistent server
    (:class:`repro.serving.server.TeamServer`): a request still queued
    when its budget runs out is answered with a ``deadline_exceeded``
    error response instead of occupying a worker.  ``0`` means "already
    expired" (useful for testing the rejection path); ``None`` defers
    to the server's configured default.  Solvers themselves ignore it —
    a solve that has *started* runs to completion.
    """

    skills: tuple[str, ...]
    solver: str = "greedy"
    objective: str = "sa-ca-cc"
    gamma: float = 0.6
    lam: float = 0.6
    sa_mode: SaMode = "per_skill"
    oracle_kind: str = "pll"
    k: int = 1
    seed: int | None = None
    num_samples: int | None = None
    deadline_ms: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "skills", tuple(self.skills))
        if not self.skills:
            raise ValueError("a request must name at least one skill")
        if not all(isinstance(s, str) and s for s in self.skills):
            raise ValueError("skills must be non-empty strings")
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError(f"gamma must be in [0, 1], got {self.gamma}")
        if not 0.0 <= self.lam <= 1.0:
            raise ValueError(f"lambda must be in [0, 1], got {self.lam}")
        if self.sa_mode not in _SA_MODES:
            raise ValueError(f"unknown sa_mode {self.sa_mode!r}")
        if self.oracle_kind not in _ORACLE_KINDS:
            raise ValueError(f"unknown oracle_kind {self.oracle_kind!r}")
        if self.k < 1:
            raise ValueError("k must be positive")
        if self.num_samples is not None and self.num_samples < 1:
            raise ValueError("num_samples must be positive")
        if self.deadline_ms is not None:
            if not isinstance(self.deadline_ms, int) or isinstance(
                self.deadline_ms, bool
            ):
                raise ValueError(
                    f"deadline_ms must be an integer millisecond count, "
                    f"got {self.deadline_ms!r}"
                )
            if self.deadline_ms < 0:
                raise ValueError("deadline_ms must be non-negative")

    def to_dict(self) -> dict[str, Any]:
        """This message as a JSON-ready dict (inverse of ``from_dict``)."""
        return {
            "skills": list(self.skills),
            "solver": self.solver,
            "objective": self.objective,
            "gamma": self.gamma,
            "lam": self.lam,
            "sa_mode": self.sa_mode,
            "oracle_kind": self.oracle_kind,
            "k": self.k,
            "seed": self.seed,
            "num_samples": self.num_samples,
            "deadline_ms": self.deadline_ms,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TeamRequest":
        """Build a request from a (possibly partial) dict."""
        known = {
            "solver",
            "objective",
            "gamma",
            "lam",
            "sa_mode",
            "oracle_kind",
            "k",
            "seed",
            "num_samples",
            "deadline_ms",
        }
        kwargs = {key: data[key] for key in known if key in data}
        return cls(skills=tuple(data["skills"]), **kwargs)

    def to_json(self) -> str:
        """Canonical (sorted-keys) JSON encoding."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TeamRequest":
        """Parse a request from its JSON encoding."""
        return cls.from_dict(json.loads(text))

    def replace(self, **changes: Any) -> "TeamRequest":
        """A copy with the given fields changed (dataclasses.replace-like)."""
        merged = self.to_dict()
        merged.update(changes)
        return self.from_dict(merged)


@dataclass(frozen=True, slots=True)
class TeamPayload:
    """A serialized team: canonical member, assignment and edge views.

    ``assignments`` is sorted ``(skill, expert)`` pairs; ``edges`` is
    sorted ``(u, v, weight)`` triples with ``u <= v``.  Sorting makes the
    payload canonical, so two payloads are equal iff the teams have the
    same ``Team.key()`` and tree.
    """

    members: tuple[str, ...]
    assignments: tuple[tuple[str, str], ...]
    edges: tuple[tuple[str, str, float], ...]
    root: str | None = None

    @classmethod
    def from_team(cls, team: Team) -> "TeamPayload":
        """Serialize a live :class:`Team` into its canonical payload.

        Weights are coerced to ``float`` so the payload is byte-stable
        under a JSON round-trip even when a graph was built with
        integer weights.
        """
        edges = tuple(
            sorted(
                (min(u, v), max(u, v), float(w))
                for u, v, w in team.tree.edges()
            )
        )
        return cls(
            members=tuple(sorted(team.members)),
            assignments=tuple(sorted(team.assignments.items())),
            edges=edges,
            root=team.root,
        )

    def to_team(self) -> Team:
        """Rebuild the live :class:`Team` (inverse of :meth:`from_team`)."""
        tree = Graph()
        for member in self.members:
            tree.add_node(member)
        for u, v, w in self.edges:
            tree.add_edge(u, v, weight=w)
        return Team(tree=tree, assignments=dict(self.assignments), root=self.root)

    def to_dict(self) -> dict[str, Any]:
        """This message as a JSON-ready dict (inverse of ``from_dict``)."""
        return {
            "members": list(self.members),
            "assignments": {skill: expert for skill, expert in self.assignments},
            "edges": [[u, v, w] for u, v, w in self.edges],
            "root": self.root,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TeamPayload":
        """Build a payload from its dict form (inverse of ``to_dict``)."""
        return cls(
            members=tuple(data["members"]),
            assignments=tuple(sorted(data["assignments"].items())),
            edges=tuple((u, v, float(w)) for u, v, w in data["edges"]),
            root=data.get("root"),
        )


@dataclass(frozen=True, slots=True)
class MemberContributionPayload:
    """Serializable view of :class:`repro.core.explain.MemberContribution`."""

    expert_id: str
    role: str
    covered_skills: tuple[str, ...]
    authority: float
    sa_share: float
    ca_share: float
    cc_share: float
    critical: bool

    @property
    def total(self) -> float:
        return self.sa_share + self.ca_share + self.cc_share

    @classmethod
    def from_contribution(
        cls, contribution: MemberContribution
    ) -> "MemberContributionPayload":
        """Serialize a live :class:`MemberContribution`.

        Shares are coerced to ``float`` for byte-stability under a JSON
        round-trip (see :meth:`ScoreBreakdown.from_team`).
        """
        return cls(
            expert_id=contribution.expert_id,
            role=contribution.role,
            covered_skills=tuple(contribution.covered_skills),
            authority=float(contribution.authority),
            sa_share=float(contribution.sa_share),
            ca_share=float(contribution.ca_share),
            cc_share=float(contribution.cc_share),
            critical=contribution.critical,
        )

    def to_dict(self) -> dict[str, Any]:
        """This message as a JSON-ready dict (inverse of ``from_dict``)."""
        return {
            "expert_id": self.expert_id,
            "role": self.role,
            "covered_skills": list(self.covered_skills),
            "authority": self.authority,
            "sa_share": self.sa_share,
            "ca_share": self.ca_share,
            "cc_share": self.cc_share,
            "critical": self.critical,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MemberContributionPayload":
        """Build a payload from its dict form (inverse of ``to_dict``)."""
        return cls(
            expert_id=data["expert_id"],
            role=data["role"],
            covered_skills=tuple(data["covered_skills"]),
            authority=data["authority"],
            sa_share=data["sa_share"],
            ca_share=data["ca_share"],
            cc_share=data["cc_share"],
            critical=data["critical"],
        )


@dataclass(frozen=True, slots=True)
class ScoreBreakdown:
    """The team's value under every objective (Definitions 2-6)."""

    cc: float
    ca: float
    sa: float
    ca_cc: float
    sa_ca_cc: float

    @classmethod
    def from_team(cls, evaluator: TeamEvaluator, team: Team) -> "ScoreBreakdown":
        """Score ``team`` under all five objectives via ``evaluator``.

        Scores are coerced to ``float``: an evaluator may legitimately
        return an exact ``int`` 0, but a payload holding one would stop
        being byte-identical to its own JSON round-trip (``0`` vs
        ``0.0``) — and replica-pool responses, which travel as JSON,
        must match in-process responses byte for byte.
        """
        return cls(
            cc=float(evaluator.cc(team)),
            ca=float(evaluator.ca(team)),
            sa=float(evaluator.sa(team)),
            ca_cc=float(evaluator.ca_cc(team)),
            sa_ca_cc=float(evaluator.sa_ca_cc(team)),
        )

    def to_dict(self) -> dict[str, Any]:
        """This message as a JSON-ready dict (inverse of ``from_dict``)."""
        return {
            "cc": self.cc,
            "ca": self.ca,
            "sa": self.sa,
            "ca_cc": self.ca_cc,
            "sa_ca_cc": self.sa_ca_cc,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScoreBreakdown":
        """Build a breakdown from its dict form (inverse of ``to_dict``)."""
        return cls(**{k: float(data[k]) for k in ("cc", "ca", "sa", "ca_cc", "sa_ca_cc")})


@dataclass(frozen=True, slots=True)
class TimingInfo:
    """Wall-clock cost of one solve and how many indexes it paid for.

    ``oracle_builds`` counts PLL constructions during the solve: on the
    engine's multi-query hot path it should be 0 for every request after
    the first one that shares a cached oracle.

    ``trace`` optionally carries the finished span tree of the request
    (:meth:`repro.obs.Span.to_dict`) when the server was asked to trace.
    It rides here — and only here — because ``canonical_json()`` nulls
    the whole ``timing`` field: a traced response stays byte-identical
    to an untraced one under the serving identity contract.  Omitted
    from the dict/JSON forms when absent, so untraced payloads keep
    their exact pre-tracing byte form.
    """

    solve_seconds: float
    oracle_builds: int = 0
    trace: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        """This message as a JSON-ready dict (inverse of ``from_dict``)."""
        out: dict[str, Any] = {
            "solve_seconds": self.solve_seconds,
            "oracle_builds": self.oracle_builds,
        }
        if self.trace is not None:
            out["trace"] = self.trace
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TimingInfo":
        """Build timing info from its dict form (inverse of ``to_dict``)."""
        return cls(
            solve_seconds=float(data["solve_seconds"]),
            oracle_builds=int(data["oracle_builds"]),
            trace=data.get("trace"),
        )


@dataclass(frozen=True, slots=True)
class TeamResponse:
    """One solver's answer to a :class:`TeamRequest`.

    ``found`` is false when the solver could not produce a team (project
    uncoverable holders disconnected, or an intractable exact search —
    in which case ``error`` says why).  ``alternates`` holds ranked
    runner-up teams when the request asked for ``k > 1``.

    ``error_kind`` types the failure so batch callers can branch
    without parsing prose: ``"uncoverable"`` / ``"intractable"`` are a
    solver's legitimate negative answers, while ``"unknown_solver"`` /
    ``"invalid_request"`` / ``"internal"`` mark requests the isolation
    layer (:meth:`repro.api.TeamFormationEngine.solve_isolated`) caught
    so one bad request cannot abort the rest of a batch.  The
    persistent server adds two admission-layer kinds that never reach a
    solver at all: ``"overloaded"`` (the bounded pending queue was
    full) and ``"deadline_exceeded"`` (the request's ``deadline_ms``
    budget ran out while it was still queued).  Replicated serving adds
    ``"stale_replica"``: the replica's bounded-staleness admission check
    found it lagging the primary by more than the configured budget, so
    the request was rejected rather than answered from stale state.

    ``network_version`` is the network mutation version the answer was
    computed at.  It is ``None`` (and **omitted from the dict/JSON
    forms**) outside replicated serving, so pre-replication payloads,
    logs and byte-identity fixtures are unchanged; the replica pool and
    the replicated server stamp it so callers can correlate answers
    with the mutation stream.
    """

    request: TeamRequest
    solver: str
    found: bool
    team: TeamPayload | None = None
    alternates: tuple[TeamPayload, ...] = ()
    contributions: tuple[MemberContributionPayload, ...] = ()
    scores: ScoreBreakdown | None = None
    timing: TimingInfo | None = None
    error: str | None = None
    error_kind: str | None = None
    network_version: int | None = None

    @classmethod
    def for_error(
        cls, request: TeamRequest, kind: str, message: str
    ) -> "TeamResponse":
        """A typed error answer for a request no solver could process."""
        return cls(
            request=request,
            solver=request.solver,
            found=False,
            error=message,
            error_kind=kind,
        )

    def with_trace(self, tree: dict[str, Any] | None) -> "TeamResponse":
        """A copy carrying ``tree`` in ``timing.trace`` (identity-safe).

        No-op (returns ``self``) when there is no tree or no timing to
        attach it to — admission-layer rejections never ran a solver
        and carry no :class:`TimingInfo`.
        """
        if tree is None or self.timing is None:
            return self
        timing = TimingInfo(
            solve_seconds=self.timing.solve_seconds,
            oracle_builds=self.timing.oracle_builds,
            trace=tree,
        )
        return dataclasses.replace(self, timing=timing)

    def to_dict(self) -> dict[str, Any]:
        """This message as a JSON-ready dict (inverse of ``from_dict``)."""
        out = {
            "request": self.request.to_dict(),
            "solver": self.solver,
            "found": self.found,
            "team": self.team.to_dict() if self.team is not None else None,
            "alternates": [t.to_dict() for t in self.alternates],
            "contributions": [c.to_dict() for c in self.contributions],
            "scores": self.scores.to_dict() if self.scores is not None else None,
            "timing": self.timing.to_dict() if self.timing is not None else None,
            "error": self.error,
            "error_kind": self.error_kind,
        }
        # Default-omitted (not emitted as null): un-replicated payloads
        # keep their exact pre-replication byte form.
        if self.network_version is not None:
            out["network_version"] = self.network_version
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TeamResponse":
        """Build a response from its dict form (inverse of ``to_dict``)."""
        return cls(
            request=TeamRequest.from_dict(data["request"]),
            solver=data["solver"],
            found=data["found"],
            team=(
                TeamPayload.from_dict(data["team"])
                if data.get("team") is not None
                else None
            ),
            alternates=tuple(
                TeamPayload.from_dict(t) for t in data.get("alternates", ())
            ),
            contributions=tuple(
                MemberContributionPayload.from_dict(c)
                for c in data.get("contributions", ())
            ),
            scores=(
                ScoreBreakdown.from_dict(data["scores"])
                if data.get("scores") is not None
                else None
            ),
            timing=(
                TimingInfo.from_dict(data["timing"])
                if data.get("timing") is not None
                else None
            ),
            error=data.get("error"),
            error_kind=data.get("error_kind"),
            network_version=data.get("network_version"),
        )

    def to_json(self) -> str:
        """Canonical (sorted-keys) JSON encoding."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TeamResponse":
        """Parse a response from its JSON encoding."""
        return cls.from_dict(json.loads(text))

    def canonical_json(self) -> str:
        """:meth:`to_json` with ``timing`` nulled and ``network_version``
        dropped.

        The identity contract of the serving layer — replica-pool,
        threaded and sequential answers must match **byte for byte** —
        can never hold for wall-clock timing, so identity checks (the
        serving/snapshot benchmarks, the concurrency regression tests)
        compare this form instead of ``to_json``.  ``network_version``
        is likewise excluded: it identifies *who answered* (a replicated
        backend stamps it, a plain engine does not), never *what the
        answer is*, so it must not break identity between the two.
        """
        payload = self.to_dict()
        payload["timing"] = None
        payload.pop("network_version", None)
        return json.dumps(payload, sort_keys=True)

    def format(self) -> str:
        """Human-readable answer for terminals (the CLI's default view)."""
        head = f"solver: {self.solver}  skills: {', '.join(self.request.skills)}"
        if self.timing is not None:
            head += (
                f"  ({self.timing.solve_seconds:.3f}s, "
                f"{self.timing.oracle_builds} index build"
                f"{'' if self.timing.oracle_builds == 1 else 's'})"
            )
        if not self.found or self.team is None:
            reason = f": {self.error}" if self.error else ""
            kind = f" [{self.error_kind}]" if self.error_kind else ""
            return f"{head}\nno team found{kind}{reason}"
        lines = [head]
        if self.team.root is not None:
            lines.append(f"root: {self.team.root}")
        for c in sorted(self.contributions, key=lambda c: -c.total):
            skills = f" covers {', '.join(c.covered_skills)}" if c.covered_skills else ""
            flag = " [critical]" if c.critical else ""
            lines.append(
                f"  {c.expert_id:<20} {c.role:<12} h={c.authority:<6.1f} "
                f"total={c.total:.4f}{flag}{skills}"
            )
        if self.scores is not None:
            s = self.scores
            lines.append(
                f"scores: cc={s.cc:.4f} ca={s.ca:.4f} sa={s.sa:.4f} "
                f"ca-cc={s.ca_cc:.4f} sa-ca-cc={s.sa_ca_cc:.4f}"
            )
        if self.alternates:
            lines.append(f"alternates: {len(self.alternates)} more ranked team(s)")
        return "\n".join(lines)

