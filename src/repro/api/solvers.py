"""Thin adapters lifting the core solver classes to the request API.

Each adapter binds one existing solver class to a
:class:`~repro.api.engine.TeamFormationEngine` and translates between the
wire-level :class:`TeamRequest` / :class:`TeamResponse` messages and the
class's native ``find_team`` / ``find_top_k`` calls.  Adapters construct
their underlying solvers exclusively through the engine's factory
methods, so every solver shares the engine's
:class:`~repro.core.objectives.ObjectiveScales` and its keyed distance-
oracle cache — and, by the same token, returns teams *identical* to a
directly constructed solver given the same parameters (asserted in
``tests/api/test_engine.py``).

The core classes themselves remain importable and unchanged; nothing in
:mod:`repro.core` knows this layer exists.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from ..core.exact import IntractableError
from ..core.explain import explain_team
from ..core.team import Team
from ..expertise.skills import SkillCoverageError
from ..graph.pll import pll_build_count
from .messages import (
    MemberContributionPayload,
    ScoreBreakdown,
    TeamPayload,
    TeamRequest,
    TeamResponse,
    TimingInfo,
)
from .registry import SolverRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import TeamFormationEngine

__all__ = [
    "DEFAULT_REGISTRY",
    "register_builtin_solvers",
    "GreedyAdapter",
    "RarestFirstAdapter",
    "SaOptimalAdapter",
    "ExactAdapter",
    "BruteForceAdapter",
    "RandomAdapter",
    "ParetoAdapter",
]


class _BaseAdapter:
    """Shared response assembly for every adapter."""

    name: str = ""

    def __init__(self, engine: "TeamFormationEngine") -> None:
        self._engine = engine

    # ------------------------------------------------------------------
    def solve(self, request: TeamRequest) -> TeamResponse:
        """Answer ``request``: find teams, score, decompose, and time."""
        started = time.perf_counter()
        builds_before = pll_build_count()
        error: str | None = None
        error_kind: str | None = None
        teams: list[Team] = []
        try:
            teams = [t for t in self._find(request) if t is not None]
        except SkillCoverageError as exc:
            # A legitimate negative answer for a serving API: "this
            # project cannot be staffed" — reported in-band, not as a 500.
            error = str(exc)
            error_kind = "uncoverable"
        except IntractableError as exc:
            # Likewise: "exact search over budget" is an answer.
            error = str(exc)
            error_kind = "intractable"
        return self._respond(
            request,
            teams,
            started=started,
            builds_before=builds_before,
            error=error,
            error_kind=error_kind,
        )

    def _find(self, request: TeamRequest) -> list[Team | None]:
        """Ranked teams for ``request`` (subclass hook)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _respond(
        self,
        request: TeamRequest,
        teams: list[Team],
        *,
        started: float,
        builds_before: int,
        error: str | None = None,
        error_kind: str | None = None,
    ) -> TeamResponse:
        engine = self._engine
        team = teams[0] if teams else None
        contributions: tuple[MemberContributionPayload, ...] = ()
        scores: ScoreBreakdown | None = None
        if team is not None:
            evaluator = engine.evaluator(
                gamma=request.gamma, lam=request.lam, sa_mode=request.sa_mode
            )
            scores = ScoreBreakdown.from_team(evaluator, team)
            explanation = explain_team(
                team,
                engine.network,
                gamma=request.gamma,
                lam=request.lam,
                scales=engine.scales,
                sa_mode=request.sa_mode,
            )
            contributions = tuple(
                MemberContributionPayload.from_contribution(c)
                for c in explanation.contributions
            )
        timing = TimingInfo(
            solve_seconds=time.perf_counter() - started,
            oracle_builds=pll_build_count() - builds_before,
        )
        return TeamResponse(
            request=request,
            solver=self.name,
            found=team is not None,
            team=TeamPayload.from_team(team) if team is not None else None,
            alternates=tuple(TeamPayload.from_team(t) for t in teams[1:]),
            contributions=contributions,
            scores=scores,
            timing=timing,
            error=error,
            error_kind=error_kind,
        )


class GreedyAdapter(_BaseAdapter):
    """Algorithm 1 (Problems 1, 2, 3, 5) behind the request API."""

    name = "greedy"

    def _find(self, request: TeamRequest) -> list[Team | None]:
        finder = self._engine.greedy_finder(
            objective=request.objective,
            gamma=request.gamma,
            lam=request.lam,
            sa_mode=request.sa_mode,
            oracle_kind=request.oracle_kind,
        )
        return list(finder.find_top_k(list(request.skills), k=request.k))


class RarestFirstAdapter(_BaseAdapter):
    """The KDD'09 RarestFirst baseline (communication cost only)."""

    name = "rarest_first"

    def _find(self, request: TeamRequest) -> list[Team | None]:
        solver = self._engine.rarest_first_solver(oracle_kind=request.oracle_kind)
        return [solver.find_team(list(request.skills))]


class SaOptimalAdapter(_BaseAdapter):
    """Problem 4: the provably SA-optimal polynomial solver."""

    name = "sa_optimal"

    def _find(self, request: TeamRequest) -> list[Team | None]:
        solver = self._engine.sa_optimal_solver(
            gamma=request.gamma, lam=request.lam, sa_mode=request.sa_mode
        )
        return [solver.find_team(list(request.skills))]


class ExactAdapter(_BaseAdapter):
    """The paper's exhaustive Exact baseline (may be intractable)."""

    name = "exact"

    def _find(self, request: TeamRequest) -> list[Team | None]:
        solver = self._engine.exact_solver(
            gamma=request.gamma, lam=request.lam, sa_mode=request.sa_mode
        )
        return list(solver.find_top_k(list(request.skills), k=request.k))


class BruteForceAdapter(_BaseAdapter):
    """Full member-set enumeration; the test suite's trust anchor."""

    name = "brute_force"

    def _find(self, request: TeamRequest) -> list[Team | None]:
        solver = self._engine.brute_force_solver(
            objective=request.objective,
            gamma=request.gamma,
            lam=request.lam,
            sa_mode=request.sa_mode,
        )
        return [solver.find_team(list(request.skills))]


class RandomAdapter(_BaseAdapter):
    """Best-of-N random teams (the paper's Random baseline)."""

    name = "random"

    def _find(self, request: TeamRequest) -> list[Team | None]:
        solver = self._engine.random_solver(
            gamma=request.gamma,
            lam=request.lam,
            sa_mode=request.sa_mode,
            num_samples=request.num_samples,
            seed=request.seed,
        )
        return [solver.find_team(list(request.skills))]


class ParetoAdapter(_BaseAdapter):
    """Frontier mining: returns the frontier team best under the request's
    objective; the rest of the frontier (up to ``k - 1``) as alternates."""

    name = "pareto"

    def _find(self, request: TeamRequest) -> list[Team | None]:
        discovery = self._engine.pareto_discovery(
            oracle_kind=request.oracle_kind, sa_mode=request.sa_mode
        )
        frontier = discovery.discover(list(request.skills))
        if not frontier:
            return []
        evaluator = self._engine.evaluator(
            gamma=request.gamma, lam=request.lam, sa_mode=request.sa_mode
        )
        ranked = sorted(
            frontier,
            key=lambda p: (evaluator.score(p.team, request.objective), p.vector),
        )
        return [p.team for p in ranked[: request.k]]


def register_builtin_solvers(registry: SolverRegistry) -> SolverRegistry:
    """Register every built-in adapter on ``registry`` and return it."""
    for adapter in (
        GreedyAdapter,
        RarestFirstAdapter,
        SaOptimalAdapter,
        ExactAdapter,
        BruteForceAdapter,
        RandomAdapter,
        ParetoAdapter,
    ):
        registry.register(adapter.name, adapter)
    return registry


#: The registry engines use unless handed a custom one.
DEFAULT_REGISTRY = register_builtin_solvers(SolverRegistry())
