"""repro.api — the unified serving surface for team discovery.

The paper contributes a *family* of problems over one expert network;
this package exposes them behind one stable API instead of eight solver
classes with incompatible constructors:

* :class:`TeamRequest` / :class:`TeamResponse` — typed, JSON-round-trip
  messages (:mod:`repro.api.messages`);
* :class:`Solver` / :class:`SolverRegistry` — the string-keyed strategy
  registry (:mod:`repro.api.registry`), pre-populated with the seven
  built-in solvers (:data:`DEFAULT_REGISTRY`,
  :mod:`repro.api.solvers`);
* :class:`TeamFormationEngine` — the shared-oracle session layer that
  serves multi-query traffic without rebuilding indexes
  (:mod:`repro.api.engine`).

Quickstart::

    from repro.api import TeamFormationEngine, TeamRequest

    engine = TeamFormationEngine(network)
    response = engine.solve(
        TeamRequest(skills=("db", "ml"), solver="greedy", lam=0.6)
    )
    print(response.team.members, response.scores.sa_ca_cc)
"""

from .engine import TeamFormationEngine
from .messages import (
    MemberContributionPayload,
    ScoreBreakdown,
    TeamPayload,
    TeamRequest,
    TeamResponse,
    TimingInfo,
)
from .registry import Solver, SolverRegistry, UnknownSolverError
from .solvers import DEFAULT_REGISTRY, register_builtin_solvers

__all__ = [
    "TeamFormationEngine",
    "TeamRequest",
    "TeamResponse",
    "TeamPayload",
    "MemberContributionPayload",
    "ScoreBreakdown",
    "TimingInfo",
    "Solver",
    "SolverRegistry",
    "UnknownSolverError",
    "DEFAULT_REGISTRY",
    "register_builtin_solvers",
]
