"""The solver registry: string keys -> solver adapter factories.

The serving layer never hard-codes a solver dispatch ladder; it looks the
requested solver name up in a :class:`SolverRegistry` and instantiates
the adapter bound to the engine handling the request.  The built-in
solvers (greedy, rarest_first, sa_optimal, exact, brute_force, random,
pareto) are registered in :data:`repro.api.solvers.DEFAULT_REGISTRY`;
applications can register their own strategies next to them without
touching this package.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from .messages import TeamRequest, TeamResponse

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .engine import TeamFormationEngine

__all__ = ["Solver", "SolverFactory", "SolverRegistry", "UnknownSolverError"]


@runtime_checkable
class Solver(Protocol):
    """Anything that answers a :class:`TeamRequest` with a :class:`TeamResponse`."""

    def solve(self, request: TeamRequest) -> TeamResponse:
        """Solve one request end to end."""
        ...


#: A factory binds an adapter to the engine (network + scales + oracle
#: cache) that will serve its requests.
SolverFactory = Callable[["TeamFormationEngine"], Solver]


class UnknownSolverError(KeyError):
    """Raised when a request names a solver the registry does not know."""

    def __init__(self, name: str, available: tuple[str, ...]) -> None:
        super().__init__(name)
        self.name = name
        self.available = available

    def __str__(self) -> str:
        return (
            f"unknown solver {self.name!r}; registered solvers: "
            f"{', '.join(self.available)}"
        )


class SolverRegistry:
    """A string-keyed mapping of solver names to adapter factories."""

    def __init__(self) -> None:
        self._factories: dict[str, SolverFactory] = {}

    def register(
        self, name: str, factory: SolverFactory, *, replace: bool = False
    ) -> None:
        """Register ``factory`` under ``name``.

        Re-registering an existing name requires ``replace=True`` so a
        typo cannot silently shadow a built-in.
        """
        if not name:
            raise ValueError("solver name must be non-empty")
        if name in self._factories and not replace:
            raise ValueError(
                f"solver {name!r} is already registered; pass replace=True"
            )
        self._factories[name] = factory

    def factory(self, name: str) -> SolverFactory:
        """The factory for ``name``; :class:`UnknownSolverError` if absent."""
        try:
            return self._factories[name]
        except KeyError:
            raise UnknownSolverError(name, self.names()) from None

    def create(self, name: str, engine: "TeamFormationEngine") -> Solver:
        """Instantiate the adapter for ``name`` bound to ``engine``."""
        return self.factory(name)(engine)

    def names(self) -> tuple[str, ...]:
        """All registered solver names, sorted."""
        return tuple(sorted(self._factories))

    def copy(self) -> "SolverRegistry":
        """An independent registry with the same entries (for extension)."""
        clone = SolverRegistry()
        clone._factories.update(self._factories)
        return clone

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SolverRegistry({', '.join(self.names())})"
