"""The serving facade: one engine, one network, shared indexes.

:class:`TeamFormationEngine` is the multi-query hot path the repo routes
through.  It owns exactly one :class:`~repro.expertise.network.ExpertNetwork`,
one set of :class:`~repro.core.objectives.ObjectiveScales`, and a keyed
cache of distance oracles, so a stream of requests — a lambda sweep, a
``solve_many`` batch, a long-lived server loop — builds each PLL index
exactly once instead of once per solver instance.

The cache key is what the index actually depends on:

* the greedy search graph for ``cc`` depends only on the scales;
* the folded graph ``G'`` depends on ``gamma`` (never on ``lambda``);
* RarestFirst measures the *raw* network graph;
* and every entry is keyed on the network's mutation ``version``, so a
  ``network.add_collaboration(...)`` between two solves can never serve
  pre-mutation distances.

When the network mutates, a stale entry is *upgraded in place* instead
of rebuilt whenever the delta allows it: node additions and
distance-decreasing edge changes stream into oracles that advertise
``supports_incremental`` (resumed pruned Dijkstras for the 2-hop cover,
tree invalidation for the Dijkstra oracle), skill-only edits reuse the
index untouched, and everything else — removals, weight increases,
authority changes under an authority-folded graph — falls back to a
fresh build.  :meth:`TeamFormationEngine.apply_updates` runs the same
reconciliation eagerly and reports what happened per cached index.

``scales`` are normalization constants and deliberately stay frozen at
engine construction so scores remain comparable across mutations; call
:meth:`TeamFormationEngine.refresh_scales` to re-derive them (which
drops every cached oracle).

Every solver the engine hands out — whether through the typed
:meth:`solve` / :meth:`solve_many` request path or through the factory
methods the experiment runners use — is constructed with the same
arguments a direct instantiation would use, so teams are identical
either way (asserted per registered solver in ``tests/api``).

The whole serving state is durable: :meth:`TeamFormationEngine.save_snapshot`
freezes the network (with its mutation journal), the scales and every
current 2-hop-cover index into a CRC-checked binary snapshot
(:mod:`repro.storage`), and :meth:`TeamFormationEngine.from_snapshot`
warm-starts a new process from it without rebuilding an index — or
attaches the snapshot to a newer live network, reconciling through the
same version-keyed incremental path mutations use.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from pathlib import Path

from ..core.brute_force import BruteForceSolver
from ..core.exact import ExactSolver
from ..core.greedy import GreedyTeamFinder, search_graph_for
from ..core.objectives import ObjectiveScales, SaMode, TeamEvaluator
from ..core.pareto import ParetoTeamDiscovery
from ..core.random_search import DEFAULT_NUM_SAMPLES, RandomSolver
from ..core.rarest_first import RarestFirstSolver
from ..core.sa_solver import SaOptimalSolver
from ..core.transform import transformed_edge_weight
from ..expertise.network import ExpertNetwork, NetworkMutation
from ..graph.adjacency import Graph, GraphError
from ..graph.distance import DistanceOracle, build_oracle
from ..graph.pll import PrunedLandmarkLabeling
from ..storage.codec import (
    EngineSnapshotState,
    OracleEntryState,
    decode_engine_snapshot,
    encode_engine_snapshot,
)
from ..storage.errors import CorruptSnapshotError, StaleSnapshotError
from ..storage.format import read_container, write_container
from ..storage.store import SnapshotStore
from .messages import TeamRequest, TeamResponse
from .registry import Solver, SolverRegistry
from .solvers import DEFAULT_REGISTRY

__all__ = ["TeamFormationEngine"]


class TeamFormationEngine:
    """Unified entry point for every team-discovery strategy.

    Parameters
    ----------
    network:
        The expert network all requests are answered over.
    scales:
        Normalization constants shared by every solver; derived from the
        network when omitted.
    sa_mode:
        Default Definition-5 reading for requests/factories that do not
        specify one.
    oracle_kind:
        Default distance-oracle implementation (``"pll"`` or
        ``"dijkstra"``) for factory calls that do not specify one.
    registry:
        The solver registry to dispatch requests through; defaults to
        the built-in seven solvers.
    index_workers:
        Worker processes for PLL construction (``None`` = module
        default, see ``--parallel-index``).
    max_cached_oracles, max_cached_finders:
        FIFO bounds on the oracle and finder caches.  Gamma arrives over
        the wire as a continuous float, so a long-lived serving loop fed
        adversarially varied gammas would otherwise accumulate one full
        PLL index per distinct value until OOM.

    >>> # engine = TeamFormationEngine(network)
    >>> # engine.solve(TeamRequest(skills=("db", "ml"), solver="greedy"))
    """

    def __init__(
        self,
        network: ExpertNetwork,
        *,
        scales: ObjectiveScales | None = None,
        sa_mode: SaMode = "per_skill",
        oracle_kind: str = "pll",
        registry: SolverRegistry | None = None,
        index_workers: int | None = None,
        max_cached_oracles: int = 16,
        max_cached_finders: int = 128,
    ) -> None:
        if max_cached_oracles < 1 or max_cached_finders < 1:
            raise ValueError("cache bounds must be positive")
        self.network = network
        self.scales = scales or ObjectiveScales.from_network(network)
        self.sa_mode: SaMode = sa_mode
        self.oracle_kind = oracle_kind
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self._index_workers = index_workers
        self._max_cached_oracles = max_cached_oracles
        self._max_cached_finders = max_cached_finders
        # Entries carry the graph next to its oracle so a finder
        # construction never rebuilds the fold a second time, and are
        # keyed ``(*base, network.version)`` where ``base`` is
        # ``(kind, "cc")``, ``(kind, "fold", gamma)`` or ``(kind, "raw")``.
        self._search_cache: dict[tuple, tuple[Graph, DistanceOracle]] = {}
        self._raw_oracles: dict[tuple, tuple[Graph, DistanceOracle]] = {}
        self._finders: dict[tuple, GreedyTeamFinder] = {}
        self._adapters: dict[str, Solver] = {}

    # ------------------------------------------------------------------
    # the request/response serving path
    # ------------------------------------------------------------------
    def solve(self, request: TeamRequest) -> TeamResponse:
        """Answer one request via its registered solver."""
        return self._adapter(request.solver).solve(request)

    def solve_many(self, requests: Iterable[TeamRequest]) -> list[TeamResponse]:
        """Answer a batch of requests, sharing cached indexes throughout.

        This is the hot path the engine exists for: a gamma-homogeneous
        batch (e.g. a lambda sweep) pays for at most one PLL build no
        matter how many requests it contains.
        """
        return [self.solve(request) for request in requests]

    def list_solvers(self) -> tuple[str, ...]:
        """Names this engine can route to, sorted."""
        return self.registry.names()

    def _adapter(self, name: str) -> Solver:
        if name not in self._adapters:
            self._adapters[name] = self.registry.create(name, self)
        return self._adapters[name]

    # ------------------------------------------------------------------
    # the shared-oracle session layer
    # ------------------------------------------------------------------
    def search_oracle(
        self, objective: str, gamma: float, oracle_kind: str | None = None
    ) -> DistanceOracle:
        """The (cached) oracle over Algorithm 1's search graph.

        Keyed on what the index depends on: ``(kind,)`` graph flavor,
        for authority-folded graphs gamma, and the network's mutation
        version.  ``"ca"`` degenerates to the fold at ``gamma=1``
        exactly as :class:`GreedyTeamFinder` does, so the cache never
        splits hairs the search graph doesn't.
        """
        return self._search_entry(objective, gamma, oracle_kind)[1]

    def _search_entry(
        self, objective: str, gamma: float, oracle_kind: str | None = None
    ) -> tuple[Graph, DistanceOracle]:
        kind = oracle_kind or self.oracle_kind
        if objective == "cc":
            base: tuple = (kind, "cc")
        else:
            effective_gamma = 1.0 if objective == "ca" else gamma
            base = (kind, "fold", effective_gamma)
        return self._entry(self._search_cache, base, self._max_cached_oracles)[0]

    def raw_oracle(self, oracle_kind: str | None = None) -> DistanceOracle:
        """The (cached) oracle over the plain communication-cost graph."""
        kind = oracle_kind or self.oracle_kind
        entry, _ = self._entry(
            self._raw_oracles, (kind, "raw"), self._max_cached_oracles
        )
        return entry[1]

    # ------------------------------------------------------------------
    # versioned cache reconciliation
    # ------------------------------------------------------------------
    def _entry(
        self, cache: dict, base: tuple, bound: int
    ) -> tuple[tuple[Graph, DistanceOracle], str]:
        """The entry for ``base`` at the *current* network version.

        Returns ``(entry, how)`` where ``how`` records what it cost:
        ``"cached"`` (already current), ``"incremental"`` (a stale entry
        absorbed the delta in place), or ``"rebuilt"`` (fresh build).
        """
        version = self.network.version
        key = (*base, version)
        entry = cache.get(key)
        if entry is not None:
            return entry, "cached"
        entry = self._upgrade_entry(cache, base, version)
        how = "incremental"
        if entry is None:
            entry = self._build_entry(base)
            how = "rebuilt"
        if len(cache) >= bound:
            del cache[next(iter(cache))]
        cache[key] = entry
        return entry, how

    def _build_entry(self, base: tuple) -> tuple[Graph, DistanceOracle]:
        """Build the search graph + oracle for ``base`` from scratch."""
        graph = self._derive_graph(base, self.network)
        return graph, build_oracle(graph, base[0], workers=self._index_workers)

    def _derive_graph(self, base: tuple, network: ExpertNetwork) -> Graph:
        """The derived graph ``base`` indexes, built over ``network``.

        Factored out of :meth:`_build_entry` so snapshot restoration can
        derive an entry's graph from the *snapshot's* network (the state
        the persisted labels were computed over) rather than the
        engine's possibly-newer live network.
        """
        flavor = base[1]
        if flavor == "raw":
            return network.graph
        if flavor == "cc":
            return search_graph_for(network, "cc", 0.0, self.scales)
        # fold at base[2] = effective gamma
        return search_graph_for(network, "ca-cc", base[2], self.scales)

    def _upgrade_entry(
        self, cache: dict, base: tuple, version: int
    ) -> tuple[Graph, DistanceOracle] | None:
        """Bring a stale cached entry for ``base`` up to ``version``.

        Picks the freshest stale entry, asks the network for the
        mutation delta since its version, and replays it onto the
        derived graph and oracle when every change is incrementally
        applicable.  Stale keys for ``base`` are always dropped; returns
        ``None`` when the caller must rebuild (no stale entry, journal
        truncated, unsupported mutation, or a non-incremental oracle).
        """
        stale = [key for key in cache if key[:-1] == base]
        if not stale:
            return None
        newest = max(stale, key=lambda key: key[-1])
        graph, oracle = cache[newest]
        delta = self.network.mutations_since(newest[-1])
        for key in stale:
            del cache[key]
        if delta is None:
            return None
        steps = self._plan_incremental(delta, base, oracle)
        if steps is None:
            return None
        for step in steps:
            if step[0] == "node":
                oracle.add_node(step[1])
            else:
                _, u, v, weight = step
                oracle.insert_edge(u, v, weight)
        return graph, oracle

    def _plan_incremental(
        self,
        delta: tuple[NetworkMutation, ...],
        base: tuple,
        oracle: DistanceOracle,
    ) -> list[tuple] | None:
        """Map a network delta onto oracle update steps, or ``None``.

        A delta is incrementally applicable when the oracle supports it
        and every mutation either leaves the derived graph untouched
        (skill edits everywhere; authority edits off the fold) or only
        *decreases* derived distances (new nodes, new edges, derived
        weight decreases).  Removals, derived weight increases and
        authority changes under a fold require a rebuild.
        """
        if not getattr(oracle, "supports_incremental", False):
            return None
        flavor = base[1]
        steps: list[tuple] = []
        # Reweighting chains are coalesced to one step per edge: only
        # the chain's *final* weight matters, compared against the
        # edge's weight at the cached version (the first record's
        # ``old_weight``) — intermediate weights are never replayed, so
        # a chain is incremental iff its net effect is an insertion or
        # a decrease.
        edge_origin: dict[frozenset, float | None] = {}
        edge_final: dict[frozenset, tuple[str, str, float]] = {}
        for mutation in delta:
            op = mutation.op
            if op in ("remove_expert", "remove_collaboration"):
                return None
            if op == "update_skills":
                continue  # no distance impact on any flavor
            if op == "update_h_index":
                if flavor == "fold":
                    return None  # reweights every incident folded edge
                continue
            if op == "add_expert":
                steps.append(("node", mutation.expert_id))
                continue
            # add_collaboration: insertion or reweighting
            pair = frozenset((mutation.u, mutation.v))
            if pair not in edge_origin:
                edge_origin[pair] = mutation.old_weight
            edge_final[pair] = (mutation.u, mutation.v, mutation.weight)
        # Node additions first: an edge step may reference a new expert.
        for pair, (u, v, weight) in edge_final.items():
            new_w = self._derived_weight(base, u, v, weight)
            origin = edge_origin[pair]
            if origin is not None and new_w > self._derived_weight(
                base, u, v, origin
            ):
                return None  # net weight increase: distances may grow
            steps.append(("edge", u, v, new_w))
        return steps

    def _derived_weight(self, base: tuple, u: str, v: str, weight: float) -> float:
        """What edge ``{u, v}`` at raw ``weight`` weighs on ``base``'s graph."""
        flavor = base[1]
        if flavor == "raw":
            return weight
        if flavor == "cc":
            return weight / self.scales.edge_scale
        inv_u = self.network.inverse_authority(u) / self.scales.authority_scale
        inv_v = self.network.inverse_authority(v) / self.scales.authority_scale
        return transformed_edge_weight(
            inv_u, inv_v, weight / self.scales.edge_scale, base[2]
        )

    def apply_updates(self) -> dict[str, int]:
        """Eagerly reconcile every cached oracle with the network.

        The lazy serving path performs the same reconciliation on the
        next request touching each index; this method front-loads the
        work (e.g. after a mutation burst, before a latency-sensitive
        window) and reports what it cost::

            {"cached": n, "incremental": n, "rebuilt": n}
        """
        report = {"cached": 0, "incremental": 0, "rebuilt": 0}
        for cache in (self._search_cache, self._raw_oracles):
            for base in {key[:-1] for key in cache}:
                _, how = self._entry(cache, base, self._max_cached_oracles)
                report[how] += 1
        return report

    def refresh_scales(self) -> ObjectiveScales:
        """Re-derive normalization scales from the mutated network.

        Scales are frozen at construction so scores stay comparable
        across mutations; call this when the network has drifted enough
        that stale normalization matters.  Every cached oracle and
        finder depends on the scales, so both caches are dropped.
        """
        self.scales = ObjectiveScales.from_network(self.network)
        self._search_cache.clear()
        self._raw_oracles.clear()
        self._finders.clear()
        return self.scales

    # ------------------------------------------------------------------
    # persistence / warm start (see repro.storage)
    # ------------------------------------------------------------------
    def save_snapshot(
        self,
        target: "SnapshotStore | str | Path",
        *,
        retain: int | None = 5,
    ) -> Path:
        """Freeze this engine's serving state into a durable snapshot.

        Persists the network (state *and* mutation journal, so a loaded
        snapshot can be reconciled with a newer live journal), the
        frozen normalization scales, the default ``sa_mode`` /
        ``oracle_kind``, and every cached 2-hop-cover index that is
        current at the network's version.  Stale cache entries and
        Dijkstra oracles are skipped: the former would be upgraded or
        rebuilt on first touch anyway, and the latter hold no
        precomputation worth the bytes.

        ``target`` may be a :class:`SnapshotStore`, a store *directory*
        (``retain`` applies), or a single ``*.snap`` file path.  Returns
        the path written.  The write is atomic either way.
        """
        version = self.network.version
        entries = []
        for cache_name, cache in (
            ("search", self._search_cache),
            ("raw", self._raw_oracles),
        ):
            for key, (_graph, oracle) in cache.items():
                if key[-1] != version:
                    continue
                if not isinstance(oracle, PrunedLandmarkLabeling):
                    continue
                entries.append(
                    OracleEntryState(
                        cache=cache_name,
                        base=key[:-1],
                        version=version,
                        labels=oracle.export_labels(),
                    )
                )
        meta, sections = encode_engine_snapshot(
            EngineSnapshotState(
                network=self.network,
                edge_scale=self.scales.edge_scale,
                authority_scale=self.scales.authority_scale,
                sa_mode=self.sa_mode,
                oracle_kind=self.oracle_kind,
                entries=tuple(entries),
            )
        )
        if isinstance(target, SnapshotStore):
            return target.save(meta, sections)
        path = Path(target)
        if path.suffix == ".snap":
            return write_container(path, meta, sections)
        return SnapshotStore(path, retain=retain).save(meta, sections)

    @classmethod
    def from_snapshot(
        cls,
        source: "SnapshotStore | str | Path",
        *,
        network: ExpertNetwork | None = None,
        registry: SolverRegistry | None = None,
        index_workers: int | None = None,
        max_cached_oracles: int = 16,
        max_cached_finders: int = 128,
    ) -> "TeamFormationEngine":
        """Warm-start an engine from a snapshot — no index build.

        ``source`` is a :class:`SnapshotStore`, a store directory (the
        LATEST snapshot is taken), or one ``*.snap`` file.  Every byte
        is CRC-verified before interpretation; damage raises
        :class:`~repro.storage.errors.CorruptSnapshotError`, a
        too-new format raises
        :class:`~repro.storage.errors.FormatVersionError`.

        Without ``network``, the engine serves the snapshot's own
        network, restored at the version it was frozen at (journal tail
        included, so later mutations reconcile incrementally exactly as
        they would have on the never-persisted engine).

        With ``network`` — a *live* network that has moved on to a newer
        version — the engine serves that network while adopting the
        snapshot's scales and indexes.  Each restored index stays keyed
        at the snapshot's version over a graph derived from the
        *snapshot's* state, and the engine's ordinary version-keyed
        reconciliation replays the live journal delta onto it on first
        touch (incrementally where the delta allows, rebuilding where it
        does not).  If the delta is unreplayable — the snapshot predates
        the live journal's floor, or claims a version the live network
        has not reached — :class:`StaleSnapshotError` is raised rather
        than ever serving wrong distances.
        """
        if isinstance(source, SnapshotStore):
            meta, sections = source.load_latest()
        else:
            path = Path(source)
            if path.is_dir():
                meta, sections = SnapshotStore(path).load_latest()
            else:
                meta, sections = read_container(path)
        state = decode_engine_snapshot(meta, sections)
        snapshot_net = state.network
        if network is not None:
            frozen = snapshot_net.version
            if network.version < frozen:
                raise StaleSnapshotError(
                    f"snapshot at network version {frozen} is ahead of the "
                    f"live network ({network.version}); it belongs to a "
                    "different lineage"
                )
            if network.mutations_since(frozen) is None:
                raise StaleSnapshotError(
                    f"snapshot at network version {frozen} predates the live "
                    f"journal floor ({network.journal_floor}); the catch-up "
                    "delta was truncated — take a fresh snapshot"
                )
            # Version numbers alone cannot tell lineages apart: two
            # networks that mutated *differently* can share a version.
            # The journals can — wherever both retain a record for the
            # same version, the records must be identical.  (Divergence
            # older than both journal floors is out of reach; the
            # journals are the trust boundary, and they cover exactly
            # the window a replay would rely on.)
            start = max(network.journal_floor, snapshot_net.journal_floor)
            snap_overlap = tuple(
                m for m in snapshot_net.journal_tail() if m.version > start
            )
            live_overlap = tuple(
                m
                for m in network.mutations_since(start) or ()
                if m.version <= frozen
            )
            if snap_overlap != live_overlap:
                raise StaleSnapshotError(
                    "snapshot and live network journals disagree over "
                    f"their shared history (versions {start + 1}..{frozen}) "
                    "— the snapshot belongs to a different lineage"
                )
        engine = cls(
            network if network is not None else snapshot_net,
            scales=ObjectiveScales(
                edge_scale=state.edge_scale,
                authority_scale=state.authority_scale,
            ),
            sa_mode=state.sa_mode,  # type: ignore[arg-type]
            oracle_kind=state.oracle_kind,
            registry=registry,
            index_workers=index_workers,
            max_cached_oracles=max_cached_oracles,
            max_cached_finders=max_cached_finders,
        )
        for entry in state.entries:
            cache = (
                engine._search_cache
                if entry.cache == "search"
                else engine._raw_oracles
            )
            if len(cache) >= engine._max_cached_oracles:
                continue
            graph = engine._derive_graph(entry.base, snapshot_net)
            try:
                oracle = PrunedLandmarkLabeling.from_labels(graph, entry.labels)
            except GraphError as exc:
                raise CorruptSnapshotError(
                    f"oracle entry {entry.base!r}: {exc}"
                ) from None
            cache[(*entry.base, entry.version)] = (graph, oracle)
        return engine

    # ------------------------------------------------------------------
    # solver factories (single construction path for adapters AND
    # experiment runners)
    # ------------------------------------------------------------------
    def greedy_finder(
        self,
        *,
        objective: str = "sa-ca-cc",
        gamma: float = 0.6,
        lam: float = 0.6,
        sa_mode: SaMode | None = None,
        oracle_kind: str | None = None,
        root_candidates: Iterable[str] | None = None,
    ) -> GreedyTeamFinder:
        """A :class:`GreedyTeamFinder` wired to the shared oracle cache.

        Finders themselves are memoized per parameter tuple (they are
        cheap, but a lambda sweep re-requests the same ones constantly).
        Restricting ``root_candidates`` bypasses the finder memo — the
        restriction is query-specific — but still shares oracles.
        """
        sa_mode = sa_mode or self.sa_mode
        kind = oracle_kind or self.oracle_kind
        # Version-keyed like the oracle cache: a finder holds the oracle
        # and search graph, so it must never outlive a network mutation.
        version = self.network.version
        key = (objective, gamma, lam, sa_mode, kind, version)
        if root_candidates is None and key in self._finders:
            return self._finders[key]
        # Purge finders built for older versions: each pins a replaced
        # index, which would otherwise dodge the oracle-cache bound.
        for stale in [k for k in self._finders if k[-1] != version]:
            del self._finders[stale]
        search_graph, oracle = self._search_entry(objective, gamma, kind)
        finder = GreedyTeamFinder(
            self.network,
            objective=objective,
            gamma=gamma,
            lam=lam,
            scales=self.scales,
            sa_mode=sa_mode,
            root_candidates=root_candidates,
            oracle=oracle,
            search_graph=search_graph,
        )
        if root_candidates is None:
            if len(self._finders) >= self._max_cached_finders:
                del self._finders[next(iter(self._finders))]
            self._finders[key] = finder
        return finder

    def rarest_first_solver(
        self,
        *,
        aggregate: str = "diameter",
        oracle_kind: str | None = None,
    ) -> RarestFirstSolver:
        """A :class:`RarestFirstSolver` sharing the raw-graph oracle."""
        return RarestFirstSolver(
            self.network,
            aggregate=aggregate,  # type: ignore[arg-type]
            oracle=self.raw_oracle(oracle_kind),
        )

    def sa_optimal_solver(
        self,
        *,
        gamma: float = 0.6,
        lam: float = 1.0,
        sa_mode: SaMode | None = None,
    ) -> SaOptimalSolver:
        """Problem 4's polynomial solver over the shared scales."""
        return SaOptimalSolver(
            self.network,
            gamma=gamma,
            lam=lam,
            scales=self.scales,
            sa_mode=sa_mode or self.sa_mode,
        )

    def exact_solver(
        self,
        *,
        gamma: float = 0.6,
        lam: float = 0.6,
        sa_mode: SaMode | None = None,
        max_assignments: int = 500_000,
        time_budget: float | None = None,
    ) -> ExactSolver:
        """The exhaustive Exact baseline over the shared scales."""
        return ExactSolver(
            self.network,
            gamma=gamma,
            lam=lam,
            scales=self.scales,
            sa_mode=sa_mode or self.sa_mode,
            max_assignments=max_assignments,
            time_budget=time_budget,
        )

    def brute_force_solver(
        self,
        *,
        objective: str = "sa-ca-cc",
        gamma: float = 0.6,
        lam: float = 0.6,
        sa_mode: SaMode | None = None,
        max_nodes: int = 14,
    ) -> BruteForceSolver:
        """The member-set enumeration trust anchor (tiny networks only)."""
        return BruteForceSolver(
            self.network,
            objective=objective,
            gamma=gamma,
            lam=lam,
            scales=self.scales,
            sa_mode=sa_mode or self.sa_mode,
            max_nodes=max_nodes,
        )

    def random_solver(
        self,
        *,
        gamma: float = 0.6,
        lam: float = 0.6,
        sa_mode: SaMode | None = None,
        num_samples: int | None = None,
        root_pool_size: int = 64,
        seed: int | None = None,
    ) -> RandomSolver:
        """The paper's best-of-N Random baseline over the shared scales."""
        return RandomSolver(
            self.network,
            gamma=gamma,
            lam=lam,
            scales=self.scales,
            sa_mode=sa_mode or self.sa_mode,
            num_samples=DEFAULT_NUM_SAMPLES if num_samples is None else num_samples,
            root_pool_size=root_pool_size,
            seed=seed,
        )

    def pareto_discovery(
        self,
        *,
        grid: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
        k_per_cell: int = 3,
        oracle_kind: str | None = None,
        sa_mode: SaMode | None = None,
    ) -> ParetoTeamDiscovery:
        """A frontier miner whose grid cells share this engine's oracles."""
        kind = oracle_kind or self.oracle_kind
        mode = sa_mode or self.sa_mode

        def factory(**params: object) -> GreedyTeamFinder:
            return self.greedy_finder(
                oracle_kind=kind, sa_mode=mode, **params  # type: ignore[arg-type]
            )

        return ParetoTeamDiscovery(
            self.network,
            grid=grid,
            k_per_cell=k_per_cell,
            oracle_kind=kind,
            scales=self.scales,
            sa_mode=mode,
            finder_factory=factory,
        )

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluator(
        self,
        *,
        gamma: float = 0.6,
        lam: float = 0.6,
        sa_mode: SaMode | None = None,
    ) -> TeamEvaluator:
        """A :class:`TeamEvaluator` over this engine's network and scales."""
        return TeamEvaluator(
            self.network,
            gamma=gamma,
            lam=lam,
            scales=self.scales,
            sa_mode=sa_mode or self.sa_mode,
        )

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    @property
    def cached_oracle_keys(self) -> tuple[tuple, ...]:
        """Which oracle cache entries exist (observability/tests)."""
        return tuple(
            sorted([*self._search_cache, *self._raw_oracles], key=repr)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TeamFormationEngine(experts={len(self.network)}, "
            f"solvers={', '.join(self.list_solvers())}, "
            f"oracles={len(self._search_cache) + len(self._raw_oracles)})"
        )
