"""The serving facade: one engine, one network, shared indexes.

:class:`TeamFormationEngine` is the multi-query hot path the repo routes
through.  It owns exactly one :class:`~repro.expertise.network.ExpertNetwork`,
one set of :class:`~repro.core.objectives.ObjectiveScales`, and a keyed
cache of distance oracles, so a stream of requests — a lambda sweep, a
``solve_many`` batch, a long-lived server loop — builds each PLL index
exactly once instead of once per solver instance.

The cache key is what the index actually depends on:

* the greedy search graph for ``cc`` depends only on the scales;
* the folded graph ``G'`` depends on ``gamma`` (never on ``lambda``);
* RarestFirst measures the *raw* network graph.

Every solver the engine hands out — whether through the typed
:meth:`solve` / :meth:`solve_many` request path or through the factory
methods the experiment runners use — is constructed with the same
arguments a direct instantiation would use, so teams are identical
either way (asserted per registered solver in ``tests/api``).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..core.brute_force import BruteForceSolver
from ..core.exact import ExactSolver
from ..core.greedy import GreedyTeamFinder, search_graph_for
from ..core.objectives import ObjectiveScales, SaMode, TeamEvaluator
from ..core.pareto import ParetoTeamDiscovery
from ..core.random_search import DEFAULT_NUM_SAMPLES, RandomSolver
from ..core.rarest_first import RarestFirstSolver
from ..core.sa_solver import SaOptimalSolver
from ..expertise.network import ExpertNetwork
from ..graph.adjacency import Graph
from ..graph.distance import DistanceOracle, build_oracle
from .messages import TeamRequest, TeamResponse
from .registry import Solver, SolverRegistry
from .solvers import DEFAULT_REGISTRY

__all__ = ["TeamFormationEngine"]


class TeamFormationEngine:
    """Unified entry point for every team-discovery strategy.

    Parameters
    ----------
    network:
        The expert network all requests are answered over.
    scales:
        Normalization constants shared by every solver; derived from the
        network when omitted.
    sa_mode:
        Default Definition-5 reading for requests/factories that do not
        specify one.
    oracle_kind:
        Default distance-oracle implementation (``"pll"`` or
        ``"dijkstra"``) for factory calls that do not specify one.
    registry:
        The solver registry to dispatch requests through; defaults to
        the built-in seven solvers.
    index_workers:
        Worker processes for PLL construction (``None`` = module
        default, see ``--parallel-index``).
    max_cached_oracles, max_cached_finders:
        FIFO bounds on the oracle and finder caches.  Gamma arrives over
        the wire as a continuous float, so a long-lived serving loop fed
        adversarially varied gammas would otherwise accumulate one full
        PLL index per distinct value until OOM.

    >>> # engine = TeamFormationEngine(network)
    >>> # engine.solve(TeamRequest(skills=("db", "ml"), solver="greedy"))
    """

    def __init__(
        self,
        network: ExpertNetwork,
        *,
        scales: ObjectiveScales | None = None,
        sa_mode: SaMode = "per_skill",
        oracle_kind: str = "pll",
        registry: SolverRegistry | None = None,
        index_workers: int | None = None,
        max_cached_oracles: int = 16,
        max_cached_finders: int = 128,
    ) -> None:
        if max_cached_oracles < 1 or max_cached_finders < 1:
            raise ValueError("cache bounds must be positive")
        self.network = network
        self.scales = scales or ObjectiveScales.from_network(network)
        self.sa_mode: SaMode = sa_mode
        self.oracle_kind = oracle_kind
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self._index_workers = index_workers
        self._max_cached_oracles = max_cached_oracles
        self._max_cached_finders = max_cached_finders
        # Search-graph entries carry the graph next to its oracle so a
        # finder construction never rebuilds the fold a second time.
        self._search_cache: dict[tuple, tuple[Graph, DistanceOracle]] = {}
        self._raw_oracles: dict[tuple, DistanceOracle] = {}
        self._finders: dict[tuple, GreedyTeamFinder] = {}
        self._adapters: dict[str, Solver] = {}

    # ------------------------------------------------------------------
    # the request/response serving path
    # ------------------------------------------------------------------
    def solve(self, request: TeamRequest) -> TeamResponse:
        """Answer one request via its registered solver."""
        return self._adapter(request.solver).solve(request)

    def solve_many(self, requests: Iterable[TeamRequest]) -> list[TeamResponse]:
        """Answer a batch of requests, sharing cached indexes throughout.

        This is the hot path the engine exists for: a gamma-homogeneous
        batch (e.g. a lambda sweep) pays for at most one PLL build no
        matter how many requests it contains.
        """
        return [self.solve(request) for request in requests]

    def list_solvers(self) -> tuple[str, ...]:
        """Names this engine can route to, sorted."""
        return self.registry.names()

    def _adapter(self, name: str) -> Solver:
        if name not in self._adapters:
            self._adapters[name] = self.registry.create(name, self)
        return self._adapters[name]

    # ------------------------------------------------------------------
    # the shared-oracle session layer
    # ------------------------------------------------------------------
    def search_oracle(
        self, objective: str, gamma: float, oracle_kind: str | None = None
    ) -> DistanceOracle:
        """The (cached) oracle over Algorithm 1's search graph.

        Keyed on what the index depends on: ``(kind,)`` graph flavor and,
        for authority-folded graphs, gamma.  ``"ca"`` degenerates to the
        fold at ``gamma=1`` exactly as :class:`GreedyTeamFinder` does, so
        the cache never splits hairs the search graph doesn't.
        """
        return self._search_entry(objective, gamma, oracle_kind)[1]

    def _search_entry(
        self, objective: str, gamma: float, oracle_kind: str | None = None
    ) -> tuple[Graph, DistanceOracle]:
        kind = oracle_kind or self.oracle_kind
        if objective == "cc":
            key = (kind, "cc")
        else:
            effective_gamma = 1.0 if objective == "ca" else gamma
            key = (kind, "fold", effective_gamma)
        if key not in self._search_cache:
            if len(self._search_cache) >= self._max_cached_oracles:
                del self._search_cache[next(iter(self._search_cache))]
            graph = search_graph_for(self.network, objective, gamma, self.scales)
            self._search_cache[key] = (
                graph,
                build_oracle(graph, kind, workers=self._index_workers),
            )
        return self._search_cache[key]

    def raw_oracle(self, oracle_kind: str | None = None) -> DistanceOracle:
        """The (cached) oracle over the plain communication-cost graph."""
        kind = oracle_kind or self.oracle_kind
        key = (kind, "raw")
        if key not in self._raw_oracles:
            self._raw_oracles[key] = build_oracle(
                self.network.graph, kind, workers=self._index_workers
            )
        return self._raw_oracles[key]

    # ------------------------------------------------------------------
    # solver factories (single construction path for adapters AND
    # experiment runners)
    # ------------------------------------------------------------------
    def greedy_finder(
        self,
        *,
        objective: str = "sa-ca-cc",
        gamma: float = 0.6,
        lam: float = 0.6,
        sa_mode: SaMode | None = None,
        oracle_kind: str | None = None,
        root_candidates: Iterable[str] | None = None,
    ) -> GreedyTeamFinder:
        """A :class:`GreedyTeamFinder` wired to the shared oracle cache.

        Finders themselves are memoized per parameter tuple (they are
        cheap, but a lambda sweep re-requests the same ones constantly).
        Restricting ``root_candidates`` bypasses the finder memo — the
        restriction is query-specific — but still shares oracles.
        """
        sa_mode = sa_mode or self.sa_mode
        kind = oracle_kind or self.oracle_kind
        key = (objective, gamma, lam, sa_mode, kind)
        if root_candidates is None and key in self._finders:
            return self._finders[key]
        search_graph, oracle = self._search_entry(objective, gamma, kind)
        finder = GreedyTeamFinder(
            self.network,
            objective=objective,
            gamma=gamma,
            lam=lam,
            scales=self.scales,
            sa_mode=sa_mode,
            root_candidates=root_candidates,
            oracle=oracle,
            search_graph=search_graph,
        )
        if root_candidates is None:
            if len(self._finders) >= self._max_cached_finders:
                del self._finders[next(iter(self._finders))]
            self._finders[key] = finder
        return finder

    def rarest_first_solver(
        self,
        *,
        aggregate: str = "diameter",
        oracle_kind: str | None = None,
    ) -> RarestFirstSolver:
        """A :class:`RarestFirstSolver` sharing the raw-graph oracle."""
        return RarestFirstSolver(
            self.network,
            aggregate=aggregate,  # type: ignore[arg-type]
            oracle=self.raw_oracle(oracle_kind),
        )

    def sa_optimal_solver(
        self,
        *,
        gamma: float = 0.6,
        lam: float = 1.0,
        sa_mode: SaMode | None = None,
    ) -> SaOptimalSolver:
        """Problem 4's polynomial solver over the shared scales."""
        return SaOptimalSolver(
            self.network,
            gamma=gamma,
            lam=lam,
            scales=self.scales,
            sa_mode=sa_mode or self.sa_mode,
        )

    def exact_solver(
        self,
        *,
        gamma: float = 0.6,
        lam: float = 0.6,
        sa_mode: SaMode | None = None,
        max_assignments: int = 500_000,
        time_budget: float | None = None,
    ) -> ExactSolver:
        """The exhaustive Exact baseline over the shared scales."""
        return ExactSolver(
            self.network,
            gamma=gamma,
            lam=lam,
            scales=self.scales,
            sa_mode=sa_mode or self.sa_mode,
            max_assignments=max_assignments,
            time_budget=time_budget,
        )

    def brute_force_solver(
        self,
        *,
        objective: str = "sa-ca-cc",
        gamma: float = 0.6,
        lam: float = 0.6,
        sa_mode: SaMode | None = None,
        max_nodes: int = 14,
    ) -> BruteForceSolver:
        """The member-set enumeration trust anchor (tiny networks only)."""
        return BruteForceSolver(
            self.network,
            objective=objective,
            gamma=gamma,
            lam=lam,
            scales=self.scales,
            sa_mode=sa_mode or self.sa_mode,
            max_nodes=max_nodes,
        )

    def random_solver(
        self,
        *,
        gamma: float = 0.6,
        lam: float = 0.6,
        sa_mode: SaMode | None = None,
        num_samples: int | None = None,
        root_pool_size: int = 64,
        seed: int | None = None,
    ) -> RandomSolver:
        """The paper's best-of-N Random baseline over the shared scales."""
        return RandomSolver(
            self.network,
            gamma=gamma,
            lam=lam,
            scales=self.scales,
            sa_mode=sa_mode or self.sa_mode,
            num_samples=DEFAULT_NUM_SAMPLES if num_samples is None else num_samples,
            root_pool_size=root_pool_size,
            seed=seed,
        )

    def pareto_discovery(
        self,
        *,
        grid: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
        k_per_cell: int = 3,
        oracle_kind: str | None = None,
        sa_mode: SaMode | None = None,
    ) -> ParetoTeamDiscovery:
        """A frontier miner whose grid cells share this engine's oracles."""
        kind = oracle_kind or self.oracle_kind
        mode = sa_mode or self.sa_mode

        def factory(**params: object) -> GreedyTeamFinder:
            return self.greedy_finder(
                oracle_kind=kind, sa_mode=mode, **params  # type: ignore[arg-type]
            )

        return ParetoTeamDiscovery(
            self.network,
            grid=grid,
            k_per_cell=k_per_cell,
            oracle_kind=kind,
            scales=self.scales,
            sa_mode=mode,
            finder_factory=factory,
        )

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluator(
        self,
        *,
        gamma: float = 0.6,
        lam: float = 0.6,
        sa_mode: SaMode | None = None,
    ) -> TeamEvaluator:
        """A :class:`TeamEvaluator` over this engine's network and scales."""
        return TeamEvaluator(
            self.network,
            gamma=gamma,
            lam=lam,
            scales=self.scales,
            sa_mode=sa_mode or self.sa_mode,
        )

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    @property
    def cached_oracle_keys(self) -> tuple[tuple, ...]:
        """Which oracle cache entries exist (observability/tests)."""
        return tuple(
            sorted([*self._search_cache, *self._raw_oracles], key=repr)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TeamFormationEngine(experts={len(self.network)}, "
            f"solvers={', '.join(self.list_solvers())}, "
            f"oracles={len(self._search_cache) + len(self._raw_oracles)})"
        )
